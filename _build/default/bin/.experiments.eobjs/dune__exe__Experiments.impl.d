bin/experiments.ml: Arg Cmd Cmdliner Lc_analysis Lc_experiments List Printf String Term
