bin/experiments.mli:
