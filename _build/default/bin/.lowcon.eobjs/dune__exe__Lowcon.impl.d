bin/lowcon.ml: Arg Array Cmd Cmdliner Format Lc_analysis Lc_cellprobe Lc_core Lc_dict Lc_prim Lc_workload Printf String Term Unix
