bin/lowcon.mli:
