(* Experiment driver: regenerate any table or figure of DESIGN.md §4.

     experiments list            enumerate experiments
     experiments run T1 [F3 ..]  run specific experiments
     experiments run all         run everything (what EXPERIMENTS.md records)

   A --seed flag makes every number in the output reproducible. *)

open Cmdliner

let setup () = Lc_experiments.Registry.install ()

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    setup ();
    List.iter
      (fun (e : Lc_analysis.Experiment.t) -> Printf.printf "%-4s %s\n" e.id e.title)
      (Lc_analysis.Experiment.all ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let seed_arg =
  let doc = "Random seed; every experiment is deterministic given the seed." in
  Arg.(value & opt int 20100613 & info [ "seed" ] ~docv:"SEED" ~doc)

let ids_arg =
  let doc = "Experiment ids (T1..T8, F1..F6) or 'all'." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)

let run_cmd =
  let doc = "Run experiments and print their tables/series." in
  let run seed ids =
    setup ();
    let run_one id =
      if String.lowercase_ascii id = "all" then begin
        print_string (Lc_analysis.Experiment.run_all ~seed);
        `Ok ()
      end
      else
        match Lc_analysis.Experiment.find id with
        | None -> `Error (false, Printf.sprintf "unknown experiment %S (try 'list')" id)
        | Some e ->
          Printf.printf "==== %s: %s ====\nClaim: %s\n%s\n" e.id e.title e.claim (e.run ~seed);
          `Ok ()
    in
    let result =
      List.fold_left
        (fun acc id -> match acc with `Error _ -> acc | `Ok () -> run_one id)
        (`Ok ()) ids
    in
    (result :> unit Cmdliner.Term.ret)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ seed_arg $ ids_arg))

let () =
  let doc = "Reproduction experiments for 'Low-Contention Data Structures' (SPAA 2010)" in
  let info = Cmd.info "experiments" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
