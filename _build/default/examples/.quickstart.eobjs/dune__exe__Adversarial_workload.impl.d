examples/adversarial_workload.ml: Array Float Lc_cellprobe Lc_core Lc_dict Lc_lowerbound Lc_prim Lc_workload List Printf
