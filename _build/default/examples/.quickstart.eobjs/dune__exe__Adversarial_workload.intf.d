examples/adversarial_workload.mli:
