examples/concurrent_hotspot.ml: Lc_cellprobe Lc_core Lc_dict Lc_prim Lc_workload List Printf
