examples/concurrent_hotspot.mli:
