examples/contention_profile.ml: Array Float Lc_analysis Lc_cellprobe Lc_core Lc_dict Lc_prim Lc_workload Printf String
