examples/contention_profile.mli:
