examples/dynamic_updates.ml: Array Float Lc_cellprobe Lc_dynamic Lc_prim Lc_workload List Printf
