examples/dynamic_updates.mli:
