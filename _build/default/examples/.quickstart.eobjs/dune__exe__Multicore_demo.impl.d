examples/multicore_demo.ml: Array Atomic Domain Lc_cellprobe Lc_core Lc_dict Lc_prim Lc_workload List Printf Unix
