examples/multicore_demo.mli:
