examples/quickstart.ml: Array Format Hashtbl Lc_cellprobe Lc_core Lc_dict Lc_prim Lc_workload Printf
