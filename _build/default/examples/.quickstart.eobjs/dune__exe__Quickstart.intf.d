examples/quickstart.mli:
