(* The other side of the paper: when the query distribution is not the
   uniform positive/negative mixture, load levelling breaks down — and
   Section 3 proves it must (for balanced-probe algorithms, contention
   near-optimal for every q costs Omega(log log n) probes).

     dune exec examples/adversarial_workload.exe

   Demonstrates (1) skewed distributions defeating every structure, and
   (2) the Lemma 15 adversary constructing a distribution increment that
   rules out a given probe specification. *)

module Qdist = Lc_cellprobe.Qdist
module Instance = Lc_dict.Instance
module Contention = Lc_cellprobe.Contention
module Lb = Lc_lowerbound

let () =
  let rng = Lc_prim.Rng.create 99 in
  let universe = 1 lsl 20 in
  let n = 1024 in
  let keys = Lc_workload.Keyset.random rng ~universe ~n in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in

  (* Part 1: skew. The dictionary's final probe is deterministic per
     key, so a point mass turns one data cell into a hot spot. *)
  Printf.printf "Part 1 - skewed query distributions against the low-contention dictionary\n\n";
  Printf.printf "%-14s %-14s %s\n" "distribution" "entropy(bits)" "s * max Phi";
  List.iter
    (fun (name, qd) ->
      let c = Instance.contention_exact inst qd in
      Printf.printf "%-14s %-14.2f %.1f\n" name (Qdist.entropy qd)
        (Contention.normalized_max c))
    [
      ("uniform", Qdist.zipf ~skew:0.0 keys);
      ("zipf 1.0", Qdist.zipf ~skew:1.0 keys);
      ("zipf 1.5", Qdist.zipf ~skew:1.5 keys);
      ("point mass", Qdist.point keys.(0));
    ];
  Printf.printf
    "\nUniform is flat; the point mass forces s * Phi = Theta(s). No balanced-probe\n\
     structure can avoid this without more probes (Theorem 13).\n\n";

  (* Part 2: the Lemma 15 adversary. Take the step-0 probe spec of the
     dictionary on the key set; the adversary builds a q-increment that
     violates the contention constraint of every candidate spec row. *)
  Printf.printf "Part 2 - the Lemma 15 adversary\n\n";
  let phi =
    (Instance.contention_exact inst (Qdist.uniform ~name:"pos" keys)).max_step
  in
  (* The proof's matrix M(u, i) = phi / max_j P_u(i, j); we use a small
     family of candidate specs: the dictionary's own rounds. *)
  let rounds = inst.max_probes in
  let all_rows =
    Array.init rounds (fun step ->
        let spec = Lb.Probe_spec.of_instance inst ~queries:keys ~step in
        ( step,
          Array.init (Array.length keys) (fun i ->
              let mx = Lb.Probe_spec.row_max spec i in
              if mx > 0.0 then phi /. mx else 1e9) ))
  in
  (* The proof's dichotomy: the adversary only needs to kill the "good"
     (probe-concentrated) specifications — spread-out rounds are already
     information-poor by Lemma 16. A row is good when its r smallest
     entries sum below delta = phi * s. *)
  let delta = phi *. float_of_int inst.space in
  let epsilon = 0.5 in
  let n_q = Array.length keys in
  let ln_n = Float.log (float_of_int rounds) in
  let r =
    max 2 (int_of_float (Float.ceil (Float.sqrt (5.0 /. epsilon *. delta *. float_of_int n_q *. ln_n))))
  in
  let row_is_good (_, row) =
    let sorted = Array.copy row in
    Array.sort compare sorted;
    let sum = ref 0.0 in
    for k = 0 to min r (Array.length sorted) - 1 do
      sum := !sum +. sorted.(k)
    done;
    !sum <= delta
  in
  let good, bad = Array.to_list all_rows |> List.partition row_is_good in
  Printf.printf
    "Dichotomy over the dictionary's %d rounds: %d good (concentrated, attackable)\n\
     vs %d bad (spread so thin they are information-poor; Lemma 16 caps them).\n"
    rounds (List.length good) (List.length bad);
  let m = Array.of_list (List.map snd good) in
  let out = Lb.Adversary.build rng ~m ~delta ~epsilon in
  Printf.printf
    "Adversary parameters: r = %d, |T| = %d, transversal found in %d attempt(s).\n" out.r
    (Array.length out.t_set) out.attempts;
  Printf.printf "q-increment mass: %.3f spread over %d queries (%.4f each).\n"
    (Array.fold_left ( +. ) 0.0 out.q)
    (Array.length out.t_set)
    (epsilon /. float_of_int (Array.length out.t_set));
  Printf.printf "Violates the contention constraint of every good round: %b\n"
    (Lb.Adversary.violates_all ~q:out.q ~m);
  Printf.printf
    "\nInterpretation: if the adversary may pick q after seeing the algorithm's\n\
     balanced probe plan, it can always concentrate just enough mass to break\n\
     the per-round contention budget - the engine inside the Omega(log log n)\n\
     lower bound.\n"
