(* The paper's motivating scenario: m processors query a shared
   read-only table at the same time. How many of them collide on the
   hottest memory cell?

     dune exec examples/concurrent_hotspot.exe

   Think of the key set as a routing table / feature dictionary that
   every worker thread consults. With binary search every worker hits
   the root cell in round one — a serialisation point. The
   low-contention dictionary spreads each round across Theta(n) cells. *)

module Concurrency = Lc_cellprobe.Concurrency

let () =
  let rng = Lc_prim.Rng.create 2025 in
  let universe = 1 lsl 20 in
  let n = 2048 in
  let keys = Lc_workload.Keyset.random rng ~universe ~n in
  let qdist = Lc_cellprobe.Qdist.uniform ~name:"pos" keys in

  let arms =
    [
      ("low-contention", Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys));
      ("fks-replicated", Lc_dict.Fks.instance (Lc_dict.Fks.build rng ~universe ~keys));
      ("cuckoo-replicated", Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build rng ~universe ~keys));
      ("binary-search", Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys));
    ]
  in

  Printf.printf
    "Mean hot-spot: the largest number of the m concurrent queries that\n\
     probe the same cell in the same round (m readers in lock step,\n\
     %d keys, uniform positive queries, 50 trials).\n\n"
    n;
  Printf.printf "%-18s" "m =";
  List.iter (fun m -> Printf.printf "%8d" m) [ 16; 64; 256; 1024 ];
  print_newline ();
  List.iter
    (fun (name, (inst : Lc_dict.Instance.t)) ->
      Printf.printf "%-18s" name;
      List.iter
        (fun m ->
          let stats =
            Concurrency.simulate ~rng ~cells:inst.space ~qdist ~spec:inst.spec ~m ~trials:50
          in
          Printf.printf "%8.1f" stats.mean_hotspot)
        [ 16; 64; 256; 1024 ];
      print_newline ())
    arms;
  Printf.printf
    "\nReading: binary-search = m every time (all readers hit the root).\n\
     fks/cuckoo hold until the per-bucket hot cells saturate.\n\
     The low-contention dictionary stays near the balls-in-bins optimum.\n"
