(* Side-by-side per-cell contention profiles: where does each structure
   concentrate its load?

     dune exec examples/contention_profile.exe

   Prints a small ASCII "histogram" of the hottest cells of each
   structure under uniform positive queries, plus the flatness quantiles
   of experiment F2 in miniature. *)

module Instance = Lc_dict.Instance
module Contention = Lc_cellprobe.Contention
module Stats = Lc_analysis.Stats

let bar width v vmax =
  let n = int_of_float (Float.round (float_of_int width *. v /. vmax)) in
  String.make (max 0 (min width n)) '#'

let profile_of (inst : Instance.t) keys =
  let qdist = Lc_cellprobe.Qdist.uniform ~name:"pos" keys in
  Contention.profile (Instance.contention_exact inst qdist)

let show name prof =
  let top = Array.sub prof 0 (min 12 (Array.length prof)) in
  let vmax = Float.max 1.0 top.(0) in
  Printf.printf "%s  (s = %d cells)\n" name (Array.length prof);
  Printf.printf "  hottest cells (s * Phi):\n";
  Array.iteri (fun i v -> Printf.printf "  #%02d %8.2f %s\n" (i + 1) v (bar 46 v vmax)) top;
  Printf.printf "  median = %.2f   p99 = %.2f   max/median = %.1f\n\n"
    (Stats.median prof) (Stats.quantile prof 0.99)
    (Stats.maximum prof /. Float.max 1e-9 (Stats.median prof))

let () =
  let rng = Lc_prim.Rng.create 7 in
  let universe = 1 lsl 20 in
  let n = 1024 in
  let keys = Lc_workload.Keyset.random rng ~universe ~n in

  Printf.printf
    "Per-cell contention profiles, uniform positive queries over %d keys.\n\
     A flat profile means no memory hot spot; a spike is a cell every\n\
     concurrent reader would serialise on.\n\n"
    n;

  let lc = Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys) in
  show "low-contention (this paper)" (profile_of lc keys);

  let fks = Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:true rng ~universe ~keys) in
  show "FKS, hash params replicated" (profile_of fks keys);

  let fks0 = Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys) in
  show "FKS, no replication" (profile_of fks0 keys);

  let ck = Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build rng ~universe ~keys) in
  show "cuckoo, hash params replicated" (profile_of ck keys);

  let bs = Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys) in
  show "binary search" (profile_of bs keys)
