(* The paper's closing question, explored: what does dynamization do to
   contention?

     dune exec examples/dynamic_updates.exe

   We dynamize the static low-contention dictionary with the classic
   logarithmic method, stream inserts and deletes through it, and watch
   the contention guarantee: it survives for hits (largest-level-first
   search) but breaks for misses, because every miss probes every level
   and small levels have few cells. Replicating small levels repairs it
   at a measured space premium. *)

module Rng = Lc_prim.Rng
module Dynamic = Lc_dynamic.Dynamic
module Qdist = Lc_cellprobe.Qdist
module Keyset = Lc_workload.Keyset

let () =
  let rng = Rng.create 31337 in
  let universe = 1 lsl 20 in

  (* Stream a workload: 1500 inserts, then delete a third. *)
  let t = Dynamic.create rng ~universe () in
  let keys = Keyset.random rng ~universe ~n:1500 in
  Array.iter (Dynamic.insert t) keys;
  for i = 0 to 499 do
    Dynamic.delete t keys.(i)
  done;
  Printf.printf "After 1500 inserts and 500 deletes:\n";
  Printf.printf "  live keys         %d\n" (Dynamic.size t);
  Printf.printf "  cells             %d (%.1f per key)\n" (Dynamic.space t)
    (float_of_int (Dynamic.space t) /. float_of_int (Dynamic.size t));
  Printf.printf "  rebuild work      %.1f keys/insert (log2 n = %.1f)\n"
    (float_of_int (Dynamic.keys_rebuilt t) /. 1500.0)
    (Float.log 1500.0 /. Float.log 2.0);
  Printf.printf "  purges            %d\n" (Dynamic.purges t);
  Printf.printf "  levels            ";
  List.iter (fun (i, k, r) -> Printf.printf "[2^%d: %d keys x%d] " i k r) (Dynamic.level_sizes t);
  print_newline ();
  (match Dynamic.check t rng with
  | Ok () -> Printf.printf "  self-check        ok\n\n"
  | Error e -> Printf.printf "  self-check        FAILED: %s\n\n" e);

  (* Contention of the layered structure, for hits and for misses. *)
  let live = Array.sub keys 500 1000 in
  let negs = Keyset.negatives rng ~universe ~keys ~count:2000 in
  let measure label d =
    let cpos = Dynamic.contention_exact d (Qdist.uniform ~name:"pos" live) in
    let cneg = Dynamic.contention_exact d (Qdist.uniform ~name:"neg" negs) in
    Printf.printf "  %-22s hits: worst %6.0f   misses: worst %6.0f (hot level %d)   cells %d\n"
      label cpos.worst cneg.worst cneg.worst_level (Dynamic.space d)
  in
  Printf.printf "Normalized worst-cell contention (s_total * max Phi):\n";
  measure "plain log-method" t;
  List.iter
    (fun boost ->
      let d = Dynamic.create ~small_level_boost:boost rng ~universe () in
      Array.iter (Dynamic.insert d) keys;
      for i = 0 to 499 do
        Dynamic.delete d keys.(i)
      done;
      measure (Printf.sprintf "small-level boost %d" boost) d)
    [ 16; 128 ];
  Printf.printf
    "\nTakeaway: hits stay cheap (largest level first), but a miss probes every\n\
     level and the smallest level becomes the hot spot. Replicating level i\n\
     max(1, B/2^i) times divides its contention by the replica count - full\n\
     O(1/n) dynamic contention in O(n) space remains open, as the paper says.\n\n";

  (* A sustained mixed workload through the operation-stream generator:
     the structure self-checks at the end and reports its churn costs. *)
  let stream_rng = Rng.create 555 in
  let ops =
    Lc_workload.Opstream.generate stream_rng ~universe ~length:20_000 ~working_set:3_000
  in
  let d = Dynamic.create stream_rng ~universe () in
  let ins, dels, hits = Lc_workload.Opstream.apply d stream_rng ops in
  Printf.printf
    "Churn run: 20000 ops (default 40/10/50 insert/delete/query mix, working set 3000)\n";
  Printf.printf "  applied           %d inserts, %d deletes; %d query hits\n" ins dels hits;
  Printf.printf "  live keys         %d across %d levels; %d purge(s)\n" (Dynamic.size d)
    (List.length (Dynamic.level_sizes d))
    (Dynamic.purges d);
  Printf.printf "  rebuild work      %.1f keys per update\n"
    (float_of_int (Dynamic.keys_rebuilt d) /. float_of_int (max 1 (ins + dels)));
  match Dynamic.check d stream_rng with
  | Ok () -> Printf.printf "  self-check        ok\n"
  | Error e -> Printf.printf "  self-check        FAILED: %s\n" e
