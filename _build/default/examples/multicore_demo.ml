(* Hardware, meet theory: real cache-line contention on OCaml 5 domains.

     dune exec examples/multicore_demo.exe

   The cell-probe contention model predicts which memory locations
   concurrent queries collide on. Here we make the collision physical:
   every cell gets an Atomic.t counter, [workers] domains replay query
   probe plans against the counters with fetch-and-add, and we time the
   runs. A structure with a contention-1 cell (binary search's root,
   unreplicated FKS's parameter cell) forces every core through the same
   cache line; the low-contention dictionary spreads the traffic, so its
   wall-clock scales visibly better even though it performs ~4x more
   probes per query.

   (The probes are replayed from the exact per-query plans — pure data,
   no shared mutable structure besides the counters being measured.) *)

module Rng = Lc_prim.Rng
module Spec = Lc_cellprobe.Spec

let queries_per_worker = 200_000

let time_structure ~workers (inst : Lc_dict.Instance.t) keys =
  (* Pre-sample the query plans outside the timed section. *)
  let counters = Array.init inst.space (fun _ -> Atomic.make 0) in
  let run_worker w () =
    let rng = Rng.create (1000 + w) in
    let nkeys = Array.length keys in
    for i = 0 to queries_per_worker - 1 do
      let x = keys.((i * 7919 + w) mod nkeys) in
      let plan = inst.spec x in
      Array.iter
        (fun st -> ignore (Atomic.fetch_and_add counters.(Spec.sample_step rng st) 1))
        plan
    done
  in
  let t0 = Unix.gettimeofday () in
  let domains = Array.init workers (fun w -> Domain.spawn (run_worker w)) in
  Array.iter Domain.join domains;
  let dt = Unix.gettimeofday () -. t0 in
  let total_probes =
    Array.fold_left (fun acc c -> acc + Atomic.get c) 0 counters
  in
  let hottest = Array.fold_left (fun acc c -> max acc (Atomic.get c)) 0 counters in
  (dt, total_probes, hottest)

let () =
  let cores = Domain.recommended_domain_count () in
  let workers = max 2 (min 8 (cores - 1)) in
  Printf.printf
    "Replaying probe plans on %d domains (machine reports %d cores), %d queries per domain,\n\
     fetch-and-add on a per-cell atomic counter. Contended cache lines cost real time.\n\n"
    workers cores queries_per_worker;
  let rng = Rng.create 7 in
  let universe = 1 lsl 20 in
  let n = 1024 in
  let keys = Lc_workload.Keyset.random rng ~universe ~n in
  let arms =
    [
      ("low-contention", Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys));
      ("fks (no repl.)", Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys));
      ("fks-replicated", Lc_dict.Fks.instance (Lc_dict.Fks.build rng ~universe ~keys));
      ("binary-search", Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys));
    ]
  in
  Printf.printf "%-16s %10s %14s %16s %18s\n" "structure" "seconds" "probes/s (M)" "hottest cell"
    "hottest share";
  List.iter
    (fun (name, inst) ->
      let dt, total, hottest = time_structure ~workers inst keys in
      Printf.printf "%-16s %10.2f %14.1f %16d %17.1f%%\n" name dt
        (float_of_int total /. dt /. 1e6)
        hottest
        (100.0 *. float_of_int hottest /. float_of_int total))
    arms;
  Printf.printf
    "\nReading: 'hottest share' is the fraction of all probes landing on the single\n\
     hottest cell — the model's max contention, realised in hardware traffic.\n\
     Structures whose share is ~100%%/probes funnel every domain through one cache\n\
     line; the low-contention dictionary keeps the share near zero.\n";
  if cores <= 2 then
    Printf.printf
      "\n(Note: this machine reports %d core(s); the wall-clock columns then mostly\n\
       reflect probe counts, not cache-line ping-pong. On a real multicore the\n\
       contended structures' probes/s degrade with the worker count while the\n\
       low-contention dictionary's scale.)\n"
      cores
