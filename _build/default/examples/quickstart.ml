(* Quickstart: build the low-contention dictionary, query it, and look
   at the contention guarantee of Theorem 3.

     dune exec examples/quickstart.exe
*)

let () =
  let rng = Lc_prim.Rng.create 42 in

  (* A static set of one thousand keys from a million-element universe. *)
  let universe = 1 lsl 20 in
  let keys = Lc_workload.Keyset.random rng ~universe ~n:1000 in

  (* Build: expected O(n), one or two P(S) trials. *)
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  Format.printf "Built a low-contention dictionary:@.%a@.@."
    Lc_core.Params.pp
    (Lc_core.Dictionary.params dict);

  (* Queries: membership with a handful of probes, randomized only to
     spread load across replicas. *)
  assert (Lc_core.Dictionary.mem dict rng keys.(0));
  assert (Lc_core.Dictionary.mem dict rng keys.(999));
  let non_key =
    (* find some value outside the key set *)
    let in_keys = Hashtbl.create 1024 in
    Array.iter (fun x -> Hashtbl.add in_keys x ()) keys;
    let rec hunt x = if Hashtbl.mem in_keys x then hunt (x + 1) else x in
    hunt 0
  in
  assert (not (Lc_core.Dictionary.mem dict rng non_key));
  Printf.printf "Queries: %d is a member, %d is not. Max probes per query: %d.\n\n" keys.(0)
    non_key
    (Lc_core.Dictionary.max_probes dict);

  (* The headline number: contention. Under uniform positive queries,
     every cell's expected probe count is within a constant of the ideal
     1/s — the table has no hot spot. *)
  let inst = Lc_core.Dictionary.instance dict in
  let qdist = Lc_cellprobe.Qdist.uniform ~name:"uniform-positive" keys in
  let c = Lc_dict.Instance.contention_exact inst qdist in
  Printf.printf "Contention under uniform positive queries:\n";
  Printf.printf "  cells                     s = %d\n" c.cells;
  Printf.printf "  ideal per-cell contention 1/s = %.2e\n" (1.0 /. float_of_int c.cells);
  Printf.printf "  worst cell                max Phi = %.2e\n" c.max_total;
  Printf.printf "  normalized (s * max Phi)  %.1f  <- stays O(1) as n grows\n"
    (Lc_cellprobe.Contention.normalized_max c);

  (* Contrast with binary search over the same keys: the root cell is
     probed by every single query. *)
  let bs = Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys) in
  let cbs = Lc_dict.Instance.contention_exact bs qdist in
  Printf.printf "\nBinary search on the same keys: normalized max contention = %.0f (= s: the\n"
    (Lc_cellprobe.Contention.normalized_max cbs);
  Printf.printf "middle cell is read by every query).\n"
