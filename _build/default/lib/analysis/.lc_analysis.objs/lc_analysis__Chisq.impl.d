lib/analysis/chisq.ml: Array Float
