lib/analysis/chisq.mli:
