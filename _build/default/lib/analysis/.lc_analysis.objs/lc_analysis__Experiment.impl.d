lib/analysis/experiment.ml: Char Hashtbl List Printf String
