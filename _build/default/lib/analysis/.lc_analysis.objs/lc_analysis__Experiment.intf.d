lib/analysis/experiment.mli:
