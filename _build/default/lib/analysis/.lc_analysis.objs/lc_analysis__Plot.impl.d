lib/analysis/plot.ml: Array Buffer Float List Printf String
