lib/analysis/plot.mli:
