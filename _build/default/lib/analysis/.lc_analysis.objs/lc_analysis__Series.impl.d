lib/analysis/series.ml: Array Float
