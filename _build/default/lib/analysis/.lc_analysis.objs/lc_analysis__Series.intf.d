lib/analysis/series.mli:
