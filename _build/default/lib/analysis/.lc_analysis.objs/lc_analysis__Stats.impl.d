lib/analysis/stats.ml: Array Float Printf
