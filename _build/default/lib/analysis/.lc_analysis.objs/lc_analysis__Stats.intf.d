lib/analysis/stats.mli:
