lib/analysis/tablefmt.ml: Array List Printf String
