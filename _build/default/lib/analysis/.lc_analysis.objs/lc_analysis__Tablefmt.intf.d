lib/analysis/tablefmt.mli:
