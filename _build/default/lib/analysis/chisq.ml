let statistic ~observed ~expected =
  let k = Array.length observed in
  if k = 0 || k <> Array.length expected then
    invalid_arg "Chisq.statistic: need equal, non-empty arrays";
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    if expected.(i) <= 0.0 then invalid_arg "Chisq.statistic: non-positive expectation";
    let d = float_of_int observed.(i) -. expected.(i) in
    acc := !acc +. (d *. d /. expected.(i))
  done;
  !acc

let statistic_uniform counts =
  let total = Array.fold_left ( + ) 0 counts in
  let k = Array.length counts in
  if k = 0 then invalid_arg "Chisq.statistic_uniform: empty";
  let e = float_of_int total /. float_of_int k in
  statistic ~observed:counts ~expected:(Array.make k e)

(* ln Gamma by Lanczos approximation. *)
let ln_gamma x =
  let cof =
    [|
      76.18009172947146; -86.50532032941677; 24.01409824083091; -1.231739572450155;
      0.1208650973866179e-2; -0.5395239384953e-5;
    |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. Float.log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    cof;
  -.tmp +. Float.log (2.5066282746310005 *. !ser /. x)

(* Regularised lower incomplete gamma P(a, x): series for x < a + 1,
   continued fraction otherwise. *)
let gamma_p ~a ~x =
  if a <= 0.0 || x < 0.0 then invalid_arg "Chisq.gamma_p: need a > 0 and x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then begin
    (* Series representation. *)
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    (try
       for _ = 1 to 500 do
         ap := !ap +. 1.0;
         del := !del *. x /. !ap;
         sum := !sum +. !del;
         if Float.abs !del < Float.abs !sum *. 1e-14 then raise Exit
       done
     with Exit -> ());
    !sum *. Float.exp (-.x +. (a *. Float.log x) -. ln_gamma a)
  end
  else begin
    (* Continued fraction for Q(a, x), then P = 1 - Q (Lentz's method). *)
    let fpmin = 1e-300 in
    let b = ref (x +. 1.0 -. a) in
    let c = ref (1.0 /. fpmin) in
    let d = ref (1.0 /. !b) in
    let h = ref !d in
    (try
       for i = 1 to 500 do
         let an = -.float_of_int i *. (float_of_int i -. a) in
         b := !b +. 2.0;
         d := (an *. !d) +. !b;
         if Float.abs !d < fpmin then d := fpmin;
         c := !b +. (an /. !c);
         if Float.abs !c < fpmin then c := fpmin;
         d := 1.0 /. !d;
         let del = !d *. !c in
         h := !h *. del;
         if Float.abs (del -. 1.0) < 1e-14 then raise Exit
       done
     with Exit -> ());
    let q = Float.exp (-.x +. (a *. Float.log x) -. ln_gamma a) *. !h in
    1.0 -. q
  end

let p_value ~dof x2 =
  if dof < 1 then invalid_arg "Chisq.p_value: dof must be >= 1";
  if x2 < 0.0 then invalid_arg "Chisq.p_value: negative statistic";
  1.0 -. gamma_p ~a:(float_of_int dof /. 2.0) ~x:(x2 /. 2.0)

let test_uniform ?(alpha = 0.001) counts =
  let x2 = statistic_uniform counts in
  p_value ~dof:(Array.length counts - 1) x2 >= alpha
