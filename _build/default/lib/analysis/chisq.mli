(** Chi-square goodness-of-fit testing.

    The hash-family tests need a principled "is this sample compatible
    with the uniform (or given) distribution?" primitive rather than
    ad-hoc deviation thresholds. This module computes the Pearson
    statistic and a p-value via the regularised incomplete gamma
    function (implemented from scratch: series expansion for small
    arguments, continued fraction for large — the standard Numerical
    Recipes decomposition). *)

val statistic : observed:int array -> expected:float array -> float
(** Pearson's [X^2 = sum (O_i - E_i)^2 / E_i]. Arrays must have equal
    length and positive expectations. *)

val statistic_uniform : int array -> float
(** [statistic_uniform counts] against the uniform expectation (total
    spread evenly over the cells). *)

val gamma_p : a:float -> x:float -> float
(** The regularised lower incomplete gamma [P(a, x)]; exposed for its
    own tests. Requires [a > 0], [x >= 0]. *)

val p_value : dof:int -> float -> float
(** [p_value ~dof x2] is the upper-tail probability of a chi-square
    variable with [dof] degrees of freedom exceeding [x2] — small means
    "reject uniformity". *)

val test_uniform : ?alpha:float -> int array -> bool
(** [test_uniform counts] is [true] when uniformity is {e not} rejected
    at level [alpha] (default 0.001 — the tests want very few false
    alarms across hundreds of runs). *)
