type t = { id : string; title : string; claim : string; run : seed:int -> string }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let canon id = String.lowercase_ascii id

let register e =
  let key = canon e.id in
  if Hashtbl.mem registry key then invalid_arg (Printf.sprintf "Experiment: duplicate id %s" e.id);
  Hashtbl.replace registry key e

let find id = Hashtbl.find_opt registry (canon id)

(* Sort ids like T1 < T2 < ... < T10 < F1 < F2: letter class first
   (T before F, then others), then numeric suffix. *)
let id_order id =
  let letter = if id = "" then ' ' else Char.uppercase_ascii id.[0] in
  let klass = match letter with 'T' -> 0 | 'F' -> 1 | _ -> 2 in
  let num = try int_of_string (String.sub id 1 (String.length id - 1)) with _ -> 0 in
  (klass, num, id)

let all () =
  Hashtbl.fold (fun _ e acc -> e :: acc) registry []
  |> List.sort (fun a b -> compare (id_order a.id) (id_order b.id))

let run_all ~seed =
  all ()
  |> List.map (fun e ->
         let header =
           Printf.sprintf "==== %s: %s ====\nClaim: %s\n" e.id e.title e.claim
         in
         header ^ e.run ~seed ^ "\n")
  |> String.concat "\n"
