(** The experiment registry.

    Each table/figure of DESIGN.md §4 registers itself as an
    {!t}: an id ("T1", "F3", ...), the paper claim it reproduces, and a
    seeded run function producing printable output. [bin/experiments.exe]
    and the benchmark driver iterate the registry, so adding an
    experiment is one [register] call. *)

type t = {
  id : string;  (** "T1" ... "F6"; unique, case-insensitive lookup. *)
  title : string;
  claim : string;  (** The paper statement being reproduced. *)
  run : seed:int -> string;  (** Produce the full printable report. *)
}

val register : t -> unit
(** Raises [Invalid_argument] on duplicate ids. *)

val find : string -> t option
(** Case-insensitive lookup. *)

val all : unit -> t list
(** Registered experiments in id order (T's then F's, numerically). *)

val run_all : seed:int -> string
(** Run everything, concatenating reports with headers. *)
