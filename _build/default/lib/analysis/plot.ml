type series = { label : string; points : (float * float) array }
type scale = Linear | Log

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

let transform scale v =
  match scale with
  | Linear -> v
  | Log ->
    if v <= 0.0 then invalid_arg "Plot.render: non-positive value under log scale";
    Float.log v

let render ?(width = 64) ?(height = 20) ?(x_scale = Linear) ?(y_scale = Linear) ~title ~x_label
    ~y_label series =
  if series = [] then invalid_arg "Plot.render: no series";
  if List.for_all (fun s -> Array.length s.points = 0) series then
    invalid_arg "Plot.render: no points";
  let all_x =
    List.concat_map (fun s -> Array.to_list (Array.map fst s.points)) series
  in
  let all_y =
    List.concat_map (fun s -> Array.to_list (Array.map snd s.points)) series
  in
  let tx = transform x_scale and ty = transform y_scale in
  let min_max l =
    List.fold_left
      (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
      (Float.infinity, Float.neg_infinity) l
  in
  let x_lo, x_hi = min_max (List.map tx all_x) in
  let y_lo, y_hi = min_max (List.map ty all_y) in
  (* Pad degenerate ranges so the projection is well defined. *)
  let pad lo hi = if hi -. lo < 1e-12 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
  let x_lo, x_hi = pad x_lo x_hi and y_lo, y_hi = pad y_lo y_hi in
  let canvas = Array.make_matrix height width ' ' in
  let plot_series idx s =
    let glyph = glyphs.(idx mod Array.length glyphs) in
    Array.iter
      (fun (x, y) ->
        let cx =
          int_of_float
            (Float.round ((tx x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
        in
        let cy =
          int_of_float
            (Float.round ((ty y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
        in
        (* canvas row 0 is the top. *)
        canvas.(height - 1 - cy).(cx) <- glyph)
      s.points
  in
  List.iteri plot_series series;
  let buf = Buffer.create (width * height * 2) in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let fmt_tick scale v =
    let v = match scale with Linear -> v | Log -> Float.exp v in
    Printf.sprintf "%.3g" v
  in
  let y_hi_s = fmt_tick y_scale y_hi and y_lo_s = fmt_tick y_scale y_lo in
  let margin = max (String.length y_hi_s) (String.length y_lo_s) in
  Array.iteri
    (fun i row ->
      let tick =
        if i = 0 then y_hi_s
        else if i = height - 1 then y_lo_s
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "%*s |" margin tick);
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (String.make (margin + 2) ' ');
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let x_lo_s = fmt_tick x_scale x_lo and x_hi_s = fmt_tick x_scale x_hi in
  Buffer.add_string buf
    (Printf.sprintf "%*s  %s%*s\n" margin "" x_lo_s
       (width - String.length x_lo_s)
       x_hi_s);
  Buffer.add_string buf
    (Printf.sprintf "x: %s%s, y: %s%s\n" x_label
       (if x_scale = Log then " (log)" else "")
       y_label
       (if y_scale = Log then " (log)" else ""));
  List.iteri
    (fun idx s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n" glyphs.(idx mod Array.length glyphs) s.label))
    series;
  Buffer.contents buf
