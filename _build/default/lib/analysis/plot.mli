(** Terminal plots for the figure experiments.

    The F-series experiments are figures; this renders them as ASCII
    scatter/line charts so `bench_output.txt` carries actual pictures of
    the growth laws, not just tables. Multiple series share one canvas,
    each with its own glyph; axes can be linear or log-scaled. *)

type series = {
  label : string;
  points : (float * float) array;  (** (x, y) pairs; need not be sorted. *)
}

type scale = Linear | Log
(** Axis scale. [Log] requires strictly positive coordinates. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** [render ~title ~x_label ~y_label series] draws all series on one
    canvas (default 64x20 plot area). Each series gets a distinct glyph
    (shown in the legend); coinciding points show the later series'
    glyph. Degenerate ranges (a single x or y value) are padded.
    Raises [Invalid_argument] on empty input or non-positive values
    under a log scale. *)
