let linear_fit ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Series.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Series.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 xs in
  let sy = Array.fold_left ( +. ) 0.0 ys in
  let sxx = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  let sxy = ref 0.0 in
  for i = 0 to n - 1 do
    sxy := !sxy +. (xs.(i) *. ys.(i))
  done;
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Series.linear_fit: degenerate x values";
  let slope = ((fn *. !sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  (slope, intercept)

let loglog_slope ~xs ~ys =
  let logged a =
    Array.map
      (fun v ->
        if v <= 0.0 then invalid_arg "Series.loglog_slope: non-positive value";
        Float.log v)
      a
  in
  fst (linear_fit ~xs:(logged xs) ~ys:(logged ys))

let doubling_ratios ys =
  if Array.length ys < 2 then [||]
  else Array.init (Array.length ys - 1) (fun i -> ys.(i + 1) /. ys.(i))
