(** Growth-rate analysis of experiment series.

    The paper's claims are asymptotic ([O(1/n)], [Theta(sqrt n)],
    [Omega(log log n)]); with measurements at a geometric ladder of [n]
    values, the log-log least-squares slope estimates the polynomial
    exponent (slope 0 = the flat curve of Theorem 3, slope 1/2 = the FKS
    worst case), which is how EXPERIMENTS.md states "shape holds". *)

val loglog_slope : xs:float array -> ys:float array -> float
(** Least-squares slope of [log y] against [log x]. All values must be
    strictly positive; arrays of equal length [>= 2]. *)

val linear_fit : xs:float array -> ys:float array -> float * float
(** [(slope, intercept)] of ordinary least squares in plain coordinates. *)

val doubling_ratios : float array -> float array
(** [ys.(i+1) / ys.(i)] — for a geometric ladder of [n], the per-doubling
    growth factor (≈1 means flat, ≈sqrt 2 means square-root growth). *)
