let check_nonempty xs = if Array.length xs = 0 then invalid_arg "Stats: empty sample"

let mean xs =
  check_nonempty xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mu = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = Float.sqrt (variance xs)

let minimum xs =
  check_nonempty xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  check_nonempty xs;
  Array.fold_left Float.max xs.(0) xs

let quantile xs p =
  check_nonempty xs;
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.quantile: p outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = quantile xs 0.5

let describe xs =
  Printf.sprintf "mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g" (mean xs) (stddev xs)
    (minimum xs) (median xs) (maximum xs)

let geometric_mean xs =
  check_nonempty xs;
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive entry";
        acc +. Float.log x)
      0.0 xs
  in
  Float.exp (acc /. float_of_int (Array.length xs))
