(** Summary statistics for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean; raises on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (0 for fewer than two samples). *)

val stddev : float array -> float

val minimum : float array -> float
val maximum : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [0, 1], by linear interpolation on the
    sorted data (type-7, the R default). Does not mutate the input. *)

val median : float array -> float

val describe : float array -> string
(** One-line [mean/std/min/median/max] rendering. *)

val geometric_mean : float array -> float
(** Requires strictly positive entries. *)
