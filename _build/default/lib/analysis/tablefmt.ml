type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns =
  if columns = [] then invalid_arg "Tablefmt.create: no columns";
  { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Tablefmt.add_row: %d cells for %d columns" (List.length row)
         (List.length t.columns));
  t.rows <- t.rows @ [ row ]

let fmt_g v = Printf.sprintf "%.4g" v

let add_float_row t ~fmt label values =
  add_row t (label :: List.map fmt values);
  t

let render t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let body = List.map render_row t.rows in
  String.concat "\n" ((t.title :: render_row t.columns :: sep :: body) @ [ "" ])

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let to_csv t =
  let line row = String.concat "," (List.map csv_field row) in
  String.concat "\n" (List.map line (t.columns :: t.rows))
