(** Plain-text table rendering for experiment output.

    Every experiment prints one or more of these tables; the same values
    can be exported as CSV ({!to_csv}) for external plotting. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have exactly as many entries as there are
    columns. *)

val add_float_row : t -> fmt:(float -> string) -> string -> float list -> t
(** Convenience: a label cell followed by formatted floats; returns the
    table for chaining. *)

val render : t -> string
(** The aligned ASCII rendering, title first. *)

val to_csv : t -> string
(** Comma-separated rendering with the header row (no title). Fields
    containing commas or quotes are quoted. *)

val fmt_g : float -> string
(** Compact general float formatting ["%.4g"]. *)
