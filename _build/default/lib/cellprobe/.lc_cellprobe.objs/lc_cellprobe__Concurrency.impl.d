lib/cellprobe/concurrency.ml: Array Lc_prim List Qdist Spec
