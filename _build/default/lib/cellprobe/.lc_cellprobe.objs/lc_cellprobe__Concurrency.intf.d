lib/cellprobe/concurrency.mli: Lc_prim Qdist Spec
