lib/cellprobe/contention.ml: Array Float Hashtbl List Qdist Spec Table
