lib/cellprobe/contention.mli: Lc_prim Qdist Spec Table
