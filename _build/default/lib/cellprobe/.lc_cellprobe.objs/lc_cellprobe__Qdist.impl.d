lib/cellprobe/qdist.ml: Array Float Hashtbl Lc_prim List Printf
