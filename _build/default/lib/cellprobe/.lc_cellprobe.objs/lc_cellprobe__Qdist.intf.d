lib/cellprobe/qdist.mli: Lc_prim
