lib/cellprobe/spec.ml: Array Fun Lc_prim Printf Seq
