lib/cellprobe/spec.mli: Lc_prim Seq
