lib/cellprobe/table.ml: Array Lc_prim Printf
