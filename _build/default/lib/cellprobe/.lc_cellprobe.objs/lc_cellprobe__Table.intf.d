lib/cellprobe/table.mli: Lc_prim
