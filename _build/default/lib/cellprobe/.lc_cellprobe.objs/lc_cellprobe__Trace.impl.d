lib/cellprobe/trace.ml: Array Buffer Contention Float List Printf Seq String Table
