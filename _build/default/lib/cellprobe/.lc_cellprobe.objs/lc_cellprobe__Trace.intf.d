lib/cellprobe/trace.mli: Contention Lc_prim Table
