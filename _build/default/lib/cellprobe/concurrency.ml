module Rng = Lc_prim.Rng

type stats = {
  m : int;
  trials : int;
  mean_hotspot : float;
  max_hotspot : int;
  mean_round_hotspot : float array;
}

let simulate_async ~rng ~cells ~qdist ~spec ~m ~spread ~trials =
  if m < 1 then invalid_arg "Concurrency.simulate_async: m must be >= 1";
  if spread < 1 then invalid_arg "Concurrency.simulate_async: spread must be >= 1";
  if trials < 1 then invalid_arg "Concurrency.simulate_async: trials must be >= 1";
  let counts = Array.make cells 0 in
  let sum_hotspot = ref 0.0 in
  let max_hotspot = ref 0 in
  let slot_sums = ref [||] in
  let ensure_slots k =
    if k > Array.length !slot_sums then begin
      let old = !slot_sums in
      let grown = Array.make k 0.0 in
      Array.blit old 0 grown 0 (Array.length old);
      slot_sums := grown
    end
  in
  for _ = 1 to trials do
    let plans = Array.init m (fun _ -> spec (Qdist.sample qdist rng)) in
    let offsets = Array.init m (fun _ -> Rng.int rng spread) in
    let horizon =
      Array.fold_left max 0 (Array.mapi (fun i p -> offsets.(i) + Spec.probes p) plans)
    in
    ensure_slots horizon;
    let trial_max = ref 0 in
    for slot = 0 to horizon - 1 do
      let touched = ref [] in
      let slot_max = ref 0 in
      Array.iteri
        (fun i plan ->
          let step = slot - offsets.(i) in
          if step >= 0 && step < Spec.probes plan then begin
            let j = Spec.sample_step rng plan.(step) in
            if counts.(j) = 0 then touched := j :: !touched;
            counts.(j) <- counts.(j) + 1;
            if counts.(j) > !slot_max then slot_max := counts.(j)
          end)
        plans;
      List.iter (fun j -> counts.(j) <- 0) !touched;
      (!slot_sums).(slot) <- (!slot_sums).(slot) +. float_of_int !slot_max;
      if !slot_max > !trial_max then trial_max := !slot_max
    done;
    sum_hotspot := !sum_hotspot +. float_of_int !trial_max;
    if !trial_max > !max_hotspot then max_hotspot := !trial_max
  done;
  {
    m;
    trials;
    mean_hotspot = !sum_hotspot /. float_of_int trials;
    max_hotspot = !max_hotspot;
    mean_round_hotspot = Array.map (fun s -> s /. float_of_int trials) !slot_sums;
  }

let simulate ~rng ~cells ~qdist ~spec ~m ~trials =
  if m < 1 then invalid_arg "Concurrency.simulate: m must be >= 1";
  if trials < 1 then invalid_arg "Concurrency.simulate: trials must be >= 1";
  let counts = Array.make cells 0 in
  (* Per-round touched-cell lists let us reset in O(probes) not O(cells). *)
  let sum_hotspot = ref 0.0 in
  let max_hotspot = ref 0 in
  let round_sums = ref [||] in
  let ensure_rounds k =
    if k > Array.length !round_sums then begin
      let old = !round_sums in
      let grown = Array.make k 0.0 in
      Array.blit old 0 grown 0 (Array.length old);
      round_sums := grown
    end
  in
  for _ = 1 to trials do
    (* Sample the m probe plans for this trial. *)
    let plans = Array.init m (fun _ -> spec (Qdist.sample qdist rng)) in
    let rounds = Array.fold_left (fun acc p -> max acc (Spec.probes p)) 0 plans in
    ensure_rounds rounds;
    let trial_max = ref 0 in
    for t = 0 to rounds - 1 do
      let touched = ref [] in
      let round_max = ref 0 in
      Array.iter
        (fun plan ->
          if t < Spec.probes plan then begin
            let j = Spec.sample_step rng plan.(t) in
            if counts.(j) = 0 then touched := j :: !touched;
            counts.(j) <- counts.(j) + 1;
            if counts.(j) > !round_max then round_max := counts.(j)
          end)
        plans;
      List.iter (fun j -> counts.(j) <- 0) !touched;
      (!round_sums).(t) <- (!round_sums).(t) +. float_of_int !round_max;
      if !round_max > !trial_max then trial_max := !round_max
    done;
    sum_hotspot := !sum_hotspot +. float_of_int !trial_max;
    if !trial_max > !max_hotspot then max_hotspot := !trial_max
  done;
  {
    m;
    trials;
    mean_hotspot = !sum_hotspot /. float_of_int trials;
    max_hotspot = !max_hotspot;
    mean_round_hotspot = Array.map (fun s -> s /. float_of_int trials) !round_sums;
  }
