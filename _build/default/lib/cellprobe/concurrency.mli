(** Concurrent-query hot-spot simulation.

    The paper motivates contention by [m] simultaneous queries: "the
    expected number of probes to the cell for some fixed number m of
    simultaneous queries can then be bounded using linearity of
    expectation". This module runs that experiment directly: draw [m]
    i.i.d. queries from [q], advance them in lock-step rounds (round [t]
    = every query's probe number [t]), and record how many of the [m]
    queries hit the same cell in the same round — the quantity a
    shared-memory multiprocessor actually serialises on. *)

type stats = {
  m : int;  (** Queries per trial. *)
  trials : int;
  mean_hotspot : float;
      (** Mean over trials of [max_{t,j}] (queries probing cell [j] in
          round [t]). *)
  max_hotspot : int;  (** Worst hot-spot seen in any trial. *)
  mean_round_hotspot : float array;
      (** Mean hot-spot per round, index = probe step. *)
}

val simulate :
  rng:Lc_prim.Rng.t ->
  cells:int ->
  qdist:Qdist.t ->
  spec:(int -> Spec.t) ->
  m:int ->
  trials:int ->
  stats
(** [simulate ~rng ~cells ~qdist ~spec ~m ~trials] samples the probe
    plans (via {!Spec.sample_step}) rather than running the structure,
    which is exact in distribution and much faster. *)

val simulate_async :
  rng:Lc_prim.Rng.t ->
  cells:int ->
  qdist:Qdist.t ->
  spec:(int -> Spec.t) ->
  m:int ->
  spread:int ->
  trials:int ->
  stats
(** Like {!simulate} but with staggered arrivals: each of the [m]
    queries starts at a uniformly random time slot in [0, spread) and
    performs one probe per subsequent slot. [spread = 1] degenerates to
    lock-step. Staggering models asynchronous processors; it thins each
    slot's population to roughly [m * probes / (spread + probes)], so a
    hot cell's load drops accordingly — but a contention-1 cell (index
    root) still serialises every in-flight query. In the returned
    {!stats}, [mean_round_hotspot] is indexed by time slot rather than
    probe step. *)
