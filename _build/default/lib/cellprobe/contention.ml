type result = {
  cells : int;
  per_cell : float array;
  per_step_max : float array;
  max_total : float;
  max_step : float;
  mean_probes : float;
}

let finish ~cells ~per_cell ~per_step_max ~mean_probes =
  {
    cells;
    per_cell;
    per_step_max;
    max_total = Array.fold_left Float.max 0.0 per_cell;
    max_step = Array.fold_left Float.max 0.0 per_step_max;
    mean_probes;
  }

(* Exact contention by pattern aggregation: queries sharing a probe
   pattern (same step, base, stride, count — e.g. "a uniform cell of row
   3") pool their probability mass first, and each pooled pattern is
   expanded over its cells once. This turns O(|support| * s) into
   O(|support| * steps + patterns * cells-per-pattern). *)
let exact ~cells ~qdist ~spec =
  let support = Qdist.support qdist in
  let max_steps =
    Array.fold_left (fun acc (x, _) -> max acc (Spec.probes (spec x))) 0 support
  in
  let step_accs : (int * int * int, float) Hashtbl.t array =
    Array.init max_steps (fun _ -> Hashtbl.create 64)
  in
  let add_mass tbl key w =
    let prev = try Hashtbl.find tbl key with Not_found -> 0.0 in
    Hashtbl.replace tbl key (prev +. w)
  in
  let mean_probes = ref 0.0 in
  Array.iter
    (fun (x, qx) ->
      let plan = spec x in
      mean_probes := !mean_probes +. (qx *. float_of_int (Spec.probes plan));
      Array.iteri
        (fun t st ->
          let tbl = step_accs.(t) in
          match st with
          | Spec.Point j -> add_mass tbl (j, 1, 1) qx
          | Spec.Stride { base; stride; count } -> add_mass tbl (base, stride, count) qx
          | Spec.Uniform cs ->
            let w = qx /. float_of_int (Array.length cs) in
            Array.iter (fun j -> add_mass tbl (j, 1, 1) w) cs)
        plan)
    support;
  let per_cell = Array.make cells 0.0 in
  let scratch = Array.make cells 0.0 in
  let per_step_max = Array.make max_steps 0.0 in
  Array.iteri
    (fun t tbl ->
      let touched = ref [] in
      Hashtbl.iter
        (fun (base, stride, count) mass ->
          let w = mass /. float_of_int count in
          for k = 0 to count - 1 do
            let j = base + (k * stride) in
            if scratch.(j) = 0.0 then touched := j :: !touched;
            scratch.(j) <- scratch.(j) +. w;
            per_cell.(j) <- per_cell.(j) +. w
          done)
        tbl;
      let mx = ref 0.0 in
      List.iter
        (fun j ->
          if scratch.(j) > !mx then mx := scratch.(j);
          scratch.(j) <- 0.0)
        !touched;
      per_step_max.(t) <- !mx)
    step_accs;
  finish ~cells ~per_cell ~per_step_max ~mean_probes:!mean_probes

let monte_carlo ~table ~qdist ~mem ~rng ~queries =
  if queries <= 0 then invalid_arg "Contention.monte_carlo: queries must be positive";
  Table.reset_counters table;
  for _ = 1 to queries do
    let x = Qdist.sample qdist rng in
    ignore (mem rng x : bool)
  done;
  let cells = Table.size table in
  let k = float_of_int queries in
  let per_cell = Array.init cells (fun j -> float_of_int (Table.probes table j) /. k) in
  let steps = Table.max_step table in
  let per_step_max =
    Array.init steps (fun t ->
        let mx = ref 0 in
        for j = 0 to cells - 1 do
          let c = Table.probes_at table ~step:t j in
          if c > !mx then mx := c
        done;
        float_of_int !mx /. k)
  in
  let mean_probes = float_of_int (Table.total_probes table) /. k in
  Table.reset_counters table;
  finish ~cells ~per_cell ~per_step_max ~mean_probes

let normalized_max r = float_of_int r.cells *. r.max_total
let normalized_step_max r = float_of_int r.cells *. r.max_step

let profile r =
  let s = float_of_int r.cells in
  let prof = Array.map (fun phi -> s *. phi) r.per_cell in
  Array.sort (fun a b -> compare b a) prof;
  prof
