(** Contention computation — Definition 1 of the paper.

    For a table of [s] cells, a query distribution [q] and a query
    algorithm whose step-[t] probe distribution for query [x] is
    [P_t(x, ·)], the contention of cell [j] at step [t] is

    {[ Phi_t(j) = sum_x q_x P_t(x, j) ]}

    and the total contention is [Phi(j) = sum_t Phi_t(j)].

    Two routes are provided: {!exact} folds the probe specs ({!Spec.t})
    against the pmf symbolically (no sampling noise), and {!monte_carlo}
    replays real instrumented queries and normalises the probe counters.
    The test suite checks that the two agree. *)

type result = {
  cells : int;  (** [s], the table size. *)
  per_cell : float array;  (** Total contention [Phi(j)], length [s]. *)
  per_step_max : float array;
      (** [max_j Phi_t(j)] for each step [t] (up to the longest plan). *)
  max_total : float;  (** [max_j Phi(j)]. *)
  max_step : float;  (** [max_t max_j Phi_t(j)] — the [phi] of Definition 2. *)
  mean_probes : float;  (** Expected number of probes per query under [q]. *)
}

val exact : cells:int -> qdist:Qdist.t -> spec:(int -> Spec.t) -> result
(** [exact ~cells ~qdist ~spec] computes contention symbolically from the
    exact probe plans. *)

val monte_carlo :
  table:Table.t ->
  qdist:Qdist.t ->
  mem:(Lc_prim.Rng.t -> int -> bool) ->
  rng:Lc_prim.Rng.t ->
  queries:int ->
  result
(** [monte_carlo ~table ~qdist ~mem ~rng ~queries] resets the table's
    probe counters, executes [queries] sampled queries through [mem], and
    converts the counters into empirical contention. *)

val normalized_max : result -> float
(** [normalized_max r] is [s * max_j Phi(j)] — contention relative to the
    ideal perfectly-flat [1/s]; the figure of merit of experiments
    T1/T2/T5. A value of [Theta(1)] as [n] grows is the paper's
    "asymptotically optimal". *)

val normalized_step_max : result -> float
(** [s * max_t max_j Phi_t(j)]; Definition 2 bounds this per-step. *)

val profile : result -> float array
(** Per-cell normalised contention [s * Phi(j)], sorted descending; the
    flatness profile plotted by experiment F2. *)
