module Rng = Lc_prim.Rng

type t = { name : string; support : (int * float) array; cdf : float array }

let name t = t.name
let support t = Array.copy t.support

let make name pairs =
  if Array.length pairs = 0 then invalid_arg "Qdist: empty support";
  (* Merge duplicate queries and normalise. *)
  let tbl = Hashtbl.create (Array.length pairs) in
  Array.iter
    (fun (x, w) ->
      if w <= 0.0 || not (Float.is_finite w) then invalid_arg "Qdist: weights must be positive";
      let prev = try Hashtbl.find tbl x with Not_found -> 0.0 in
      Hashtbl.replace tbl x (prev +. w))
    pairs;
  let merged = Hashtbl.fold (fun x w acc -> (x, w) :: acc) tbl [] in
  let merged = List.sort (fun (a, _) (b, _) -> compare a b) merged in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 merged in
  let support = Array.of_list (List.map (fun (x, w) -> (x, w /. total)) merged) in
  let cdf = Array.make (Array.length support) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (_, p) ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    support;
  cdf.(Array.length cdf - 1) <- 1.0;
  { name; support; cdf }

let sample t rng =
  let u = Rng.float rng in
  (* Binary search for the first cdf entry >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  fst t.support.(!lo)

let uniform ~name queries =
  make name (Array.map (fun x -> (x, 1.0)) queries)

let weighted ~name pairs = make name pairs

let point x = make (Printf.sprintf "point(%d)" x) [| (x, 1.0) |]

let zipf ~skew queries =
  if skew < 0.0 then invalid_arg "Qdist.zipf: negative skew";
  let pairs =
    Array.mapi (fun i x -> (x, 1.0 /. Float.pow (float_of_int (i + 1)) skew)) queries
  in
  make (Printf.sprintf "zipf(%.2f)" skew) pairs

let mixture ~name parts =
  if parts = [] then invalid_arg "Qdist.mixture: empty mixture";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
  if total <= 0.0 then invalid_arg "Qdist.mixture: non-positive total weight";
  let pairs =
    List.concat_map
      (fun (w, d) ->
        if w <= 0.0 then invalid_arg "Qdist.mixture: non-positive weight";
        Array.to_list (Array.map (fun (x, p) -> (x, w /. total *. p)) d.support))
      parts
  in
  make name (Array.of_list pairs)

let pos_neg ~pos ~neg ~p_pos =
  if p_pos < 0.0 || p_pos > 1.0 then invalid_arg "Qdist.pos_neg: p_pos outside [0, 1]";
  let parts =
    (if p_pos > 0.0 && Array.length pos > 0 then [ (p_pos, uniform ~name:"pos" pos) ] else [])
    @
    if p_pos < 1.0 && Array.length neg > 0 then [ (1.0 -. p_pos, uniform ~name:"neg" neg) ]
    else []
  in
  mixture ~name:(Printf.sprintf "pos_neg(%.2f)" p_pos) parts

let entropy t =
  Array.fold_left
    (fun acc (_, p) -> if p > 0.0 then acc -. (p *. (Float.log p /. Float.log 2.0)) else acc)
    0.0 t.support
