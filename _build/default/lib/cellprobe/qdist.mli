(** Query distributions.

    The distribution [q] over queries of Section 1.1. A distribution here
    is an explicit finite probability mass function over keys, which
    keeps exact contention computation possible; samplers use a
    precomputed CDF with binary search.

    The paper's "especially interesting class" — uniform over positive
    queries and uniform over negative queries — is {!pos_neg}. Uniform
    negative queries over an astronomically large universe are
    represented by a uniform distribution over an i.i.d. sample of
    non-keys: the estimate of any contention value is unbiased because
    every non-key has the same marginal under both. *)

type t

val name : t -> string

val support : t -> (int * float) array
(** The pmf as (query, probability) pairs; probabilities are positive and
    sum to 1 (within floating-point tolerance). *)

val sample : t -> Lc_prim.Rng.t -> int
(** Draw a query. *)

val uniform : name:string -> int array -> t
(** Uniform over a non-empty array of queries (duplicates merge mass). *)

val weighted : name:string -> (int * float) array -> t
(** Arbitrary pmf; weights must be positive, they are normalised. *)

val point : int -> t
(** All mass on one query — the harshest "arbitrary" distribution. *)

val zipf : skew:float -> int array -> t
(** Zipf over the given queries in the given order: query at rank [i]
    (1-indexed) has mass proportional to [1 / i^skew]. [skew = 0] is
    uniform. *)

val mixture : name:string -> (float * t) list -> t
(** Convex combination of distributions; outer weights must be positive
    and are normalised. *)

val pos_neg : pos:int array -> neg:int array -> p_pos:float -> t
(** The paper's uniform-positive / uniform-negative class: with
    probability [p_pos] a uniform element of [pos], otherwise a uniform
    element of [neg]. *)

val entropy : t -> float
(** Shannon entropy in bits; reported by the arbitrary-distribution
    experiments as the skew measure. *)
