module Rng = Lc_prim.Rng

type step =
  | Point of int
  | Uniform of int array
  | Stride of { base : int; stride : int; count : int }

type t = step array

let step_cells st =
  match st with
  | Point j -> Seq.return (j, 1.0)
  | Uniform cells ->
    let p = 1.0 /. float_of_int (Array.length cells) in
    Seq.map (fun j -> (j, p)) (Array.to_seq cells)
  | Stride { base; stride; count } ->
    let p = 1.0 /. float_of_int count in
    Seq.map (fun i -> (base + (i * stride), p)) (Seq.init count Fun.id)

let step_support_size = function
  | Point _ -> 1
  | Uniform cells -> Array.length cells
  | Stride { count; _ } -> count

let sample_step rng = function
  | Point j -> j
  | Uniform cells -> Rng.choose rng cells
  | Stride { base; stride; count } -> base + (stride * Rng.int rng count)

let probes t = Array.length t

let validate ~cells spec =
  let check_cell j =
    if j < 0 || j >= cells then Error (Printf.sprintf "cell %d out of [0, %d)" j cells)
    else Ok ()
  in
  let check_step st =
    match st with
    | Point j -> check_cell j
    | Uniform cs ->
      if Array.length cs = 0 then Error "empty Uniform step"
      else
        Array.fold_left
          (fun acc j -> match acc with Error _ -> acc | Ok () -> check_cell j)
          (Ok ()) cs
    | Stride { base; stride; count } ->
      if count < 1 then Error "Stride with count < 1"
      else if stride < 1 then Error "Stride with stride < 1"
      else
        match check_cell base with
        | Error _ as e -> e
        | Ok () -> check_cell (base + ((count - 1) * stride))
  in
  Array.fold_left
    (fun acc st -> match acc with Error _ -> acc | Ok () -> check_step st)
    (Ok ()) spec

let max_step_probability = function
  | Point _ -> 1.0
  | Uniform cells -> 1.0 /. float_of_int (Array.length cells)
  | Stride { count; _ } -> 1.0 /. float_of_int count
