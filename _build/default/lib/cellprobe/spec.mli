(** Exact per-query probe distributions.

    Every query algorithm in this repository uses randomness only to
    balance its probes (the restriction of Definition 12): given the
    table and the query, each probe step has a known distribution over
    cells. A {!t} records that distribution exactly, one {!step} per
    probe, so contention [Phi_t(j) = sum_x q_x P_t(x, j)] can be computed
    symbolically instead of estimated — this is the matrix [P_t] of
    Section 1.1.

    A step always carries total probability exactly 1; a query that makes
    fewer probes (e.g. the low-contention dictionary returning early on
    an empty bucket) simply has a shorter step list. *)

type step =
  | Point of int
      (** A deterministic probe to one cell. *)
  | Uniform of int array
      (** A probe uniform over an explicit, non-empty cell list. *)
  | Stride of { base : int; stride : int; count : int }
      (** A probe uniform over cells [base, base+stride, ...,
          base+(count-1)*stride] — the shape of every replication scheme
          in the paper (read one of [count] copies). Requires
          [count >= 1] and [stride >= 1]. *)

type t = step array
(** A query's probe plan, one entry per probe step. *)

val step_cells : step -> (int * float) Seq.t
(** [step_cells st] enumerates [(cell, probability)] pairs of one step;
    probabilities sum to 1. *)

val step_support_size : step -> int
(** Number of distinct cells the step can touch. *)

val sample_step : Lc_prim.Rng.t -> step -> int
(** Draw the probed cell of one step. *)

val probes : t -> int
(** Number of probe steps. *)

val validate : cells:int -> t -> (unit, string) result
(** [validate ~cells spec] checks that every step is well-formed and
    every reachable cell index lies in [0, cells-1]. *)

val max_step_probability : step -> float
(** The largest single-cell probability of the step (1 for [Point],
    [1/count] otherwise); the quantity bounded by [phi* / q_x] in the
    lower bound's constraint (2). *)
