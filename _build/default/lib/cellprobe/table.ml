module Rng = Lc_prim.Rng

type t = {
  cells : int array;
  bits : int;
  totals : int array;
  mutable by_step : int array array; (* by_step.(t).(j) *)
  mutable steps_seen : int;
  mutable total : int;
}

let bits_for v =
  if v < 0 then invalid_arg "Table.bits_for: negative value";
  let rec go b = if v lsr b = 0 then b else go (b + 1) in
  max 1 (go 0)

let create ?(init = 0) ~cells ~bits () =
  if bits < 1 || bits > 62 then invalid_arg "Table.create: bits outside [1, 62]";
  if cells < 0 then invalid_arg "Table.create: negative size";
  {
    cells = Array.make cells init;
    bits;
    totals = Array.make cells 0;
    by_step = [||];
    steps_seen = 0;
    total = 0;
  }

let size t = Array.length t.cells
let bits t = t.bits

let fits t v = v = -1 || (v >= 0 && (t.bits = 62 || v lsr t.bits = 0))

let ensure_step t step =
  if step >= Array.length t.by_step then begin
    let n = Array.length t.by_step in
    let grown = Array.init (max (step + 1) (2 * max n 1)) (fun i ->
      if i < n then t.by_step.(i) else Array.make (size t) 0)
    in
    t.by_step <- grown
  end;
  if step >= t.steps_seen then t.steps_seen <- step + 1

let read t ~step j =
  if step < 0 then invalid_arg "Table.read: negative step";
  ensure_step t step;
  t.totals.(j) <- t.totals.(j) + 1;
  t.by_step.(step).(j) <- t.by_step.(step).(j) + 1;
  t.total <- t.total + 1;
  t.cells.(j)

let peek t j = t.cells.(j)

let write t j v =
  if not (fits t v) then
    invalid_arg (Printf.sprintf "Table.write: value %d does not fit %d bits" v t.bits);
  t.cells.(j) <- v

let probes t j = t.totals.(j)

let probes_at t ~step j =
  if step < Array.length t.by_step then t.by_step.(step).(j) else 0

let total_probes t = t.total
let max_step t = t.steps_seen

let reset_counters t =
  Array.fill t.totals 0 (size t) 0;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.by_step;
  t.steps_seen <- 0;
  t.total <- 0

let copy_cells t = Array.copy t.cells

let corrupt t rng =
  let n = size t in
  if n = 0 then invalid_arg "Table.corrupt: empty table";
  (* Try to find a non-sentinel cell; give up after a bounded scan. *)
  let rec pick tries =
    let j = Rng.int rng n in
    if t.cells.(j) <> -1 || tries > 100 then j else pick (tries + 1)
  in
  let j = pick 0 in
  let bit = Rng.int rng t.bits in
  let v = t.cells.(j) in
  let v' = if v = -1 then 0 else v lxor (1 lsl bit) in
  t.cells.(j) <- v'
