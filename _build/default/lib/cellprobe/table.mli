(** Instrumented cell-probe tables.

    The paper's table [T_{S,q} : [s] -> {0,1}^b] of [s] cells of [b] bits
    each. Cells hold OCaml integers constrained to [b <= 62] bits; every
    {!read} is counted per cell and per probe step, which is exactly the
    quantity [Y^{(t)}(x, j)] of Definition 1, so empirical contention
    falls directly out of the counters.

    Writes are construction-time operations and are not counted: the
    paper measures the contention of {e queries} against a static
    table. *)

type t

val bits_for : int -> int
(** [bits_for v] is the smallest cell width (in bits, at least 1) that
    stores the non-negative value [v]. *)

val create : ?init:int -> cells:int -> bits:int -> unit -> t
(** [create ~cells ~bits ()] is a table of [cells] cells of [bits] bits,
    each initialised to [init] (default 0). Requires [1 <= bits <= 62]
    and [cells >= 0]; every stored value must fit in [bits] bits, except
    that the sentinel [-1] ("empty cell") is always allowed. *)

val size : t -> int
(** Number of cells, the paper's [s]. *)

val bits : t -> int
(** Cell width in bits, the paper's [b]. *)

val read : t -> step:int -> int -> int
(** [read t ~step j] probes cell [j] as the [step]-th probe (0-indexed)
    of the running query, returning its contents and incrementing the
    per-cell and per-step counters. *)

val peek : t -> int -> int
(** [peek t j] reads cell [j] {e without} counting a probe; for
    construction, verification and debugging only. *)

val write : t -> int -> int -> unit
(** [write t j v] stores [v] in cell [j] (construction-time; uncounted).
    Raises [Invalid_argument] if [v] does not fit in [bits t] bits. *)

val probes : t -> int -> int
(** [probes t j] is the total number of counted probes to cell [j] since
    the last {!reset_counters}. *)

val probes_at : t -> step:int -> int -> int
(** [probes_at t ~step j] is the number of counted probes to cell [j]
    made as probe number [step]. *)

val total_probes : t -> int
(** Total counted probes across all cells. *)

val max_step : t -> int
(** One past the largest step index seen since the last reset (0 if no
    probes have been counted). *)

val reset_counters : t -> unit
(** Zero all probe counters (cell contents are untouched). *)

val copy_cells : t -> int array
(** Snapshot of all cell contents. *)

val corrupt : t -> Lc_prim.Rng.t -> unit
(** [corrupt t rng] flips one uniformly random bit of one uniformly
    random non-sentinel cell; failure injection for verifier tests. *)
