type event = { query : int; step : int; cell : int }

type t = { cells : int; nqueries : int; events : event array }

let record ~table ~mem ~rng ~queries =
  Table.reset_counters table;
  let cells = Table.size table in
  let acc = ref [] in
  Array.iteri
    (fun qi x ->
      ignore (mem rng x : bool);
      (* Diff the counters: with fresh counters per query, every probe
         of this query is visible as a positive count. *)
      for step = 0 to Table.max_step table - 1 do
        for cell = 0 to cells - 1 do
          let c = Table.probes_at table ~step cell in
          for _ = 1 to c do
            acc := { query = qi; step; cell } :: !acc
          done
        done
      done;
      Table.reset_counters table)
    queries;
  { cells; nqueries = Array.length queries; events = Array.of_list (List.rev !acc) }

let events t = Array.copy t.events
let query_count t = t.nqueries
let cells t = t.cells

let probes_of_query t i =
  Array.of_seq (Seq.filter (fun e -> e.query = i) (Array.to_seq t.events))

let contention t =
  if t.nqueries = 0 then invalid_arg "Trace.contention: empty trace";
  let k = float_of_int t.nqueries in
  let per_cell = Array.make t.cells 0.0 in
  let max_steps = Array.fold_left (fun acc e -> max acc (e.step + 1)) 0 t.events in
  let per_step = Array.init max_steps (fun _ -> Array.make t.cells 0.0) in
  Array.iter
    (fun e ->
      per_cell.(e.cell) <- per_cell.(e.cell) +. (1.0 /. k);
      per_step.(e.step).(e.cell) <- per_step.(e.step).(e.cell) +. (1.0 /. k))
    t.events;
  let per_step_max = Array.map (fun row -> Array.fold_left Float.max 0.0 row) per_step in
  {
    Contention.cells = t.cells;
    per_cell;
    per_step_max;
    max_total = Array.fold_left Float.max 0.0 per_cell;
    max_step = Array.fold_left Float.max 0.0 per_step_max;
    mean_probes = float_of_int (Array.length t.events) /. k;
  }

let to_csv t =
  let buf = Buffer.create (16 * Array.length t.events) in
  Buffer.add_string buf "query,step,cell\n";
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "%d,%d,%d\n" e.query e.step e.cell))
    t.events;
  Buffer.contents buf

let of_csv ~cells csv =
  let lines = String.split_on_char '\n' (String.trim csv) in
  match lines with
  | [] -> Error "empty input"
  | header :: rows ->
    if String.trim header <> "query,step,cell" then Error "bad header"
    else begin
      let parse_row acc line =
        match acc with
        | Error _ -> acc
        | Ok evs -> (
          match String.split_on_char ',' (String.trim line) with
          | [ q; s; c ] -> (
            match (int_of_string_opt q, int_of_string_opt s, int_of_string_opt c) with
            | Some query, Some step, Some cell ->
              if cell < 0 || cell >= cells then Error (Printf.sprintf "cell %d out of range" cell)
              else if query < 0 || step < 0 then Error "negative field"
              else Ok ({ query; step; cell } :: evs)
            | _ -> Error (Printf.sprintf "non-integer field in %S" line))
          | _ -> Error (Printf.sprintf "expected 3 fields in %S" line))
      in
      let rows = List.filter (fun l -> String.trim l <> "") rows in
      match List.fold_left parse_row (Ok []) rows with
      | Error e -> Error e
      | Ok evs ->
        let events = Array.of_list (List.rev evs) in
        let nqueries =
          Array.fold_left (fun acc e -> max acc (e.query + 1)) 0 events
        in
        Ok { cells; nqueries; events }
    end
