(** Probe traces: record, inspect, replay, export.

    A trace is the flat record of what a query workload did to a table —
    one event per counted probe. Traces serve three purposes here:
    debugging (inspect exactly where a query went), estimation
    (empirical contention from a trace equals the Monte-Carlo estimate,
    checked by the tests), and export (CSV for external tooling).
    Recording wraps a {!Table.t} observer around an existing [mem]
    function without touching the structure. *)

type event = { query : int; step : int; cell : int }

type t
(** An ordered sequence of probe events plus the table geometry. *)

val record :
  table:Table.t ->
  mem:(Lc_prim.Rng.t -> int -> bool) ->
  rng:Lc_prim.Rng.t ->
  queries:int array ->
  t
(** [record ~table ~mem ~rng ~queries] runs each query once (in order)
    and captures every probe it makes. Uses the table's counters
    differentially, so the table must not be probed concurrently; the
    counters are left reset. *)

val events : t -> event array
val query_count : t -> int
val cells : t -> int

val probes_of_query : t -> int -> event array
(** Events belonging to the [i]-th recorded query (by position in the
    recording, not key value). *)

val contention : t -> Contention.result
(** Empirical contention from the trace: each recorded query weighted
    equally — identical in expectation to
    {!Contention.monte_carlo} with the same inputs. *)

val to_csv : t -> string
(** ["query,step,cell"] header plus one line per event. *)

val of_csv : cells:int -> string -> (t, string) result
(** Parse a CSV produced by {!to_csv}; validates the header, field
    counts, integer syntax and cell bounds. *)
