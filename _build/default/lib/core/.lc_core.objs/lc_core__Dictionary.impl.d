lib/core/dictionary.ml: Array Lc_cellprobe Lc_dict Params Query Structure Verify
