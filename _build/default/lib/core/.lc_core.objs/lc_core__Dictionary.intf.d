lib/core/dictionary.mli: Lc_cellprobe Lc_dict Lc_prim Params Structure
