lib/core/histogram.ml: Array Lc_prim Params Printf
