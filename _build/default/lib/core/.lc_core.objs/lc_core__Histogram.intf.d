lib/core/histogram.mli: Params
