lib/core/layout.ml: Params
