lib/core/params.ml: Float Format Lc_cellprobe Lc_prim Printf
