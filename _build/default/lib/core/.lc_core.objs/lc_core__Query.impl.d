lib/core/query.ml: Array Histogram Layout Lc_cellprobe Lc_hash Lc_prim Params Structure
