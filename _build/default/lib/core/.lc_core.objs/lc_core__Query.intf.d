lib/core/query.mli: Lc_cellprobe Lc_prim Structure
