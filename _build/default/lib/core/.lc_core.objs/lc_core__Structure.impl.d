lib/core/structure.ml: Array Hashtbl Histogram Layout Lc_cellprobe Lc_hash Lc_prim Params Printf
