lib/core/structure.mli: Lc_cellprobe Lc_hash Lc_prim Params
