lib/core/verify.ml: Array Hashtbl Histogram Layout Lc_cellprobe Lc_hash Lc_prim Printf Query Structure
