lib/core/verify.mli: Lc_prim Structure
