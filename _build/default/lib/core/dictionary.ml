type t = Structure.t

let build ?d ?delta ?c ?alpha ?beta ?max_trials rng ~universe ~keys =
  let params = Params.make ?d ?delta ?c ?alpha ?beta ~universe ~n:(Array.length keys) () in
  Structure.build ?max_trials rng params ~keys

let of_structure s = s

let mem t rng x = Query.mem t rng x
let params (t : t) = t.params
let structure t = t
let space (t : t) = Lc_cellprobe.Table.size t.table
let max_probes t = Query.max_probes t
let build_trials (t : t) = t.trials
let spec t x = Query.spec t x

let instance (t : t) =
  {
    Lc_dict.Instance.name = "low-contention";
    table = t.table;
    space = space t;
    max_probes = max_probes t;
    mem = (fun rng x -> mem t rng x);
    spec = spec t;
  }

let verify t = Verify.check t
