module Bitpack = Lc_prim.Bitpack

let bits_budget (p : Params.t) = p.rho * p.cell_bits

let encode (p : Params.t) ~loads =
  if Array.length loads <> p.g_per_group then
    invalid_arg "Histogram.encode: expected one load per bucket in the group";
  let total = Array.fold_left ( + ) 0 loads in
  let needed = total + p.g_per_group in
  if needed > bits_budget p then
    invalid_arg
      (Printf.sprintf "Histogram.encode: %d bits exceed the %d-bit budget (P(S) violated?)"
         needed (bits_budget p));
  let bp = Bitpack.create ~word_bits:p.cell_bits ~bits:(bits_budget p) in
  let pos = ref 0 in
  Array.iter (fun l -> pos := Bitpack.append_unary bp ~pos:!pos l) loads;
  Bitpack.words bp

let decode (p : Params.t) words =
  if Array.length words <> p.rho then
    invalid_arg "Histogram.decode: expected rho words";
  let bp = Bitpack.of_words ~word_bits:p.cell_bits ~bits:(bits_budget p) words in
  let loads = Array.make p.g_per_group 0 in
  let pos = ref 0 in
  for k = 0 to p.g_per_group - 1 do
    let l, next = Bitpack.read_unary bp ~pos:!pos in
    if l > p.cap_group then invalid_arg "Histogram.decode: load exceeds the group cap";
    loads.(k) <- l;
    pos := next
  done;
  loads

let slot_range (p : Params.t) ~loads ~k =
  if k < 0 || k >= p.g_per_group then invalid_arg "Histogram.slot_range: bucket index out of range";
  let off = ref 0 in
  for k' = 0 to k - 1 do
    off := !off + (loads.(k') * loads.(k'))
  done;
  (!off, loads.(k) * loads.(k))
