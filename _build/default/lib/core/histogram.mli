(** Group histograms: bucket loads in unary, packed into [rho] words.

    Section 2.2: "a group-histogram is a binary string where the load of
    each bucket in the group is represented consecutively in unary code
    separated by zeros". A group of [g_per_group] buckets with loads
    summing to at most [cap_group] fits in [cap_group + g_per_group]
    bits, hence in [rho] cells of [cell_bits] bits.

    The query algorithm reads the [rho] words (one probe each, from a
    random replica), decodes the loads, and computes the prefix sums of
    {e squared} loads to locate its bucket's slot range inside the
    group. *)

val encode : Params.t -> loads:int array -> int array
(** [encode p ~loads] packs the loads of one group's buckets (length
    [g_per_group], in group order [k = 0, 1, ...]) into exactly [rho]
    words. Raises [Invalid_argument] if the loads need more bits than the
    histogram budget — the builder only calls this after [P(S)] holds, so
    that would be a logic error. *)

val decode : Params.t -> int array -> int array
(** [decode p words] recovers the [g_per_group] loads. Raises
    [Invalid_argument] on a malformed (e.g. corrupted) histogram. *)

val slot_range : Params.t -> loads:int array -> k:int -> int * int
(** [slot_range p ~loads ~k] is the paper's [(i_h(x), i'_h(x))] pair
    relative to the group base address: the offset of bucket [k]'s slot
    block within its group ([sum_{k' < k} loads(k')^2]) and its length
    [loads(k)^2] (0 for an empty bucket). *)
