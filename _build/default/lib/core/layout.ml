let f_row (p : Params.t) i =
  if i < 0 || i >= p.d then invalid_arg "Layout.f_row: coefficient index out of range";
  i

let g_row (p : Params.t) i =
  if i < 0 || i >= p.d then invalid_arg "Layout.g_row: coefficient index out of range";
  p.d + i

let z_row (p : Params.t) = 2 * p.d
let gbas_row (p : Params.t) = (2 * p.d) + 1

let hist_row (p : Params.t) i =
  if i < 0 || i >= p.rho then invalid_arg "Layout.hist_row: word index out of range";
  (2 * p.d) + 2 + i

let phash_row (p : Params.t) = (2 * p.d) + p.rho + 2
let data_row (p : Params.t) = (2 * p.d) + p.rho + 3

let cell (p : Params.t) ~row j =
  if row < 0 || row >= Params.rows p then invalid_arg "Layout.cell: row out of range";
  if j < 0 || j >= p.s then invalid_arg "Layout.cell: column out of range";
  (row * p.s) + j

let z_replicas (p : Params.t) res =
  if res < 0 || res >= p.r then invalid_arg "Layout.z_replicas: residue out of range";
  (p.s - res + p.r - 1) / p.r

let group_of_bucket (p : Params.t) bk = bk mod p.m
let index_in_group (p : Params.t) bk = bk / p.m

let bucket_of_group_index (p : Params.t) ~group k =
  if group < 0 || group >= p.m then invalid_arg "Layout.bucket_of_group_index: bad group";
  if k < 0 || k >= p.g_per_group then invalid_arg "Layout.bucket_of_group_index: bad index";
  (k * p.m) + group
