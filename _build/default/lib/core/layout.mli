(** Row layout of the low-contention table (Section 2.2).

    The table is organised as [rows] rows of [s] cells; cell [(row, j)]
    lives at flat index [row * s + j]. Reading the construction from the
    paper:

    - rows [0 .. d-1]: coefficient [i] of [f], replicated across all [s]
      cells of its row;
    - rows [d .. 2d-1]: coefficients of [g], likewise;
    - row [2d]: the displacement vector, [T(2d, j) = z(j mod r)];
    - row [2d+1]: group base addresses, [T(2d+1, j) = GBAS(j mod m)];
    - rows [2d+2 .. 2d+1+rho]: histogram word [i] of group [j mod m];
    - row [2d+rho+2]: per-bucket perfect-hash words, replicated across
      the [l^2] cells owned by each bucket;
    - row [2d+rho+3]: the data row, keys placed by their bucket's perfect
      hash function.

    All functions are pure index arithmetic on {!Params.t}. *)

val f_row : Params.t -> int -> int
(** [f_row p i] is the row of coefficient [i] of [f] ([0 <= i < d]). *)

val g_row : Params.t -> int -> int
(** [g_row p i] is the row of coefficient [i] of [g]. *)

val z_row : Params.t -> int
val gbas_row : Params.t -> int

val hist_row : Params.t -> int -> int
(** [hist_row p i] is the row of histogram word [i] ([0 <= i < rho]). *)

val phash_row : Params.t -> int
val data_row : Params.t -> int

val cell : Params.t -> row:int -> int -> int
(** [cell p ~row j] is the flat index of [(row, j)]. *)

val z_replicas : Params.t -> int -> int
(** [z_replicas p res] is how many cells of the [z] row hold [z(res)]:
    the count of [j < s] with [j mod r = res]. *)

val group_of_bucket : Params.t -> int -> int
(** [group_of_bucket p bk = bk mod m] — the congruence-class grouping. *)

val index_in_group : Params.t -> int -> int
(** [index_in_group p bk = bk / m]: the bucket's position among its
    group's [s/m] buckets. *)

val bucket_of_group_index : Params.t -> group:int -> int -> int
(** Inverse of the two above: [bucket_of_group_index p ~group k =
    k * m + group]. *)
