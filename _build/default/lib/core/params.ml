module Primes = Lc_prim.Primes
module Table = Lc_cellprobe.Table

type t = {
  universe : int;
  n : int;
  p : int;
  d : int;
  delta : float;
  c : float;
  alpha : float;
  beta : int;
  r : int;
  m : int;
  s : int;
  g_per_group : int;
  cell_bits : int;
  cap_g : int;
  cap_group : int;
  rho : int;
}

let default_c = 2.0 *. Float.exp 1.0

let make ?(d = 3) ?(delta = 0.5) ?(c = default_c) ?(alpha = 2.0) ?(beta = 2) ~universe ~n () =
  if n < 1 then invalid_arg "Params.make: n must be >= 1";
  if universe < n then invalid_arg "Params.make: universe smaller than n";
  if d <= 2 then invalid_arg "Params.make: d must be > 2";
  let lo = 2.0 /. float_of_int (d + 2) and hi = 1.0 -. (1.0 /. float_of_int d) in
  if delta <= lo || delta >= hi then
    invalid_arg
      (Printf.sprintf "Params.make: delta must lie in (%g, %g) for d = %d" lo hi d);
  if c <= Float.exp 1.0 then invalid_arg "Params.make: c must exceed e";
  let alpha_min = float_of_int d /. (c *. (Float.log c -. 1.0)) in
  if alpha <= alpha_min then
    invalid_arg (Printf.sprintf "Params.make: alpha must exceed %g" alpha_min);
  if beta < 2 then invalid_arg "Params.make: beta must be >= 2";
  let p = Primes.prime_for_universe universe in
  let fn = float_of_int n in
  let r = max 1 (int_of_float (Float.ceil (Float.pow fn (1.0 -. delta)))) in
  let m =
    if n < 3 then 1
    else max 1 (min n (int_of_float (Float.round (fn /. (alpha *. Float.log fn)))))
  in
  (* Smallest multiple of m at least beta * n. *)
  let s = ((beta * n + m - 1) / m) * m in
  let g_per_group = s / m in
  let cap_g = int_of_float (Float.ceil (c *. fn /. float_of_int r)) in
  let cap_group = int_of_float (Float.ceil (c *. fn /. float_of_int m)) in
  (* A group histogram encodes g_per_group unary runs totalling at most
     cap_group ones, so it needs cap_group + g_per_group bits. *)
  let addr_bits = Table.bits_for s in
  let key_bits = Table.bits_for (max (universe - 1) (p - 1)) in
  let cell_bits = max addr_bits key_bits in
  let hist_bits = cap_group + g_per_group in
  let rho = (hist_bits + cell_bits - 1) / cell_bits in
  {
    universe;
    n;
    p;
    d;
    delta;
    c;
    alpha;
    beta;
    r;
    m;
    s;
    g_per_group;
    cell_bits;
    cap_g;
    cap_group;
    rho;
  }

let rows t = (2 * t.d) + t.rho + 4
let total_cells t = rows t * t.s
let max_probes t = (2 * t.d) + t.rho + 4

let pp fmt t =
  Format.fprintf fmt
    "@[<v>n = %d, universe = %d, p = %d@,d = %d, delta = %g, c = %g, alpha = %g, beta = %d@,\
     r = %d, m = %d, s = %d, buckets/group = %d@,\
     cell bits = %d, caps: g <= %d, group <= %d, rho = %d, rows = %d@]"
    t.n t.universe t.p t.d t.delta t.c t.alpha t.beta t.r t.m t.s t.g_per_group t.cell_bits
    t.cap_g t.cap_group t.rho (rows t)
