(** Parameter derivation for the low-contention dictionary.

    Section 2.2 of the paper fixes [c = 2e] and asks for constants [d >
    2], [2/(d+2) < delta < 1 - 1/d], [alpha > d / (c (ln c - 1))] and
    [beta >= 2] with [m | s]. This module turns a problem size
    [(universe, n)] into the concrete integers:

    - [r = ceil (n^(1-delta))], the range of the spreading function [g];
    - [m ~ n / (alpha ln n)], the number of groups, adjusted so [m <= n];
    - [s], the table width: the smallest multiple of [m] at least
      [beta * n] (the divisibility makes [h' = h mod m] a uniform member
      of [R^d_{r,m}], the paper's Section 2.2 trick);
    - [g_per_group = s / m], buckets per group;
    - [cell_bits], the word size [b] — large enough for keys, field
      coefficients and addresses;
    - [cap_g], [cap_group]: the load caps [ceil (c n / r)] and
      [ceil (c n / m)] appearing in the property [P(S)];
    - [rho], the words per group histogram: a group's unary-coded loads
      need at most [cap_group + g_per_group] bits.

    Everything here depends only on the {e problem} — the universe size
    and [n] — never on the key set [S], so the query algorithm may use
    all of it, as Definition 2 requires. *)

type t = private {
  universe : int;
  n : int;
  p : int;  (** Field modulus, smallest prime above the universe. *)
  d : int;  (** Independence parameter, [> 2]. *)
  delta : float;  (** Exponent for [r]; in [(2/(d+2), 1 - 1/d)]. *)
  c : float;  (** The load-cap constant, [2e] by default. *)
  alpha : float;  (** Group-count constant. *)
  beta : int;  (** Space factor, [>= 2]. *)
  r : int;  (** Range of [g]. *)
  m : int;  (** Number of groups; divides [s]. *)
  s : int;  (** Table width (cells per row), [Theta(n)]. *)
  g_per_group : int;  (** [s / m]. *)
  cell_bits : int;  (** Word size [b]. *)
  cap_g : int;  (** [P(S)] cap on loads of [g]. *)
  cap_group : int;  (** [P(S)] cap on group loads of [h']. *)
  rho : int;  (** Histogram words per group. *)
}

val make :
  ?d:int ->
  ?delta:float ->
  ?c:float ->
  ?alpha:float ->
  ?beta:int ->
  universe:int ->
  n:int ->
  unit ->
  t
(** [make ~universe ~n ()] derives all parameters with the paper's
    defaults ([d = 3], [delta = 0.5], [c = 2e], [alpha = 2], [beta = 2]).
    Raises [Invalid_argument] when a constraint is violated ([d <= 2],
    [delta] outside its interval, [beta < 2], [n < 1], universe too small
    to hold [n] distinct keys, or a modulus overflow). *)

val rows : t -> int
(** Number of rows in the table layout, [2 d + rho + 4]: coefficient rows
    for [f] and [g], the [z] row, the group-base-address row, [rho]
    histogram rows, the perfect-hash row and the data row. *)

val total_cells : t -> int
(** [rows t * s]. *)

val max_probes : t -> int
(** Worst-case probes per query, [2 d + rho + 4] — one per row. *)

val pp : Format.formatter -> t -> unit
(** Render the derived parameters for logs and experiment headers. *)
