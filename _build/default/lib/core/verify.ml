module Poly_hash = Lc_hash.Poly_hash
module Dm_family = Lc_hash.Dm_family
module Perfect = Lc_hash.Perfect
module Loads = Lc_hash.Loads
module Table = Lc_cellprobe.Table
module Rng = Lc_prim.Rng

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let check_row_constant (t : Structure.t) ~row ~expect ~what =
  let p = t.params in
  let rec go j =
    if j >= p.s then Ok ()
    else
      let v = Table.peek t.table (Layout.cell p ~row j) in
      if v <> expect j then err "%s: row %d cell %d holds %d, expected %d" what row j v (expect j)
      else go (j + 1)
  in
  go 0

let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f ()

let check (t : Structure.t) =
  let p = t.params in
  let f_coeffs = Poly_hash.coeffs (Dm_family.f t.top) in
  let g_coeffs = Poly_hash.coeffs (Dm_family.g t.top) in
  let z = Dm_family.z t.top in
  (* Hash-function rows. *)
  let rec coeff_rows i =
    if i >= p.d then Ok ()
    else
      let* () =
        check_row_constant t ~row:(Layout.f_row p i) ~expect:(fun _ -> f_coeffs.(i)) ~what:"f row"
      in
      let* () =
        check_row_constant t ~row:(Layout.g_row p i) ~expect:(fun _ -> g_coeffs.(i)) ~what:"g row"
      in
      coeff_rows (i + 1)
  in
  let* () = coeff_rows 0 in
  let* () =
    check_row_constant t ~row:(Layout.z_row p) ~expect:(fun j -> z.(j mod p.r)) ~what:"z row"
  in
  (* Recompute loads and GBAS from the retained hash function and keys. *)
  let loads = Loads.loads ~hash:(Dm_family.eval t.top) ~buckets:p.s t.keys in
  let* () =
    if loads <> t.loads then err "stored loads differ from recomputed loads" else Ok ()
  in
  let* () =
    if Loads.max_load (Loads.loads ~hash:(Poly_hash.eval (Dm_family.g t.top)) ~buckets:p.r t.keys)
       > p.cap_g
    then err "P(S) violated: a g-bucket exceeds cap_g"
    else Ok ()
  in
  let* () =
    let h' = Dm_family.reduce t.top p.m in
    if Loads.max_load (Loads.loads ~hash:(Dm_family.eval h') ~buckets:p.m t.keys) > p.cap_group
    then err "P(S) violated: a group exceeds cap_group"
    else Ok ()
  in
  let* () =
    if Loads.sum_squares loads > p.s then err "P(S) violated: sum of squared loads exceeds s"
    else Ok ()
  in
  (* GBAS row against recomputed prefix sums. *)
  let gbas = Array.make p.m 0 in
  for i = 1 to p.m - 1 do
    let acc = ref 0 in
    for k = 0 to p.g_per_group - 1 do
      let bk = Layout.bucket_of_group_index p ~group:(i - 1) k in
      acc := !acc + (loads.(bk) * loads.(bk))
    done;
    gbas.(i) <- gbas.(i - 1) + !acc
  done;
  let* () =
    if gbas <> t.gbas then err "stored GBAS differs from recomputed GBAS" else Ok ()
  in
  let* () =
    check_row_constant t ~row:(Layout.gbas_row p) ~expect:(fun j -> gbas.(j mod p.m))
      ~what:"GBAS row"
  in
  (* Histogram rows. *)
  let group_words =
    Array.init p.m (fun i ->
        let gl =
          Array.init p.g_per_group (fun k -> loads.(Layout.bucket_of_group_index p ~group:i k))
        in
        Histogram.encode p ~loads:gl)
  in
  let rec hist_rows w =
    if w >= p.rho then Ok ()
    else
      let* () =
        check_row_constant t ~row:(Layout.hist_row p w)
          ~expect:(fun j -> group_words.(j mod p.m).(w))
          ~what:"histogram row"
      in
      hist_rows (w + 1)
  in
  let* () = hist_rows 0 in
  (* Perfect-hash and data rows, bucket by bucket, plus padding cells. *)
  let expected_phash = Array.make p.s (-1) in
  let expected_data = Array.make p.s (-1) in
  let buckets = Loads.bucket_keys ~hash:(Dm_family.eval t.top) ~buckets:p.s t.keys in
  let rec per_bucket bk =
    if bk >= p.s then Ok ()
    else begin
      let l = loads.(bk) in
      if l = 0 then per_bucket (bk + 1)
      else begin
        let len = l * l in
        let start = t.starts.(bk) in
        let ph = Perfect.of_multiplier ~p:p.p ~size:len t.multipliers.(bk) in
        if not (Perfect.is_perfect_on ph buckets.(bk)) then
          err "bucket %d: stored multiplier is not perfect on its keys" bk
        else begin
          for j = start to start + len - 1 do
            expected_phash.(j) <- t.multipliers.(bk)
          done;
          Array.iter (fun x -> expected_data.(start + Perfect.eval ph x) <- x) buckets.(bk);
          per_bucket (bk + 1)
        end
      end
    end
  in
  let* () = per_bucket 0 in
  let* () =
    check_row_constant t ~row:(Layout.phash_row p)
      ~expect:(fun j -> expected_phash.(j))
      ~what:"perfect-hash row"
  in
  check_row_constant t ~row:(Layout.data_row p) ~expect:(fun j -> expected_data.(j)) ~what:"data row"

let check_queries (t : Structure.t) rng =
  let p = t.params in
  let in_keys = Hashtbl.create (2 * p.n) in
  Array.iter (fun x -> Hashtbl.add in_keys x ()) t.keys;
  let rec positives i =
    if i >= Array.length t.keys then Ok ()
    else if Query.mem t rng t.keys.(i) then positives (i + 1)
    else err "stored key %d not found" t.keys.(i)
  in
  let* () = positives 0 in
  let rec negatives trials =
    if trials = 0 then Ok ()
    else
      let x = Rng.int rng p.universe in
      if Hashtbl.mem in_keys x then negatives trials
      else if Query.mem t rng x then err "phantom key %d reported present" x
      else negatives (trials - 1)
  in
  negatives (min 256 p.universe)
