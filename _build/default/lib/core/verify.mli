(** Structural invariant checking and corruption detection.

    The builder's output satisfies a long list of invariants — replica
    rows constant, histogram words decoding to the true loads, [GBAS]
    matching the prefix sums, every key stored at its perfect-hash slot,
    the [P(S)] caps. [check] re-derives all of them from the cells and
    the retained metadata; the failure-injection tests corrupt one bit
    with {!Lc_cellprobe.Table.corrupt} and assert that [check] notices.

    Note a genuinely unverifiable case exists: flipping a bit of an
    unused cell (e.g. the padding of a data row slot of an empty region)
    can be silent — [check] inspects those too, so every stored bit is
    covered. *)

val check : Structure.t -> (unit, string) result
(** [check t] is [Ok ()] when every invariant holds, otherwise an
    explanatory error. O(total cells + n) time. *)

val check_queries : Structure.t -> Lc_prim.Rng.t -> (unit, string) result
(** [check_queries t rng] runs [mem] for every stored key (expecting
    [true]) and for a sample of non-keys (expecting [false]). *)
