lib/dict/cuckoo.ml: Array Hashtbl Instance Lc_cellprobe Lc_hash Lc_prim
