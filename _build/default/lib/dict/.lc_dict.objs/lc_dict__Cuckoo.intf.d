lib/dict/cuckoo.mli: Instance Lc_prim
