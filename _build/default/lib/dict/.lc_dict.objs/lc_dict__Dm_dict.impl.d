lib/dict/dm_dict.ml: Array Float Hashtbl Instance Lc_cellprobe Lc_hash Lc_prim
