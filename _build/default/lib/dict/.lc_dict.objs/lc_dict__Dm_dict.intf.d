lib/dict/dm_dict.mli: Instance Lc_prim
