lib/dict/fks.ml: Array Hashtbl Instance Lc_cellprobe Lc_hash Lc_prim List
