lib/dict/fks.mli: Instance Lc_prim
