lib/dict/instance.ml: Array Lc_cellprobe Lc_prim List Printf Seq
