lib/dict/instance.mli: Lc_cellprobe Lc_prim
