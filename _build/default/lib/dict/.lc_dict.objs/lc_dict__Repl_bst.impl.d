lib/dict/repl_bst.ml: Array Instance Lc_cellprobe Lc_prim List
