lib/dict/repl_bst.mli: Instance Lc_prim
