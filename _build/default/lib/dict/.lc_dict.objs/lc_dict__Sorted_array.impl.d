lib/dict/sorted_array.ml: Array Instance Lc_cellprobe List
