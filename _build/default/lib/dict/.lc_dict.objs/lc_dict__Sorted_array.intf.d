lib/dict/sorted_array.mli: Instance
