(** Cuckoo hashing (Pagh-Rodler 2004) in the cell-probe model.

    Two tables of [ceil (1.3 n)] cells and two polynomial hash functions;
    every key lives in [T_0[h_0(x)]] or [T_1[h_1(x)]]. Queries are two
    deterministic data probes plus reads of the hash-function coefficient
    words, which are replicated when [replicate] is set (the Section 1.3
    variant). The contention bottleneck under uniform positive queries is
    the most popular data cell: [n] keys make [2n] deterministic probes
    into [~2.6 n] cells, so the hottest cell sees
    [Theta(ln n / ln ln n)] of them — the factor the paper quotes. *)

type t

val build :
  ?replicate:bool ->
  ?d:int ->
  Lc_prim.Rng.t ->
  universe:int ->
  keys:int array ->
  t
(** [build rng ~universe ~keys] inserts all keys, redrawing both hash
    functions (a "rehash") whenever an eviction walk exceeds its bound.
    [d] (default 3) is the polynomial degree of each hash function. *)

val instance : t -> Instance.t

val mem : t -> Lc_prim.Rng.t -> int -> bool

val rehashes : t -> int
(** Number of full rehashes performed during construction. *)
