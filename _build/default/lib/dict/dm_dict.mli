(** A two-level dictionary over the Dietzfelbinger-Meyer auf der Heide
    hash family — the "DM" comparison point of Section 1.3.

    Identical skeleton to {!Fks} but the top level hashes with a member
    of [R^d_{r,n}] (Definition 4) accepted only when its maximum bucket
    load is [O(ln n / ln ln n)] — the load-levelling guarantee that
    family adds over plain universal hashing. With the hash-function
    words (the [2d] coefficients and the displacement vector [z])
    replicated, the bucket-header cells dominate contention at
    [Theta(ln n / ln ln n)] times optimal, the factor the paper quotes
    for DM. *)

type t

val build :
  ?replicate:bool ->
  ?d:int ->
  Lc_prim.Rng.t ->
  universe:int ->
  keys:int array ->
  t
(** [build rng ~universe ~keys] resamples the top-level DM function until
    both the max-load cap and the FKS square-sum condition hold. [d]
    defaults to 3. *)

val instance : t -> Instance.t

val mem : t -> Lc_prim.Rng.t -> int -> bool

val max_bucket_load : t -> int

val top_trials : t -> int
