(** FKS two-level perfect hashing (Fredman-Komlós-Szemerédi 1984) in the
    cell-probe model.

    Top level: [h(x) = (k x mod p) mod n] into [n] buckets, resampled
    until the FKS condition [sum l_i^2 <= 4n] holds (expected O(1)
    resamples). Second level: per-bucket perfect hashing into [l_i^2]
    cells ({!Lc_hash.Perfect}).

    Contention behaviour (Section 1.3 of the paper): without replication
    the single cell holding [k] has contention 1. With the hash function
    stored redundantly ([replicate = true], [n] copies), the bottleneck
    moves to the bucket-header cells, whose contention under uniform
    positive queries is [max_i l_i / n] — up to [Theta(sqrt n)] times the
    optimal [1/s], because a bucket of size [sqrt n] is perfectly
    admissible under the FKS condition. {!build_planted} constructs a key
    set realising that worst case so experiment T1 can show the factor
    rather than just cite it. *)

type t

val build :
  ?replicate:bool -> Lc_prim.Rng.t -> universe:int -> keys:int array -> t
(** [build rng ~universe ~keys] draws top-level multipliers until the FKS
    condition holds and assembles the table. [replicate] (default [true])
    stores [n] copies of the top-level hash parameter. *)

val build_planted :
  ?replicate:bool ->
  Lc_prim.Rng.t ->
  universe:int ->
  n:int ->
  heavy:int ->
  t * int array
(** [build_planted rng ~universe ~n ~heavy] fixes a top-level multiplier
    first and then chooses [n] keys of which [heavy] (at most [sqrt (2n)]
    or so, to keep the FKS condition satisfiable) collide in one bucket —
    the adversarially-correlated key set achieving the [Theta(sqrt n)]
    contention factor. Returns the structure and its key set. *)

val instance : t -> Instance.t

val mem : t -> Lc_prim.Rng.t -> int -> bool

val max_bucket_load : t -> int
(** Largest top-level bucket, the contention driver. *)

val top_trials : t -> int
(** Number of top-level multipliers tried before the FKS condition held. *)
