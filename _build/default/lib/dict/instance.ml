module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec
module Contention = Lc_cellprobe.Contention

type t = {
  name : string;
  table : Table.t;
  space : int;
  max_probes : int;
  mem : Lc_prim.Rng.t -> int -> bool;
  spec : int -> Spec.t;
}

let contention_exact t qdist =
  Contention.exact ~cells:t.space ~qdist ~spec:t.spec

let contention_mc t qdist ~rng ~queries =
  Contention.monte_carlo ~table:t.table ~qdist ~mem:t.mem ~rng ~queries

let check_spec_against_mem t ~rng ~queries =
  let table = t.table in
  let check_query x =
    let plan = t.spec x in
    (match Spec.validate ~cells:t.space plan with
    | Error e -> Error (Printf.sprintf "query %d: invalid spec: %s" x e)
    | Ok () -> Ok ())
    |> function
    | Error _ as e -> e
    | Ok () ->
      Table.reset_counters table;
      ignore (t.mem rng x : bool);
      let nsteps = Table.max_step table in
      if nsteps <> Spec.probes plan then
        Error
          (Printf.sprintf "query %d: mem made %d probes but spec plans %d" x nsteps
             (Spec.probes plan))
      else begin
        (* Each executed step must touch exactly one cell, inside the
           planned step's support. *)
        let bad = ref None in
        for step = 0 to nsteps - 1 do
          let touched = ref [] in
          for j = 0 to t.space - 1 do
            let c = Table.probes_at table ~step j in
            if c > 0 then touched := (j, c) :: !touched
          done;
          match !touched with
          | [ (j, 1) ] ->
            let in_support =
              Seq.exists (fun (cell, _) -> cell = j) (Spec.step_cells plan.(step))
            in
            if not in_support && !bad = None then
              bad := Some (Printf.sprintf "query %d step %d probed cell %d outside spec" x step j)
          | other ->
            if !bad = None then
              bad :=
                Some
                  (Printf.sprintf "query %d step %d probed %d cells (want exactly 1)" x step
                     (List.length other))
        done;
        Table.reset_counters table;
        match !bad with None -> Ok () | Some msg -> Error msg
      end
  in
  Array.fold_left
    (fun acc x -> match acc with Error _ -> acc | Ok () -> check_query x)
    (Ok ()) queries
