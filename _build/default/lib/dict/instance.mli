(** A first-class membership structure in the cell-probe model.

    Every dictionary in this repository — the four baselines here and the
    paper's low-contention dictionary in [Lc_core] — exposes itself as an
    {!t}: an instrumented table plus a probing query procedure [mem] and
    the exact per-query probe plan [spec]. The experiment harness only
    ever sees this record, so adding a structure to every experiment
    means implementing one value. *)

type t = {
  name : string;  (** Human-readable structure name for tables. *)
  table : Lc_cellprobe.Table.t;  (** The cells, with probe counters. *)
  space : int;  (** Number of cells, the paper's [s]. *)
  max_probes : int;  (** Worst-case probes per query, the paper's [t]. *)
  mem : Lc_prim.Rng.t -> int -> bool;
      (** [mem rng x] answers the membership query by real instrumented
          probes; [rng] drives only probe balancing. *)
  spec : int -> Lc_cellprobe.Spec.t;
      (** [spec x] is the exact probe plan the query algorithm uses for
          [x] on this table. *)
}

val contention_exact : t -> Lc_cellprobe.Qdist.t -> Lc_cellprobe.Contention.result
(** Exact contention of this structure under a query distribution. *)

val contention_mc :
  t -> Lc_cellprobe.Qdist.t -> rng:Lc_prim.Rng.t -> queries:int -> Lc_cellprobe.Contention.result
(** Monte-Carlo contention by replaying instrumented queries. *)

val check_spec_against_mem :
  t -> rng:Lc_prim.Rng.t -> queries:int array -> (unit, string) result
(** Cross-validation used by the test suite: for each query, run [mem]
    and confirm that every counted probe lands inside the support of the
    corresponding [spec] step (and that probe counts match plan length). *)
