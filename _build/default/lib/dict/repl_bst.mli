(** A low-contention static {e predecessor} structure — the paper's
    replication technique applied beyond membership.

    Binary search answers predecessor queries but reads its root cell on
    every query (contention 1). Here the implicit BST (Eytzinger layout)
    is stored one {e level per row}, each row [w = 2^ceil(log2 (n+1))]
    cells wide: depth-[i] node [v] is replicated across the [w / 2^i]
    cells congruent to [v - 2^i] mod [2^i], and a query reads a uniform
    replica of the one node it needs per level. A node at depth [i] is
    visited by about a [2^-i] fraction of uniform queries and owns a
    [2^-i] fraction of its row, so {e every} cell's contention is
    [O(1/n)] — Theorem 3's guarantee, for predecessor.

    The price is space: [Theta(n log n)] cells instead of the
    dictionary's [Theta(n)]. Whether an [O(n)]-space constant-probe
    low-contention predecessor structure exists is open (predecessor has
    its own cell-probe lower bounds even before contention).

    Probes are [ceil(log2 (n+1))] — not [O(1)]; this structure levels
    load, it does not beat binary search's time. Empty Eytzinger slots
    hold the sentinel [universe], which acts as +infinity in
    comparisons. *)

type t

val build : universe:int -> keys:int array -> t
(** [build ~universe ~keys] stores the distinct keys; O(n log n) cells,
    O(n) build time. *)

val predecessor : t -> Lc_prim.Rng.t -> int -> int option
(** [predecessor t rng x] is the largest stored key [<= x], or [None]
    if [x] is below every key. Exactly one probe per tree level. *)

val mem : t -> Lc_prim.Rng.t -> int -> bool
(** Membership via predecessor. *)

val instance : t -> Instance.t
(** The experiment-facing record ([mem]-based; the probe plan is the
    full descent, identical for [predecessor]). *)

val levels : t -> int
(** Tree depth = probes per query. *)
