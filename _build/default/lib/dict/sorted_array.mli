(** Sorted-array binary search — the paper's opening example of a
    high-contention structure.

    "With binary search ... the entry in the middle of the table is
    accessed on every query": the root cell has contention 1 regardless
    of the query distribution, a factor [s] above optimal. The probe
    sequence is deterministic, so [spec] is a list of [Point] steps along
    the search path. *)

type t

val build : universe:int -> keys:int array -> t
(** [build ~universe ~keys] stores the distinct keys in sorted order, one
    per cell. *)

val instance : t -> Instance.t

val mem : t -> int -> bool
(** Direct membership check (instrumented probes). *)
