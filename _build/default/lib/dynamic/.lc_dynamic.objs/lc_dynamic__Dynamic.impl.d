lib/dynamic/dynamic.ml: Array Fun Hashtbl Lc_cellprobe Lc_core Lc_prim List Option Printf
