lib/dynamic/dynamic.mli: Lc_cellprobe Lc_prim
