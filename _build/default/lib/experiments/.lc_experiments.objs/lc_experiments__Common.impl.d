lib/experiments/common.ml: Array Float Lc_cellprobe Lc_core Lc_dict Lc_prim Lc_workload List Unix
