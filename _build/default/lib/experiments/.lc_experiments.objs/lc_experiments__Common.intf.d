lib/experiments/common.mli: Lc_cellprobe Lc_core Lc_dict Lc_prim
