lib/experiments/exp_ablation.ml: Array Common Lc_analysis Lc_cellprobe Lc_core Lc_dict Lc_prim Lc_workload Printf
