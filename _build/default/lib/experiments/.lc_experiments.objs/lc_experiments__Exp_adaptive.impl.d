lib/experiments/exp_adaptive.ml: Array Buffer Common Lc_analysis Lc_cellprobe Lc_core Lc_dict Lc_lowerbound Lc_prim Lc_workload Printf
