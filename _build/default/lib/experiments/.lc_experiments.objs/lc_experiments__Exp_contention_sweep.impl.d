lib/experiments/exp_contention_sweep.ml: Array Buffer Common Lc_analysis List Printf String
