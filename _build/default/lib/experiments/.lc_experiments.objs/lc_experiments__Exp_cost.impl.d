lib/experiments/exp_cost.ml: Array Common Float Lc_analysis Lc_core Lc_dict Lc_prim Lc_workload List Printf
