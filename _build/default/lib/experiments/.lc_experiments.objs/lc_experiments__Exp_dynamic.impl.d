lib/experiments/exp_dynamic.ml: Array Common Float Lc_analysis Lc_cellprobe Lc_core Lc_dynamic Lc_prim Lc_workload List Printf
