lib/experiments/exp_lemma9.ml: Array Common Lc_analysis Lc_core Lc_hash Lc_prim Lc_workload Printf Seq
