lib/experiments/exp_lowerbound.ml: Array Buffer Common Float Lc_analysis Lc_cellprobe Lc_core Lc_dict Lc_lowerbound Lc_prim Lc_workload List Printf
