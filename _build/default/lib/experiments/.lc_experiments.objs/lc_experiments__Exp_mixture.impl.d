lib/experiments/exp_mixture.ml: Common Lc_analysis Lc_cellprobe Lc_prim Lc_workload List Printf
