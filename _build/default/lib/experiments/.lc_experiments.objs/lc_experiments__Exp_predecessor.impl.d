lib/experiments/exp_predecessor.ml: Array Common Lc_analysis Lc_cellprobe Lc_dict Lc_prim Lc_workload Printf
