lib/experiments/exp_profile.ml: Array Common Lc_analysis Lc_cellprobe Lc_dict Lc_prim Lc_workload List Printf
