lib/experiments/exp_simulation.ml: Array Common Lc_analysis Lc_core Lc_lowerbound Lc_prim Lc_workload Printf
