lib/experiments/exp_skew.ml: Array Common Lc_analysis Lc_cellprobe Lc_prim Lc_workload List Printf
