lib/experiments/registry.mli:
