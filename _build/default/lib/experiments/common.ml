module Rng = Lc_prim.Rng

type arm = { label : string; inst : Lc_dict.Instance.t; keys : int array }

let ladder = [| 256; 512; 1024; 2048; 4096 |]

let universe_for n = min (max (16 * n) (n * n)) (1 lsl 28)

let lc_build rng ~universe ~keys = Lc_core.Dictionary.build rng ~universe ~keys

let structures ?(planted = false) rng ~universe ~keys =
  let n = Array.length keys in
  let arm label inst = { label; inst; keys } in
  let base =
    [
      arm "low-contention" (Lc_core.Dictionary.instance (lc_build rng ~universe ~keys));
      arm "fks" (Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys));
      arm "fks-replicated"
        (Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:true rng ~universe ~keys));
      arm "dm-replicated"
        (Lc_dict.Dm_dict.instance (Lc_dict.Dm_dict.build ~replicate:true rng ~universe ~keys));
      arm "cuckoo-replicated"
        (Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build ~replicate:true rng ~universe ~keys));
      arm "binary-search" (Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys));
    ]
  in
  if not planted then base
  else begin
    let heavy = max 2 (int_of_float (Float.sqrt (1.5 *. float_of_int n))) in
    let fks, planted_keys = Lc_dict.Fks.build_planted ~replicate:true rng ~universe ~n ~heavy in
    base @ [ { label = "fks-planted"; inst = Lc_dict.Fks.instance fks; keys = planted_keys } ]
  end

let norm_contention inst qdist =
  Lc_cellprobe.Contention.normalized_max (Lc_dict.Instance.contention_exact inst qdist)

let pos_dist arm = Lc_cellprobe.Qdist.uniform ~name:"uniform-positive" arm.keys

(* The uniform negative distribution lives on the whole of U \ S; we
   stand in a uniform sample of non-keys. The sample must be decently
   larger than n or the handful of negatives landing on one data cell
   reads as a spurious point mass — 8n keeps that estimator bias small
   while staying cheap. *)
let neg_dist rng ~universe arm =
  let n = Array.length arm.keys in
  let count = min (8 * n) (universe - n) in
  let negs = Lc_workload.Keyset.negatives rng ~universe ~keys:arm.keys ~count in
  Lc_cellprobe.Qdist.uniform ~name:"uniform-negative" negs

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let sweep ~seed ~planted ~dist =
  let per_n =
    Array.map
      (fun n ->
        let rng = Rng.create (seed + (31 * n)) in
        let universe = universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let arms = structures ~planted rng ~universe ~keys in
        List.map
          (fun arm ->
            let qd =
              match dist with `Pos -> pos_dist arm | `Neg -> neg_dist rng ~universe arm
            in
            (arm.label, norm_contention arm.inst qd))
          arms)
      ladder
  in
  let labels = List.map fst per_n.(0) in
  let ns = Array.map float_of_int ladder in
  let series =
    Array.of_list
      (List.mapi (fun a _ -> Array.map (fun row -> snd (List.nth row a)) per_n) labels)
  in
  (labels, ns, series)
