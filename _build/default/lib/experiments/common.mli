(** Shared plumbing for the experiment implementations. *)

type arm = {
  label : string;
  inst : Lc_dict.Instance.t;
  keys : int array;
      (** The key set this structure holds — usually the shared one, but
          the planted-FKS arm builds its own adversarial set. *)
}

val ladder : int array
(** The geometric ladder of key-set sizes used by the sweeps. *)

val universe_for : int -> int
(** A universe comfortably satisfying the paper's [N >= n^2] assumption,
    capped at [2^28] to keep field arithmetic in native ints. *)

val structures :
  ?planted:bool -> Lc_prim.Rng.t -> universe:int -> keys:int array -> arm list
(** Build every comparison structure on the same key set:
    the low-contention dictionary, FKS and FKS-replicated, DM-replicated,
    cuckoo-replicated, and binary search. With [planted], additionally an
    FKS instance over an adversarial key set with a planted
    [~sqrt n]-heavy bucket (its key set differs — that is the point). *)

val lc_build : Lc_prim.Rng.t -> universe:int -> keys:int array -> Lc_core.Dictionary.t

val norm_contention : Lc_dict.Instance.t -> Lc_cellprobe.Qdist.t -> float
(** [s * max_j Phi(j)], exact. *)

val pos_dist : arm -> Lc_cellprobe.Qdist.t
(** Uniform positive queries for this arm's key set. *)

val neg_dist : Lc_prim.Rng.t -> universe:int -> arm -> Lc_cellprobe.Qdist.t
(** Uniform over a sample of non-keys, standing in for the uniform
    negative distribution. *)

val timed : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds. *)

val sweep :
  seed:int ->
  planted:bool ->
  dist:[ `Pos | `Neg ] ->
  string list * float array * float array array
(** The shared T1/T2/F1 computation: for every ladder size, build all
    arms and measure exact normalized contention under the chosen
    distribution. Returns [(labels, ns, series)] where [series.(a).(i)]
    is arm [a]'s contention at ladder point [i]. *)
