(* T10 and F8: ablations of the construction's design choices.

   T10 sweeps the paper's constants (d, delta, beta, alpha, c) and
   reports the cost/contention trade-off each controls. F8 removes the
   construction's levelling mechanisms one at a time — replication of
   the hash-function rows, replication of the displacement vector,
   spreading the per-bucket metadata — by surgically degrading the probe
   plans (the query algorithm could trivially be changed to match), and
   measures what each mechanism buys. *)

module Rng = Lc_prim.Rng
module Spec = Lc_cellprobe.Spec
module Contention = Lc_cellprobe.Contention
module Qdist = Lc_cellprobe.Qdist
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment

let t10 =
  {
    Experiment.id = "T10";
    title = "Parameter ablation: d, delta, beta, alpha, c (extension)";
    claim =
      "Section 2.2 fixes c = 2e and asks for d > 2, delta in (2/(d+2), 1-1/d), alpha > d/(c(ln \
       c - 1)), beta >= 2. The sweep shows what each constant buys: beta trades space for the \
       FKS margin, d trades probes for independence, alpha trades histogram width (rho) \
       against group count.";
    run =
      (fun ~seed ->
        let n = 2048 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let qd = Qdist.uniform ~name:"pos" keys in
        let tbl =
          Tablefmt.create
            ~title:(Printf.sprintf "T10: parameter sweep at n = %d (uniform positive)" n)
            ~columns:
              [
                "variant"; "rows"; "cells/n"; "probes"; "rho"; "m"; "r"; "norm contention";
                "build trials";
              ]
        in
        let arm label ?d ?delta ?alpha ?beta ?c () =
          let dict =
            Lc_core.Dictionary.build ?d ?delta ?alpha ?beta ?c rng ~universe ~keys
          in
          let p = Lc_core.Dictionary.params dict in
          let inst = Lc_core.Dictionary.instance dict in
          let cont = Lc_dict.Instance.contention_exact inst qd in
          Tablefmt.add_row tbl
            [
              label;
              string_of_int (Lc_core.Params.rows p);
              Printf.sprintf "%.1f" (float_of_int inst.space /. float_of_int n);
              string_of_int inst.max_probes;
              string_of_int p.rho;
              string_of_int p.m;
              string_of_int p.r;
              Printf.sprintf "%.1f" (Contention.normalized_max cont);
              string_of_int (Lc_core.Dictionary.build_trials dict);
            ]
        in
        arm "defaults (d=3 δ=.5 α=2 β=2 c=2e)" ();
        arm "d = 4" ~d:4 ~delta:0.55 ();
        arm "d = 5" ~d:5 ~delta:0.55 ();
        arm "delta = 0.45 (larger r)" ~delta:0.45 ();
        arm "delta = 0.6 (smaller r)" ~delta:0.6 ();
        arm "beta = 3 (more space)" ~beta:3 ();
        arm "beta = 4" ~beta:4 ();
        arm "alpha = 1.5 (more groups)" ~alpha:1.5 ();
        arm "alpha = 4 (fewer groups)" ~alpha:4.0 ();
        arm "c = 3.0 (tight caps)" ~c:3.0 ~alpha:12.0 ();
        Tablefmt.render tbl
        ^ "\nReading: the normalized contention constant ~ rows (every probe spreads over one \
           row), so fewer probe rows (small d, small rho via large alpha) is the contention \
           knob; beta buys FKS margin with cells/n; tight c raises build trials.");
  }

(* F8: degrade the real structure's probe plans to measure each
   levelling mechanism. The surgeries keep each step's support inside
   cells the query algorithm really could read (first replica of the
   row / residue), so every degraded plan is still executable. *)
let degrade_spec (p : Lc_core.Params.t) ~kill_coeff ~kill_z ~kill_meta spec_fn x =
  let coeff_rows = 2 * p.d in
  let plan = spec_fn x in
  Array.mapi
    (fun i st ->
      match st with
      | Spec.Stride { base; stride = 1; count } when i < coeff_rows && count = p.s ->
        if kill_coeff then Spec.Point base else st
      | Spec.Stride { base; stride; count = _ } when i = coeff_rows && stride = p.r ->
        if kill_z then Spec.Point base else st
      | Spec.Stride { base; stride; count = _ }
        when i > coeff_rows && i <= coeff_rows + 1 + p.rho && stride = p.m ->
        if kill_meta then Spec.Point base else st
      | other -> other)
    plan

let f8 =
  {
    Experiment.id = "F8";
    title = "Component ablation: what each replication mechanism buys (extension)";
    claim =
      "The construction levels three things: the hash-function words (rows replicated s \
       times), the displacement vector z (each entry replicated s/r times), and the group \
       metadata / histograms (replicated s/m times). Removing any one re-creates a hot cell; \
       this is the quantified version of Section 2's 'we can reduce the contention ... by \
       replication'.";
    run =
      (fun ~seed ->
        let n = 2048 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let dict = Common.lc_build rng ~universe ~keys in
        let p = Lc_core.Dictionary.params dict in
        let inst = Lc_core.Dictionary.instance dict in
        let qd = Qdist.uniform ~name:"pos" keys in
        let tbl =
          Tablefmt.create
            ~title:(Printf.sprintf "F8: probe-plan ablations at n = %d (uniform positive)" n)
            ~columns:[ "variant"; "norm contention"; "vs full" ]
        in
        let full =
          Contention.normalized_max
            (Contention.exact ~cells:inst.space ~qdist:qd ~spec:inst.spec)
        in
        let arm label ~kill_coeff ~kill_z ~kill_meta =
          let spec = degrade_spec p ~kill_coeff ~kill_z ~kill_meta inst.spec in
          let c =
            Contention.normalized_max (Contention.exact ~cells:inst.space ~qdist:qd ~spec)
          in
          Tablefmt.add_row tbl
            [ label; Printf.sprintf "%.0f" c; Printf.sprintf "%.1fx" (c /. full) ]
        in
        Tablefmt.add_row tbl [ "full construction"; Printf.sprintf "%.0f" full; "1.0x" ];
        arm "no hash-word replication" ~kill_coeff:true ~kill_z:false ~kill_meta:false;
        arm "no z replication" ~kill_coeff:false ~kill_z:true ~kill_meta:false;
        arm "no metadata replication" ~kill_coeff:false ~kill_z:false ~kill_meta:true;
        arm "no replication at all" ~kill_coeff:true ~kill_z:true ~kill_meta:true;
        Tablefmt.render tbl
        ^ "\nExpected shape: killing the hash-word replication puts contention 1 on one cell \
           (normalized = s_total); killing z costs ~ max g-bucket load * r/s of that; killing \
           the metadata costs ~ max group load; the full construction needs all three.");
  }

let register () =
  Experiment.register t10;
  Experiment.register f8
