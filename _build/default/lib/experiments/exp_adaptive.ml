(* F9: the adaptive adversary loop (the engine of Theorem 13's proof)
   run against a balanced structure and against an index structure. A
   deterministic index announces "good" (concentrated) probe specs that
   the adversary kills round after round by raising query mass; the
   balanced dictionary's specs are "bad" (information-poor), so the
   adversary never gets a foothold under its own contention budget. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Lb = Lc_lowerbound

let describe name (inst : Lc_dict.Instance.t) ~queries ~phi rng buf =
  let bits = Lc_cellprobe.Table.bits inst.table in
  let game =
    Lb.Game.play_adaptive rng inst ~queries ~phi ~bits ~rounds:inst.max_probes
  in
  let goods =
    Array.fold_left (fun acc (r : Lb.Game.adaptive_round) -> if r.a_good then acc + 1 else acc) 0
      game.a_rounds
  in
  Buffer.add_string buf
    (Printf.sprintf
       "%-16s phi = %.2e: %d/%d rounds good -> attacked; final adversary mass %.2f; rounds \
        with constraint (2) violated: %d/%d\n"
       name phi goods (Array.length game.a_rounds)
       (Array.fold_left ( +. ) 0.0 game.final_q)
       game.rounds_killed (Array.length game.a_rounds))

let f9 =
  {
    Experiment.id = "F9";
    title = "Adaptive adversary vs balanced and unbalanced structures";
    claim =
      "Theorem 13's proof loop: the adversary raises q by 1/t* per round to violate every \
       'good' (concentrated) probe specification. Balanced probes give it nothing to attack; \
       deterministic index probes are killed round after round.";
    run =
      (fun ~seed ->
        let n = 128 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let buf = Buffer.create 512 in
        (* The balanced structure, audited at its own (tight) phi. *)
        let dict = Common.lc_build rng ~universe ~keys in
        let inst = Lc_core.Dictionary.instance dict in
        let phi_lc =
          (Lc_dict.Instance.contention_exact inst
             (Lc_cellprobe.Qdist.uniform ~name:"pos" keys))
            .max_step
        in
        describe "low-contention" inst ~queries:keys ~phi:phi_lc rng buf;
        (* Binary search, audited at the same per-cell budget scaled to
           its table: phi = c / s for the same constant c. *)
        let bs = Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys) in
        let phi_bs = phi_lc *. float_of_int inst.space /. float_of_int bs.space in
        describe "binary-search" bs ~queries:keys ~phi:phi_bs rng buf;
        (* FKS without replication: the parameter cell is a good row. *)
        let fks =
          Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys)
        in
        let phi_fks = phi_lc *. float_of_int inst.space /. float_of_int fks.space in
        describe "fks (no repl.)" fks ~queries:keys ~phi:phi_fks rng buf;
        Buffer.contents buf
        ^ "\nExpected shape: binary search and unreplicated FKS announce concentrated \
           (deterministic) specs every round and the adversary kills all of them. The \
           low-contention dictionary's fully-replicated rounds (the 2d coefficient reads, \
           spread over all s cells) are unattackable even by a point mass; its group- and \
           bucket-level rounds spread over only s/m or l^2 cells and fall to a skewed q — \
           which is exactly why Theorem 3 restricts to uniform positives/negatives, and why \
           Theorem 13 says no constant-probe balanced scheme can serve arbitrary q.");
  }

let register () = Experiment.register f9
