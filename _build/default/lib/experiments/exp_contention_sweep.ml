(* T1, T2 and F1: the headline contention sweeps.

   T1/T2 print the per-n table of normalized max contention (s * max_j
   Phi(j)); a structure matching Theorem 3 shows a column that stays
   O(1) as n doubles, while the Section 1.3 baselines grow. F1 reports
   the same data as series with log-log slopes and doubling ratios. *)

module Tablefmt = Lc_analysis.Tablefmt
module Series = Lc_analysis.Series
module Experiment = Lc_analysis.Experiment

let table ~title ~dist ~seed =
  let labels, ns, series = Common.sweep ~seed ~planted:true ~dist in
  let tbl = Tablefmt.create ~title ~columns:("n" :: labels) in
  Array.iteri
    (fun i n ->
      Tablefmt.add_row tbl
        (string_of_int (int_of_float n)
        :: List.mapi (fun a _ -> Tablefmt.fmt_g series.(a).(i)) labels))
    ns;
  (labels, ns, series, Tablefmt.render tbl)

let verdict labels ns series =
  let lines =
    List.mapi
      (fun a label ->
        let slope = Series.loglog_slope ~xs:ns ~ys:series.(a) in
        Printf.sprintf "  %-18s log-log slope vs n: %+.3f" label slope)
      labels
  in
  "Growth (slope 0 = flat/optimal, 0.5 = sqrt n, 1 = linear):\n"
  ^ String.concat "\n" lines

let t1 =
  {
    Experiment.id = "T1";
    title = "Max normalized contention, uniform positive queries";
    claim =
      "Theorem 3: the low-contention dictionary keeps s*max contention O(1); replicated FKS is \
       Theta(sqrt n) in the worst case (planted), DM/cuckoo Theta(ln n/ln ln n), binary search \
       Theta(n).";
    run =
      (fun ~seed ->
        let labels, ns, series, rendered =
          table ~title:"T1: s * max_j Phi(j), uniform positive" ~dist:`Pos ~seed
        in
        rendered ^ "\n" ^ verdict labels ns series);
  }

let t2 =
  {
    Experiment.id = "T2";
    title = "Max normalized contention, uniform negative queries";
    claim =
      "Theorem 3 with Lemma 10: negative-query loads are asymptotically even, so the \
       low-contention dictionary stays O(1) on negative queries too.";
    run =
      (fun ~seed ->
        let labels, ns, series, rendered =
          table ~title:"T2: s * max_j Phi(j), uniform negative" ~dist:`Neg ~seed
        in
        rendered ^ "\n" ^ verdict labels ns series);
  }

let f1 =
  {
    Experiment.id = "F1";
    title = "Contention growth series (log-log) per structure";
    claim =
      "The data of T1 as growth series: slope ~0 for the low-contention dictionary, ~0.5 for \
       planted FKS, small positive for DM/cuckoo, ~1 for binary search.";
    run =
      (fun ~seed ->
        let labels, ns, series = Common.sweep ~seed ~planted:true ~dist:`Pos in
        let buf = Buffer.create 2048 in
        Buffer.add_string buf "F1 series (x = n, y = s * max Phi, uniform positive)\n";
        List.iteri
          (fun a label ->
            let slope = Series.loglog_slope ~xs:ns ~ys:series.(a) in
            let ratios = Series.doubling_ratios series.(a) in
            Buffer.add_string buf
              (Printf.sprintf "%-18s slope=%+.3f  y=[%s]  doubling=[%s]\n" label slope
                 (String.concat "; "
                    (Array.to_list (Array.map Tablefmt.fmt_g series.(a))))
                 (String.concat "; " (Array.to_list (Array.map Tablefmt.fmt_g ratios)))))
          labels;
        let plot_series =
          List.mapi
            (fun a label ->
              {
                Lc_analysis.Plot.label;
                points = Array.mapi (fun i n -> (n, series.(a).(i))) ns;
              })
            labels
        in
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Lc_analysis.Plot.render ~x_scale:Log ~y_scale:Log
             ~title:"F1 (log-log): flat = Theorem 3; slope 1/2 = planted FKS; slope 1 = index"
             ~x_label:"n" ~y_label:"s * max Phi" plot_series);
        Buffer.contents buf);
  }

let register () =
  Experiment.register t1;
  Experiment.register t2;
  Experiment.register f1
