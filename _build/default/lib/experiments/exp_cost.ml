(* T3 and T6: the non-contention performance parameters of Theorem 3 —
   probes, space, construction time and construction trial counts. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Stats = Lc_analysis.Stats
module Experiment = Lc_analysis.Experiment

let t3 =
  {
    Experiment.id = "T3";
    title = "Time / space / construction cost";
    claim =
      "Theorem 3: O(n) cells, O(1) probes per query, expected O(n) construction on a unit-cost \
       RAM; the constants must be flat as n grows.";
    run =
      (fun ~seed ->
        let tbl =
          Tablefmt.create ~title:"T3: structure costs across n"
            ~columns:
              [ "n"; "structure"; "cells"; "cells/n"; "max probes"; "mean probes"; "build s" ]
        in
        Array.iter
          (fun n ->
            let rng = Rng.create (seed + (17 * n)) in
            let universe = Common.universe_for n in
            let keys = Lc_workload.Keyset.random rng ~universe ~n in
            let arms, dt = Common.timed (fun () -> Common.structures rng ~universe ~keys) in
            ignore dt;
            List.iter
              (fun (arm : Common.arm) ->
                let qd = Common.pos_dist arm in
                let c = Lc_dict.Instance.contention_exact arm.inst qd in
                let rebuild_time =
                  if arm.label = "low-contention" then
                    snd (Common.timed (fun () -> Common.lc_build rng ~universe ~keys))
                  else Float.nan
                in
                Tablefmt.add_row tbl
                  [
                    string_of_int n;
                    arm.label;
                    string_of_int arm.inst.space;
                    Printf.sprintf "%.1f" (float_of_int arm.inst.space /. float_of_int n);
                    string_of_int arm.inst.max_probes;
                    Printf.sprintf "%.2f" c.mean_probes;
                    (if Float.is_nan rebuild_time then "-" else Printf.sprintf "%.4f" rebuild_time);
                  ])
              arms)
          Common.ladder;
        Tablefmt.render tbl);
  }

let t6 =
  {
    Experiment.id = "T6";
    title = "P(S) rejection-sampling trial counts";
    claim =
      "Section 2.2: the hash triple (g, h', h) satisfies P(S) with probability >= 1/2 - o(1), so \
       rejection sampling needs expected O(1) trials, independent of n.";
    run =
      (fun ~seed ->
        let builds = 60 in
        let tbl =
          Tablefmt.create
            ~title:(Printf.sprintf "T6: P(S) trials over %d builds" builds)
            ~columns:[ "n"; "mean trials"; "max trials"; "est. accept prob"; "mean build s" ]
        in
        Array.iter
          (fun n ->
            let rng = Rng.create (seed + (13 * n)) in
            let universe = Common.universe_for n in
            let trials = Array.make builds 0.0 in
            let times = Array.make builds 0.0 in
            for b = 0 to builds - 1 do
              let keys = Lc_workload.Keyset.random rng ~universe ~n in
              let dict, dt = Common.timed (fun () -> Common.lc_build rng ~universe ~keys) in
              trials.(b) <- float_of_int (Lc_core.Dictionary.build_trials dict);
              times.(b) <- dt
            done;
            Tablefmt.add_row tbl
              [
                string_of_int n;
                Printf.sprintf "%.2f" (Stats.mean trials);
                Printf.sprintf "%.0f" (Stats.maximum trials);
                Printf.sprintf "%.2f" (1.0 /. Stats.mean trials);
                Printf.sprintf "%.4f" (Stats.mean times);
              ])
          Common.ladder;
        Tablefmt.render tbl);
  }

let register () =
  Experiment.register t3;
  Experiment.register t6
