(* T9 and F7: the future-work extension — dynamization.

   T9 measures the logarithmic method's amortized update cost over the
   static builder; F7 measures what dynamization does to the contention
   guarantee (the small-level hot spot on miss traffic) and how far
   level replication repairs it. *)

module Rng = Lc_prim.Rng
module Dynamic = Lc_dynamic.Dynamic
module Qdist = Lc_cellprobe.Qdist
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment

let t9 =
  {
    Experiment.id = "T9";
    title = "Dynamization: amortized update cost (extension)";
    claim =
      "Paper section 4 (future work): dynamic updates. The logarithmic method over the static \
       construction costs amortized O(log n) rebuilt keys per insert and keeps space O(n); \
       deletions amortize through half-dead purges.";
    run =
      (fun ~seed ->
        let tbl =
          Tablefmt.create ~title:"T9: logarithmic-method costs"
            ~columns:
              [
                "n inserts";
                "rebuilt keys/insert";
                "log2 n";
                "cells/live key";
                "levels";
                "purges after n/2 deletes";
              ]
        in
        List.iter
          (fun n ->
            let rng = Rng.create (seed + n) in
            let universe = Common.universe_for n in
            let keys = Lc_workload.Keyset.random rng ~universe ~n in
            let t = Dynamic.create rng ~universe () in
            Array.iter (Dynamic.insert t) keys;
            let per_insert = float_of_int (Dynamic.keys_rebuilt t) /. float_of_int n in
            let cells_per_key = float_of_int (Dynamic.space t) /. float_of_int n in
            let levels = List.length (Dynamic.level_sizes t) in
            for i = 0 to (n / 2) - 1 do
              Dynamic.delete t keys.(i)
            done;
            Tablefmt.add_row tbl
              [
                string_of_int n;
                Printf.sprintf "%.2f" per_insert;
                Printf.sprintf "%.1f" (Float.log (float_of_int n) /. Float.log 2.0);
                Printf.sprintf "%.1f" cells_per_key;
                string_of_int levels;
                string_of_int (Dynamic.purges t);
              ])
          [ 300; 600; 1100; 2200; 4500 ];
        Tablefmt.render tbl
        ^ "\nExpected shape: rebuilt keys/insert tracks log2 n; cells/key flat; one purge per \
           half-dead epoch.");
  }

let f7 =
  {
    Experiment.id = "F7";
    title = "Dynamization vs contention: the small-level hot spot (extension)";
    claim =
      "Dynamization breaks Theorem 3 on miss traffic: every negative query probes every level, \
       and a level of 2^i keys has only Theta(2^i) cells, so its contention is Theta(1/2^i). \
       Replicating small levels (boost B) divides that by min(B/2^i, 1) at bounded space cost.";
    run =
      (fun ~seed ->
        let n = 1025 in
        (* 1025 = 2^10 + 2^0: a big level plus a singleton. *)
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let negs = Lc_workload.Keyset.negatives rng ~universe ~keys ~count:2048 in
        let qneg = Qdist.uniform ~name:"neg" negs in
        let qpos = Qdist.uniform ~name:"pos" keys in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "F7: normalized worst-cell contention of the dynamic structure (n = %d = 2^10 + \
                  1)"
                 n)
            ~columns:
              [ "variant"; "space cells"; "worst (neg)"; "worst level"; "worst (pos)"; "static ref" ]
        in
        let static_dict = Common.lc_build rng ~universe ~keys in
        let static_inst = Lc_core.Dictionary.instance static_dict in
        let static_neg = Common.norm_contention static_inst qneg in
        List.iter
          (fun boost ->
            let t = Dynamic.create ~small_level_boost:boost rng ~universe () in
            Array.iter (Dynamic.insert t) keys;
            let cneg = Dynamic.contention_exact t qneg in
            let cpos = Dynamic.contention_exact t qpos in
            Tablefmt.add_row tbl
              [
                (if boost = 1 then "plain log-method" else Printf.sprintf "boost %d" boost);
                string_of_int (Dynamic.space t);
                Printf.sprintf "%.0f" cneg.worst;
                string_of_int cneg.worst_level;
                Printf.sprintf "%.0f" cpos.worst;
                Printf.sprintf "%.0f" static_neg;
              ])
          [ 1; 8; 64; 512 ];
        Tablefmt.render tbl
        ^ "\nExpected shape: plain dynamization's worst (neg) is orders of magnitude above the \
           static reference, concentrated on the singleton level; each 8x boost cuts it ~8x at \
           modest space cost; positives are shielded by largest-first search.");
  }

let register () =
  Experiment.register t9;
  Experiment.register f7
