(* T4: empirical success probabilities of the three clauses of Lemma 9,
   which together give P(S) the >= 1/2 - o(1) acceptance rate that makes
   the construction expected-O(n). Because the paper's constants are
   generous, the frequencies saturate at 1; the margin columns quantify
   how far below their caps the observed loads sit (the lemma's o(1)
   terms in action). *)

module Rng = Lc_prim.Rng
module Poly_hash = Lc_hash.Poly_hash
module Dm_family = Lc_hash.Dm_family
module Loads = Lc_hash.Loads
module Tablefmt = Lc_analysis.Tablefmt
module Stats = Lc_analysis.Stats
module Experiment = Lc_analysis.Experiment

type draw = {
  c1 : bool;  (* g-loads within cap *)
  c2 : bool;  (* group loads within cap *)
  c3 : bool;  (* FKS sum-of-squares within s *)
  g_margin : float;  (* max g-load / cap_g *)
  group_margin : float;  (* max group load / cap_group *)
  fks_margin : float;  (* sum l^2 / s *)
}

let sample_draw rng (p : Lc_core.Params.t) keys =
  let f = Poly_hash.create rng ~d:p.d ~p:p.p ~m:p.s in
  let g = Poly_hash.create rng ~d:p.d ~p:p.p ~m:p.r in
  let z = Array.init p.r (fun _ -> Rng.int rng p.s) in
  let h = Dm_family.of_parts ~f ~g ~z in
  let g_max = Loads.max_load (Loads.loads ~hash:(Poly_hash.eval g) ~buckets:p.r keys) in
  let h' = Dm_family.reduce h p.m in
  let group_max = Loads.max_load (Loads.loads ~hash:(Dm_family.eval h') ~buckets:p.m keys) in
  let sumsq = Loads.sum_squares (Loads.loads ~hash:(Dm_family.eval h) ~buckets:p.s keys) in
  {
    c1 = g_max <= p.cap_g;
    c2 = group_max <= p.cap_group;
    c3 = sumsq <= p.s;
    g_margin = float_of_int g_max /. float_of_int p.cap_g;
    group_margin = float_of_int group_max /. float_of_int p.cap_group;
    fks_margin = float_of_int sumsq /. float_of_int p.s;
  }

let t4 =
  {
    Experiment.id = "T4";
    title = "Lemma 9 empirical success probabilities";
    claim =
      "Lemma 9: (1) g-loads <= c n/r w.p. 1-o(1); (2) R-family loads <= c n/m w.p. 1-o(1); (3) \
       the FKS condition sum l^2 <= s w.p. >= 1/2. Jointly P(S) holds w.p. >= 1/2 - o(1).";
    run =
      (fun ~seed ->
        let trials = 400 in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "T4: condition frequencies and load margins over %d hash draws (margin = \
                  observed/cap; < 1 means satisfied)"
                 trials)
            ~columns:
              [
                "n";
                "Pr[1]";
                "Pr[2]";
                "Pr[3]";
                "Pr[P(S)]";
                "g margin p50/max";
                "group margin p50/max";
                "FKS margin p50/max";
              ]
        in
        Array.iter
          (fun n ->
            let rng = Rng.create (seed + (7 * n)) in
            let universe = Common.universe_for n in
            let keys = Lc_workload.Keyset.random rng ~universe ~n in
            let params = Lc_core.Params.make ~universe ~n () in
            let draws = Array.init trials (fun _ -> sample_draw rng params keys) in
            let frac f =
              Printf.sprintf "%.3f"
                (float_of_int (Array.length (Array.of_seq (Seq.filter f (Array.to_seq draws))))
                /. float_of_int trials)
            in
            let margins sel =
              let m = Array.map sel draws in
              Printf.sprintf "%.2f / %.2f" (Stats.median m) (Stats.maximum m)
            in
            Tablefmt.add_row tbl
              [
                string_of_int n;
                frac (fun d -> d.c1);
                frac (fun d -> d.c2);
                frac (fun d -> d.c3);
                frac (fun d -> d.c1 && d.c2 && d.c3);
                margins (fun d -> d.g_margin);
                margins (fun d -> d.group_margin);
                margins (fun d -> d.fks_margin);
              ])
          Common.ladder;
        Tablefmt.render tbl
        ^ "\nExpected shape: probabilities >= the guaranteed 1/2 (here saturating at 1 — the \
           Markov/moment bounds are loose); margins stay bounded away from 1 and shrink with n \
           for (1)-(2), hover near 0.75 for the FKS sum (E[sum l^2] ~ 1.5n vs s = 2n).");
  }

let register () = Experiment.register t4
