(* F3, F4, T7 and T8: Section 3 made quantitative — the recurrence curve,
   the communication game on a real structure, numeric checks of Lemmas
   16/21, and computed VC-dimensions. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Lb = Lc_lowerbound

let f3 =
  {
    Experiment.id = "F3";
    title = "Theorem 13 recurrence: minimal feasible rounds vs n";
    claim =
      "Theorem 13: with b <= polylog(n) and phi* <= polylog(n)/s, the cell-probe complexity is \
       Omega(log log n). Doubling log n should add about one feasible round.";
    run =
      (fun ~seed:_ ->
        let tbl =
          Tablefmt.create
            ~title:"F3: minimal t* with total info >= n * 4^-t* (b = log2 n, phi*s = log2^2 n)"
            ~columns:[ "log2 n"; "n"; "min t*"; "log2 log2 n"; "t*/loglog" ]
        in
        let points = ref [] in
        List.iter
          (fun log2n ->
            let b = float_of_int log2n in
            let phi_s = b *. b in
            let t = Lb.Recursion.min_rounds ~b ~phi_s ~log2_n:(float_of_int log2n) in
            let loglog = Float.log (float_of_int log2n) /. Float.log 2.0 in
            points := (float_of_int log2n, float_of_int t) :: !points;
            Tablefmt.add_row tbl
              [
                string_of_int log2n;
                Printf.sprintf "2^%d" log2n;
                string_of_int t;
                Printf.sprintf "%.2f" loglog;
                Printf.sprintf "%.2f" (float_of_int t /. loglog);
              ])
          [ 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ];
        Tablefmt.render tbl ^ "\n"
        ^ Lc_analysis.Plot.render ~x_scale:Lc_analysis.Plot.Log ~height:12
            ~title:"F3: minimal feasible rounds vs log2 n (x log-scaled: straight = log log law)"
            ~x_label:"log2 n" ~y_label:"min t*"
            [ { Lc_analysis.Plot.label = "min t*"; points = Array.of_list (List.rev !points) } ]
        ^ "\nExpected shape: 't*/loglog' settles near a constant — the Omega(log log n) law.");
  }

let f4 =
  {
    Experiment.id = "F4";
    title = "The Lemma 14 communication game, played by the low-contention dictionary";
    claim =
      "Lemma 14 / proof of Theorem 13: n parallel query instances gain at most b * sum_j max_i \
       P_t(i,j) bits per round, with E[C_t] <= sqrt(a * E[C_(t-1)]); the coupling of Lemma 21 \
       realises the bound.";
    run =
      (fun ~seed ->
        let n = 96 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let dict = Common.lc_build rng ~universe ~keys in
        let inst = Lc_core.Dictionary.instance dict in
        let q = Array.make n (1.0 /. float_of_int n) in
        let c = Lc_dict.Instance.contention_exact inst (Lc_cellprobe.Qdist.uniform ~name:"pos" keys) in
        let phi = c.max_step in
        let bits = Lc_cellprobe.Table.bits inst.table in
        let rounds = inst.max_probes in
        let game =
          Lb.Game.play rng inst ~queries:keys ~q ~phi ~bits ~rounds ~samples:40
        in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "F4: per-round information (n = %d, b = %d, phi = %.2g, s = %d)" n bits phi
                 inst.space)
            ~columns:[ "round"; "bound bits"; "sampled bits"; "(1) ok"; "(2) ok"; "good row" ]
        in
        Array.iter
          (fun (r : Lb.Game.round) ->
            Tablefmt.add_row tbl
              [
                string_of_int (r.step + 1);
                Printf.sprintf "%.1f" r.info_bound_bits;
                Printf.sprintf "%.1f" r.sampled_bits;
                (if r.row_stochastic then "yes" else "NO");
                (if r.contention_ok then "yes" else "NO");
                (if r.good then "good" else "bad");
              ])
          game.rounds;
        Tablefmt.render tbl
        ^ Printf.sprintf "\nTotal info bound: %.1f bits; Lemma 14 requirement n*4^-t = %.3g bits.\n"
            game.total_info_bits game.required_bits
        ^ "Expected shape: balanced rounds stay information-poor (sampled <= bound); both \
           constraints hold under uniform q.");
  }

let t7 =
  {
    Experiment.id = "T7";
    title = "Numeric verification of Lemma 16 and Lemma 21";
    claim =
      "Lemma 16: sum_j max_i P(i,j) <= |R|; Lemma 21: a coupling exists with E|union L_i| <= \
       sum_j max_i Pr[j in J_i]. Checked on random matrices and on matrices induced by the \
       low-contention dictionary.";
    run =
      (fun ~seed ->
        let rng = Rng.create seed in
        let buf = Buffer.create 1024 in
        (* Random matrices: the literal statement vs the corrected +1 and
           fractional forms (see the erratum note in Lemma16's docs). *)
        let strict_fail = ref 0 and corrected_fail = ref 0 and fractional_fail = ref 0 in
        let cases = 400 in
        for _ = 1 to cases do
          let rows = 2 + Rng.int rng 20 and cols = 4 + Rng.int rng 60 in
          let support = 1 + Rng.int rng (min cols 8) in
          let p = Lb.Probe_spec.random rng ~rows ~cols ~support in
          if not (Lb.Lemma16.holds_strict p ~budget:cols) then incr strict_fail;
          if not (Lb.Lemma16.holds p ~budget:cols) then incr corrected_fail;
          if not (Lb.Lemma16.holds_fractional p ~budget:cols) then incr fractional_fail
        done;
        Buffer.add_string buf
          (Printf.sprintf
             "Lemma 16 on %d random specs: literal form violated %d times (fractional-knapsack \
              slack, see erratum note); corrected |R|+1 form violated %d times; fractional \
              bound violated %d times.\n"
             cases !strict_fail !corrected_fail !fractional_fail);
        (* Coupling on a dictionary-induced matrix. *)
        let n = 64 in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let dict = Common.lc_build rng ~universe ~keys in
        let inst = Lc_core.Dictionary.instance dict in
        let tbl =
          Tablefmt.create ~title:"T7: Lemma 21 coupling vs bound, per probe step (n = 64)"
            ~columns:[ "step"; "bound sum_j max_i"; "mean |union|"; "ok" ]
        in
        for step = 0 to inst.max_probes - 1 do
          let spec = Lb.Probe_spec.of_instance inst ~queries:keys ~step in
          let bound = Lb.Probe_spec.col_max_sum spec in
          let samples = 60 in
          let acc = ref 0.0 in
          for _ = 1 to samples do
            let s = Lb.Coupling.draw rng ~marginals:spec in
            acc := !acc +. float_of_int (Lb.Coupling.union_size s)
          done;
          let mean = !acc /. float_of_int samples in
          (* Allow Monte-Carlo slack of 3 standard errors, coarse bound. *)
          let ok = mean <= bound +. (3.0 *. Float.sqrt (bound /. float_of_int samples)) +. 0.5 in
          Tablefmt.add_row tbl
            [
              string_of_int (step + 1);
              Printf.sprintf "%.2f" bound;
              Printf.sprintf "%.2f" mean;
              (if ok then "yes" else "NO");
            ]
        done;
        Buffer.add_string buf (Tablefmt.render tbl);
        Buffer.contents buf);
  }

let t8 =
  {
    Experiment.id = "T8";
    title = "Computed VC-dimensions (Definition 11)";
    claim =
      "The membership problem on k-subsets has VC-dimension exactly k ('it is easy to see'), \
       which is how Theorem 13 specialises to membership; parity has VC-dimension = universe.";
    run =
      (fun ~seed:_ ->
        let tbl =
          Tablefmt.create ~title:"T8: VC-dimension, computed by exhaustive shattering"
            ~columns:[ "problem"; "expected"; "computed" ]
        in
        List.iter
          (fun (u, k) ->
            let p = Lb.Problem.membership ~universe:u ~k in
            Tablefmt.add_row tbl
              [
                Printf.sprintf "membership N=%d k=%d" u k;
                string_of_int k;
                string_of_int (Lb.Vc_dim.vc_dim p);
              ])
          [ (6, 1); (6, 2); (8, 2); (8, 3); (10, 4) ];
        List.iter
          (fun u ->
            let p = Lb.Problem.parity ~universe:u in
            Tablefmt.add_row tbl
              [
                Printf.sprintf "parity u=%d" u;
                string_of_int u;
                string_of_int (Lb.Vc_dim.vc_dim p);
              ])
          [ 2; 3; 4 ];
        Tablefmt.render tbl);
  }

let register () =
  Experiment.register f3;
  Experiment.register f4;
  Experiment.register t7;
  Experiment.register t8
