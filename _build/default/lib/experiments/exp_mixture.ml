(* T11: the paper's query model verbatim — a mixture that is uniform on
   positive queries and uniform on negative queries, with an arbitrary
   mixing weight. Theorem 3's guarantee covers the whole family at once
   (both conditional distributions are levelled separately), so the
   contention must be flat in the mixing weight, not just at its
   endpoints. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment

let t11 =
  {
    Experiment.id = "T11";
    title = "Positive/negative mixtures: flat in the mixing weight";
    claim =
      "Theorem 3's query class: 'uniform over both the set of positive queries and the set of \
       negative queries (but not necessarily uniform over all queries)'. The O(1/n) bound must \
       hold for every mixing weight p_pos, since each conditional distribution is levelled on \
       its own.";
    run =
      (fun ~seed ->
        let n = 2048 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let arms = Common.structures rng ~universe ~keys in
        let negs = Lc_workload.Keyset.negatives rng ~universe ~keys ~count:(8 * n) in
        let tbl =
          Tablefmt.create
            ~title:(Printf.sprintf "T11: s * max Phi vs mixing weight p_pos at n = %d" n)
            ~columns:("p_pos" :: List.map (fun (a : Common.arm) -> a.label) arms)
        in
        List.iter
          (fun p_pos ->
            let qd = Qdist.pos_neg ~pos:keys ~neg:negs ~p_pos in
            Tablefmt.add_row tbl
              (Printf.sprintf "%.2f" p_pos
              :: List.map
                   (fun (a : Common.arm) -> Tablefmt.fmt_g (Common.norm_contention a.inst qd))
                   arms))
          [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
        Tablefmt.render tbl
        ^ "\nExpected shape: the low-contention column is flat in p_pos (both conditionals are \
           levelled); baselines keep their hot cells at every weight.");
  }

let register () = Experiment.register t11
