(* F11: the replication technique generalised — a low-contention static
   predecessor structure (replicated implicit BST) against plain binary
   search over the same keys. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Contention = Lc_cellprobe.Contention
module Instance = Lc_dict.Instance
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment

let f11 =
  {
    Experiment.id = "F11";
    title = "Low-contention predecessor via replicated BST levels (extension)";
    claim =
      "The paper's replication idea is not membership-specific: storing each implicit-BST \
       level across a full Theta(n)-cell row levels predecessor queries to O(1/n) contention \
       per cell, at the price of Theta(n log n) space. Binary search on the same keys keeps a \
       contention-1 root.";
    run =
      (fun ~seed ->
        let tbl =
          Tablefmt.create ~title:"F11: predecessor structures, uniform positive queries"
            ~columns:
              [
                "n"; "structure"; "cells"; "probes"; "s*maxPhi"; "profile max/median";
              ]
        in
        Array.iter
          (fun n ->
            let rng = Rng.create (seed + n) in
            let universe = Common.universe_for n in
            let keys = Lc_workload.Keyset.random rng ~universe ~n in
            let qd = Qdist.uniform ~name:"pos" keys in
            let arm label inst =
              let c = Instance.contention_exact inst qd in
              let prof = Contention.profile c in
              let med = Lc_analysis.Stats.median prof in
              Tablefmt.add_row tbl
                [
                  string_of_int n;
                  label;
                  string_of_int inst.Instance.space;
                  string_of_int inst.Instance.max_probes;
                  Printf.sprintf "%.1f" (Contention.normalized_max c);
                  (if med > 0.0 then
                     Printf.sprintf "%.1f" (Lc_analysis.Stats.maximum prof /. med)
                   else "inf");
                ]
            in
            arm "repl-bst" (Lc_dict.Repl_bst.instance (Lc_dict.Repl_bst.build ~universe ~keys));
            arm "binary-search"
              (Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys)))
          [| 256; 1024; 4096 |];
        Tablefmt.render tbl
        ^ "\nExpected shape: repl-bst's normalized contention equals its level count (~log2 n, \
           every cell within 2x of the median) while binary search's equals n; both make \
           ceil(log2 n)-ish probes — the replication buys flatness, not speed.");
  }

let register () = Experiment.register f11
