(* F2, F5 and F6: the shape of the load — per-cell contention profiles,
   hot spots under m concurrent queries, and probe-count distributions. *)

module Rng = Lc_prim.Rng
module Contention = Lc_cellprobe.Contention
module Concurrency = Lc_cellprobe.Concurrency
module Tablefmt = Lc_analysis.Tablefmt
module Stats = Lc_analysis.Stats
module Experiment = Lc_analysis.Experiment

let f2 =
  {
    Experiment.id = "F2";
    title = "Per-cell contention profile (flatness)";
    claim =
      "Theorem 3 promises a 'nearly-flat load distribution': every cell within O(1) of the ideal \
       1/s. Index structures instead concentrate load on head cells.";
    run =
      (fun ~seed ->
        let n = 2048 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let arms = Common.structures rng ~universe ~keys in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "F2: quantiles of s * Phi(j) over cells at n = %d, uniform positive" n)
            ~columns:[ "structure"; "p50"; "p90"; "p99"; "p99.9"; "max"; "head/median" ]
        in
        List.iter
          (fun (arm : Common.arm) ->
            let c = Lc_dict.Instance.contention_exact arm.inst (Common.pos_dist arm) in
            let prof = Contention.profile c in
            let q p = Stats.quantile prof p in
            let med = q 0.5 in
            Tablefmt.add_row tbl
              [
                arm.label;
                Tablefmt.fmt_g med;
                Tablefmt.fmt_g (q 0.9);
                Tablefmt.fmt_g (q 0.99);
                Tablefmt.fmt_g (q 0.999);
                Tablefmt.fmt_g (Stats.maximum prof);
                (if med > 0.0 then Tablefmt.fmt_g (Stats.maximum prof /. med) else "inf");
              ])
          arms;
        Tablefmt.render tbl);
  }

let f5 =
  {
    Experiment.id = "F5";
    title = "Hot-spot load under m concurrent queries";
    claim =
      "Section 1: contention bounds translate by linearity of expectation into bounds on \
       simultaneous probes; a flat structure's hottest cell sees O(m/s + log) concurrent \
       readers while an index root sees all m.";
    run =
      (fun ~seed ->
        let n = 1024 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let arms = Common.structures rng ~universe ~keys in
        let ms = [| 16; 64; 256; 1024; 4096 |] in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "F5: mean max simultaneous probes per cell (lock-step rounds), n = %d" n)
            ~columns:
              ("m" :: List.map (fun (a : Common.arm) -> a.label) arms)
        in
        Array.iter
          (fun m ->
            let row =
              List.map
                (fun (arm : Common.arm) ->
                  let stats =
                    Concurrency.simulate ~rng ~cells:arm.inst.space ~qdist:(Common.pos_dist arm)
                      ~spec:arm.inst.spec ~m ~trials:30
                  in
                  Printf.sprintf "%.1f" stats.mean_hotspot)
                arms
            in
            Tablefmt.add_row tbl (string_of_int m :: row))
          ms;
        (* Asynchronous arrivals: the same workload with queries starting
           at random offsets within a window of 4 probe-times per query
           wave — staggering helps everyone except the contention-1
           cells. *)
        let tbl2 =
          Tablefmt.create
            ~title:"F5b: same, asynchronous arrivals (random start offsets, spread = m/4 slots)"
            ~columns:("m" :: List.map (fun (a : Common.arm) -> a.label) arms)
        in
        Array.iter
          (fun m ->
            let row =
              List.map
                (fun (arm : Common.arm) ->
                  let stats =
                    Concurrency.simulate_async ~rng ~cells:arm.inst.space
                      ~qdist:(Common.pos_dist arm) ~spec:arm.inst.spec ~m
                      ~spread:(max 1 (m / 4)) ~trials:30
                  in
                  Printf.sprintf "%.1f" stats.mean_hotspot)
                arms
            in
            Tablefmt.add_row tbl2 (string_of_int m :: row))
          ms;
        Tablefmt.render tbl ^ "\n" ^ Tablefmt.render tbl2
        ^ "\nExpected shape: lock-step — binary-search column = m (every query reads the \
           root); replicated baselines grow ~ m * maxload / n; low-contention grows like a \
           balls-in-bins maximum. Async — staggering divides every column by ~spread/probes, \
           but the ordering (and the index structures' root bottleneck) persists.");
  }

let f6 =
  {
    Experiment.id = "F6";
    title = "Probes per query";
    claim =
      "Theorem 3: O(1) probes. Binary search pays Theta(log n); the two-level schemes pay a \
       constant that does not move with n.";
    run =
      (fun ~seed ->
        let tbl =
          Tablefmt.create ~title:"F6: probe counts (mean exact / worst-case)"
            ~columns:[ "n"; "structure"; "mean (pos)"; "mean (neg)"; "max" ]
        in
        Array.iter
          (fun n ->
            let rng = Rng.create (seed + n) in
            let universe = Common.universe_for n in
            let keys = Lc_workload.Keyset.random rng ~universe ~n in
            let arms = Common.structures rng ~universe ~keys in
            List.iter
              (fun (arm : Common.arm) ->
                let cpos = Lc_dict.Instance.contention_exact arm.inst (Common.pos_dist arm) in
                let cneg =
                  Lc_dict.Instance.contention_exact arm.inst
                    (Common.neg_dist rng ~universe arm)
                in
                Tablefmt.add_row tbl
                  [
                    string_of_int n;
                    arm.label;
                    Printf.sprintf "%.2f" cpos.mean_probes;
                    Printf.sprintf "%.2f" cneg.mean_probes;
                    string_of_int arm.inst.max_probes;
                  ])
              arms)
          [| 256; 1024; 4096 |];
        Tablefmt.render tbl);
  }

let register () =
  Experiment.register f2;
  Experiment.register f5;
  Experiment.register f6
