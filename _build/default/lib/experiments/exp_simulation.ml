(* F10: the appendix (Lemmas 19-21) run end to end against the real
   dictionary — per-step product-space success rates, the completion
   curve with its 4^-t floor, and the coupled n-instance rounds. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Lb = Lc_lowerbound

let f10 =
  {
    Experiment.id = "F10";
    title = "Product-space simulation of the dictionary (Appendix A)";
    claim =
      "Lemma 19: each probe simulates with failure probability <= 3/4 and exact conditional \
       law; Lemma 20: after t steps a 4^-t fraction of parallel instances survives; Lemma 21: \
       the coupled instances touch at most sum_j max_i P(i,j) distinct cells per round.";
    run =
      (fun ~seed ->
        let n = 96 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let dict = Common.lc_build rng ~universe ~keys in
        let inst = Lc_core.Dictionary.instance dict in
        let trials = 3000 in
        let steps = Lb.Simulation.step_success rng inst ~queries:keys ~trials in
        let curve = Lb.Simulation.completion_curve rng inst ~queries:keys ~trials in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "F10: per-step success and completion (n = %d, %d trials; Lemma 19 floor 0.25 \
                  per step)"
                 n trials)
            ~columns:
              [ "step"; "success rate"; ">= 1/4"; "completion to depth"; "4^-depth floor" ]
        in
        Array.iteri
          (fun i (st : Lb.Simulation.step_stats) ->
            let c = curve.(i) in
            Tablefmt.add_row tbl
              [
                string_of_int (st.step + 1);
                Printf.sprintf "%.3f" st.success_rate;
                (if st.success_rate >= 0.25 -. 0.03 then "yes" else "NO");
                Printf.sprintf "%.4f" c.completion_rate;
                Printf.sprintf "%.2e" c.lemma_floor;
              ])
          steps;
        let tbl2 =
          Tablefmt.create
            ~title:"F10b: coupled n-instance rounds (Lemma 20 + 21, 40 trials)"
            ~columns:[ "step"; "mean surviving instances"; "mean distinct cells"; "cell bound" ]
        in
        for step = 0 to inst.max_probes - 1 do
          let r = Lb.Simulation.parallel_round rng inst ~queries:keys ~step ~trials:40 in
          Tablefmt.add_row tbl2
            [
              string_of_int (step + 1);
              Printf.sprintf "%.1f" r.mean_successes;
              Printf.sprintf "%.1f" r.mean_distinct_cells;
              Printf.sprintf "%.1f" r.info_bound;
            ]
        done;
        Tablefmt.render tbl ^ "\n" ^ Tablefmt.render tbl2
        ^ "\nExpected shape: every per-step rate clears 1/4 (full-row steps approach 1/e ~ \
           0.37 from the birthday structure; point steps reach 1/2); the completion curve \
           decays geometrically but stays far above the worst-case floor; distinct cells track \
           the Lemma 21 bound from below.");
  }

let register () = Experiment.register f10
