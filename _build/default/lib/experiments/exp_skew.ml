(* T5: arbitrary query distributions. The paper's Section 3 motivation:
   once q is not the uniform positive/negative mixture, no structure in
   the repertoire — including the low-contention dictionary, whose final
   data probe is deterministic per key — can keep contention near 1/s,
   and skew makes everyone degrade toward the point-mass worst case. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment

let t5 =
  {
    Experiment.id = "T5";
    title = "Arbitrary query distributions (Zipf skew and point mass)";
    claim =
      "Section 1.3 / Section 3: for arbitrary query distributions contention 'can be arbitrarily \
       bad' for all of FKS, DM and cuckoo; the uniform-case optimality of Theorem 3 does not \
       extend (that is exactly what the Theorem 13 trade-off forbids).";
    run =
      (fun ~seed ->
        let n = 2048 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let arms = Common.structures rng ~universe ~keys in
        let dists =
          [
            ("uniform", Qdist.zipf ~skew:0.0 keys);
            ("zipf 0.5", Qdist.zipf ~skew:0.5 keys);
            ("zipf 1.0", Qdist.zipf ~skew:1.0 keys);
            ("zipf 1.5", Qdist.zipf ~skew:1.5 keys);
            ("point", Qdist.point keys.(0));
          ]
        in
        let tbl =
          Tablefmt.create
            ~title:(Printf.sprintf "T5: s * max Phi at n = %d under skewed q" n)
            ~columns:
              ("distribution" :: "entropy(bits)"
              :: List.map (fun (a : Common.arm) -> a.label) arms)
        in
        List.iter
          (fun (dname, qd) ->
            Tablefmt.add_row tbl
              (dname
              :: Printf.sprintf "%.2f" (Qdist.entropy qd)
              :: List.map (fun (a : Common.arm) -> Tablefmt.fmt_g (Common.norm_contention a.inst qd)) arms))
          dists;
        Tablefmt.render tbl
        ^ "\nExpected shape: every column grows as entropy drops; at the point mass the final \
           probe alone forces s * Phi = Theta(s) for every structure.");
  }

let register () = Experiment.register t5
