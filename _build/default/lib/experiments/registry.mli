(** One-call registration of every experiment.

    [install ()] populates {!Lc_analysis.Experiment}'s registry with all
    tables (T1-T8) and figures (F1-F6); idempotent. *)

val install : unit -> unit
