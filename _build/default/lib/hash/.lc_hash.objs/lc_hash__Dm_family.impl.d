lib/hash/dm_family.ml: Array Lc_prim Poly_hash
