lib/hash/dm_family.mli: Lc_prim Poly_hash
