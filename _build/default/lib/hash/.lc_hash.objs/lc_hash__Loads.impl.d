lib/hash/loads.ml: Array
