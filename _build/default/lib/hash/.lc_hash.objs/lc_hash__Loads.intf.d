lib/hash/loads.mli:
