lib/hash/perfect.ml: Array Lc_prim
