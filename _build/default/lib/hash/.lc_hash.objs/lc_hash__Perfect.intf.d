lib/hash/perfect.mli: Lc_prim
