lib/hash/poly_hash.ml: Array Lc_prim
