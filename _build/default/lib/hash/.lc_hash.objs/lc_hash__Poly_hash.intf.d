lib/hash/poly_hash.mli: Lc_prim
