lib/hash/tabulation.ml: Array Lc_prim
