lib/hash/tabulation.mli: Lc_prim
