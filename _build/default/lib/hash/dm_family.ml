module Rng = Lc_prim.Rng

type t = { f : Poly_hash.t; g : Poly_hash.t; z : int array; m : int }

let of_parts ~f ~g ~z =
  let r = Poly_hash.range g and m = Poly_hash.range f in
  if Array.length z <> r then invalid_arg "Dm_family.of_parts: |z| must equal range of g";
  Array.iter
    (fun zi -> if zi < 0 || zi >= m then invalid_arg "Dm_family.of_parts: displacement out of range")
    z;
  { f; g; z = Array.copy z; m }

let create rng ~d ~p ~r ~m =
  let f = Poly_hash.create rng ~d ~p ~m in
  let g = Poly_hash.create rng ~d ~p ~m:r in
  let z = Array.init r (fun _ -> Rng.int rng m) in
  { f; g; z; m }

let eval h x =
  let fx = Poly_hash.eval h.f x in
  let gx = Poly_hash.eval h.g x in
  (fx + h.z.(gx)) mod h.m

let f h = h.f
let g h = h.g
let z h = Array.copy h.z
let range h = h.m

let reduce h m' =
  if m' < 1 || h.m mod m' <> 0 then
    invalid_arg "Dm_family.reduce: new range must divide the old range";
  { f = Poly_hash.reduce h.f m'; g = h.g; z = Array.map (fun zi -> zi mod m') h.z; m = m' }
