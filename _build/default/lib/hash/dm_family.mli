(** The Dietzfelbinger-Meyer auf der Heide hash family [R^d_{r,m}].

    Definition 4 in the paper: for [f] in [H^d_m], [g] in [H^d_r] and a
    displacement vector [z] in [[m]^r],

    {[ h_{f,g,z}(x) = (f(x) + z_{g(x)}) mod m ]}

    The family's virtue (Lemma 9) is that its loads are far better
    levelled than those of plain universal hashing: with probability
    [1 - o(1)] every one of [m ~ n / (alpha ln n)] groups receives at
    most [c n / m] keys, and the FKS square-sum condition holds with
    probability at least 1/2. *)

type t

val create : Lc_prim.Rng.t -> d:int -> p:int -> r:int -> m:int -> t
(** [create rng ~d ~p ~r ~m] draws a uniform member of [R^d_{r,m}]:
    [f] uniform in [H^d_m], [g] uniform in [H^d_r], [z] uniform in
    [[m]^r]. *)

val of_parts : f:Poly_hash.t -> g:Poly_hash.t -> z:int array -> t
(** [of_parts ~f ~g ~z] assembles a specific member. Requires
    [Array.length z = Poly_hash.range g] and every [z.(i)] in
    [0, range f - 1]. *)

val eval : t -> int -> int
(** [eval h x] is [(f(x) + z_{g(x)}) mod m]. *)

val f : t -> Poly_hash.t
val g : t -> Poly_hash.t

val z : t -> int array
(** A copy of the displacement vector. *)

val range : t -> int
(** The codomain size [m]. *)

val reduce : t -> int -> t
(** [reduce h m'] is [x -> h(x) mod m'] as a member of [R^d_{r,m'}],
    valid when [m'] divides [range h]. This is the paper's Section 2.2
    derivation of the group-assignment function [h' = h mod m] from the
    bucket-assignment function [h : U -> [s]]: both [f mod m'] and
    [z mod m'] remain uniform, so [h'] is uniform over [R^d_{r,m'}]. *)
