let loads ~hash ~buckets keys =
  if buckets < 1 then invalid_arg "Loads.loads: buckets must be >= 1";
  let v = Array.make buckets 0 in
  Array.iter
    (fun x ->
      let i = hash x in
      if i < 0 || i >= buckets then invalid_arg "Loads.loads: hash value out of range";
      v.(i) <- v.(i) + 1)
    keys;
  v

let max_load v = Array.fold_left max 0 v

let sum_squares v = Array.fold_left (fun acc l -> acc + (l * l)) 0 v

let collision_pairs v = Array.fold_left (fun acc l -> acc + (l * (l - 1))) 0 v

let group_loads ~loads ~groups =
  if groups < 1 then invalid_arg "Loads.group_loads: groups must be >= 1";
  let g = Array.make groups 0 in
  Array.iteri (fun i l -> g.(i mod groups) <- g.(i mod groups) + l) loads;
  g

let bucket_keys ~hash ~buckets keys =
  let counts = loads ~hash ~buckets keys in
  let out = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make buckets 0 in
  Array.iter
    (fun x ->
      let i = hash x in
      out.(i).(fill.(i)) <- x;
      fill.(i) <- fill.(i) + 1)
    keys;
  out

let fks_condition ~loads ~s = sum_squares loads <= s
