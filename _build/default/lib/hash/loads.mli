(** Bucket-load analytics for hash functions.

    Definition 5 of the paper: for [h : U -> [m]] and a key set [S], the
    load of bucket [i] is [|{x in S | h(x) = i}|]. The three clauses of
    Lemma 9, the property [P(S)] of Section 2.2 and experiment T4 are all
    statements about these load vectors, so they get a dedicated module. *)

val loads : hash:(int -> int) -> buckets:int -> int array -> int array
(** [loads ~hash ~buckets keys] is the load vector: entry [i] counts the
    keys mapped to bucket [i]. Every hash value must fall in
    [0, buckets-1]. *)

val max_load : int array -> int
(** Largest entry of a load vector (0 for an empty vector). *)

val sum_squares : int array -> int
(** [sum_squares loads] is the FKS quantity [sum_i l_i^2]. *)

val collision_pairs : int array -> int
(** Number of ordered collision pairs, [sum_i l_i * (l_i - 1)]; the
    random variable [X] in the proof of Lemma 9(3). *)

val group_loads : loads:int array -> groups:int -> int array
(** [group_loads ~loads ~groups] sums bucket loads by congruence class
    mod [groups]: group [i] collects buckets [i, i+groups, i+2*groups,
    ...] — exactly how Section 2.2 arranges the [s] buckets into [m]
    groups. Requires [groups >= 1] and [groups] dividing nothing in
    particular; trailing partial classes are handled. *)

val bucket_keys : hash:(int -> int) -> buckets:int -> int array -> int array array
(** [bucket_keys ~hash ~buckets keys] partitions the keys by bucket,
    preserving input order within each bucket. *)

val fks_condition : loads:int array -> s:int -> bool
(** [fks_condition ~loads ~s] is Lemma 9(3)'s event: [sum_i l_i^2 <= s]. *)
