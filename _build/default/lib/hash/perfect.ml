module Rng = Lc_prim.Rng
module Modarith = Lc_prim.Modarith

type t = { p : int; size : int; k : int; trials : int }

let eval h x = Modarith.mul h.p h.k x mod h.size

let is_perfect_on h keys =
  let seen = Array.make h.size false in
  let ok = ref true in
  Array.iter
    (fun x ->
      let slot = eval h x in
      if seen.(slot) then ok := false else seen.(slot) <- true)
    keys;
  !ok

let size h = h.size
let multiplier h = h.k
let trials h = h.trials

let of_multiplier ~p ~size k =
  Modarith.check_modulus p;
  if size < 1 then invalid_arg "Perfect.of_multiplier: size must be >= 1";
  if k < 0 || k >= p then invalid_arg "Perfect.of_multiplier: multiplier out of field";
  { p; size; k; trials = 0 }

let find rng ~p ~keys =
  Modarith.check_modulus p;
  let l = Array.length keys in
  let size = max 1 (l * l) in
  let rec search trials =
    (* k = 0 maps everything to slot 0; skip it for l >= 2. *)
    let k = if l >= 2 then 1 + Rng.int rng (p - 1) else Rng.int rng p in
    let cand = { p; size; k; trials } in
    if is_perfect_on cand keys then cand else search (trials + 1)
  in
  search 1
