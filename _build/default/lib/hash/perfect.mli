(** FKS per-bucket perfect hashing.

    The innermost level of both FKS and the paper's low-contention
    dictionary: a bucket holding [l] keys is given [l^2] cells and a
    single-word hash function [h*(x) = (k * x mod p) mod l^2] chosen so
    that it is injective on the bucket. By the FKS analysis a uniform
    multiplier [k] works with probability at least 1/2, so rejection
    sampling finds one in expected [<= 2] trials.

    The single word [k] is exactly what gets replicated across the
    bucket's cells in the low-contention layout, so this module keeps the
    parameter to one word on purpose. *)

type t

val find : Lc_prim.Rng.t -> p:int -> keys:int array -> t
(** [find rng ~p ~keys] searches for a perfect hash function for [keys]
    (all distinct, in [0, p-1]) into a table of [max 1 (l^2)] slots where
    [l = Array.length keys]. Expected O(l) time. *)

val of_multiplier : p:int -> size:int -> int -> t
(** [of_multiplier ~p ~size k] reconstructs the function from its stored
    word [k] and slot count [size] (used by query algorithms reading [k]
    back out of the table). *)

val eval : t -> int -> int
(** [eval h x] is the slot of [x], in [0, size h - 1]. *)

val size : t -> int
(** Number of slots ([l^2], or 1 for an empty or singleton bucket). *)

val multiplier : t -> int
(** The one-word parameter [k] stored in the cell table. *)

val trials : t -> int
(** How many candidate multipliers were tested before success (1 when the
    first candidate worked); statistics for experiment T6. *)

val is_perfect_on : t -> int array -> bool
(** [is_perfect_on h keys] checks injectivity of [h] on [keys]. *)
