module Rng = Lc_prim.Rng
module Modarith = Lc_prim.Modarith

type t = { p : int; m : int; coeffs : int array }

let create rng ~d ~p ~m =
  if d < 1 then invalid_arg "Poly_hash.create: d must be >= 1";
  Modarith.check_modulus p;
  if m < 1 then invalid_arg "Poly_hash.create: range must be >= 1";
  { p; m; coeffs = Array.init d (fun _ -> Rng.int rng p) }

let of_coeffs ~p ~m coeffs =
  Modarith.check_modulus p;
  if m < 1 then invalid_arg "Poly_hash.of_coeffs: range must be >= 1";
  if Array.length coeffs = 0 then invalid_arg "Poly_hash.of_coeffs: no coefficients";
  Array.iter
    (fun c -> if c < 0 || c >= p then invalid_arg "Poly_hash.of_coeffs: coefficient out of field")
    coeffs;
  { p; m; coeffs = Array.copy coeffs }

let eval_field h x = Modarith.poly_eval h.p h.coeffs x

let eval h x = eval_field h x mod h.m

let d h = Array.length h.coeffs
let range h = h.m
let modulus h = h.p
let coeffs h = Array.copy h.coeffs

let reduce h m' =
  if m' < 1 || h.m mod m' <> 0 then
    invalid_arg "Poly_hash.reduce: new range must divide the old range";
  { h with m = m' }
