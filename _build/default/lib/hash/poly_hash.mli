(** [d]-wise independent hashing via Carter-Wegman polynomials.

    [H^d_m] in the paper: a random degree-[d-1] polynomial over the prime
    field [Z_p] (with [p] larger than the key universe), reduced mod [m].
    Over [Z_p] itself the family is exactly [d]-wise independent; the
    final [mod m] reduction introduces a bias of at most [m/p] per value,
    which is negligible for the [p >> m] regimes used here and is bounded
    empirically by the test suite.

    The paper's construction in Section 2.2 relies on the composition
    fact that for [m | s], reducing a uniform member of [H^d_s] mod [m]
    yields a uniform member of [H^d_m]; {!reduce} implements exactly
    that. *)

type t

val create : Lc_prim.Rng.t -> d:int -> p:int -> m:int -> t
(** [create rng ~d ~p ~m] draws a uniform member of [H^d_m]: [d]
    independent coefficients uniform in [Z_p]. Requires [d >= 1],
    [p] a valid modulus (see {!Lc_prim.Modarith.check_modulus}) and
    [1 <= m]. *)

val of_coeffs : p:int -> m:int -> int array -> t
(** [of_coeffs ~p ~m coeffs] builds the specific polynomial with the
    given coefficients (constant term first), each already in [0, p-1]. *)

val eval : t -> int -> int
(** [eval h x] is [h(x)] in [0, m-1]. [x] must lie in [0, p-1] (i.e. in
    the key universe). *)

val eval_field : t -> int -> int
(** [eval_field h x] is the polynomial value in [Z_p] {e before} the mod-[m]
    reduction; exposed for independence tests. *)

val d : t -> int
(** Number of coefficients (the independence parameter). *)

val range : t -> int
(** The codomain size [m]. *)

val modulus : t -> int
(** The field modulus [p]. *)

val coeffs : t -> int array
(** A copy of the coefficient vector; these are the words written to the
    cell table so that the query algorithm can reconstruct the function. *)

val reduce : t -> int -> t
(** [reduce h m'] is the function [x -> h(x) mod m'] as a member of
    [H^d_{m'}]. Requires [m'] to divide [range h] so that the result is
    again uniform when [h] was (Section 2.2 of the paper). *)
