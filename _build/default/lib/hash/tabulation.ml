module Rng = Lc_prim.Rng

type t = {
  universe_bits : int;
  chunk_bits : int;
  m : int;
  tables : int array array;  (* tables.(c).(chunk value) *)
}

let char_count ~universe_bits ~chunk_bits = (universe_bits + chunk_bits - 1) / chunk_bits

let validate ~universe_bits ~chunk_bits ~m =
  if universe_bits < 1 || universe_bits > 62 then
    invalid_arg "Tabulation: universe_bits outside [1, 62]";
  if chunk_bits < 1 || chunk_bits > 16 then invalid_arg "Tabulation: chunk_bits outside [1, 16]";
  if m < 1 then invalid_arg "Tabulation: m must be >= 1"

let create rng ~universe_bits ~chunk_bits ~m =
  validate ~universe_bits ~chunk_bits ~m;
  let chars = char_count ~universe_bits ~chunk_bits in
  let size = 1 lsl chunk_bits in
  (* Entries are uniform 62-bit words; XORs of uniform words stay
     uniform, and the final mod m adds only O(m / 2^62) bias. *)
  let tables = Array.init chars (fun _ -> Array.init size (fun _ -> Rng.bits rng)) in
  { universe_bits; chunk_bits; m; tables }

let eval h x =
  if x < 0 || (h.universe_bits < 62 && x lsr h.universe_bits <> 0) then
    invalid_arg "Tabulation.eval: key out of range";
  let mask = (1 lsl h.chunk_bits) - 1 in
  let acc = ref 0 in
  Array.iteri (fun c table -> acc := !acc lxor table.((x lsr (c * h.chunk_bits)) land mask)) h.tables;
  !acc mod h.m

let chars h = Array.length h.tables

let table_words h = Array.fold_left (fun acc t -> acc + Array.length t) 0 h.tables

let words h = Array.concat (Array.to_list h.tables)

let of_words ~universe_bits ~chunk_bits ~m ws =
  validate ~universe_bits ~chunk_bits ~m;
  let chars = char_count ~universe_bits ~chunk_bits in
  let size = 1 lsl chunk_bits in
  if Array.length ws <> chars * size then invalid_arg "Tabulation.of_words: wrong word count";
  let tables = Array.init chars (fun c -> Array.sub ws (c * size) size) in
  { universe_bits; chunk_bits; m; tables }
