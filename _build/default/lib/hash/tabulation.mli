(** Simple tabulation hashing (Zobrist; analysed by Patrascu-Thorup).

    An alternative realisation of the universal families the paper's
    structures consume: split a key into [chars] chunks of [chunk_bits]
    bits, look each chunk up in its own random table, and XOR the
    results, finally reducing mod [m]. Only 3-wise independent, but with
    Chernoff-style concentration for many balls-in-bins quantities —
    which is exactly what the DM construction's load caps need, so it
    makes a practically faster drop-in for {!Poly_hash} in the baseline
    dictionaries (the benchmark suite compares evaluation costs).

    Exposed with the same shape as {!Poly_hash} where meaningful; the
    table of random words is the analogue of the coefficient vector
    (and is what replication would copy into cells — one word per
    chunk-entry, so it is a {e bigger} object than a polynomial's [d]
    words: the space/evaluation-time trade-off is the point). *)

type t

val create :
  Lc_prim.Rng.t -> universe_bits:int -> chunk_bits:int -> m:int -> t
(** [create rng ~universe_bits ~chunk_bits ~m] draws the random tables
    for keys of [universe_bits] bits, chunked into [chunk_bits]-bit
    characters ([1 <= chunk_bits <= 16]); values land in [0, m-1]. *)

val eval : t -> int -> int
(** [eval h x]. [x] must fit in [universe_bits] bits. *)

val chars : t -> int
(** Number of chunk tables. *)

val table_words : t -> int
(** Total random words backing the function — the replication cost. *)

val words : t -> int array
(** The flattened tables (row-major by character), for cell storage. *)

val of_words :
  universe_bits:int -> chunk_bits:int -> m:int -> int array -> t
(** Rebuild from {!words}. *)
