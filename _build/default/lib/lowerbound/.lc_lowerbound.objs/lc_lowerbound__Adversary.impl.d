lib/lowerbound/adversary.ml: Array Float Lc_prim Printf
