lib/lowerbound/adversary.mli: Lc_prim
