lib/lowerbound/coupling.ml: Array Hashtbl Lc_prim Probe_spec
