lib/lowerbound/coupling.mli: Lc_prim Probe_spec
