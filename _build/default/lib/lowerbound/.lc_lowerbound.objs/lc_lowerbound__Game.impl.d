lib/lowerbound/game.ml: Array Coupling Float Lc_dict Probe_spec
