lib/lowerbound/game.mli: Lc_dict Lc_prim
