lib/lowerbound/lemma16.ml: Array List Probe_spec
