lib/lowerbound/lemma16.mli: Probe_spec
