lib/lowerbound/probe_spec.ml: Array Float Lc_cellprobe Lc_dict Lc_prim Seq
