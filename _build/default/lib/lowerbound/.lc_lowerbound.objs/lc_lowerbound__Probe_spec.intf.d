lib/lowerbound/probe_spec.mli: Lc_dict Lc_prim
