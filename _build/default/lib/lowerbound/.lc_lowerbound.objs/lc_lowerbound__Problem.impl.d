lib/lowerbound/problem.ml: Array Bytes
