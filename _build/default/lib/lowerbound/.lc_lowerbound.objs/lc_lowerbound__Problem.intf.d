lib/lowerbound/problem.mli:
