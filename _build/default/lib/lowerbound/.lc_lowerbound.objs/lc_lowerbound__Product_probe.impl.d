lib/lowerbound/product_probe.ml: Array Float Lc_prim Seq
