lib/lowerbound/product_probe.mli: Lc_prim
