lib/lowerbound/recursion.ml: Array Float
