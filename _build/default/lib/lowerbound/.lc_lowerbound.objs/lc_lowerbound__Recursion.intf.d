lib/lowerbound/recursion.mli:
