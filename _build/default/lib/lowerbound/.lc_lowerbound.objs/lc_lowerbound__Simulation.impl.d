lib/lowerbound/simulation.ml: Array Coupling Float Lc_cellprobe Lc_dict Lc_prim Probe_spec Product_probe
