lib/lowerbound/simulation.mli: Lc_dict Lc_prim
