lib/lowerbound/vc_dim.ml: Array Hashtbl Problem
