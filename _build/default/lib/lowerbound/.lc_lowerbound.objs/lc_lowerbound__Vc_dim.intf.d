lib/lowerbound/vc_dim.mli: Problem
