module Rng = Lc_prim.Rng

type outcome = { q : float array; t_set : int array; r : int; attempts : int }

let violates_all ~q ~m =
  Array.for_all (fun row -> Array.exists2 (fun entry qi -> entry < qi) row q) m

let build rng ~m ~delta ~epsilon =
  let big_n = Array.length m in
  if big_n = 0 then invalid_arg "Adversary.build: empty matrix";
  let n = Array.length m.(0) in
  if epsilon <= 0.0 || delta < 0.0 then invalid_arg "Adversary.build: bad delta/epsilon";
  let ln_n = Float.log (float_of_int (max big_n 2)) in
  let r_f = Float.sqrt (5.0 /. epsilon *. delta *. float_of_int n *. ln_n) in
  let r = max 2 (min n (int_of_float (Float.ceil r_f))) in
  (* R'_u: indices of the r/2 smallest entries of row u. First confirm
     the hypothesis: the r smallest entries sum to <= delta. *)
  let half = max 1 (r / 2) in
  let smalls =
    Array.mapi
      (fun u row ->
        if Array.length row <> n then invalid_arg "Adversary.build: ragged matrix";
        let order = Array.init n (fun i -> i) in
        Array.sort (fun a b -> compare row.(a) row.(b)) order;
        let sum = ref 0.0 in
        for k = 0 to r - 1 do
          sum := !sum +. row.(order.(k))
        done;
        if !sum > delta +. 1e-9 then
          invalid_arg
            (Printf.sprintf
               "Adversary.build: row %d violates the hypothesis (smallest %d entries sum to %g > \
                delta = %g)"
               u r !sum delta);
        Array.sub order 0 half)
      m
  in
  (* Transversal of size 2 n ln N / r by rejection; existence is
     guaranteed by the probabilistic argument so retries terminate
     quickly in practice. *)
  let t_size = max 1 (min n (int_of_float (Float.ceil (2.0 *. float_of_int n *. ln_n /. float_of_int r)))) in
  let hits t_set =
    let mark = Array.make n false in
    Array.iter (fun i -> mark.(i) <- true) t_set;
    Array.for_all (fun r_u -> Array.exists (fun i -> mark.(i)) r_u) smalls
  in
  let rec draw attempts =
    if attempts > 100_000 then
      invalid_arg "Adversary.build: could not find a transversal (instance too small?)";
    let t_set = Rng.sample_distinct rng ~bound:n ~count:t_size in
    if hits t_set then (t_set, attempts) else draw (attempts + 1)
  in
  let t_set, attempts = draw 1 in
  let q = Array.make n 0.0 in
  let mass = epsilon /. float_of_int (Array.length t_set) in
  Array.iter (fun i -> q.(i) <- mass) t_set;
  { q; t_set; r; attempts }
