(** The Lemma 15 adversary: a query-distribution increment that violates
    every "good" probe specification.

    Setting of the lemma: [M] is an [N x n] nonnegative matrix (in the
    Theorem 13 proof, [M(u, i) = phi* / max_j P^(u)_t(i, j)] over the [N]
    possible next probe specifications). If every row has [r] entries
    summing to at most [delta], then there is a stochastic vector [q]
    with total mass [epsilon] such that every row has some entry strictly
    below the corresponding [q_i] — i.e. [q] rules out (constraint (2))
    every one of those probe specifications.

    The proof is probabilistic but fully constructive: take the [r/2]
    smallest entries of each row, find a transversal [T] of size
    [2 n ln N / r] by random sampling (success probability is positive,
    so retry), and put mass [epsilon / |T|] on [T]. [build] executes
    exactly that. *)

type outcome = {
  q : float array;  (** The increment; sums to [epsilon] (length [n]). *)
  t_set : int array;  (** The transversal [T] actually used. *)
  r : int;  (** The [r] of the lemma, [sqrt(5 eps^-1 delta n ln N)]. *)
  attempts : int;  (** Random transversal draws until one hit all rows. *)
}

val build :
  Lc_prim.Rng.t -> m:float array array -> delta:float -> epsilon:float -> outcome
(** [build rng ~m ~delta ~epsilon] runs the construction. Raises
    [Invalid_argument] if some row fails the lemma's hypothesis (no [r]
    entries summing to [<= delta]) or if the derived [r] or [|T|]
    degenerate (instance too small for the asymptotic recipe — the lemma
    is, after all, an asymptotic statement). *)

val violates_all : q:float array -> m:float array array -> bool
(** [violates_all ~q ~m]: every row [u] has some [i] with
    [m.(u).(i) < q.(i)] — the lemma's conclusion. *)
