module Rng = Lc_prim.Rng

type sample = { base : int array; sets : int array array }

let draw rng ~marginals =
  let n = Probe_spec.rows marginals and s = Probe_spec.cols marginals in
  let base = ref [] in
  let sets = Array.make n [] in
  for j = s - 1 downto 0 do
    let p_max = ref 0.0 in
    for i = 0 to n - 1 do
      let v = Probe_spec.get marginals i j in
      if v > 1.0 +. 1e-9 then invalid_arg "Coupling.draw: marginal exceeds 1";
      if v > !p_max then p_max := v
    done;
    if !p_max > 0.0 && Rng.float rng < !p_max then begin
      base := j :: !base;
      for i = 0 to n - 1 do
        let ratio = Probe_spec.get marginals i j /. !p_max in
        if Rng.float rng < ratio then sets.(i) <- j :: sets.(i)
      done
    end
  done;
  { base = Array.of_list !base; sets = Array.map Array.of_list sets }

let union_size sample =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun set -> Array.iter (fun j -> if not (Hashtbl.mem seen j) then Hashtbl.add seen j ()) set)
    sample.sets;
  Hashtbl.length seen

let expected_union_bound marginals = Probe_spec.col_max_sum marginals
