(** Lemma 21's coupling: run [n] product-space probes while touching as
    few distinct cells as possible.

    Given [n] product distributions (cell [j] joins [J_i] independently
    with probability [P(i, j)]), there is a joint law for
    [(L_1, ..., L_n)] with the correct marginals in which

    {[ E[| L_1 ∪ ... ∪ L_n |] <= sum_j max_i P(i, j) ]}

    Construction: flip one coin per cell with the {e maximum} probability
    [p~_j = max_i P(i, j)] to form a base set [B], then thin [B]
    independently per instance with ratio [P(i, j) / p~_j]. The union is
    contained in [B], whose expected size is exactly the bound. This is
    what lets the communication game charge the table's response only
    [b * sum_j max_i P_t(i, j)] bits per round. *)

type sample = {
  base : int array;  (** The shared base set [B] (sorted). *)
  sets : int array array;  (** [L_i] for each instance (each sorted). *)
}

val draw : Lc_prim.Rng.t -> marginals:Probe_spec.t -> sample
(** [draw rng ~marginals] samples the coupled family; [marginals.(i).(j)]
    is [Pr[j ∈ J_i]], each entry in [0, 1]. *)

val union_size : sample -> int
(** [|L_1 ∪ ... ∪ L_n|]. *)

val expected_union_bound : Probe_spec.t -> float
(** The right-hand side [sum_j max_i P(i, j)]. *)
