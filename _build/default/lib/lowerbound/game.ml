type round = {
  step : int;
  info_bound_bits : float;
  sampled_bits : float;
  row_stochastic : bool;
  contention_ok : bool;
  r_t : float;
  good : bool;
}

type t = { rounds : round array; total_info_bits : float; required_bits : float }

(* "Good" per the Theorem 13 proof: some r_t rows u (here: columns i of
   the single announced spec) have sum_i phi / max_j P(i, j) <= phi * s.
   Greedily summing the smallest reciprocals decides existence. *)
let is_good spec ~phi ~r_t ~s =
  let n = Probe_spec.rows spec in
  let r_t_int = int_of_float (Float.ceil r_t) in
  if r_t_int > n then false
  else begin
    let entries =
      Array.init n (fun i ->
          let mx = Probe_spec.row_max spec i in
          if mx > 0.0 then phi /. mx else Float.infinity)
    in
    Array.sort compare entries;
    let sum = ref 0.0 in
    for k = 0 to r_t_int - 1 do
      sum := !sum +. entries.(k)
    done;
    !sum <= (phi *. float_of_int s) +. 1e-9
  end

type adaptive_round = {
  a_step : int;
  a_good : bool;
  a_attacked : bool;
  a_q_mass : float;
  a_contention_ok : bool;
  a_info_bound_bits : float;
}

type adaptive = {
  a_rounds : adaptive_round array;
  final_q : float array;
  rounds_killed : int;
}

let play_adaptive rng (inst : Lc_dict.Instance.t) ~queries ~phi ~bits ~rounds =
  ignore rng;
  let n = Array.length queries in
  let b = float_of_int bits in
  let q = Array.make n 0.0 in
  let epsilon = 1.0 /. float_of_int rounds in
  let played =
    Array.init rounds (fun step ->
        let spec = Probe_spec.of_instance inst ~queries ~step in
        let info_bound = b *. Probe_spec.col_max_sum spec in
        (* A round is attackable ("good" in the proof's dichotomy) when
           some query's probe is concentrated enough that a stochastic q
           can break constraint (2): max_j P(i, j) > phi. *)
        let good =
          let found = ref false in
          for i = 0 to n - 1 do
            if Probe_spec.row_max spec i > phi then found := true
          done;
          !found
        in
        (* Attack: pile the round's epsilon budget onto the single most
           concentrated query, preferring one the adversary already
           invested in (mass only ever increases, so earlier violations
           stay violated — the proof's consistency property). *)
        let attacked =
          good
          &&
          let best = ref 0 and best_key = ref (-1.0, -1.0) in
          for i = 0 to n - 1 do
            let key = (Probe_spec.row_max spec i, q.(i)) in
            if key > !best_key then begin
              best_key := key;
              best := i
            end
          done;
          q.(!best) <- Float.min 1.0 (q.(!best) +. epsilon);
          true
        in
        let round =
          {
            a_step = step;
            a_good = good;
            a_attacked = attacked;
            a_q_mass = Array.fold_left ( +. ) 0.0 q;
            a_contention_ok = Probe_spec.contention_ok spec ~q ~phi;
            a_info_bound_bits = info_bound;
          }
        in
        round)
  in
  (* Re-audit every round against the final q: raising mass later can
     retroactively rule out earlier specifications too. *)
  let killed = ref 0 in
  Array.iter
    (fun (r : adaptive_round) ->
      let spec = Probe_spec.of_instance inst ~queries ~step:r.a_step in
      if not (Probe_spec.contention_ok spec ~q ~phi) then incr killed)
    played;
  { a_rounds = played; final_q = Array.copy q; rounds_killed = !killed }

let play rng (inst : Lc_dict.Instance.t) ~queries ~q ~phi ~bits ~rounds ~samples =
  if Array.length q <> Array.length queries then invalid_arg "Game.play: |q| <> |queries|";
  let n = Array.length queries in
  let s = inst.space in
  let b = float_of_int bits in
  let prev_bits = ref (Float.max 1.0 (b *. phi *. float_of_int s)) in
  let played =
    Array.init rounds (fun step ->
        let spec = Probe_spec.of_instance inst ~queries ~step in
        let info_bound = b *. Probe_spec.col_max_sum spec in
        (* Coupled-sample estimate: marginals are the Lemma 19 product
           inclusion probabilities min(P, 1/2). *)
        let marginals =
          Probe_spec.make
            (Array.init n (fun i ->
                 Array.init s (fun j -> Float.min (Probe_spec.get spec i j) 0.5)))
        in
        let acc = ref 0.0 in
        for _ = 1 to samples do
          let sample = Coupling.draw rng ~marginals in
          acc := !acc +. float_of_int (Coupling.union_size sample)
        done;
        let sampled_bits = b *. !acc /. float_of_int samples in
        (* ln N_t with N_t = 2^{C_{t-1}}. *)
        let ln_nt = Float.max 1.0 (!prev_bits *. Float.log 2.0) in
        let r_t =
          Float.sqrt (5.0 *. float_of_int rounds *. phi *. float_of_int s *. float_of_int n *. ln_nt)
        in
        let round =
          {
            step;
            info_bound_bits = info_bound;
            sampled_bits;
            row_stochastic = Probe_spec.row_stochastic_ok spec;
            contention_ok = Probe_spec.contention_ok spec ~q ~phi;
            r_t;
            good = is_good spec ~phi ~r_t ~s;
          }
        in
        prev_bits := Float.max 1.0 info_bound;
        round)
  in
  {
    rounds = played;
    total_info_bits = Array.fold_left (fun acc r -> acc +. r.info_bound_bits) 0.0 played;
    required_bits = float_of_int n *. Float.pow 2.0 (-2.0 *. float_of_int rounds);
  }
