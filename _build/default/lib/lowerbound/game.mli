(** The Lemma 14 communication game, played by a real dictionary.

    [n] parallel instances of the query algorithm form the player [A'']:
    at round [t] it announces the probe-specification matrix [P_t]
    (extracted from the structure's exact probe plans on a fixed query
    set), and the black-box [B] answers with at most
    [b * sum_j max_i P_t(i, j)] bits in expectation — realised here by
    sampling the Lemma 21 coupling and charging [b] bits per distinct
    probed cell.

    Each round also evaluates the Theorem 13 proof's bookkeeping: the
    constraint checks (1) and (2) against a query distribution [q], the
    round's [r_t], and whether the announced specification is "good"
    (could be ruled out by the adversary) or "bad" (information-starved,
    inequality (4)). Running this against the low-contention dictionary
    shows concretely how balanced probes cap the information flow. *)

type round = {
  step : int;
  info_bound_bits : float;  (** [b * sum_j max_i P_t(i,j)]. *)
  sampled_bits : float;  (** Coupled-sample estimate of the same. *)
  row_stochastic : bool;  (** Constraint (1). *)
  contention_ok : bool;  (** Constraint (2) against [q] and [phi]. *)
  r_t : float;  (** The proof's threshold [sqrt(5 t* phi s n ln N_t)]. *)
  good : bool;
      (** Whether some [r_t]-subset of rows of [M^(t)] has
          [sum M(u,i) <= phi * s] — a "good" spec the adversary would
          kill. *)
}

type t = {
  rounds : round array;
  total_info_bits : float;  (** Sum of per-round bounds. *)
  required_bits : float;  (** [n * 2^(-2 tstar)], Lemma 14's requirement. *)
}

val play :
  Lc_prim.Rng.t ->
  Lc_dict.Instance.t ->
  queries:int array ->
  q:float array ->
  phi:float ->
  bits:int ->
  rounds:int ->
  samples:int ->
  t
(** [play rng inst ~queries ~q ~phi ~bits ~rounds ~samples] runs the
    game; [q.(i)] is the probability of query [queries.(i)], [phi] the
    contention bound being audited, [samples] the number of coupling
    draws behind [sampled_bits]. *)

(** {2 The adaptive adversary loop}

    The actual engine of the Theorem 13 proof: at every round the
    adversary inspects the announced probe specification and, if it is
    "good" (concentrated enough to be informative), raises the query
    distribution by [epsilon = 1/rounds] mass placed exactly where the
    specification concentrates — after which constraint (2) rules that
    specification out. Against a balanced structure every round is
    "bad" and the adversary never has to move; against an index
    structure (deterministic probes) it kills round after round. *)

type adaptive_round = {
  a_step : int;
  a_good : bool;  (** Was the announced spec attackable? *)
  a_attacked : bool;  (** Did the adversary raise [q] this round? *)
  a_q_mass : float;  (** Total adversary mass after the round. *)
  a_contention_ok : bool;
      (** Constraint (2) for this round's spec against the {e updated}
          [q] — [false] means the adversary successfully ruled it out. *)
  a_info_bound_bits : float;
}

type adaptive = {
  a_rounds : adaptive_round array;
  final_q : float array;
  rounds_killed : int;  (** Rounds whose constraint (2) ended violated. *)
}

val play_adaptive :
  Lc_prim.Rng.t ->
  Lc_dict.Instance.t ->
  queries:int array ->
  phi:float ->
  bits:int ->
  rounds:int ->
  adaptive
(** [play_adaptive rng inst ~queries ~phi ~bits ~rounds] runs the
    adversary loop with per-round budget [1/rounds]. *)
