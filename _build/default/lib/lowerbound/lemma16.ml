let costs p =
  let n = Probe_spec.rows p in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let mx = Probe_spec.row_max p i in
    if mx > 0.0 then acc := (1.0 /. mx, i) :: !acc
  done;
  List.sort compare !acc

let largest_r p ~budget =
  let rec take acc budget_left = function
    | [] -> List.rev acc
    | (cost, i) :: rest ->
      if cost <= budget_left then take (i :: acc) (budget_left -. cost) rest
      else List.rev acc
  in
  Array.of_list (take [] (float_of_int budget) (costs p))

let fractional_bound p ~budget =
  (* Fill x_i = 1 in increasing cost order; the first row that does not
     fit contributes the leftover budget fraction. *)
  let rec fill acc budget_left = function
    | [] -> acc
    | (cost, _) :: rest ->
      if cost <= budget_left then fill (acc +. 1.0) (budget_left -. cost) rest
      else acc +. (budget_left /. cost)
  in
  fill 0.0 (float_of_int budget) (costs p)

let holds p ~budget =
  let r = largest_r p ~budget in
  Probe_spec.col_max_sum p <= float_of_int (Array.length r) +. 1.0 +. 1e-9

let holds_strict p ~budget =
  let r = largest_r p ~budget in
  Probe_spec.col_max_sum p <= float_of_int (Array.length r) +. 1e-9

let holds_fractional p ~budget =
  Probe_spec.col_max_sum p <= fractional_bound p ~budget +. 1e-9
