(** Lemma 16: the information charge is bounded by the size of the
    "cheap" row set.

    For any row-substochastic [n x s] matrix [P], let [R] be the largest
    subset of rows with [sum_{i in R} 1 / max_j P(i,j) <= s]. The paper
    concludes

    {[ sum_j max_i P(i, j) <= |R| ]}

    {b Erratum observed during reproduction.} The proof maximises
    [sum_i x_i] subject to [sum_i x_i / max_j P(i,j) <= s] and
    [x_i <= 1], and asserts the optimum is the integral one ([x_i = 1] on
    [R]). The optimum of that LP is the {e fractional} knapsack solution,
    which can exceed [|R|] by less than one unit (take all rows of [R]
    plus a fraction of the next). Example: ten rows of max 0.3 with
    [s = 2] give [sum_j max_i = 0.6] but [R] is empty. The corrected
    inequality

    {[ sum_j max_i P(i, j) <= |R| + 1 ]}

    is what {!holds} checks (and is all the Theorem 13 proof needs — the
    thresholds [r_t] there are far larger than 1). {!holds_strict}
    checks the literal statement; the T7 experiment reports how often the
    strict form fails on random matrices. *)

val largest_r : Probe_spec.t -> budget:int -> int array
(** [largest_r p ~budget] is a maximum-size row set [R] with
    [sum_{i in R} 1 / max_j P(i,j) <= budget] (greedy on the smallest
    reciprocals, which is optimal for this unit-profit knapsack). Rows
    whose maximum is 0 are never included. *)

val fractional_bound : Probe_spec.t -> budget:int -> float
(** The fractional knapsack optimum — the tight upper bound on
    [sum_j max_i P(i,j)] that the proof actually establishes. *)

val holds : Probe_spec.t -> budget:int -> bool
(** The corrected inequality [col_max_sum <= |R| + 1]. *)

val holds_strict : Probe_spec.t -> budget:int -> bool
(** The paper's literal inequality [col_max_sum <= |R|]. *)

val holds_fractional : Probe_spec.t -> budget:int -> bool
(** [col_max_sum <= fractional_bound] — always true; tested as the sanity
    anchor. *)
