module Rng = Lc_prim.Rng
module Spec = Lc_cellprobe.Spec

type t = { n : int; s : int; m : float array array }

let make rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Probe_spec.make: empty matrix";
  let s = Array.length rows.(0) in
  let m =
    Array.map
      (fun row ->
        if Array.length row <> s then invalid_arg "Probe_spec.make: ragged matrix";
        Array.iter
          (fun v ->
            if v < 0.0 || not (Float.is_finite v) then
              invalid_arg "Probe_spec.make: entries must be nonnegative and finite")
          row;
        Array.copy row)
      rows
  in
  { n; s; m }

let rows t = t.n
let cols t = t.s
let get t i j = t.m.(i).(j)

let of_instance (inst : Lc_dict.Instance.t) ~queries ~step =
  let s = inst.space in
  let m =
    Array.map
      (fun x ->
        let row = Array.make s 0.0 in
        let plan = inst.spec x in
        if step < Spec.probes plan then
          Seq.iter (fun (j, p) -> row.(j) <- row.(j) +. p) (Spec.step_cells plan.(step));
        row)
      queries
  in
  { n = Array.length queries; s; m }

let random rng ~rows ~cols ~support =
  if support < 1 || support > cols then invalid_arg "Probe_spec.random: bad support";
  let m =
    Array.init rows (fun _ ->
        let row = Array.make cols 0.0 in
        let cells = Rng.sample_distinct rng ~bound:cols ~count:support in
        (* Random sub-stochastic mass over the chosen cells. *)
        let total_mass = Rng.float rng in
        let weights = Array.init support (fun _ -> 0.000001 +. Rng.float rng) in
        let wsum = Array.fold_left ( +. ) 0.0 weights in
        Array.iteri (fun k j -> row.(j) <- total_mass *. weights.(k) /. wsum) cells;
        row)
  in
  { n = rows; s = cols; m }

let row_sum t i = Array.fold_left ( +. ) 0.0 t.m.(i)
let row_max t i = Array.fold_left Float.max 0.0 t.m.(i)

let col_max_sum t =
  let acc = ref 0.0 in
  for j = 0 to t.s - 1 do
    let best = ref 0.0 in
    for i = 0 to t.n - 1 do
      if t.m.(i).(j) > !best then best := t.m.(i).(j)
    done;
    acc := !acc +. !best
  done;
  !acc

let row_stochastic_ok t =
  let ok = ref true in
  for i = 0 to t.n - 1 do
    if row_sum t i > 1.0 +. 1e-9 then ok := false
  done;
  !ok

let contention_ok t ~q ~phi =
  if Array.length q <> t.n then invalid_arg "Probe_spec.contention_ok: |q| <> rows";
  let ok = ref true in
  for i = 0 to t.n - 1 do
    if q.(i) > 0.0 && row_max t i > (phi /. q.(i)) +. 1e-12 then ok := false
  done;
  !ok
