(** Probe-specification matrices — the [P_t] of Sections 1.1 and 3.

    An [n x s] nonnegative matrix: [P(i, j)] is the probability that
    query instance [i] probes cell [j] at the round in question. The
    lower bound constrains each row by (1) [sum_j P(i,j) <= 1] and (2)
    [max_j P(i,j) <= phi* / q_i], and charges the round
    [b * sum_j max_i P(i,j)] bits of information. *)

type t

val make : float array array -> t
(** [make rows] copies an [n x s] matrix; all entries must be
    nonnegative and finite, rows non-ragged. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float

val of_instance : Lc_dict.Instance.t -> queries:int array -> step:int -> t
(** The matrix actually induced by a dictionary: row [i] is the step-
    [step] probe distribution of query [queries.(i)] (all-zero if that
    query's plan is shorter). This is how the game is driven by a real
    structure. *)

val random : Lc_prim.Rng.t -> rows:int -> cols:int -> support:int -> t
(** A random row-substochastic matrix in which every row spreads its mass
    over [support] uniformly chosen cells; fuzzing input for the lemma
    tests. *)

val row_sum : t -> int -> float
val row_max : t -> int -> float

val col_max_sum : t -> float
(** [sum_j max_i P(i, j)] — the information-charge functional. *)

val row_stochastic_ok : t -> bool
(** Constraint (1) for every row. *)

val contention_ok : t -> q:float array -> phi:float -> bool
(** Constraint (2): [max_j P(i,j) <= phi / q_i] for every row [i] with
    [q_i > 0]. *)
