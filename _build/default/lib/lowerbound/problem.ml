type t = { queries : int; datasets : int; table : Bytes.t }

let idx t x s = (x * t.datasets) + s

let make ~queries ~datasets ~f =
  if queries < 1 || datasets < 1 then invalid_arg "Problem.make: empty problem";
  let table = Bytes.make (queries * datasets) '\000' in
  let t = { queries; datasets; table } in
  for x = 0 to queries - 1 do
    for s = 0 to datasets - 1 do
      if f x s then Bytes.set table (idx t x s) '\001'
    done
  done;
  t

let queries t = t.queries
let datasets t = t.datasets
let eval t x s = Bytes.get t.table (idx t x s) = '\001'

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

(* Unrank the [rank]-th k-subset of [0, universe) in lexicographic order
   of sorted element lists. *)
let subset_of_rank ~universe ~k rank =
  if rank < 0 || rank >= binomial universe k then invalid_arg "Problem.subset_of_rank: bad rank";
  let out = Array.make k 0 in
  let rec go slot lowest rank =
    if slot = k then ()
    else begin
      (* Count subsets starting at each candidate element. *)
      let rec find x rank =
        let cnt = binomial (universe - x - 1) (k - slot - 1) in
        if rank < cnt then (x, rank) else find (x + 1) (rank - cnt)
      in
      let x, rank = find lowest rank in
      out.(slot) <- x;
      go (slot + 1) (x + 1) rank
    end
  in
  go 0 0 rank;
  out

let membership ~universe ~k =
  let datasets = binomial universe k in
  if datasets > 1 lsl 20 then invalid_arg "Problem.membership: instance too large";
  if datasets = 0 then invalid_arg "Problem.membership: k exceeds universe";
  (* Precompute membership bitsets per dataset. *)
  let contains = Array.make datasets [||] in
  for s = 0 to datasets - 1 do
    contains.(s) <- subset_of_rank ~universe ~k s
  done;
  make ~queries:universe ~datasets ~f:(fun x s -> Array.exists (fun y -> y = x) contains.(s))

let parity ~universe =
  if universe < 1 || universe > 16 then invalid_arg "Problem.parity: universe outside [1, 16]";
  let size = 1 lsl universe in
  let popcount_parity v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc lxor (v land 1)) in
    go v 0
  in
  make ~queries:size ~datasets:size ~f:(fun x s -> popcount_parity (x land s) = 1)
