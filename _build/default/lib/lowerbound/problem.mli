(** Finite data-structure problems.

    Section 1.1: a data structure problem is a function
    [f : Q x D -> {0,1}]. For the lower-bound machinery we only ever need
    {e small} explicit instances — VC-dimension computation is
    exponential in the shattered-set size — so a problem here is a dense
    boolean matrix with rows indexed by queries and columns by data
    sets. *)

type t

val make : queries:int -> datasets:int -> f:(int -> int -> bool) -> t
(** [make ~queries ~datasets ~f] tabulates [f query dataset]. *)

val queries : t -> int
val datasets : t -> int

val eval : t -> int -> int -> bool
(** [eval t x s] is [f(x, S_s)]. *)

val membership : universe:int -> k:int -> t
(** The membership problem [Q = [universe]],
    [D = (universe choose k)] enumerated in lexicographic order of the
    k-subsets; [f(x, S) = x ∈ S]. The paper notes its VC-dimension is
    exactly [k]. Sizes are guarded: [universe choose k] must stay below
    [2^20]. *)

val subset_of_rank : universe:int -> k:int -> int -> int array
(** The [i]-th k-subset of [[universe]] in the enumeration used by
    {!membership} (combinatorial unranking). *)

val parity : universe:int -> t
(** The inner-product-parity problem: queries and datasets are bitmasks
    over [universe] bits and [f(x, S) = parity (x land S)]; a
    high-VC-dimension problem that is {e not} membership, exercising
    Definition 11 beyond the paper's running example. *)
