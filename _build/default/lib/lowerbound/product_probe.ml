module Rng = Lc_prim.Rng

type result = Probed of int | Failed

let inclusion_probability ~p i = Float.min p.(i) 0.5

let simulate_sparse rng ~support =
  let total = Array.fold_left (fun acc (_, pi) -> acc +. pi) 0.0 support in
  if Float.abs (total -. 1.0) > 1e-6 then
    invalid_arg "Product_probe.simulate_sparse: probabilities must sum to 1";
  (* Independently probe each cell of the support (zero-probability
     cells can never be probed, so skipping them is exact). *)
  let chosen = ref [] in
  Array.iter
    (fun (i, pi) ->
      if pi < 0.0 then invalid_arg "Product_probe.simulate_sparse: negative probability";
      if Rng.float rng < Float.min pi 0.5 then chosen := (i, pi) :: !chosen)
    support;
  match !chosen with
  | [ (i, pi) ] ->
    (* Reject with eps_i = min(p_i, 1 - p_i) to equalise the two cases
       of the lemma's proof. *)
    let eps = Float.min pi (1.0 -. pi) in
    if Rng.float rng < eps then Failed else Probed i
  | _ -> Failed

let simulate rng ~p =
  simulate_sparse rng
    ~support:(Array.of_seq (Seq.filter (fun (_, pi) -> pi > 0.0)
                              (Seq.mapi (fun i pi -> (i, pi)) (Array.to_seq p))))

let success_probability_lower_bound = 0.25
