(** Lemma 19's product-space simulation of a single cell-probe.

    A randomized probe [I] with distribution [p] over [s] cells is
    simulated by probing every cell {e independently} — cell [i] with
    probability [min(p_i, 1/2)] — and declaring failure unless exactly
    one cell was probed (with an extra rejection tweak that makes the
    conditional law exactly [p]). The simulation fails with probability
    at most 3/4, independently across steps, which is where the
    [2^{-2t*}] survival factor in Lemma 14's information requirement
    comes from. *)

type result =
  | Probed of int  (** Success: the simulated probe hit this cell. *)
  | Failed  (** The step failed; the simulating algorithm returns [⊥]. *)

val simulate : Lc_prim.Rng.t -> p:float array -> result
(** [simulate rng ~p] runs one simulation step. [p] must be a probability
    vector (nonnegative, summing to 1 within tolerance) with at most one
    entry exceeding 1/2 — automatic for a probability vector. *)

val simulate_sparse : Lc_prim.Rng.t -> support:(int * float) array -> result
(** [simulate_sparse rng ~support] is {!simulate} on a sparsely
    represented vector (cells absent from [support] have probability 0
    and are never probed, so iterating the support is exact). Used to
    run the simulation against real probe plans whose tables have tens
    of thousands of cells. *)

val inclusion_probability : p:float array -> int -> float
(** The product-space marginal [min(p_i, 1/2)] of cell [i]; exposed so
    tests and the coupling can build the exact product law. *)

val success_probability_lower_bound : float
(** The lemma's guarantee: 1/4. *)
