type series = {
  tstar : int;
  log2_bounds : float array;
  log2_total : float;
  log2_required : float;
  feasible : bool;
}

let log2 x = Float.log x /. Float.log 2.0

let log2_coeffs ~b ~phi_s ~log2_n ~tstar =
  if b <= 0.0 || phi_s <= 0.0 then invalid_arg "Recursion: b and phi_s must be positive";
  let la1 = log2 (b *. phi_s) in
  let la = log2 (5.0 *. Float.log 2.0 *. b *. b *. float_of_int tstar *. phi_s) +. log2_n in
  (la1, la)

(* log2 (sum 2^l_i), stable. *)
let log2_sum ls =
  let mx = Array.fold_left Float.max neg_infinity ls in
  if mx = neg_infinity then neg_infinity
  else mx +. log2 (Array.fold_left (fun acc l -> acc +. Float.pow 2.0 (l -. mx)) 0.0 ls)

let series ~b ~phi_s ~log2_n ~tstar =
  if tstar < 1 then invalid_arg "Recursion.series: tstar must be >= 1";
  let la1, la = log2_coeffs ~b ~phi_s ~log2_n ~tstar in
  let log2_bounds = Array.make tstar 0.0 in
  log2_bounds.(0) <- la1;
  for t = 1 to tstar - 1 do
    log2_bounds.(t) <- (la +. log2_bounds.(t - 1)) /. 2.0
  done;
  let log2_total = log2_sum log2_bounds in
  let log2_required = log2_n -. (2.0 *. float_of_int tstar) in
  { tstar; log2_bounds; log2_total; log2_required; feasible = log2_total >= log2_required }

let min_rounds ~b ~phi_s ~log2_n =
  let rec go tstar =
    if tstar > 4096 then 4096
    else if (series ~b ~phi_s ~log2_n ~tstar).feasible then tstar
    else go (tstar + 1)
  in
  go 1

let closed_form_log2_bound ~b ~phi_s ~log2_n ~tstar =
  let la1, la = log2_coeffs ~b ~phi_s ~log2_n ~tstar in
  let terms =
    Array.init tstar (fun i ->
        let t = i + 1 in
        let e = Float.pow 2.0 (1.0 -. float_of_int t) in
        (e *. la1) +. ((1.0 -. e) *. la))
  in
  log2_sum terms
