(** The Theorem 13 information recurrence, solved in log-space.

    With [a1 = b phi* s] and [a = (5 ln 2) b^2 t* (phi* s) n], the proof
    derives

    {[ E[C_1] <= a1        E[C_t] <= sqrt (a * E[C_{t-1}]) ]}

    while a successful algorithm must collect [n * 2^(-2 tstar)] bits
    within [tstar] rounds. For [b <= polylog n] and
    [phi* <= polylog(n)/s] this forces [tstar = Omega(log log n)].
    {!min_rounds} finds the smallest feasible [tstar] for concrete [n],
    producing the curve of experiment F3 (each squaring of [log n] adds
    roughly one round).

    All arithmetic is done on base-2 logarithms so that the [n = 2^4096]
    end of the curve — where the log-log-law is cleanest — does not
    overflow IEEE doubles. *)

type series = {
  tstar : int;  (** The number of rounds assumed. *)
  log2_bounds : float array;  (** [log2 E[C_t]] upper bounds, [t = 1 .. tstar]. *)
  log2_total : float;  (** log2 of their sum — the most the algorithm can learn. *)
  log2_required : float;  (** [log2 n - 2 tstar] — what it must learn. *)
  feasible : bool;  (** [total >= required]. *)
}

val series : b:float -> phi_s:float -> log2_n:float -> tstar:int -> series
(** [series ~b ~phi_s ~log2_n ~tstar] evaluates the recurrence; [phi_s]
    is the product [phi* * s] (a perfectly balanced structure has
    [phi_s = O(1)], a polylog-factor-suboptimal one [phi_s = polylog n]);
    [b] and [phi_s] are given linearly (they are polylog-sized). *)

val min_rounds : b:float -> phi_s:float -> log2_n:float -> int
(** Smallest [tstar >= 1] whose {!series} is feasible (the required bits
    shrink as [4^-tstar] while the bound grows with [tstar], so this is
    well-defined; capped at 4096). *)

val closed_form_log2_bound : b:float -> phi_s:float -> log2_n:float -> tstar:int -> float
(** log2 of the paper's closed form [sum_t a1^(2^(1-t)) a^(1-2^(1-t))] —
    cross-checked against {!series} by the tests. *)
