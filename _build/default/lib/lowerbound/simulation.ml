module Rng = Lc_prim.Rng
module Spec = Lc_cellprobe.Spec

type step_stats = { step : int; success_rate : float; trials : int }

let sparse_of_step st = Array.of_seq (Spec.step_cells st)

let step_success rng (inst : Lc_dict.Instance.t) ~queries ~trials =
  Array.init inst.max_probes (fun step ->
      let ok = ref 0 and ran = ref 0 in
      for _ = 1 to trials do
        let x = Rng.choose rng queries in
        let plan = inst.spec x in
        if step < Spec.probes plan then begin
          incr ran;
          match Product_probe.simulate_sparse rng ~support:(sparse_of_step plan.(step)) with
          | Product_probe.Probed _ -> incr ok
          | Product_probe.Failed -> ()
        end
      done;
      {
        step;
        success_rate = (if !ran = 0 then 1.0 else float_of_int !ok /. float_of_int !ran);
        trials = !ran;
      })

type completion = { depth : int; completion_rate : float; lemma_floor : float }

let completion_curve rng (inst : Lc_dict.Instance.t) ~queries ~trials =
  Array.init inst.max_probes (fun i ->
      let depth = i + 1 in
      let ok = ref 0 in
      for _ = 1 to trials do
        let x = Rng.choose rng queries in
        let plan = inst.spec x in
        let steps = min depth (Spec.probes plan) in
        let alive = ref true in
        for t = 0 to steps - 1 do
          if !alive then
            match Product_probe.simulate_sparse rng ~support:(sparse_of_step plan.(t)) with
            | Product_probe.Probed _ -> ()
            | Product_probe.Failed -> alive := false
        done;
        if !alive then incr ok
      done;
      {
        depth;
        completion_rate = float_of_int !ok /. float_of_int trials;
        lemma_floor = Float.pow 0.25 (float_of_int depth);
      })

type round_stats = {
  r_step : int;
  mean_successes : float;
  mean_distinct_cells : float;
  info_bound : float;
}

let parallel_round rng (inst : Lc_dict.Instance.t) ~queries ~step ~trials =
  let n = Array.length queries in
  let spec = Probe_spec.of_instance inst ~queries ~step in
  let marginals =
    Probe_spec.make
      (Array.init n (fun i ->
           Array.init inst.space (fun j -> Float.min (Probe_spec.get spec i j) 0.5)))
  in
  let succ_acc = ref 0.0 and cells_acc = ref 0.0 in
  for _ = 1 to trials do
    let sample = Coupling.draw rng ~marginals in
    cells_acc := !cells_acc +. float_of_int (Coupling.union_size sample);
    Array.iteri
      (fun i l_i ->
        match l_i with
        | [| j |] ->
          (* The Lemma 19 acceptance coin with this instance's true
             probability on the drawn cell. *)
          let pi = Probe_spec.get spec i j in
          let eps = Float.min pi (1.0 -. pi) in
          if Rng.float rng >= eps then succ_acc := !succ_acc +. 1.0
        | _ -> ())
      sample.sets
  done;
  {
    r_step = step;
    mean_successes = !succ_acc /. float_of_int trials;
    mean_distinct_cells = !cells_acc /. float_of_int trials;
    info_bound = Probe_spec.col_max_sum marginals;
  }
