(** The appendix's simulation pipeline (Lemmas 19 and 20), executable.

    Lemma 19 replaces each randomized cell-probe by a product-space
    probe that fails with probability at most 3/4; Lemma 20 runs [n]
    instances of the resulting algorithm [A'] in parallel, so after
    [tstar] steps an expected [n * 2^(-2 tstar)] instances have
    completed — the information requirement Lemma 14 then cashes in.

    This module runs both against the {e real} probe plans of any
    dictionary: per-step product-space success rates (all must be at
    least 1/4), the completion curve of whole plans truncated at depth
    [k] (lower-bounded by [4^-k]), and the per-step statistics of [n]
    coupled parallel instances (Lemma 21 keeps their union of probed
    cells at the information bound). *)

type step_stats = {
  step : int;
  success_rate : float;  (** Fraction of simulated probes that did not fail. *)
  trials : int;
}

val step_success :
  Lc_prim.Rng.t -> Lc_dict.Instance.t -> queries:int array -> trials:int -> step_stats array
(** Per-step product-space success over queries sampled uniformly from
    [queries]; Lemma 19 guarantees every entry is at least 1/4. *)

type completion = {
  depth : int;  (** Plan prefix length simulated. *)
  completion_rate : float;  (** Fraction of runs with no failure. *)
  lemma_floor : float;  (** The [4^-depth] guarantee. *)
}

val completion_curve :
  Lc_prim.Rng.t -> Lc_dict.Instance.t -> queries:int array -> trials:int -> completion array
(** Simulate whole plans truncated at each depth [1 .. max probes]. *)

type round_stats = {
  r_step : int;
  mean_successes : float;
      (** Of the [n] coupled parallel instances, how many simulated
          their probe without failure (Lemma 20's surviving
          instances). *)
  mean_distinct_cells : float;  (** [|union L_i|] per Lemma 21. *)
  info_bound : float;  (** [sum_j max_i P(i, j)], the Lemma 21 ceiling. *)
}

val parallel_round :
  Lc_prim.Rng.t -> Lc_dict.Instance.t -> queries:int array -> step:int -> trials:int -> round_stats
(** One round of the [n]-instance parallel simulation [A''], drawn
    through the Lemma 21 coupling: per instance, the coupled set [L_i]
    plays the product-space probe (success iff [|L_i| = 1] and the
    acceptance coin). *)
