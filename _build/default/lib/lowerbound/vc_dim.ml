let shatter_patterns p qs =
  let k = Array.length qs in
  if k > 20 then invalid_arg "Vc_dim: query set too large";
  let seen = Hashtbl.create (1 lsl min k 16) in
  for s = 0 to Problem.datasets p - 1 do
    let pattern = ref 0 in
    Array.iteri (fun i x -> if Problem.eval p x s then pattern := !pattern lor (1 lsl i)) qs;
    if not (Hashtbl.mem seen !pattern) then Hashtbl.add seen !pattern ()
  done;
  Hashtbl.length seen

let is_shattered p qs = shatter_patterns p qs = 1 lsl Array.length qs

(* Enumerate size-k subsets of [0, q) with early exit via an exception. *)
exception Found of int array

let find_shattered p ~size =
  let q = Problem.queries p in
  if size = 0 then Some [||]
  else if size > q then None
  else begin
    let current = Array.make size 0 in
    let rec go slot lowest =
      if slot = size then begin
        if is_shattered p current then raise (Found (Array.copy current))
      end
      else
        for x = lowest to q - (size - slot) do
          current.(slot) <- x;
          go (slot + 1) (x + 1)
        done
    in
    try
      go 0 0;
      None
    with Found w -> Some w
  end

let vc_dim ?limit p =
  let trivial =
    let rec lg acc v = if v <= 1 then acc else lg (acc + 1) (v / 2) in
    lg 0 (Problem.datasets p)
  in
  let limit = match limit with Some l -> min l trivial | None -> trivial in
  let rec search k =
    if k > limit then limit
    else
      match find_shattered p ~size:k with
      | Some _ -> search (k + 1)
      | None -> k - 1
  in
  search 1
