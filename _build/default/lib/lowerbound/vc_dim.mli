(** VC-dimension of data structure problems — Definition 11.

    [VC-dim(f)] is the largest [n] such that some set of [n] queries is
    {e shattered}: every one of the [2^n] boolean assignments is realised
    by some data set. Membership on [k]-subsets has VC-dimension exactly
    [k] (experiment T8 checks this computationally), which is what lets
    Theorem 13 specialise to the membership problem.

    The search is exponential; instances are expected to be small (a few
    dozen queries). *)

val is_shattered : Problem.t -> int array -> bool
(** [is_shattered p qs] checks whether the query set [qs] (distinct
    indices) is shattered: the data sets realise all [2^|qs|] patterns.
    [|qs| <= 20] enforced. *)

val shatter_patterns : Problem.t -> int array -> int
(** Number of distinct boolean patterns the data sets realise on [qs]
    (so [qs] is shattered iff this equals [2^|qs|]). *)

val vc_dim : ?limit:int -> Problem.t -> int
(** [vc_dim p] is the VC-dimension, searching subsets of size up to
    [limit] (default: the trivial upper bound [log2 datasets]). Uses the
    monotonicity of shattering: searches sizes upward and stops at the
    first size with no shattered set. *)

val find_shattered : Problem.t -> size:int -> int array option
(** A shattered query set of exactly [size], if one exists — the witness
    set [{x_1, ..., x_n}] the lower-bound game is played on. *)
