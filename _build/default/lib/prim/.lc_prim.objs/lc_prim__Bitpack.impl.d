lib/prim/bitpack.ml: Array
