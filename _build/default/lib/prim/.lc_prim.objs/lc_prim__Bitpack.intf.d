lib/prim/bitpack.mli:
