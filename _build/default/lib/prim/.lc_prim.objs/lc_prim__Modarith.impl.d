lib/prim/modarith.ml: Array Printf
