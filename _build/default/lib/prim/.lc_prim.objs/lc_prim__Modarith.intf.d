lib/prim/modarith.mli:
