lib/prim/primes.ml: Array Modarith
