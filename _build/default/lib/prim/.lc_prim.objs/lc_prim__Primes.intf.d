lib/prim/primes.mli:
