lib/prim/rng.ml: Array Hashtbl Int64 Stdlib
