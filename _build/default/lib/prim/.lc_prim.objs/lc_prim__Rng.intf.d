lib/prim/rng.mli:
