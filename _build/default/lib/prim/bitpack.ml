type t = { bits : int; wb : int; words : int array }

let create ~word_bits ~bits =
  if word_bits < 1 || word_bits > 62 then invalid_arg "Bitpack.create: word_bits outside [1, 62]";
  if bits < 0 then invalid_arg "Bitpack.create: negative length";
  let nwords = if bits = 0 then 0 else (bits + word_bits - 1) / word_bits in
  { bits; wb = word_bits; words = Array.make nwords 0 }

let length t = t.bits
let word_bits t = t.wb
let word_count t = Array.length t.words

let check_index t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitpack: bit index out of range"

let get t i =
  check_index t i;
  let w = i / t.wb and o = i mod t.wb in
  (t.words.(w) lsr o) land 1 = 1

let set t i v =
  check_index t i;
  let w = i / t.wb and o = i mod t.wb in
  if v then t.words.(w) <- t.words.(w) lor (1 lsl o)
  else t.words.(w) <- t.words.(w) land lnot (1 lsl o)

let get_field t ~pos ~width =
  if width < 0 || width > 62 then invalid_arg "Bitpack.get_field: bad width";
  let acc = ref 0 in
  for i = width - 1 downto 0 do
    acc := (!acc lsl 1) lor (if get t (pos + i) then 1 else 0)
  done;
  !acc

let set_field t ~pos ~width v =
  if width < 0 || width > 62 then invalid_arg "Bitpack.set_field: bad width";
  if v < 0 || (width < 62 && v lsr width <> 0) then invalid_arg "Bitpack.set_field: value too wide";
  for i = 0 to width - 1 do
    set t (pos + i) ((v lsr i) land 1 = 1)
  done

let words t = Array.copy t.words

let of_words ~word_bits ~bits ws =
  let t = create ~word_bits ~bits in
  if Array.length ws <> Array.length t.words then invalid_arg "Bitpack.of_words: word count mismatch";
  Array.blit ws 0 t.words 0 (Array.length ws);
  (* Mask stray high bits in the last word so equality is structural. *)
  let mask_last () =
    let n = Array.length t.words in
    if n > 0 then begin
      let used = bits - (n - 1) * word_bits in
      if used < word_bits then t.words.(n - 1) <- t.words.(n - 1) land ((1 lsl used) - 1)
    end
  in
  mask_last ();
  t

let append_unary t ~pos k =
  if k < 0 then invalid_arg "Bitpack.append_unary: negative count";
  for i = 0 to k - 1 do
    set t (pos + i) true
  done;
  set t (pos + k) false;
  pos + k + 1

let read_unary t ~pos =
  let rec count i =
    if i >= t.bits then invalid_arg "Bitpack.read_unary: unterminated run"
    else if get t i then count (i + 1)
    else (i - pos, i + 1)
  in
  count pos
