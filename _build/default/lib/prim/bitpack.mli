(** Packing bit strings into [b]-bit memory words.

    The paper's group histograms are unary-coded bit strings stored in
    [rho] consecutive cells of [b] bits each (Section 2.2). This module is
    the generic substrate: a fixed-length bit string backed by an array of
    words of a configurable width, with bit- and field-level access, plus
    conversion to and from the word array actually written into the cell
    table. *)

type t
(** A mutable bit string of fixed length. *)

val create : word_bits:int -> bits:int -> t
(** [create ~word_bits ~bits] is an all-zero bit string of [bits] bits
    stored in words of [word_bits] bits ([1 <= word_bits <= 62]). *)

val length : t -> int
(** Number of bits. *)

val word_bits : t -> int
(** Width of the backing words. *)

val word_count : t -> int
(** Number of backing words, [ceil (bits / word_bits)]. *)

val get : t -> int -> bool
(** [get t i] is bit [i] (0-indexed from the start of the string). *)

val set : t -> int -> bool -> unit
(** [set t i v] writes bit [i]. *)

val get_field : t -> pos:int -> width:int -> int
(** [get_field t ~pos ~width] reads [width <= 62] bits starting at bit
    [pos] as an unsigned little-endian integer (bit [pos] is the least
    significant). *)

val set_field : t -> pos:int -> width:int -> int -> unit
(** [set_field t ~pos ~width v] writes the low [width] bits of [v]
    starting at bit [pos]. Requires [0 <= v < 2^width]. *)

val words : t -> int array
(** [words t] is a copy of the backing words, each in [0, 2^word_bits). *)

val of_words : word_bits:int -> bits:int -> int array -> t
(** [of_words ~word_bits ~bits ws] reconstructs a bit string from words
    previously obtained by {!words}. Raises [Invalid_argument] if the
    word count does not match. *)

val append_unary : t -> pos:int -> int -> int
(** [append_unary t ~pos k] writes [k] one-bits followed by a zero bit at
    position [pos], returning the position just past the written run.
    This is the paper's unary load encoding: the load of each bucket "in
    unary code separated by zeros". *)

val read_unary : t -> pos:int -> int * int
(** [read_unary t ~pos] reads a unary run starting at [pos]: counts the
    one-bits up to the first zero bit and returns [(count, next_pos)]
    where [next_pos] is just past the terminating zero.
    Raises [Invalid_argument] if the string ends inside a run. *)
