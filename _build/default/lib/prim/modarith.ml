let max_modulus = (1 lsl 31) - 1

let check_modulus p =
  if p < 2 || p > max_modulus then
    invalid_arg
      (Printf.sprintf "Modarith: modulus %d outside [2, %d]" p max_modulus)

let add p a b =
  let s = a + b in
  if s >= p then s - p else s

let sub p a b =
  let s = a - b in
  if s < 0 then s + p else s

let mul p a b = a * b mod p

let pow p a e =
  if e < 0 then invalid_arg "Modarith.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul p acc base else acc in
      go acc (mul p base base) (e lsr 1)
  in
  go 1 (a mod p) e

let inv p a =
  (* Extended Euclid; p is prime in all our uses, but the algorithm only
     needs gcd(a, p) = 1. *)
  let rec go r0 r1 s0 s1 = if r1 = 0 then (r0, s0) else go r1 (r0 mod r1) s1 (s0 - (r0 / r1) * s1) in
  let a = a mod p in
  if a = 0 then invalid_arg "Modarith.inv: zero has no inverse";
  let g, s = go p a 0 1 in
  if g <> 1 then invalid_arg "Modarith.inv: not invertible";
  let s = s mod p in
  if s < 0 then s + p else s

let poly_eval p coeffs x =
  let x = x mod p in
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := add p (mul p !acc x) coeffs.(i)
  done;
  !acc
