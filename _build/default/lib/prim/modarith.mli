(** Modular arithmetic over word-sized moduli.

    All hash-family arithmetic runs over a prime field [Z_p]. We restrict
    [p < 2^31] so that a product of two residues fits in OCaml's native
    63-bit integer without overflow; this caps the key universe at
    [2^31 - 1], far beyond anything the experiments need, while keeping
    every field operation a handful of machine instructions (the
    "unit-cost RAM" of the paper). *)

val max_modulus : int
(** Largest supported modulus, [2^31 - 1]. *)

val check_modulus : int -> unit
(** [check_modulus p] raises [Invalid_argument] unless [2 <= p <= max_modulus]. *)

val add : int -> int -> int -> int
(** [add p a b] is [(a + b) mod p] for residues [a, b] in [0, p-1]. *)

val sub : int -> int -> int -> int
(** [sub p a b] is [(a - b) mod p], result in [0, p-1]. *)

val mul : int -> int -> int -> int
(** [mul p a b] is [(a * b) mod p]; safe because [p <= max_modulus]. *)

val pow : int -> int -> int -> int
(** [pow p a e] is [a^e mod p] by binary exponentiation. Requires [e >= 0]. *)

val inv : int -> int -> int
(** [inv p a] is the multiplicative inverse of [a] modulo prime [p].
    Requires [a] not divisible by [p]. *)

val poly_eval : int -> int array -> int -> int
(** [poly_eval p coeffs x] evaluates [sum_i coeffs.(i) * x^i mod p] by
    Horner's rule. [coeffs.(0)] is the constant term. *)
