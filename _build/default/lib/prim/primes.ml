(* Deterministic Miller-Rabin. The witness set {2,3,5,7,11,13,17,19,23,
   29,31,37} is exact for n < 3.3e24; our moduli are < 2^31 so modular
   products below stay well within the native int range. *)

let small_primes = [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 |]

let mul_mod p a b =
  (* n < 2^31 here would let us use Modarith.mul, but Miller-Rabin is also
     used on candidates up to max_modulus where a*b < 2^62 still fits. *)
  a * b mod p

let pow_mod p a e =
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul_mod p acc base else acc in
      go acc (mul_mod p base base) (e lsr 1)
  in
  go 1 (a mod p) e

let is_prime n =
  if n < 2 then false
  else if Array.exists (fun p -> p = n) small_primes then true
  else if Array.exists (fun p -> n mod p = 0) small_primes then false
  else begin
    (* n - 1 = d * 2^s with d odd *)
    let rec split d s = if d land 1 = 0 then split (d lsr 1) (s + 1) else (d, s) in
    let d, s = split (n - 1) 0 in
    let witnesses_pass a =
      let a = a mod n in
      if a = 0 then true
      else
        let x = pow_mod n a d in
        if x = 1 || x = n - 1 then true
        else
          let rec square x i =
            if i >= s - 1 then false
            else
              let x = mul_mod n x x in
              if x = n - 1 then true else square x (i + 1)
          in
          square x 0
    in
    Array.for_all witnesses_pass small_primes
  end

let next_prime n =
  if n <= 2 then 2
  else
    let rec search k = if is_prime k then k else search (k + 1) in
    search n

let prime_for_universe u =
  let base = max u 2 in
  let p = next_prime (base + 1) in
  Modarith.check_modulus p;
  p
