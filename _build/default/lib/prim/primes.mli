(** Primality testing and prime search.

    The hash families in {!Lc_hash} are polynomials over a prime field
    [Z_p] with [p] a little larger than the key universe. This module
    provides a deterministic Miller-Rabin test (exact for every input that
    fits our 62-bit word model) and prime search above a given bound. *)

val is_prime : int -> bool
(** [is_prime n] is [true] iff [n] is prime. Deterministic for all
    [n < 3.3e24] (we only ever use [n < 2^31]) via the standard
    Miller-Rabin witness set. *)

val next_prime : int -> int
(** [next_prime n] is the smallest prime [>= n]. Requires [n >= 2] would
    be natural, but any [n <= 2] simply returns [2]. *)

val prime_for_universe : int -> int
(** [prime_for_universe u] is the field modulus used to hash keys drawn
    from [0, u-1]: the smallest prime strictly greater than [max u 2].
    Raises [Invalid_argument] if the result would exceed
    {!Modarith.max_modulus} (keys must fit a 31-bit-safe field so that
    products fit in a native OCaml int). *)
