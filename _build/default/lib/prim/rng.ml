type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling for exact uniformity. *)
  let mask_bits = bound - 1 in
  if bound land mask_bits = 0 then bits t land mask_bits
  else
    let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
    let rec draw () =
      let v = bits t in
      if v < limit then v mod bound else draw ()
    in
    draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t = Stdlib.float_of_int (bits t) *. 0x1p-62

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_distinct t ~bound ~count =
  if count > bound then invalid_arg "Rng.sample_distinct: count > bound";
  if count < 0 then invalid_arg "Rng.sample_distinct: negative count";
  if 2 * count <= bound then begin
    (* Sparse regime: rejection into a hash set, expected O(count). *)
    let seen = Hashtbl.create (2 * count) in
    let out = Array.make count 0 in
    let filled = ref 0 in
    while !filled < count do
      let v = int t bound in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
  else begin
    (* Dense regime: partial Fisher-Yates over the full range. *)
    let a = Array.init bound (fun i -> i) in
    for i = 0 to count - 1 do
      let j = int_in_range t ~lo:i ~hi:(bound - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 count
  end
