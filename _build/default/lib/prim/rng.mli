(** Deterministic pseudo-random number generation.

    A SplitMix64 generator: tiny state, excellent statistical quality for
    simulation purposes, and {e splittable}, which the experiment harness
    uses to derive independent streams for independent experiment arms
    without sharing mutable state.

    All randomness in this repository flows through this module so that
    every experiment and every test is reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val bits : t -> int
(** [bits t] is a uniform non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1]. Requires [bound > 0].
    Uses rejection sampling, so the result is exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform on the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val float : t -> float
(** [float t] is uniform on [0, 1). *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] uniformly in place (Fisher-Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] is a uniform element of [a]. Requires [a] non-empty. *)

val sample_distinct : t -> bound:int -> count:int -> int array
(** [sample_distinct t ~bound ~count] draws [count] distinct integers
    uniformly from [0, bound-1], in no particular order.
    Requires [count <= bound]. Runs in expected O(count) time when
    [count] is at most half of [bound], and switches to a partial
    Fisher-Yates over the dense range otherwise. *)
