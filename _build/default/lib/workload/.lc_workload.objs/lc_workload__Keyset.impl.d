lib/workload/keyset.ml: Array Fun Hashtbl Lc_prim
