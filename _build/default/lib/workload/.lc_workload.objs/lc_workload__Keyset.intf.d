lib/workload/keyset.mli: Lc_prim
