lib/workload/opstream.ml: Array Hashtbl Lc_dynamic Lc_prim
