lib/workload/opstream.mli: Lc_dynamic Lc_prim
