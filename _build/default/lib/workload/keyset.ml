module Rng = Lc_prim.Rng

let random rng ~universe ~n = Rng.sample_distinct rng ~bound:universe ~count:n

let dense ~universe ~n =
  if n > universe then invalid_arg "Keyset.dense: n > universe";
  Array.init n Fun.id

let clustered rng ~universe ~n ~clusters =
  if clusters < 1 || clusters > n then invalid_arg "Keyset.clustered: bad cluster count";
  if 2 * n > universe then invalid_arg "Keyset.clustered: universe too small";
  let base_size = n / clusters in
  let sizes = Array.make clusters base_size in
  for i = 0 to (n mod clusters) - 1 do
    sizes.(i) <- sizes.(i) + 1
  done;
  let seen = Hashtbl.create (2 * n) in
  let out = ref [] in
  Array.iter
    (fun size ->
      (* Draw run starts until the whole run is fresh. *)
      let rec place attempts =
        if attempts > 10_000 then invalid_arg "Keyset.clustered: could not place a cluster";
        let start = Rng.int rng (universe - size) in
        let fresh = ref true in
        for k = start to start + size - 1 do
          if Hashtbl.mem seen k then fresh := false
        done;
        if !fresh then
          for k = start to start + size - 1 do
            Hashtbl.add seen k ();
            out := k :: !out
          done
        else place (attempts + 1)
      in
      place 0)
    sizes;
  Array.of_list !out

let arithmetic ~universe ~n ~stride =
  if stride < 1 then invalid_arg "Keyset.arithmetic: stride must be >= 1";
  if (n - 1) * stride >= universe then invalid_arg "Keyset.arithmetic: progression leaves universe";
  Array.init n (fun i -> i * stride)

let negatives rng ~universe ~keys ~count =
  let in_keys = Hashtbl.create (2 * Array.length keys) in
  Array.iter (fun x -> Hashtbl.add in_keys x ()) keys;
  if count > universe - Array.length keys then invalid_arg "Keyset.negatives: not enough non-keys";
  let seen = Hashtbl.create (2 * count) in
  let out = Array.make count 0 in
  let filled = ref 0 in
  while !filled < count do
    let x = Rng.int rng universe in
    if not (Hashtbl.mem in_keys x) && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      out.(!filled) <- x;
      incr filled
    end
  done;
  out
