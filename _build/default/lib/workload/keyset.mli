(** Key-set generators.

    The contention guarantees of Theorem 3 hold for {e every} key set, so
    the experiments exercise several shapes: uniform random (the default),
    a dense interval (stresses the [mod]-structure of the layout: all
    keys share low-order bits patterns), clustered blocks (realistic
    identifier allocation), and an arithmetic progression with a chosen
    stride (the classic bad case for modular hashing). *)

val random : Lc_prim.Rng.t -> universe:int -> n:int -> int array
(** [n] distinct uniform keys. *)

val dense : universe:int -> n:int -> int array
(** The interval [0, n-1]. Requires [n <= universe]. *)

val clustered : Lc_prim.Rng.t -> universe:int -> n:int -> clusters:int -> int array
(** [clusters] random disjoint runs of consecutive keys totalling [n]. *)

val arithmetic : universe:int -> n:int -> stride:int -> int array
(** [0, stride, 2*stride, ...]. Requires [(n-1) * stride < universe]. *)

val negatives : Lc_prim.Rng.t -> universe:int -> keys:int array -> count:int -> int array
(** [count] distinct uniform non-keys — the sampled stand-in for the
    uniform negative query distribution (see {!Lc_cellprobe.Qdist}). *)
