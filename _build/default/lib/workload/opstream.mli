(** Operation streams for dynamic-dictionary workloads.

    The T9/F7 experiments and the dynamic example need realistic
    insert/delete/query mixes; this module generates them with a chosen
    operation mix and key locality, and folds them over any consumer.
    Streams are deterministic given the generator's rng. *)

type op =
  | Insert of int
  | Delete of int
  | Query of int

type mix = {
  p_insert : float;
  p_delete : float;  (** Remaining mass is queries. *)
}

val default_mix : mix
(** 40% inserts, 10% deletes, 50% queries — a read-mostly table with
    churn. *)

val generate :
  ?mix:mix ->
  Lc_prim.Rng.t ->
  universe:int ->
  length:int ->
  working_set:int ->
  op array
(** [generate rng ~universe ~length ~working_set] draws [length]
    operations. Keys come from a working set of [working_set] distinct
    values (fresh uniform keys enter the set when an insert needs one);
    deletes and queries target current or recently-seen members, so the
    stream exercises hits, misses and re-insertions. *)

val apply :
  Lc_dynamic.Dynamic.t -> Lc_prim.Rng.t -> op array -> int * int * int
(** [apply t rng ops] plays the stream against a dynamic dictionary and
    returns [(inserts, deletes, query_hits)] — the consumer used by the
    tests to cross-check against a model set. *)

val replay_oracle : op array -> bool array
(** The reference semantics: the expected result of each [Query] when
    the stream is applied to an initially-empty set (entries for
    non-query operations are [false] and unused). *)
