test/test_analysis.ml: Alcotest Array Float Lc_analysis Lc_experiments Lc_prim List Printf String
