test/test_cellprobe.ml: Alcotest Array Float Format Hashtbl Lc_cellprobe Lc_prim List Printf QCheck QCheck_alcotest Result Seq
