test/test_cellprobe.mli:
