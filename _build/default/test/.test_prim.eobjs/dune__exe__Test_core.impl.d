test/test_core.ml: Alcotest Array Float Format Gen Hashtbl Lc_cellprobe Lc_core Lc_dict Lc_hash Lc_prim Lc_workload List Printf QCheck QCheck_alcotest Result String
