test/test_dict.ml: Alcotest Array Float Hashtbl Lc_cellprobe Lc_dict Lc_prim Lc_workload List Printf QCheck QCheck_alcotest
