test/test_dict.mli:
