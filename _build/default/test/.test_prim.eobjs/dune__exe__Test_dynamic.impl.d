test/test_dynamic.ml: Alcotest Array Gen Hashtbl Lc_cellprobe Lc_dynamic Lc_prim Lc_workload List Printf QCheck QCheck_alcotest Result
