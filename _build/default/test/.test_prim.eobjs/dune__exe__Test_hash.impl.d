test/test_hash.ml: Alcotest Array Float Gen Hashtbl Lc_analysis Lc_hash Lc_prim List Printf QCheck QCheck_alcotest
