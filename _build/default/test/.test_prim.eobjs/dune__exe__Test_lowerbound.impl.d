test/test_lowerbound.ml: Alcotest Array Float Hashtbl Lc_cellprobe Lc_core Lc_dict Lc_lowerbound Lc_prim Lc_workload List Printf QCheck QCheck_alcotest
