test/test_prim.ml: Alcotest Array Float Fun Gen Int64 Lc_prim List Printf QCheck QCheck_alcotest
