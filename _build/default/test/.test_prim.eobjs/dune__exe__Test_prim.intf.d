test/test_prim.mli:
