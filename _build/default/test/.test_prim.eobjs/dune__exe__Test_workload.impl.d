test/test_workload.ml: Alcotest Array Float Fun Hashtbl Lc_dynamic Lc_prim Lc_workload List Printf QCheck QCheck_alcotest
