(* Tests for the paper's construction: parameter derivation, layout,
   histograms, the builder and P(S), the query algorithm, verification
   and corruption detection, and the Theorem 3 contention guarantee. *)

module Rng = Lc_prim.Rng
module Params = Lc_core.Params
module Layout = Lc_core.Layout
module Histogram = Lc_core.Histogram
module Structure = Lc_core.Structure
module Query = Lc_core.Query
module Verify = Lc_core.Verify
module Dictionary = Lc_core.Dictionary
module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec
module Qdist = Lc_cellprobe.Qdist
module Contention = Lc_cellprobe.Contention
module Instance = Lc_dict.Instance
module Keyset = Lc_workload.Keyset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let universe = 1 lsl 20

let build_keys seed n =
  let rng = Rng.create seed in
  Keyset.random rng ~universe ~n

let build seed n =
  let keys = build_keys seed n in
  let rng = Rng.create (seed * 31) in
  (Dictionary.build rng ~universe ~keys, keys)

(* ------------------------------------------------------------------ *)
(* Params                                                               *)
(* ------------------------------------------------------------------ *)

let test_params_defaults () =
  let p = Params.make ~universe ~n:1024 () in
  checki "d" 3 p.d;
  checkb "m divides s" true (p.s mod p.m = 0);
  checkb "s >= beta n" true (p.s >= 2 * 1024);
  checkb "s not wasteful" true (p.s <= 3 * 1024);
  checki "buckets per group" (p.s / p.m) p.g_per_group;
  checkb "r near sqrt n" true (p.r >= 32 && p.r <= 40);
  checkb "prime above universe" true (p.p > universe);
  checkb "cell bits hold keys" true (1 lsl p.cell_bits > universe)

let test_params_rows () =
  let p = Params.make ~universe ~n:512 () in
  checki "rows" ((2 * p.d) + p.rho + 4) (Params.rows p);
  checki "total cells" (Params.rows p * p.s) (Params.total_cells p);
  checki "max probes = rows" (Params.rows p) (Params.max_probes p)

let test_params_histogram_budget () =
  let p = Params.make ~universe ~n:2048 () in
  (* rho words must cover cap_group + g_per_group bits *)
  checkb "budget" true (p.rho * p.cell_bits >= p.cap_group + p.g_per_group)

let test_params_validation () =
  let expect_invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "d <= 2" true (expect_invalid (fun () -> Params.make ~d:2 ~universe ~n:100 ()));
  checkb "delta too small" true
    (expect_invalid (fun () -> Params.make ~delta:0.1 ~universe ~n:100 ()));
  checkb "delta too large" true
    (expect_invalid (fun () -> Params.make ~delta:0.9 ~universe ~n:100 ()));
  checkb "beta 1" true (expect_invalid (fun () -> Params.make ~beta:1 ~universe ~n:100 ()));
  checkb "n 0" true (expect_invalid (fun () -> Params.make ~universe ~n:0 ()));
  checkb "universe < n" true (expect_invalid (fun () -> Params.make ~universe:10 ~n:100 ()));
  checkb "c below e" true (expect_invalid (fun () -> Params.make ~c:2.0 ~universe ~n:100 ()))

let test_params_pp () =
  let p = Params.make ~universe ~n:256 () in
  let s = Format.asprintf "%a" Params.pp p in
  checkb "mentions n" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Layout                                                               *)
(* ------------------------------------------------------------------ *)

let test_layout_rows_distinct () =
  let p = Params.make ~universe ~n:512 () in
  let rows =
    List.concat
      [
        List.init p.d (Layout.f_row p);
        List.init p.d (Layout.g_row p);
        [ Layout.z_row p; Layout.gbas_row p ];
        List.init p.rho (Layout.hist_row p);
        [ Layout.phash_row p; Layout.data_row p ];
      ]
  in
  let sorted = List.sort_uniq compare rows in
  checki "all rows distinct" (List.length rows) (List.length sorted);
  checki "rows contiguous from 0" (Params.rows p) (List.length rows);
  checki "first row" 0 (List.hd sorted);
  checki "last row" (Params.rows p - 1) (List.nth sorted (List.length sorted - 1))

let test_layout_cell_arithmetic () =
  let p = Params.make ~universe ~n:256 () in
  checki "cell 0" 0 (Layout.cell p ~row:0 0);
  checki "row stride" p.s (Layout.cell p ~row:1 0);
  checki "column offset" (p.s + 5) (Layout.cell p ~row:1 5)

let test_layout_bounds () =
  let p = Params.make ~universe ~n:256 () in
  let expect_invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "row out of range" true
    (expect_invalid (fun () -> Layout.cell p ~row:(Params.rows p) 0));
  checkb "column out of range" true (expect_invalid (fun () -> Layout.cell p ~row:0 p.s))

let test_layout_z_replicas () =
  let p = Params.make ~universe ~n:256 () in
  (* Total replicas across residues = s. *)
  let total = ref 0 in
  for res = 0 to p.r - 1 do
    total := !total + Layout.z_replicas p res
  done;
  checki "replicas partition the row" p.s !total

let test_layout_group_bijection () =
  let p = Params.make ~universe ~n:256 () in
  for bk = 0 to p.s - 1 do
    let g = Layout.group_of_bucket p bk and k = Layout.index_in_group p bk in
    checki "bijection" bk (Layout.bucket_of_group_index p ~group:g k)
  done

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)
(* ------------------------------------------------------------------ *)

let test_histogram_roundtrip () =
  let p = Params.make ~universe ~n:512 () in
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    (* Random loads summing to at most cap_group. *)
    let loads = Array.make p.g_per_group 0 in
    let budget = ref p.cap_group in
    for k = 0 to p.g_per_group - 1 do
      let l = Rng.int rng (min 6 (!budget + 1)) in
      loads.(k) <- l;
      budget := !budget - l
    done;
    let words = Histogram.encode p ~loads in
    checki "rho words" p.rho (Array.length words);
    Alcotest.check (Alcotest.array Alcotest.int) "round-trip" loads (Histogram.decode p words)
  done

let test_histogram_overflow_rejected () =
  let p = Params.make ~universe ~n:256 () in
  let loads = Array.make p.g_per_group (p.cap_group + 1) in
  let raised = try ignore (Histogram.encode p ~loads); false with Invalid_argument _ -> true in
  checkb "rejects over-budget loads" true raised

let test_histogram_slot_range () =
  let p = Params.make ~universe ~n:256 () in
  let loads = Array.make p.g_per_group 0 in
  loads.(0) <- 2;
  loads.(1) <- 3;
  loads.(2) <- 1;
  let off, len = Histogram.slot_range p ~loads ~k:0 in
  checki "first offset" 0 off;
  checki "first length" 4 len;
  let off, len = Histogram.slot_range p ~loads ~k:1 in
  checki "second offset" 4 off;
  checki "second length" 9 len;
  let off, len = Histogram.slot_range p ~loads ~k:2 in
  checki "third offset" 13 off;
  checki "third length" 1 len;
  let _, len = Histogram.slot_range p ~loads ~k:3 in
  checki "empty bucket" 0 len

(* ------------------------------------------------------------------ *)
(* Structure / builder                                                  *)
(* ------------------------------------------------------------------ *)

let test_build_small_sizes () =
  List.iter
    (fun n ->
      let dict, keys = build (100 + n) n in
      checki "keeps keys" n (Array.length keys);
      checkb "space linear" true (Dictionary.space dict <= 64 * n + 4096))
    [ 1; 2; 3; 5; 8; 16; 33; 64; 100 ]

let test_build_rejects_bad_keys () =
  let rng = Rng.create 1 in
  let expect_invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "duplicate" true
    (expect_invalid (fun () -> Dictionary.build rng ~universe ~keys:[| 4; 4; 5 |]));
  checkb "out of universe" true
    (expect_invalid (fun () -> Dictionary.build rng ~universe:100 ~keys:[| 100 |]))

let test_property_p_holds_for_built () =
  let dict, _keys = build 7 512 in
  let s = Dictionary.structure dict in
  let g = Lc_hash.Dm_family.g s.top in
  checkb "P(S)" true (Structure.property_p s.params ~g ~h:s.top ~keys:s.keys)

let test_build_gbas_monotone () =
  let dict, _ = build 8 512 in
  let s = Dictionary.structure dict in
  let p = s.params in
  for i = 1 to p.m - 1 do
    checkb "monotone" true (s.gbas.(i) >= s.gbas.(i - 1))
  done;
  checkb "within s" true (Array.for_all (fun g -> g <= p.s) s.gbas)

let test_build_starts_disjoint () =
  let dict, _ = build 9 512 in
  let s = Dictionary.structure dict in
  let p = s.params in
  (* Slot blocks must tile without overlap. *)
  let covered = Array.make p.s false in
  Array.iteri
    (fun bk l ->
      if l > 0 then
        for j = s.starts.(bk) to s.starts.(bk) + (l * l) - 1 do
          checkb "no overlap" false covered.(j);
          covered.(j) <- true
        done)
    s.loads;
  let used = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 covered in
  checki "used = sum l^2" (Lc_hash.Loads.sum_squares s.loads) used

let test_build_nondefault_params () =
  (* The T10 ablation's configurations must all build and verify. *)
  let keys = build_keys 33 256 in
  List.iter
    (fun (d, delta, beta) ->
      let rng = Rng.create (d + beta) in
      let dict = Dictionary.build ~d ~delta ~beta rng ~universe ~keys in
      (match Dictionary.verify dict with
      | Ok () -> ()
      | Error e -> Alcotest.failf "d=%d beta=%d: %s" d beta e);
      let p = Dictionary.params dict in
      checki "d respected" d p.d;
      checkb "beta respected" true (p.s >= beta * 256);
      checkb "still answers" true (Dictionary.mem dict rng keys.(0)))
    [ (4, 0.55, 2); (5, 0.55, 3); (3, 0.45, 4) ]

let test_build_trials_small () =
  let total = ref 0 in
  for seed = 1 to 20 do
    let dict, _ = build (300 + seed) 256 in
    total := !total + Dictionary.build_trials dict
  done;
  checkb "mean trials < 3" true (float_of_int !total /. 20.0 < 3.0)

(* ------------------------------------------------------------------ *)
(* Query                                                                *)
(* ------------------------------------------------------------------ *)

let test_query_positive () =
  let dict, keys = build 10 512 in
  let rng = Rng.create 1000 in
  Array.iter (fun x -> checkb "present" true (Dictionary.mem dict rng x)) keys

let test_query_negative () =
  let dict, keys = build 11 512 in
  let rng = Rng.create 1001 in
  let negs = Keyset.negatives rng ~universe ~keys ~count:1000 in
  Array.iter (fun x -> checkb "absent" false (Dictionary.mem dict rng x)) negs

let test_query_probe_budget () =
  let dict, keys = build 12 512 in
  let s = Dictionary.structure dict in
  let rng = Rng.create 1002 in
  let drill x =
    Table.reset_counters s.table;
    ignore (Dictionary.mem dict rng x);
    checkb "within budget" true (Table.max_step s.table <= Dictionary.max_probes dict)
  in
  Array.iter drill (Array.sub keys 0 64);
  Array.iter drill (Keyset.negatives rng ~universe ~keys ~count:64);
  Table.reset_counters s.table

let test_query_spec_matches_mem () =
  let dict, keys = build 13 256 in
  let inst = Dictionary.instance dict in
  let rng = Rng.create 1003 in
  let sample =
    Array.append (Array.sub keys 0 40) (Keyset.negatives rng ~universe ~keys ~count:40)
  in
  (match Instance.check_spec_against_mem inst ~rng ~queries:sample with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_query_spec_valid () =
  let dict, keys = build 14 256 in
  let inst = Dictionary.instance dict in
  let rng = Rng.create 1004 in
  let all = Array.append keys (Keyset.negatives rng ~universe ~keys ~count:256) in
  Array.iter
    (fun x ->
      match Spec.validate ~cells:inst.space (inst.spec x) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "query %d: %s" x e)
    all

let test_query_deterministic_answer () =
  (* Randomness balances probes but never changes the answer. *)
  let dict, keys = build 15 128 in
  let x = keys.(0) in
  for seed = 0 to 50 do
    let rng = Rng.create seed in
    checkb "same answer" true (Dictionary.mem dict rng x)
  done

(* ------------------------------------------------------------------ *)
(* Verify and corruption                                                *)
(* ------------------------------------------------------------------ *)

let test_verify_ok () =
  let dict, _ = build 16 512 in
  match Dictionary.verify dict with Ok () -> () | Error e -> Alcotest.fail e

let test_verify_queries_ok () =
  let dict, _ = build 17 256 in
  let s = Dictionary.structure dict in
  match Verify.check_queries s (Rng.create 55) with Ok () -> () | Error e -> Alcotest.fail e

let test_verify_detects_corruption () =
  (* Flip one bit in a hundred independent copies; the verifier must
     notice every time (all cells are covered by some invariant). *)
  let detected = ref 0 in
  let trials = 60 in
  for seed = 1 to trials do
    let dict, _ = build (700 + seed) 128 in
    let s = Dictionary.structure dict in
    Table.corrupt s.table (Rng.create seed);
    match Verify.check s with Ok () -> () | Error _ -> incr detected
  done;
  checki "every corruption detected" trials !detected

let test_verify_detects_data_swap () =
  let dict, _ = build 18 256 in
  let s = Dictionary.structure dict in
  let p = s.params in
  (* Swap two distinct data-row cells holding different values. *)
  let row = Lc_core.Layout.data_row p in
  let c1 = Lc_core.Layout.cell p ~row 0 and c2 = ref (-1) in
  let v1 = Table.peek s.table c1 in
  (try
     for j = 1 to p.s - 1 do
       let c = Lc_core.Layout.cell p ~row j in
       if Table.peek s.table c <> v1 then begin
         c2 := c;
         raise Exit
       end
     done
   with Exit -> ());
  let v2 = Table.peek s.table !c2 in
  Table.write s.table c1 v2;
  Table.write s.table !c2 v1;
  checkb "swap detected" true (Result.is_error (Verify.check s))

(* Corrupt one specific row type and demand the verifier names it. *)
let corrupt_row_test row_of expect_substring () =
  let dict, _ = build 30 256 in
  let s = Dictionary.structure dict in
  let p = s.params in
  let row = row_of p in
  let j = 7 mod p.s in
  let cell = Lc_core.Layout.cell p ~row j in
  let v = Table.peek s.table cell in
  Table.write s.table cell (if v = -1 then 0 else (v + 1) mod (1 lsl (p.cell_bits - 1)));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    nn = 0 || at 0
  in
  match Verify.check s with
  | Ok () -> Alcotest.fail "corruption not detected"
  | Error e ->
    checkb (Printf.sprintf "error %S mentions %S" e expect_substring) true
      (contains e expect_substring)

let test_corrupt_f_row = corrupt_row_test (fun p -> Lc_core.Layout.f_row p 0) "f row"
let test_corrupt_g_row = corrupt_row_test (fun p -> Lc_core.Layout.g_row p 1) "g row"
let test_corrupt_z_row = corrupt_row_test Lc_core.Layout.z_row "z row"
let test_corrupt_gbas_row = corrupt_row_test Lc_core.Layout.gbas_row "GBAS row"
let test_corrupt_hist_row = corrupt_row_test (fun p -> Lc_core.Layout.hist_row p 0) "histogram row"

let test_mem_rejects_out_of_universe () =
  let dict, _ = build 31 64 in
  let rng = Rng.create 1 in
  let expect_invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "negative key" true (expect_invalid (fun () -> Dictionary.mem dict rng (-1)));
  checkb "key = universe" true (expect_invalid (fun () -> Dictionary.mem dict rng universe))

let test_build_deterministic_given_seed () =
  let keys = build_keys 32 256 in
  let build_cells () =
    let rng = Rng.create 12345 in
    let dict = Dictionary.build rng ~universe ~keys in
    Table.copy_cells (Dictionary.structure dict).table
  in
  Alcotest.check (Alcotest.array Alcotest.int) "identical tables" (build_cells ()) (build_cells ())

let test_histogram_crafted_overload_rejected () =
  (* Words that decode a load above cap_group must be rejected, not
     silently accepted (the query algorithm depends on this to notice a
     corrupted histogram rather than read out of its group). *)
  let p = Params.make ~universe ~n:256 () in
  let loads = Array.make p.g_per_group 0 in
  loads.(0) <- p.cap_group;
  let words = Histogram.encode p ~loads in
  (* Extending the unary run by one bit pushes it over the cap. *)
  let bp =
    Lc_prim.Bitpack.of_words ~word_bits:p.cell_bits ~bits:(p.rho * p.cell_bits) words
  in
  Lc_prim.Bitpack.set bp p.cap_group true;
  let raised =
    try ignore (Histogram.decode p (Lc_prim.Bitpack.words bp)); false
    with Invalid_argument _ -> true
  in
  checkb "over-cap load rejected" true raised

(* ------------------------------------------------------------------ *)
(* Theorem 3: the contention guarantee                                  *)
(* ------------------------------------------------------------------ *)

let test_contention_flat_positive () =
  (* Normalized max contention must not grow with n. *)
  let at n =
    let dict, keys = build (900 + n) n in
    let inst = Dictionary.instance dict in
    Contention.normalized_max (Instance.contention_exact inst (Qdist.uniform ~name:"pos" keys))
  in
  let small = at 128 and large = at 2048 in
  checkb
    (Printf.sprintf "flat: %.1f vs %.1f" small large)
    true
    (large < small *. 1.5 && large < 60.0)

let test_contention_per_step_bounded () =
  (* Definition 2: the bound must hold per step, not just in total. *)
  let dict, keys = build 19 1024 in
  let inst = Dictionary.instance dict in
  let r = Instance.contention_exact inst (Qdist.uniform ~name:"pos" keys) in
  checkb "per-step normalized < 60" true (Contention.normalized_step_max r < 60.0)

let test_contention_negative_flat () =
  let dict, keys = build 20 1024 in
  let inst = Dictionary.instance dict in
  let rng = Rng.create 2020 in
  let negs = Keyset.negatives rng ~universe ~keys ~count:8192 in
  let r = Instance.contention_exact inst (Qdist.uniform ~name:"neg" negs) in
  checkb "negative contention flat" true (Contention.normalized_max r < 80.0)

let test_contention_mc_agrees () =
  let dict, keys = build 21 256 in
  let inst = Dictionary.instance dict in
  let qd = Qdist.uniform ~name:"pos" keys in
  let ex = Instance.contention_exact inst qd in
  let mc = Instance.contention_mc inst qd ~rng:(Rng.create 3) ~queries:60_000 in
  (* Compare mean probes exactly and max contention loosely. *)
  checkb "mean probes agree" true (Float.abs (ex.mean_probes -. mc.mean_probes) < 0.05);
  checkb "max contention within 2x" true
    (mc.max_total < 2.0 *. ex.max_total && ex.max_total < 2.0 *. Float.max mc.max_total 1e-9)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_dictionary_oracle =
  QCheck.Test.make ~name:"dictionary agrees with Hashtbl oracle" ~count:15
    QCheck.(int_range 1 300)
    (fun n ->
      let rng = Rng.create ((n * 13) + 5) in
      let keys = Keyset.random rng ~universe ~n in
      let dict = Dictionary.build rng ~universe ~keys in
      let ok = ref true in
      Array.iter (fun x -> if not (Dictionary.mem dict rng x) then ok := false) keys;
      let in_keys = Hashtbl.create 64 in
      Array.iter (fun x -> Hashtbl.add in_keys x ()) keys;
      for _ = 1 to 200 do
        let x = Rng.int rng universe in
        if not (Hashtbl.mem in_keys x) && Dictionary.mem dict rng x then ok := false
      done;
      !ok)

let prop_histogram_roundtrip =
  QCheck.Test.make ~name:"histogram round-trip (qcheck loads)" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 8))
    (fun loads_list ->
      let p = Params.make ~universe ~n:512 () in
      let loads = Array.make p.g_per_group 0 in
      List.iteri (fun i l -> if i < p.g_per_group then loads.(i) <- l) loads_list;
      let total = Array.fold_left ( + ) 0 loads in
      QCheck.assume (total <= p.cap_group);
      Histogram.decode p (Histogram.encode p ~loads) = loads)

let prop_verify_after_build =
  QCheck.Test.make ~name:"verify holds for every build" ~count:15
    QCheck.(int_range 1 200)
    (fun n ->
      let rng = Rng.create ((n * 29) + 1) in
      let keys = Keyset.random rng ~universe ~n in
      let dict = Dictionary.build rng ~universe ~keys in
      Result.is_ok (Dictionary.verify dict))

let prop_keyset_shapes_work =
  QCheck.Test.make ~name:"dictionary works on structured key sets" ~count:10
    QCheck.(int_range 16 256)
    (fun n ->
      let rng = Rng.create (n + 3) in
      let shapes =
        [
          Keyset.dense ~universe ~n;
          Keyset.arithmetic ~universe ~n ~stride:97;
          Keyset.clustered rng ~universe ~n ~clusters:(max 1 (n / 16));
        ]
      in
      List.for_all
        (fun keys ->
          let dict = Dictionary.build rng ~universe ~keys in
          Array.for_all (fun x -> Dictionary.mem dict rng x) keys)
        shapes)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lc_core"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "rows" `Quick test_params_rows;
          Alcotest.test_case "histogram budget" `Quick test_params_histogram_budget;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "pp" `Quick test_params_pp;
        ] );
      ( "layout",
        [
          Alcotest.test_case "rows distinct and contiguous" `Quick test_layout_rows_distinct;
          Alcotest.test_case "cell arithmetic" `Quick test_layout_cell_arithmetic;
          Alcotest.test_case "bounds" `Quick test_layout_bounds;
          Alcotest.test_case "z replicas partition" `Quick test_layout_z_replicas;
          Alcotest.test_case "group bijection" `Quick test_layout_group_bijection;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "round-trip" `Quick test_histogram_roundtrip;
          Alcotest.test_case "overflow rejected" `Quick test_histogram_overflow_rejected;
          Alcotest.test_case "slot ranges" `Quick test_histogram_slot_range;
        ] );
      ( "builder",
        [
          Alcotest.test_case "small sizes" `Quick test_build_small_sizes;
          Alcotest.test_case "rejects bad keys" `Quick test_build_rejects_bad_keys;
          Alcotest.test_case "P(S) holds for built" `Quick test_property_p_holds_for_built;
          Alcotest.test_case "GBAS monotone" `Quick test_build_gbas_monotone;
          Alcotest.test_case "slot blocks disjoint" `Quick test_build_starts_disjoint;
          Alcotest.test_case "non-default parameters" `Quick test_build_nondefault_params;
          Alcotest.test_case "trials small" `Quick test_build_trials_small;
        ] );
      ( "query",
        [
          Alcotest.test_case "positive" `Quick test_query_positive;
          Alcotest.test_case "negative" `Quick test_query_negative;
          Alcotest.test_case "probe budget" `Quick test_query_probe_budget;
          Alcotest.test_case "spec matches mem" `Quick test_query_spec_matches_mem;
          Alcotest.test_case "spec valid" `Quick test_query_spec_valid;
          Alcotest.test_case "answer deterministic" `Quick test_query_deterministic_answer;
        ] );
      ( "verify",
        [
          Alcotest.test_case "ok after build" `Quick test_verify_ok;
          Alcotest.test_case "queries ok" `Quick test_verify_queries_ok;
          Alcotest.test_case "detects bit flips" `Slow test_verify_detects_corruption;
          Alcotest.test_case "detects data swaps" `Quick test_verify_detects_data_swap;
          Alcotest.test_case "names corrupted f row" `Quick test_corrupt_f_row;
          Alcotest.test_case "names corrupted g row" `Quick test_corrupt_g_row;
          Alcotest.test_case "names corrupted z row" `Quick test_corrupt_z_row;
          Alcotest.test_case "names corrupted GBAS row" `Quick test_corrupt_gbas_row;
          Alcotest.test_case "names corrupted histogram row" `Quick test_corrupt_hist_row;
          Alcotest.test_case "mem rejects out-of-universe" `Quick test_mem_rejects_out_of_universe;
          Alcotest.test_case "build deterministic" `Quick test_build_deterministic_given_seed;
          Alcotest.test_case "crafted histogram overflow rejected" `Quick
            test_histogram_crafted_overload_rejected;
        ] );
      ( "theorem3",
        [
          Alcotest.test_case "flat positive contention" `Quick test_contention_flat_positive;
          Alcotest.test_case "per-step bounded" `Quick test_contention_per_step_bounded;
          Alcotest.test_case "negative contention flat" `Quick test_contention_negative_flat;
          Alcotest.test_case "monte-carlo agrees" `Slow test_contention_mc_agrees;
        ] );
      qsuite "properties"
        [
          prop_dictionary_oracle;
          prop_histogram_roundtrip;
          prop_verify_after_build;
          prop_keyset_shapes_work;
        ];
    ]
