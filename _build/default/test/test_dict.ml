(* Tests for the baseline dictionaries: correctness against a Hashtbl
   oracle, spec-vs-mem consistency, and the contention characteristics
   the paper attributes to each. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Contention = Lc_cellprobe.Contention
module Instance = Lc_dict.Instance
module Sorted_array = Lc_dict.Sorted_array
module Fks = Lc_dict.Fks
module Dm_dict = Lc_dict.Dm_dict
module Cuckoo = Lc_dict.Cuckoo
module Keyset = Lc_workload.Keyset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let universe = 1 lsl 20

let build_keys seed n =
  let rng = Rng.create seed in
  Keyset.random rng ~universe ~n

(* Generic correctness drill shared by every structure. *)
let correctness_drill name (inst : Instance.t) keys =
  let rng = Rng.create 4242 in
  let in_keys = Hashtbl.create (2 * Array.length keys) in
  Array.iter (fun x -> Hashtbl.add in_keys x ()) keys;
  Array.iter
    (fun x -> checkb (Printf.sprintf "%s: key %d present" name x) true (inst.mem rng x))
    keys;
  for _ = 1 to 500 do
    let x = Rng.int rng universe in
    if not (Hashtbl.mem in_keys x) then
      checkb (Printf.sprintf "%s: non-key %d absent" name x) false (inst.mem rng x)
  done

let spec_drill name (inst : Instance.t) keys =
  let rng = Rng.create 777 in
  let sample =
    Array.append (Array.sub keys 0 (min 30 (Array.length keys)))
      (Keyset.negatives rng ~universe ~keys ~count:30)
  in
  match Instance.check_spec_against_mem inst ~rng ~queries:sample with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

let probes_drill name (inst : Instance.t) keys =
  let rng = Rng.create 555 in
  let table = inst.table in
  Array.iter
    (fun x ->
      Lc_cellprobe.Table.reset_counters table;
      ignore (inst.mem rng x);
      let used = Lc_cellprobe.Table.max_step table in
      checkb
        (Printf.sprintf "%s: %d probes within budget %d" name used inst.max_probes)
        true (used <= inst.max_probes))
    (Array.sub keys 0 (min 50 (Array.length keys)));
  Lc_cellprobe.Table.reset_counters table

(* ------------------------------------------------------------------ *)
(* Sorted array                                                         *)
(* ------------------------------------------------------------------ *)

let test_sorted_correct () =
  let keys = build_keys 1 200 in
  let t = Sorted_array.build ~universe ~keys in
  correctness_drill "binary-search" (Sorted_array.instance t) keys

let test_sorted_spec () =
  let keys = build_keys 2 128 in
  let t = Sorted_array.build ~universe ~keys in
  spec_drill "binary-search" (Sorted_array.instance t) keys

let test_sorted_probe_budget () =
  let keys = build_keys 3 100 in
  let t = Sorted_array.build ~universe ~keys in
  probes_drill "binary-search" (Sorted_array.instance t) keys

let test_sorted_root_contention_is_one () =
  (* The paper's opening observation: the middle cell is read by every
     query. *)
  let keys = build_keys 4 127 in
  let t = Sorted_array.build ~universe ~keys in
  let inst = Sorted_array.instance t in
  let qd = Qdist.uniform ~name:"pos" keys in
  let r = Instance.contention_exact inst qd in
  Alcotest.check (Alcotest.float 1e-9) "root cell" 1.0 r.per_cell.(63)

let test_sorted_rejects_bad_input () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Sorted_array.build: duplicate key")
    (fun () -> ignore (Sorted_array.build ~universe ~keys:[| 1; 1 |]));
  Alcotest.check_raises "outside universe"
    (Invalid_argument "Sorted_array.build: key outside universe") (fun () ->
      ignore (Sorted_array.build ~universe:10 ~keys:[| 10 |]))

(* ------------------------------------------------------------------ *)
(* FKS                                                                  *)
(* ------------------------------------------------------------------ *)

let test_fks_correct () =
  let keys = build_keys 5 300 in
  let rng = Rng.create 50 in
  let t = Fks.build rng ~universe ~keys in
  correctness_drill "fks" (Fks.instance t) keys

let test_fks_unreplicated_correct () =
  let keys = build_keys 6 150 in
  let rng = Rng.create 51 in
  let t = Fks.build ~replicate:false rng ~universe ~keys in
  correctness_drill "fks-unreplicated" (Fks.instance t) keys

let test_fks_spec () =
  let keys = build_keys 7 200 in
  let rng = Rng.create 52 in
  let t = Fks.build rng ~universe ~keys in
  spec_drill "fks" (Fks.instance t) keys

let test_fks_probe_budget () =
  let keys = build_keys 8 200 in
  let rng = Rng.create 53 in
  let t = Fks.build rng ~universe ~keys in
  probes_drill "fks" (Fks.instance t) keys

let test_fks_linear_space () =
  let keys = build_keys 9 1000 in
  let rng = Rng.create 54 in
  let t = Fks.build rng ~universe ~keys in
  let inst = Fks.instance t in
  checkb "space <= 8n" true (inst.space <= 8 * 1000)

let test_fks_param_cell_contention () =
  (* Without replication the first probe always reads cell 0:
     contention exactly 1. With replication it is 1/n per copy. *)
  let keys = build_keys 10 200 in
  let rng = Rng.create 55 in
  let t = Fks.build ~replicate:false rng ~universe ~keys in
  let inst = Fks.instance t in
  let r = Instance.contention_exact inst (Qdist.uniform ~name:"pos" keys) in
  Alcotest.check (Alcotest.float 1e-9) "param cell" 1.0 r.per_cell.(0);
  let t2 = Fks.build ~replicate:true rng ~universe ~keys in
  let inst2 = Fks.instance t2 in
  let r2 = Instance.contention_exact inst2 (Qdist.uniform ~name:"pos" keys) in
  checkb "replicated param cell small" true (r2.per_cell.(0) < 0.02)

let test_fks_planted_heavy_bucket () =
  let rng = Rng.create 56 in
  let n = 400 in
  let heavy = int_of_float (Float.sqrt (1.5 *. float_of_int n)) in
  let t, keys = Fks.build_planted rng ~universe ~n ~heavy in
  checki "n keys" n (Array.length keys);
  checkb "bucket at least heavy" true (Fks.max_bucket_load t >= heavy);
  correctness_drill "fks-planted" (Fks.instance t) keys

let test_fks_planted_contention_factor () =
  (* The planted structure's max contention must scale like
     maxload / n, i.e. ~ sqrt n times the optimal 1/s. *)
  let rng = Rng.create 57 in
  let n = 900 in
  let heavy = 30 in
  let t, keys = Fks.build_planted rng ~universe ~n ~heavy in
  let inst = Fks.instance t in
  let r = Instance.contention_exact inst (Qdist.uniform ~name:"pos" keys) in
  let norm = Contention.normalized_max r in
  (* header cell of the heavy bucket: (heavy/n) * space >= 30/900 * ~4n *)
  checkb (Printf.sprintf "normalized %.1f >= 60" norm) true (norm >= 60.0)

let test_fks_trials_reported () =
  let keys = build_keys 11 100 in
  let rng = Rng.create 58 in
  let t = Fks.build rng ~universe ~keys in
  checkb "at least one trial" true (Fks.top_trials t >= 1)

(* ------------------------------------------------------------------ *)
(* DM dictionary                                                        *)
(* ------------------------------------------------------------------ *)

let test_dm_correct () =
  let keys = build_keys 12 300 in
  let rng = Rng.create 60 in
  let t = Dm_dict.build rng ~universe ~keys in
  correctness_drill "dm" (Dm_dict.instance t) keys

let test_dm_spec () =
  let keys = build_keys 13 200 in
  let rng = Rng.create 61 in
  let t = Dm_dict.build rng ~universe ~keys in
  spec_drill "dm" (Dm_dict.instance t) keys

let test_dm_probe_budget () =
  let keys = build_keys 14 200 in
  let rng = Rng.create 62 in
  let t = Dm_dict.build rng ~universe ~keys in
  probes_drill "dm" (Dm_dict.instance t) keys

let test_dm_load_cap () =
  (* The DM builder's whole point: max bucket load O(log n / log log n). *)
  let n = 2000 in
  let keys = build_keys 15 n in
  let rng = Rng.create 63 in
  let t = Dm_dict.build rng ~universe ~keys in
  let fn = float_of_int n in
  let cap = 3.0 *. Float.log fn /. Float.log (Float.log fn) +. 4.0 in
  checkb
    (Printf.sprintf "max load %d <= %.1f" (Dm_dict.max_bucket_load t) cap)
    true
    (float_of_int (Dm_dict.max_bucket_load t) <= cap)

let test_dm_unreplicated () =
  let keys = build_keys 16 150 in
  let rng = Rng.create 64 in
  let t = Dm_dict.build ~replicate:false rng ~universe ~keys in
  correctness_drill "dm-unreplicated" (Dm_dict.instance t) keys

(* ------------------------------------------------------------------ *)
(* Cuckoo                                                               *)
(* ------------------------------------------------------------------ *)

let test_cuckoo_correct () =
  let keys = build_keys 17 300 in
  let rng = Rng.create 70 in
  let t = Cuckoo.build rng ~universe ~keys in
  correctness_drill "cuckoo" (Cuckoo.instance t) keys

let test_cuckoo_spec () =
  let keys = build_keys 18 200 in
  let rng = Rng.create 71 in
  let t = Cuckoo.build rng ~universe ~keys in
  spec_drill "cuckoo" (Cuckoo.instance t) keys

let test_cuckoo_probe_budget () =
  let keys = build_keys 19 200 in
  let rng = Rng.create 72 in
  let t = Cuckoo.build rng ~universe ~keys in
  probes_drill "cuckoo" (Cuckoo.instance t) keys

let test_cuckoo_two_data_probes () =
  (* Max probes: 2d coefficient reads + at most 2 data probes. *)
  let keys = build_keys 20 100 in
  let rng = Rng.create 73 in
  let t = Cuckoo.build ~d:3 rng ~universe ~keys in
  checki "budget" 8 (Cuckoo.instance t).max_probes

let test_cuckoo_rehash_counter () =
  let keys = build_keys 21 500 in
  let rng = Rng.create 74 in
  let t = Cuckoo.build rng ~universe ~keys in
  checkb "rehashes bounded" true (Cuckoo.rehashes t < 20)

let test_cuckoo_large () =
  let keys = build_keys 22 3000 in
  let rng = Rng.create 75 in
  let t = Cuckoo.build rng ~universe ~keys in
  let inst = Cuckoo.instance t in
  let rng2 = Rng.create 76 in
  Array.iter (fun x -> checkb "present" true (inst.mem rng2 x)) keys

(* ------------------------------------------------------------------ *)
(* Replicated-BST predecessor                                           *)
(* ------------------------------------------------------------------ *)

module Repl_bst = Lc_dict.Repl_bst

let oracle_predecessor keys x =
  Array.fold_left (fun acc k -> if k <= x && (acc = None || Some k > acc) then Some k else acc)
    None keys

let test_bst_predecessor_oracle () =
  let keys = build_keys 40 200 in
  let t = Repl_bst.build ~universe ~keys in
  let rng = Rng.create 80 in
  for _ = 1 to 2000 do
    let x = Rng.int rng universe in
    Alcotest.check (Alcotest.option Alcotest.int) "predecessor" (oracle_predecessor keys x)
      (Repl_bst.predecessor t rng x)
  done

let test_bst_predecessor_edges () =
  let t = Repl_bst.build ~universe ~keys:[| 100; 200; 300 |] in
  let rng = Rng.create 81 in
  let pred = Repl_bst.predecessor t rng in
  Alcotest.check (Alcotest.option Alcotest.int) "below all" None (pred 99);
  Alcotest.check (Alcotest.option Alcotest.int) "exact" (Some 100) (pred 100);
  Alcotest.check (Alcotest.option Alcotest.int) "between" (Some 200) (pred 250);
  Alcotest.check (Alcotest.option Alcotest.int) "above all" (Some 300) (pred (universe - 1))

let test_bst_mem () =
  let keys = build_keys 41 150 in
  let t = Repl_bst.build ~universe ~keys in
  correctness_drill "repl-bst" (Repl_bst.instance t) keys

let test_bst_spec () =
  let keys = build_keys 42 128 in
  let t = Repl_bst.build ~universe ~keys in
  spec_drill "repl-bst" (Repl_bst.instance t) keys

let test_bst_probe_budget () =
  let keys = build_keys 43 100 in
  let t = Repl_bst.build ~universe ~keys in
  probes_drill "repl-bst" (Repl_bst.instance t) keys;
  checki "levels = ceil log2 (n+1)" 7 (Repl_bst.levels t)

let test_bst_contention_flat () =
  (* The whole point: normalized contention stays O(levels) — every
     cell near the ideal — instead of binary search's Theta(n). *)
  let at n =
    let keys = build_keys (44 + n) n in
    let t = Repl_bst.build ~universe ~keys in
    let inst = Repl_bst.instance t in
    Contention.normalized_max
      (Instance.contention_exact inst (Qdist.uniform ~name:"pos" keys))
  in
  let small = at 127 and large = at 2047 in
  checkb
    (Printf.sprintf "flat-ish: %.1f at 127 vs %.1f at 2047" small large)
    true
    (large < 2.0 *. small && large < 40.0)

let test_bst_rejects_bad_input () =
  let raised = try ignore (Repl_bst.build ~universe ~keys:[| 5; 5 |]); false
    with Invalid_argument _ -> true in
  checkb "duplicates" true raised;
  let raised = try ignore (Repl_bst.build ~universe:10 ~keys:[| 10 |]); false
    with Invalid_argument _ -> true in
  checkb "outside universe" true raised

let prop_bst_predecessor =
  QCheck.Test.make ~name:"repl-bst predecessor matches linear-scan oracle" ~count:25
    QCheck.(int_range 1 300)
    (fun n ->
      let rng = Rng.create ((n * 17) + 3) in
      let keys = Keyset.random rng ~universe ~n in
      let t = Repl_bst.build ~universe ~keys in
      let ok = ref true in
      for _ = 1 to 200 do
        let x = Rng.int rng universe in
        if Repl_bst.predecessor t rng x <> oracle_predecessor keys x then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let oracle_prop name builder =
  QCheck.Test.make ~name ~count:20
    QCheck.(int_range 2 200)
    (fun n ->
      let rng = Rng.create (n * 7 + 1) in
      let keys = Keyset.random rng ~universe ~n in
      let inst = builder rng keys in
      let ok = ref true in
      Array.iter (fun x -> if not (inst.Instance.mem rng x) then ok := false) keys;
      let in_keys = Hashtbl.create 64 in
      Array.iter (fun x -> Hashtbl.add in_keys x ()) keys;
      for _ = 1 to 100 do
        let x = Rng.int rng universe in
        if not (Hashtbl.mem in_keys x) && inst.Instance.mem rng x then ok := false
      done;
      !ok)

let prop_fks_oracle =
  oracle_prop "FKS agrees with oracle" (fun rng keys -> Fks.instance (Fks.build rng ~universe ~keys))

let prop_dm_oracle =
  oracle_prop "DM agrees with oracle" (fun rng keys ->
      Dm_dict.instance (Dm_dict.build rng ~universe ~keys))

let prop_cuckoo_oracle =
  oracle_prop "cuckoo agrees with oracle" (fun rng keys ->
      Cuckoo.instance (Cuckoo.build rng ~universe ~keys))

let prop_sorted_oracle =
  oracle_prop "binary search agrees with oracle" (fun _rng keys ->
      Sorted_array.instance (Sorted_array.build ~universe ~keys))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lc_dict"
    [
      ( "sorted_array",
        [
          Alcotest.test_case "correct" `Quick test_sorted_correct;
          Alcotest.test_case "spec matches mem" `Quick test_sorted_spec;
          Alcotest.test_case "probe budget" `Quick test_sorted_probe_budget;
          Alcotest.test_case "root contention 1" `Quick test_sorted_root_contention_is_one;
          Alcotest.test_case "rejects bad input" `Quick test_sorted_rejects_bad_input;
        ] );
      ( "fks",
        [
          Alcotest.test_case "correct" `Quick test_fks_correct;
          Alcotest.test_case "unreplicated correct" `Quick test_fks_unreplicated_correct;
          Alcotest.test_case "spec matches mem" `Quick test_fks_spec;
          Alcotest.test_case "probe budget" `Quick test_fks_probe_budget;
          Alcotest.test_case "linear space" `Quick test_fks_linear_space;
          Alcotest.test_case "param cell contention" `Quick test_fks_param_cell_contention;
          Alcotest.test_case "planted heavy bucket" `Quick test_fks_planted_heavy_bucket;
          Alcotest.test_case "planted contention factor" `Quick test_fks_planted_contention_factor;
          Alcotest.test_case "trials reported" `Quick test_fks_trials_reported;
        ] );
      ( "dm_dict",
        [
          Alcotest.test_case "correct" `Quick test_dm_correct;
          Alcotest.test_case "spec matches mem" `Quick test_dm_spec;
          Alcotest.test_case "probe budget" `Quick test_dm_probe_budget;
          Alcotest.test_case "load cap" `Quick test_dm_load_cap;
          Alcotest.test_case "unreplicated" `Quick test_dm_unreplicated;
        ] );
      ( "cuckoo",
        [
          Alcotest.test_case "correct" `Quick test_cuckoo_correct;
          Alcotest.test_case "spec matches mem" `Quick test_cuckoo_spec;
          Alcotest.test_case "probe budget" `Quick test_cuckoo_probe_budget;
          Alcotest.test_case "two data probes" `Quick test_cuckoo_two_data_probes;
          Alcotest.test_case "rehash counter" `Quick test_cuckoo_rehash_counter;
          Alcotest.test_case "large instance" `Quick test_cuckoo_large;
        ] );
      ( "repl_bst",
        [
          Alcotest.test_case "predecessor oracle" `Quick test_bst_predecessor_oracle;
          Alcotest.test_case "predecessor edges" `Quick test_bst_predecessor_edges;
          Alcotest.test_case "mem" `Quick test_bst_mem;
          Alcotest.test_case "spec matches mem" `Quick test_bst_spec;
          Alcotest.test_case "probe budget" `Quick test_bst_probe_budget;
          Alcotest.test_case "contention flat" `Quick test_bst_contention_flat;
          Alcotest.test_case "rejects bad input" `Quick test_bst_rejects_bad_input;
        ] );
      qsuite "oracle properties"
        [
          prop_fks_oracle;
          prop_dm_oracle;
          prop_cuckoo_oracle;
          prop_sorted_oracle;
          prop_bst_predecessor;
        ];
    ]
