(* Tests for the hash families: statistical quality of the polynomial
   family, algebraic identities of the DM family, perfect hashing, and
   load analytics. *)

module Rng = Lc_prim.Rng
module Primes = Lc_prim.Primes
module Poly_hash = Lc_hash.Poly_hash
module Dm_family = Lc_hash.Dm_family
module Perfect = Lc_hash.Perfect
module Loads = Lc_hash.Loads

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let p_test = Primes.prime_for_universe 100_000

(* ------------------------------------------------------------------ *)
(* Poly_hash                                                            *)
(* ------------------------------------------------------------------ *)

let test_poly_range () =
  let rng = Rng.create 1 in
  let h = Poly_hash.create rng ~d:3 ~p:p_test ~m:37 in
  for x = 0 to 5000 do
    let v = Poly_hash.eval h x in
    checkb "in range" true (v >= 0 && v < 37)
  done

let test_poly_deterministic () =
  let rng = Rng.create 2 in
  let h = Poly_hash.create rng ~d:4 ~p:p_test ~m:101 in
  for x = 0 to 100 do
    checki "stable" (Poly_hash.eval h x) (Poly_hash.eval h x)
  done

let test_poly_coeffs_roundtrip () =
  let rng = Rng.create 3 in
  let h = Poly_hash.create rng ~d:3 ~p:p_test ~m:64 in
  let h2 = Poly_hash.of_coeffs ~p:p_test ~m:64 (Poly_hash.coeffs h) in
  for x = 0 to 2000 do
    checki "same function" (Poly_hash.eval h x) (Poly_hash.eval h2 x)
  done

let test_poly_reduce_commutes () =
  let rng = Rng.create 4 in
  let h = Poly_hash.create rng ~d:3 ~p:p_test ~m:60 in
  let h' = Poly_hash.reduce h 12 in
  for x = 0 to 2000 do
    checki "h mod 12" (Poly_hash.eval h x mod 12) (Poly_hash.eval h' x)
  done

let test_poly_reduce_requires_divisor () =
  let rng = Rng.create 5 in
  let h = Poly_hash.create rng ~d:3 ~p:p_test ~m:60 in
  Alcotest.check_raises "non-divisor"
    (Invalid_argument "Poly_hash.reduce: new range must divide the old range") (fun () ->
      ignore (Poly_hash.reduce h 7))

let test_poly_validation () =
  let rng = Rng.create 6 in
  Alcotest.check_raises "d = 0" (Invalid_argument "Poly_hash.create: d must be >= 1") (fun () ->
      ignore (Poly_hash.create rng ~d:0 ~p:p_test ~m:10));
  Alcotest.check_raises "coeff out of field"
    (Invalid_argument "Poly_hash.of_coeffs: coefficient out of field") (fun () ->
      ignore (Poly_hash.of_coeffs ~p:97 ~m:10 [| 97 |]))

(* Pairwise independence: for a fixed pair (x, y), over random h the
   joint distribution of (h(x), h(y)) should be near-uniform on m^2. A
   chi-square-style max deviation check over a coarse grid. *)
let test_poly_pairwise_independence () =
  let m = 4 in
  let trials = 40_000 in
  let rng = Rng.create 7 in
  let counts = Array.make (m * m) 0 in
  for _ = 1 to trials do
    let h = Poly_hash.create rng ~d:2 ~p:p_test ~m in
    let a = Poly_hash.eval h 123 and b = Poly_hash.eval h 9876 in
    let k = (a * m) + b in
    counts.(k) <- counts.(k) + 1
  done;
  let expected = float_of_int trials /. float_of_int (m * m) in
  Array.iteri
    (fun k c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      checkb (Printf.sprintf "cell %d within 8%%" k) true (dev < 0.08))
    counts

(* Collision probability of the degree-1 family on a fixed pair should
   be ~1/m (universality). *)
let test_poly_collision_rate () =
  let m = 64 in
  let trials = 60_000 in
  let rng = Rng.create 8 in
  let collisions = ref 0 in
  for _ = 1 to trials do
    let h = Poly_hash.create rng ~d:2 ~p:p_test ~m in
    if Poly_hash.eval h 555 = Poly_hash.eval h 77_777 then incr collisions
  done;
  let rate = float_of_int !collisions /. float_of_int trials in
  checkb "collision rate near 1/m" true (rate < 2.5 /. float_of_int m)

(* ------------------------------------------------------------------ *)
(* Dm_family                                                            *)
(* ------------------------------------------------------------------ *)

let test_dm_definition () =
  let rng = Rng.create 9 in
  let f = Poly_hash.create rng ~d:3 ~p:p_test ~m:50 in
  let g = Poly_hash.create rng ~d:3 ~p:p_test ~m:10 in
  let z = Array.init 10 (fun i -> (i * 7) mod 50) in
  let h = Dm_family.of_parts ~f ~g ~z in
  for x = 0 to 3000 do
    let expected = (Poly_hash.eval f x + z.(Poly_hash.eval g x)) mod 50 in
    checki "definition 4" expected (Dm_family.eval h x)
  done

let test_dm_range () =
  let rng = Rng.create 10 in
  let h = Dm_family.create rng ~d:3 ~p:p_test ~r:8 ~m:33 in
  for x = 0 to 3000 do
    let v = Dm_family.eval h x in
    checkb "in range" true (v >= 0 && v < 33)
  done

let test_dm_reduce_commutes () =
  let rng = Rng.create 11 in
  let h = Dm_family.create rng ~d:3 ~p:p_test ~r:8 ~m:60 in
  let h' = Dm_family.reduce h 15 in
  for x = 0 to 3000 do
    checki "(h mod 15)" (Dm_family.eval h x mod 15) (Dm_family.eval h' x)
  done

let test_dm_validation () =
  let rng = Rng.create 12 in
  let f = Poly_hash.create rng ~d:3 ~p:p_test ~m:50 in
  let g = Poly_hash.create rng ~d:3 ~p:p_test ~m:10 in
  Alcotest.check_raises "wrong z length"
    (Invalid_argument "Dm_family.of_parts: |z| must equal range of g") (fun () ->
      ignore (Dm_family.of_parts ~f ~g ~z:(Array.make 9 0)));
  Alcotest.check_raises "z out of range"
    (Invalid_argument "Dm_family.of_parts: displacement out of range") (fun () ->
      ignore (Dm_family.of_parts ~f ~g ~z:(Array.make 10 50)))

(* ------------------------------------------------------------------ *)
(* Perfect                                                              *)
(* ------------------------------------------------------------------ *)

let test_perfect_injective () =
  let rng = Rng.create 13 in
  for trial = 0 to 50 do
    let l = 1 + (trial mod 12) in
    let keys = Rng.sample_distinct rng ~bound:100_000 ~count:l in
    let h = Perfect.find rng ~p:p_test ~keys in
    checki "size l^2" (max 1 (l * l)) (Perfect.size h);
    checkb "injective" true (Perfect.is_perfect_on h keys);
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        let slot = Perfect.eval h x in
        checkb "slot in range" true (slot >= 0 && slot < Perfect.size h);
        checkb "distinct slots" false (Hashtbl.mem seen slot);
        Hashtbl.add seen slot ())
      keys
  done

let test_perfect_empty_bucket () =
  let rng = Rng.create 14 in
  let h = Perfect.find rng ~p:p_test ~keys:[||] in
  checki "singleton table" 1 (Perfect.size h)

let test_perfect_multiplier_roundtrip () =
  let rng = Rng.create 15 in
  let keys = Rng.sample_distinct rng ~bound:100_000 ~count:7 in
  let h = Perfect.find rng ~p:p_test ~keys in
  let h2 = Perfect.of_multiplier ~p:p_test ~size:(Perfect.size h) (Perfect.multiplier h) in
  Array.iter (fun x -> checki "same slots" (Perfect.eval h x) (Perfect.eval h2 x)) keys

let test_perfect_expected_trials () =
  (* FKS: at least half the multipliers are perfect, so the mean trial
     count over many buckets must be well under 3. *)
  let rng = Rng.create 16 in
  let total = ref 0 in
  let buckets = 300 in
  for _ = 1 to buckets do
    let l = 2 + Rng.int rng 10 in
    let keys = Rng.sample_distinct rng ~bound:100_000 ~count:l in
    let h = Perfect.find rng ~p:p_test ~keys in
    total := !total + Perfect.trials h
  done;
  let mean = float_of_int !total /. float_of_int buckets in
  checkb (Printf.sprintf "mean trials %.2f < 3" mean) true (mean < 3.0)

(* ------------------------------------------------------------------ *)
(* Tabulation                                                           *)
(* ------------------------------------------------------------------ *)

module Tabulation = Lc_hash.Tabulation

let test_tab_range () =
  let rng = Rng.create 30 in
  let h = Tabulation.create rng ~universe_bits:16 ~chunk_bits:8 ~m:37 in
  checki "two chars" 2 (Tabulation.chars h);
  for x = 0 to 10_000 do
    let v = Tabulation.eval h x in
    checkb "in range" true (v >= 0 && v < 37)
  done

let test_tab_words_roundtrip () =
  let rng = Rng.create 31 in
  let h = Tabulation.create rng ~universe_bits:20 ~chunk_bits:5 ~m:101 in
  let h2 =
    Tabulation.of_words ~universe_bits:20 ~chunk_bits:5 ~m:101 (Tabulation.words h)
  in
  for x = 0 to 5_000 do
    checki "same function" (Tabulation.eval h x) (Tabulation.eval h2 x)
  done

let test_tab_uniformity_chisq () =
  (* Over random functions, a fixed key's value must be uniform:
     chi-square over the codomain. *)
  let m = 16 in
  let rng = Rng.create 32 in
  let counts = Array.make m 0 in
  for _ = 1 to 20_000 do
    let h = Tabulation.create rng ~universe_bits:12 ~chunk_bits:6 ~m in
    let v = Tabulation.eval h 1234 in
    counts.(v) <- counts.(v) + 1
  done;
  checkb "uniform per chi-square" true (Lc_analysis.Chisq.test_uniform counts)

let test_tab_rejects_bad_keys () =
  let rng = Rng.create 33 in
  let h = Tabulation.create rng ~universe_bits:8 ~chunk_bits:4 ~m:10 in
  let raised = try ignore (Tabulation.eval h 256); false with Invalid_argument _ -> true in
  checkb "key too wide" true raised;
  let raised = try ignore (Tabulation.eval h (-1)); false with Invalid_argument _ -> true in
  checkb "negative key" true raised

let test_tab_max_load_reasonable () =
  (* The property the DM dictionary cares about: balls-in-bins
     concentration. 4096 random keys into 4096 bins: max load far below
     the sqrt-n of a merely-2-universal worst case. *)
  let rng = Rng.create 34 in
  let h = Tabulation.create rng ~universe_bits:20 ~chunk_bits:10 ~m:4096 in
  let keys = Rng.sample_distinct rng ~bound:(1 lsl 20) ~count:4096 in
  let loads = Loads.loads ~hash:(Tabulation.eval h) ~buckets:4096 keys in
  checkb
    (Printf.sprintf "max load %d <= 12" (Loads.max_load loads))
    true
    (Loads.max_load loads <= 12)

(* ------------------------------------------------------------------ *)
(* Loads                                                                *)
(* ------------------------------------------------------------------ *)

let test_loads_basic () =
  let keys = [| 0; 1; 2; 3; 4; 5 |] in
  let v = Loads.loads ~hash:(fun x -> x mod 3) ~buckets:3 keys in
  Alcotest.check (Alcotest.array Alcotest.int) "loads" [| 2; 2; 2 |] v;
  checki "max" 2 (Loads.max_load v);
  checki "sum squares" 12 (Loads.sum_squares v);
  checki "collision pairs" 6 (Loads.collision_pairs v)

let test_loads_sum_identity () =
  (* The proof of Lemma 9(3): X = sum l^2 - n where X counts ordered
     collision pairs. *)
  let rng = Rng.create 17 in
  let keys = Rng.sample_distinct rng ~bound:10_000 ~count:200 in
  let v = Loads.loads ~hash:(fun x -> x mod 37) ~buckets:37 keys in
  checki "identity" (Loads.sum_squares v - 200) (Loads.collision_pairs v)

let test_group_loads () =
  let loads = [| 1; 2; 3; 4; 5; 6 |] in
  (* groups of 2: group 0 gets indices 0,2,4; group 1 gets 1,3,5 *)
  let g = Loads.group_loads ~loads ~groups:2 in
  Alcotest.check (Alcotest.array Alcotest.int) "groups" [| 9; 12 |] g

let test_bucket_keys () =
  let keys = [| 10; 11; 12; 13; 14 |] in
  let groups = Loads.bucket_keys ~hash:(fun x -> x mod 2) ~buckets:2 keys in
  Alcotest.check (Alcotest.array Alcotest.int) "evens" [| 10; 12; 14 |] groups.(0);
  Alcotest.check (Alcotest.array Alcotest.int) "odds" [| 11; 13 |] groups.(1)

let test_fks_condition () =
  checkb "holds" true (Loads.fks_condition ~loads:[| 1; 1; 1; 1 |] ~s:4);
  checkb "fails" false (Loads.fks_condition ~loads:[| 3; 0 |] ~s:8)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_poly_reduce =
  QCheck.Test.make ~name:"poly reduce m' | m is pointwise mod" ~count:200
    QCheck.(triple (int_range 1 20) (int_range 1 10) (int_range 0 50_000))
    (fun (q, div, x) ->
      let m = q * div in
      let rng = Rng.create (m + x) in
      let h = Poly_hash.create rng ~d:3 ~p:p_test ~m in
      let h' = Poly_hash.reduce h div in
      Poly_hash.eval h' x = Poly_hash.eval h x mod div)

let prop_dm_reduce =
  QCheck.Test.make ~name:"DM reduce m' | m is pointwise mod" ~count:200
    QCheck.(triple (int_range 1 20) (int_range 1 10) (int_range 0 50_000))
    (fun (q, div, x) ->
      let m = q * div in
      let rng = Rng.create (m + (3 * x)) in
      let h = Dm_family.create rng ~d:3 ~p:p_test ~r:5 ~m in
      let h' = Dm_family.reduce h div in
      Dm_family.eval h' x = Dm_family.eval h x mod div)

let prop_loads_total =
  QCheck.Test.make ~name:"loads sum to key count" ~count:200
    QCheck.(pair (int_range 1 64) (list_of_size (Gen.int_range 0 100) (int_range 0 10_000)))
    (fun (buckets, keys) ->
      let keys = Array.of_list keys in
      let v = Loads.loads ~hash:(fun x -> x mod buckets) ~buckets keys in
      Array.fold_left ( + ) 0 v = Array.length keys)

let prop_perfect_find =
  QCheck.Test.make ~name:"Perfect.find is injective on its keys" ~count:100
    QCheck.(int_range 0 14)
    (fun l ->
      let rng = Rng.create (l + 991) in
      let keys = Rng.sample_distinct rng ~bound:99_991 ~count:l in
      let h = Perfect.find rng ~p:p_test ~keys in
      Perfect.is_perfect_on h keys)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lc_hash"
    [
      ( "poly_hash",
        [
          Alcotest.test_case "range" `Quick test_poly_range;
          Alcotest.test_case "deterministic" `Quick test_poly_deterministic;
          Alcotest.test_case "coeffs round-trip" `Quick test_poly_coeffs_roundtrip;
          Alcotest.test_case "reduce commutes" `Quick test_poly_reduce_commutes;
          Alcotest.test_case "reduce requires divisor" `Quick test_poly_reduce_requires_divisor;
          Alcotest.test_case "validation" `Quick test_poly_validation;
          Alcotest.test_case "pairwise independence" `Slow test_poly_pairwise_independence;
          Alcotest.test_case "collision rate" `Slow test_poly_collision_rate;
        ] );
      ( "dm_family",
        [
          Alcotest.test_case "definition 4" `Quick test_dm_definition;
          Alcotest.test_case "range" `Quick test_dm_range;
          Alcotest.test_case "reduce commutes" `Quick test_dm_reduce_commutes;
          Alcotest.test_case "validation" `Quick test_dm_validation;
        ] );
      ( "perfect",
        [
          Alcotest.test_case "injective" `Quick test_perfect_injective;
          Alcotest.test_case "empty bucket" `Quick test_perfect_empty_bucket;
          Alcotest.test_case "multiplier round-trip" `Quick test_perfect_multiplier_roundtrip;
          Alcotest.test_case "expected trials" `Quick test_perfect_expected_trials;
        ] );
      ( "tabulation",
        [
          Alcotest.test_case "range" `Quick test_tab_range;
          Alcotest.test_case "words round-trip" `Quick test_tab_words_roundtrip;
          Alcotest.test_case "uniformity (chi-square)" `Slow test_tab_uniformity_chisq;
          Alcotest.test_case "rejects bad keys" `Quick test_tab_rejects_bad_keys;
          Alcotest.test_case "max load concentration" `Quick test_tab_max_load_reasonable;
        ] );
      ( "loads",
        [
          Alcotest.test_case "basic" `Quick test_loads_basic;
          Alcotest.test_case "collision identity" `Quick test_loads_sum_identity;
          Alcotest.test_case "group loads" `Quick test_group_loads;
          Alcotest.test_case "bucket keys" `Quick test_bucket_keys;
          Alcotest.test_case "fks condition" `Quick test_fks_condition;
        ] );
      qsuite "properties" [ prop_poly_reduce; prop_dm_reduce; prop_loads_total; prop_perfect_find ];
    ]
