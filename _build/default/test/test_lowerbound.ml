(* Tests for the Section 3 machinery: problems, VC-dimension, probe
   specs, Lemma 16 (including the erratum), the adversary, the
   product-space probe simulation, the coupling, the game and the
   recurrence. *)

module Rng = Lc_prim.Rng
module Lb = Lc_lowerbound
module Problem = Lb.Problem
module Vc_dim = Lb.Vc_dim
module Probe_spec = Lb.Probe_spec
module Lemma16 = Lb.Lemma16
module Adversary = Lb.Adversary
module Product_probe = Lb.Product_probe
module Coupling = Lb.Coupling
module Game = Lb.Game
module Recursion = Lb.Recursion
module Keyset = Lc_workload.Keyset

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Problem                                                              *)
(* ------------------------------------------------------------------ *)

let test_membership_eval () =
  let p = Problem.membership ~universe:5 ~k:2 in
  checki "queries" 5 (Problem.queries p);
  checki "datasets" 10 (Problem.datasets p);
  (* dataset 0 is {0,1} in lexicographic order *)
  checkb "0 in {0,1}" true (Problem.eval p 0 0);
  checkb "1 in {0,1}" true (Problem.eval p 1 0);
  checkb "2 not in {0,1}" false (Problem.eval p 2 0)

let test_subset_ranking_bijective () =
  let universe = 7 and k = 3 in
  let seen = Hashtbl.create 64 in
  for rank = 0 to 34 do
    let s = Problem.subset_of_rank ~universe ~k rank in
    checki "size" k (Array.length s);
    let key = Array.to_list s in
    checkb "sorted" true (List.sort compare key = key);
    checkb "fresh" false (Hashtbl.mem seen key);
    Hashtbl.add seen key ()
  done;
  checki "all 35 subsets" 35 (Hashtbl.length seen)

let test_parity_eval () =
  let p = Problem.parity ~universe:3 in
  checki "queries" 8 (Problem.queries p);
  checkb "parity(1 & 1)" true (Problem.eval p 1 1);
  checkb "parity(1 & 2)" false (Problem.eval p 1 2);
  checkb "parity(3 & 3)" false (Problem.eval p 3 3);
  checkb "parity(3 & 1)" true (Problem.eval p 3 1)

(* ------------------------------------------------------------------ *)
(* Vc_dim                                                               *)
(* ------------------------------------------------------------------ *)

let test_vc_membership () =
  List.iter
    (fun (u, k) ->
      let p = Problem.membership ~universe:u ~k in
      checki (Printf.sprintf "membership(%d, %d)" u k) k (Vc_dim.vc_dim p))
    [ (4, 1); (5, 2); (6, 3); (7, 2) ]

let test_vc_parity () =
  List.iter
    (fun u ->
      let p = Problem.parity ~universe:u in
      checki (Printf.sprintf "parity(%d)" u) u (Vc_dim.vc_dim p))
    [ 1; 2; 3; 4 ]

let test_vc_constant_problem () =
  let p = Problem.make ~queries:4 ~datasets:3 ~f:(fun _ _ -> true) in
  checki "constant problem has VC-dim 0" 0 (Vc_dim.vc_dim p)

let test_shattered_witness () =
  let p = Problem.membership ~universe:6 ~k:2 in
  (match Vc_dim.find_shattered p ~size:2 with
  | None -> Alcotest.fail "expected a shattered pair"
  | Some w ->
    checki "size" 2 (Array.length w);
    checkb "is shattered" true (Vc_dim.is_shattered p w));
  checkb "no shattered triple" true (Vc_dim.find_shattered p ~size:3 = None)

let test_shatter_patterns_count () =
  let p = Problem.membership ~universe:5 ~k:1 in
  (* Patterns on two queries: {} impossible (every dataset has one
     element), so we see 00 (dataset elsewhere), 10, 01 — never 11. *)
  checki "3 patterns" 3 (Vc_dim.shatter_patterns p [| 0; 1 |])

(* ------------------------------------------------------------------ *)
(* Probe_spec                                                           *)
(* ------------------------------------------------------------------ *)

let test_spec_matrix_basics () =
  let p = Probe_spec.make [| [| 0.5; 0.5 |]; [| 1.0; 0.0 |] |] in
  checki "rows" 2 (Probe_spec.rows p);
  checki "cols" 2 (Probe_spec.cols p);
  checkf "get" 0.5 (Probe_spec.get p 0 1);
  checkf "row sum" 1.0 (Probe_spec.row_sum p 0);
  checkf "row max" 1.0 (Probe_spec.row_max p 1);
  checkf "col max sum" 1.5 (Probe_spec.col_max_sum p);
  checkb "row stochastic" true (Probe_spec.row_stochastic_ok p)

let test_spec_matrix_validation () =
  let expect_invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "negative entry" true
    (expect_invalid (fun () -> Probe_spec.make [| [| -0.1 |] |]));
  checkb "ragged" true (expect_invalid (fun () -> Probe_spec.make [| [| 0.1 |]; [| 0.1; 0.2 |] |]))

let test_spec_of_instance () =
  let rng = Rng.create 1 in
  let universe = 1 lsl 16 in
  let keys = Keyset.random rng ~universe ~n:32 in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in
  for step = 0 to inst.max_probes - 1 do
    let p = Probe_spec.of_instance inst ~queries:keys ~step in
    checkb (Printf.sprintf "step %d row-stochastic" step) true (Probe_spec.row_stochastic_ok p)
  done;
  (* Beyond the plan: all-zero rows. *)
  let p = Probe_spec.of_instance inst ~queries:keys ~step:inst.max_probes in
  checkf "zero past the plan" 0.0 (Probe_spec.col_max_sum p)

let test_spec_contention_ok () =
  let p = Probe_spec.make [| [| 0.5; 0.5 |]; [| 0.1; 0.0 |] |] in
  let q = [| 0.5; 0.5 |] in
  checkb "phi = 0.25 ok" true (Probe_spec.contention_ok p ~q ~phi:0.25);
  checkb "phi = 0.2 fails" false (Probe_spec.contention_ok p ~q ~phi:0.2)

(* ------------------------------------------------------------------ *)
(* Lemma 16                                                             *)
(* ------------------------------------------------------------------ *)

let test_lemma16_simple () =
  let p = Probe_spec.make [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let r = Lemma16.largest_r p ~budget:2 in
  checki "both rows affordable" 2 (Array.length r);
  checkb "strict form holds here" true (Lemma16.holds_strict p ~budget:2)

let test_lemma16_erratum_counterexample () =
  (* Ten rows of max 0.3 with budget 2: sum_j max_i = 0.6 but R is
     empty — the literal lemma fails, the +1 correction holds. *)
  let rows = Array.make 10 [| 0.3; 0.3 |] in
  let p = Probe_spec.make rows in
  checki "R empty" 0 (Array.length (Lemma16.largest_r p ~budget:2));
  checkb "literal form fails" false (Lemma16.holds_strict p ~budget:2);
  checkb "corrected form holds" true (Lemma16.holds p ~budget:2);
  checkb "fractional bound holds" true (Lemma16.holds_fractional p ~budget:2);
  checkb "fractional optimum 0.6" true
    (Float.abs (Lemma16.fractional_bound p ~budget:2 -. 0.6) < 1e-9)

let test_lemma16_zero_rows_excluded () =
  let p = Probe_spec.make [| [| 0.0; 0.0 |]; [| 0.5; 0.5 |] |] in
  let r = Lemma16.largest_r p ~budget:2 in
  checki "only the nonzero row" 1 (Array.length r);
  checki "row index" 1 r.(0)

let prop_lemma16_sandwich =
  QCheck.Test.make ~name:"fractional bound sandwiched in [|R|, |R|+1)" ~count:200
    QCheck.(triple (int_range 2 25) (int_range 4 50) (int_range 1 8))
    (fun (rows, cols, support) ->
      let support = min support cols in
      let rng = Rng.create ((rows * 211) + cols) in
      let p = Probe_spec.random rng ~rows ~cols ~support in
      let r = float_of_int (Array.length (Lemma16.largest_r p ~budget:cols)) in
      let frac = Lemma16.fractional_bound p ~budget:cols in
      frac >= r -. 1e-9 && frac < r +. 1.0 +. 1e-9)

let prop_lemma16_corrected =
  QCheck.Test.make ~name:"Lemma 16 (corrected) on random specs" ~count:300
    QCheck.(triple (int_range 2 25) (int_range 4 50) (int_range 1 8))
    (fun (rows, cols, support) ->
      let support = min support cols in
      let rng = Rng.create ((rows * 1000) + cols + support) in
      let p = Probe_spec.random rng ~rows ~cols ~support in
      Lemma16.holds p ~budget:cols && Lemma16.holds_fractional p ~budget:cols)

(* ------------------------------------------------------------------ *)
(* Adversary                                                            *)
(* ------------------------------------------------------------------ *)

let test_adversary_builds_and_violates () =
  (* A matrix whose rows each contain many small entries: the lemma's
     hypothesis holds and the built q must violate every row. *)
  let rng = Rng.create 9 in
  let big_n = 8 and n = 400 in
  let m =
    Array.init big_n (fun u ->
        Array.init n (fun i -> if (i + u) mod 3 = 0 then 0.0001 else 10.0))
  in
  let out = Adversary.build rng ~m ~delta:1.0 ~epsilon:0.5 in
  checkb "mass epsilon" true
    (Float.abs (Array.fold_left ( +. ) 0.0 out.q -. 0.5) < 1e-9);
  checkb "violates all rows" true (Adversary.violates_all ~q:out.q ~m);
  checkb "r sane" true (out.r >= 2 && out.r <= n)

let test_adversary_rejects_bad_hypothesis () =
  (* All-large matrix: no r entries sum below delta. *)
  let rng = Rng.create 10 in
  let m = Array.init 4 (fun _ -> Array.make 50 10.0) in
  let raised =
    try
      ignore (Adversary.build rng ~m ~delta:0.001 ~epsilon:0.5);
      false
    with Invalid_argument _ -> true
  in
  checkb "hypothesis enforced" true raised

let test_violates_all_checker () =
  let m = [| [| 0.1; 5.0 |]; [| 5.0; 0.1 |] |] in
  checkb "violated" true (Adversary.violates_all ~q:[| 0.2; 0.2 |] ~m);
  checkb "not violated" false (Adversary.violates_all ~q:[| 0.05; 0.05 |] ~m)

(* ------------------------------------------------------------------ *)
(* Product_probe (Lemma 19)                                             *)
(* ------------------------------------------------------------------ *)

let test_product_probe_success_rate () =
  let rng = Rng.create 11 in
  let p = [| 0.1; 0.2; 0.3; 0.4 |] in
  let trials = 30_000 in
  let successes = ref 0 in
  for _ = 1 to trials do
    match Product_probe.simulate rng ~p with Probed _ -> incr successes | Failed -> ()
  done;
  let rate = float_of_int !successes /. float_of_int trials in
  checkb
    (Printf.sprintf "success rate %.3f >= 1/4" rate)
    true
    (rate >= Product_probe.success_probability_lower_bound -. 0.02)

let test_product_probe_conditional_law () =
  (* Conditioned on success, the simulated probe must follow p. *)
  let rng = Rng.create 12 in
  let p = [| 0.5; 0.25; 0.25 |] in
  let counts = Array.make 3 0 in
  let successes = ref 0 in
  for _ = 1 to 60_000 do
    match Product_probe.simulate rng ~p with
    | Probed i ->
      counts.(i) <- counts.(i) + 1;
      incr successes
    | Failed -> ()
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int !successes in
      checkb
        (Printf.sprintf "cell %d freq %.3f ~ %.3f" i freq p.(i))
        true
        (Float.abs (freq -. p.(i)) < 0.02))
    counts

let test_product_probe_point_mass () =
  (* p concentrated on one cell (the Case 2 branch). *)
  let rng = Rng.create 13 in
  let p = [| 0.9; 0.1 |] in
  let trials = 20_000 in
  let ok = ref 0 and zero = ref 0 in
  for _ = 1 to trials do
    match Product_probe.simulate rng ~p with
    | Probed 0 -> incr zero; incr ok
    | Probed _ -> incr ok
    | Failed -> ()
  done;
  let cond = float_of_int !zero /. float_of_int !ok in
  checkb "conditional ~0.9" true (Float.abs (cond -. 0.9) < 0.02);
  checkb "success >= 1/4" true
    (float_of_int !ok /. float_of_int trials >= 0.23)

let test_product_probe_validates_input () =
  let rng = Rng.create 14 in
  let raised =
    try
      ignore (Product_probe.simulate rng ~p:[| 0.4; 0.4 |]);
      false
    with Invalid_argument _ -> true
  in
  checkb "rejects non-distribution" true raised

let test_inclusion_probability_capped () =
  checkf "capped at 1/2" 0.5 (Product_probe.inclusion_probability ~p:[| 0.9; 0.1 |] 0);
  checkf "small p kept" 0.1 (Product_probe.inclusion_probability ~p:[| 0.9; 0.1 |] 1)

(* ------------------------------------------------------------------ *)
(* Coupling (Lemma 21)                                                  *)
(* ------------------------------------------------------------------ *)

let test_coupling_marginals () =
  let rng = Rng.create 15 in
  let marginals = Probe_spec.make [| [| 0.6; 0.1; 0.0 |]; [| 0.3; 0.4; 0.2 |] |] in
  let trials = 40_000 in
  let counts = Array.make_matrix 2 3 0 in
  for _ = 1 to trials do
    let s = Coupling.draw rng ~marginals in
    Array.iteri
      (fun i set -> Array.iter (fun j -> counts.(i).(j) <- counts.(i).(j) + 1) set)
      s.sets
  done;
  for i = 0 to 1 do
    for j = 0 to 2 do
      let freq = float_of_int counts.(i).(j) /. float_of_int trials in
      checkb
        (Printf.sprintf "marginal (%d, %d): %.3f" i j freq)
        true
        (Float.abs (freq -. Probe_spec.get marginals i j) < 0.015)
    done
  done

let test_coupling_union_bound () =
  let rng = Rng.create 16 in
  let marginals = Probe_spec.make [| [| 0.6; 0.1; 0.0 |]; [| 0.3; 0.4; 0.2 |] |] in
  let trials = 40_000 in
  let acc = ref 0 in
  for _ = 1 to trials do
    acc := !acc + Coupling.union_size (Coupling.draw rng ~marginals)
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  let bound = Coupling.expected_union_bound marginals in
  checkb (Printf.sprintf "E|union| = %.3f <= %.3f" mean bound) true (mean <= bound +. 0.02)

let test_coupling_union_subset_of_base () =
  let rng = Rng.create 17 in
  let marginals = Probe_spec.make [| [| 0.5; 0.5; 0.5; 0.1 |]; [| 0.2; 0.5; 0.1; 0.1 |] |] in
  for _ = 1 to 500 do
    let s = Coupling.draw rng ~marginals in
    let base = Array.to_list s.base in
    Array.iter
      (fun set -> Array.iter (fun j -> checkb "in base" true (List.mem j base)) set)
      s.sets
  done

(* ------------------------------------------------------------------ *)
(* Simulation (Lemmas 19/20 end to end)                                 *)
(* ------------------------------------------------------------------ *)

let small_dict_instance seed n =
  let rng = Rng.create seed in
  let universe = 1 lsl 16 in
  let keys = Keyset.random rng ~universe ~n in
  (rng, keys, Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys))

let test_simulation_step_success_floor () =
  let rng, keys, inst = small_dict_instance 30 48 in
  let stats = Lb.Simulation.step_success rng inst ~queries:keys ~trials:2000 in
  Array.iter
    (fun (st : Lb.Simulation.step_stats) ->
      checkb
        (Printf.sprintf "step %d rate %.3f >= 1/4" st.step st.success_rate)
        true
        (st.success_rate >= 0.25 -. 0.04))
    stats

let test_simulation_completion_monotone () =
  let rng, keys, inst = small_dict_instance 31 48 in
  let curve = Lb.Simulation.completion_curve rng inst ~queries:keys ~trials:2000 in
  for i = 1 to Array.length curve - 1 do
    checkb "completion non-increasing (within noise)" true
      (curve.(i).completion_rate <= curve.(i - 1).completion_rate +. 0.03)
  done;
  Array.iter
    (fun (c : Lb.Simulation.completion) ->
      checkb "above the 4^-t floor" true (c.completion_rate >= c.lemma_floor -. 0.02))
    curve

let test_simulation_parallel_round_bounds () =
  let rng, keys, inst = small_dict_instance 32 48 in
  let n = float_of_int (Array.length keys) in
  for step = 0 to inst.max_probes - 1 do
    let r = Lb.Simulation.parallel_round rng inst ~queries:keys ~step ~trials:30 in
    checkb
      (Printf.sprintf "step %d distinct cells %.1f within bound %.1f" step r.mean_distinct_cells
         r.info_bound)
      true
      (r.mean_distinct_cells
      <= r.info_bound +. (3.0 *. Float.sqrt (r.info_bound /. 30.0)) +. 0.5);
    checkb "survivors in a sane band" true
      (r.mean_successes >= 0.15 *. n && r.mean_successes <= 0.85 *. n)
  done

let test_sparse_matches_dense () =
  (* The dense entry point is a wrapper over the sparse one; check the
     conditional law through the sparse API directly. *)
  let rng = Rng.create 33 in
  let support = [| (3, 0.5); (9, 0.25); (11, 0.25) |] in
  let counts = Hashtbl.create 3 in
  let successes = ref 0 in
  for _ = 1 to 40_000 do
    match Product_probe.simulate_sparse rng ~support with
    | Product_probe.Probed i ->
      incr successes;
      Hashtbl.replace counts i (1 + try Hashtbl.find counts i with Not_found -> 0)
    | Product_probe.Failed -> ()
  done;
  Array.iter
    (fun (i, pi) ->
      let freq = float_of_int (Hashtbl.find counts i) /. float_of_int !successes in
      checkb
        (Printf.sprintf "cell %d freq %.3f ~ %.3f" i freq pi)
        true
        (Float.abs (freq -. pi) < 0.02))
    support

(* ------------------------------------------------------------------ *)
(* Game                                                                 *)
(* ------------------------------------------------------------------ *)

let test_game_constraints_hold () =
  let rng = Rng.create 18 in
  let universe = 1 lsl 16 in
  let keys = Keyset.random rng ~universe ~n:48 in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in
  let n = Array.length keys in
  let q = Array.make n (1.0 /. float_of_int n) in
  let c =
    Lc_dict.Instance.contention_exact inst (Lc_cellprobe.Qdist.uniform ~name:"pos" keys)
  in
  let game =
    Game.play rng inst ~queries:keys ~q ~phi:c.max_step
      ~bits:(Lc_cellprobe.Table.bits inst.table) ~rounds:inst.max_probes ~samples:10
  in
  checki "one round per probe" inst.max_probes (Array.length game.rounds);
  Array.iter
    (fun (r : Game.round) ->
      checkb "constraint (1)" true r.row_stochastic;
      checkb "constraint (2)" true r.contention_ok;
      checkb "info bound nonneg" true (r.info_bound_bits >= 0.0))
    game.rounds;
  checkb "total >= required (trivially here)" true
    (game.total_info_bits >= game.required_bits)

let test_game_info_bounded_by_bn () =
  (* No round can deliver more than b * n bits (n queries, one cell each). *)
  let rng = Rng.create 19 in
  let universe = 1 lsl 16 in
  let keys = Keyset.random rng ~universe ~n:32 in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in
  let q = Array.make 32 (1.0 /. 32.0) in
  let game =
    Game.play rng inst ~queries:keys ~q ~phi:1.0 ~bits:(Lc_cellprobe.Table.bits inst.table)
      ~rounds:inst.max_probes ~samples:5
  in
  let b = float_of_int (Lc_cellprobe.Table.bits inst.table) in
  Array.iter
    (fun (r : Game.round) -> checkb "<= b*n" true (r.info_bound_bits <= (b *. 32.0) +. 1e-6))
    game.rounds

let test_adaptive_kills_deterministic_index () =
  (* Binary search: every probe deterministic, so every round is
     attackable and the piled-up adversary mass kills them. *)
  let rng = Rng.create 20 in
  let universe = 1 lsl 16 in
  let keys = Keyset.random rng ~universe ~n:64 in
  let inst = Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys) in
  let phi = 0.05 in
  let game =
    Game.play_adaptive rng inst ~queries:keys ~phi
      ~bits:(Lc_cellprobe.Table.bits inst.table) ~rounds:inst.max_probes
  in
  checkb "every round attackable" true
    (Array.for_all (fun (r : Game.adaptive_round) -> r.a_good) game.a_rounds);
  checkb "most rounds killed" true (game.rounds_killed >= Array.length game.a_rounds - 1)

let test_adaptive_spares_replicated_rounds () =
  (* The low-contention dictionary's coefficient rounds spread over all
     s cells; even a point mass cannot push them past phi when
     phi >= 1/s (per-row table width). *)
  let rng = Rng.create 21 in
  let universe = 1 lsl 16 in
  let keys = Keyset.random rng ~universe ~n:64 in
  let dict = Lc_core.Dictionary.build rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in
  let p = Lc_core.Dictionary.params dict in
  let phi = 2.0 /. float_of_int p.s in
  let game =
    Game.play_adaptive rng inst ~queries:keys ~phi
      ~bits:(Lc_cellprobe.Table.bits inst.table) ~rounds:inst.max_probes
  in
  (* The first 2d rounds are full-row uniform: never good, never killed. *)
  for step = 0 to (2 * p.d) - 1 do
    checkb
      (Printf.sprintf "coefficient round %d safe" step)
      false game.a_rounds.(step).a_good
  done;
  checkb "but later rounds are attackable" true
    (Array.exists (fun (r : Game.adaptive_round) -> r.a_good) game.a_rounds)

let test_adaptive_mass_bounded () =
  let rng = Rng.create 22 in
  let universe = 1 lsl 16 in
  let keys = Keyset.random rng ~universe ~n:32 in
  let inst = Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys) in
  let game =
    Game.play_adaptive rng inst ~queries:keys ~phi:0.1
      ~bits:(Lc_cellprobe.Table.bits inst.table) ~rounds:inst.max_probes
  in
  let mass = Array.fold_left ( +. ) 0.0 game.final_q in
  checkb "stochastic" true (mass <= 1.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Recursion                                                            *)
(* ------------------------------------------------------------------ *)

let test_recursion_growth () =
  let t8 = Recursion.min_rounds ~b:8.0 ~phi_s:64.0 ~log2_n:8.0 in
  let t64 = Recursion.min_rounds ~b:64.0 ~phi_s:4096.0 ~log2_n:64.0 in
  let t1024 = Recursion.min_rounds ~b:1024.0 ~phi_s:(1024.0 *. 1024.0) ~log2_n:1024.0 in
  checkb "monotone in n" true (t8 <= t64 && t64 <= t1024);
  checkb "grows" true (t1024 > t8)

let test_recursion_series_shape () =
  let s = Recursion.series ~b:16.0 ~phi_s:256.0 ~log2_n:16.0 ~tstar:5 in
  checki "5 bounds" 5 (Array.length s.log2_bounds);
  (* E[C_t] increases toward the fixed point a. *)
  for t = 1 to 4 do
    checkb "monotone bounds" true (s.log2_bounds.(t) >= s.log2_bounds.(t - 1) -. 1e-9)
  done

let test_recursion_closed_form_close () =
  let b = 16.0 and phi_s = 256.0 and log2_n = 16.0 in
  let tstar = 6 in
  let s = Recursion.series ~b ~phi_s ~log2_n ~tstar in
  let cf = Recursion.closed_form_log2_bound ~b ~phi_s ~log2_n ~tstar in
  (* The closed form upper-bounds the recurrence sum (it relaxes each
     term); both should be within a couple of doublings. *)
  checkb "closed form >= series" true (cf >= s.log2_total -. 1e-6);
  checkb "same ballpark" true (cf -. s.log2_total < 2.0)

let test_recursion_loglog_law () =
  (* t* should grow roughly linearly in log log n. *)
  let t_at log2n =
    let b = log2n and phi_s = log2n *. log2n in
    float_of_int (Recursion.min_rounds ~b ~phi_s ~log2_n:log2n)
  in
  let ratio log2n = t_at log2n /. (Float.log log2n /. Float.log 2.0) in
  let r1 = ratio 64.0 and r2 = ratio 4096.0 in
  checkb
    (Printf.sprintf "ratios stable: %.2f vs %.2f" r1 r2)
    true
    (r1 > 0.2 && r1 < 1.2 && r2 > 0.2 && r2 < 1.2)

let test_recursion_feasibility_monotone () =
  (* Feasibility is monotone in tstar (required shrinks 4x per round,
     the bound only grows): once feasible, always feasible. *)
  let b = 32.0 and phi_s = 1024.0 and log2_n = 32.0 in
  let tmin = Recursion.min_rounds ~b ~phi_s ~log2_n in
  for t = tmin to tmin + 6 do
    checkb
      (Printf.sprintf "feasible at %d" t)
      true
      (Recursion.series ~b ~phi_s ~log2_n ~tstar:t).feasible
  done;
  for t = 1 to tmin - 1 do
    checkb
      (Printf.sprintf "infeasible at %d" t)
      false
      (Recursion.series ~b ~phi_s ~log2_n ~tstar:t).feasible
  done

let test_recursion_validation () =
  let raised = try ignore (Recursion.series ~b:8.0 ~phi_s:1.0 ~log2_n:8.0 ~tstar:0); false
    with Invalid_argument _ -> true in
  checkb "tstar >= 1" true raised

let () =
  Alcotest.run "lc_lowerbound"
    [
      ( "problem",
        [
          Alcotest.test_case "membership eval" `Quick test_membership_eval;
          Alcotest.test_case "subset ranking bijective" `Quick test_subset_ranking_bijective;
          Alcotest.test_case "parity eval" `Quick test_parity_eval;
        ] );
      ( "vc_dim",
        [
          Alcotest.test_case "membership = k" `Quick test_vc_membership;
          Alcotest.test_case "parity = universe" `Quick test_vc_parity;
          Alcotest.test_case "constant problem" `Quick test_vc_constant_problem;
          Alcotest.test_case "shattered witness" `Quick test_shattered_witness;
          Alcotest.test_case "pattern counting" `Quick test_shatter_patterns_count;
        ] );
      ( "probe_spec",
        [
          Alcotest.test_case "basics" `Quick test_spec_matrix_basics;
          Alcotest.test_case "validation" `Quick test_spec_matrix_validation;
          Alcotest.test_case "of_instance" `Quick test_spec_of_instance;
          Alcotest.test_case "contention_ok" `Quick test_spec_contention_ok;
        ] );
      ( "lemma16",
        [
          Alcotest.test_case "simple" `Quick test_lemma16_simple;
          Alcotest.test_case "erratum counterexample" `Quick test_lemma16_erratum_counterexample;
          Alcotest.test_case "zero rows excluded" `Quick test_lemma16_zero_rows_excluded;
          QCheck_alcotest.to_alcotest ~long:false prop_lemma16_corrected;
          QCheck_alcotest.to_alcotest ~long:false prop_lemma16_sandwich;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "builds and violates" `Quick test_adversary_builds_and_violates;
          Alcotest.test_case "hypothesis enforced" `Quick test_adversary_rejects_bad_hypothesis;
          Alcotest.test_case "violates_all checker" `Quick test_violates_all_checker;
        ] );
      ( "product_probe",
        [
          Alcotest.test_case "success rate >= 1/4" `Slow test_product_probe_success_rate;
          Alcotest.test_case "conditional law" `Slow test_product_probe_conditional_law;
          Alcotest.test_case "point mass case" `Slow test_product_probe_point_mass;
          Alcotest.test_case "validates input" `Quick test_product_probe_validates_input;
          Alcotest.test_case "inclusion capped" `Quick test_inclusion_probability_capped;
        ] );
      ( "coupling",
        [
          Alcotest.test_case "marginals preserved" `Slow test_coupling_marginals;
          Alcotest.test_case "union bound" `Slow test_coupling_union_bound;
          Alcotest.test_case "union inside base" `Quick test_coupling_union_subset_of_base;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "per-step success floor" `Slow test_simulation_step_success_floor;
          Alcotest.test_case "completion curve" `Slow test_simulation_completion_monotone;
          Alcotest.test_case "parallel round bounds" `Quick test_simulation_parallel_round_bounds;
          Alcotest.test_case "sparse conditional law" `Slow test_sparse_matches_dense;
        ] );
      ( "game",
        [
          Alcotest.test_case "constraints hold" `Quick test_game_constraints_hold;
          Alcotest.test_case "info <= b n" `Quick test_game_info_bounded_by_bn;
          Alcotest.test_case "adaptive kills deterministic index" `Quick
            test_adaptive_kills_deterministic_index;
          Alcotest.test_case "adaptive spares replicated rounds" `Quick
            test_adaptive_spares_replicated_rounds;
          Alcotest.test_case "adaptive mass bounded" `Quick test_adaptive_mass_bounded;
        ] );
      ( "recursion",
        [
          Alcotest.test_case "growth" `Quick test_recursion_growth;
          Alcotest.test_case "series shape" `Quick test_recursion_series_shape;
          Alcotest.test_case "closed form" `Quick test_recursion_closed_form_close;
          Alcotest.test_case "loglog law" `Quick test_recursion_loglog_law;
          Alcotest.test_case "feasibility monotone" `Quick test_recursion_feasibility_monotone;
          Alcotest.test_case "validation" `Quick test_recursion_validation;
        ] );
    ]
