(* Unit and property tests for the lc_prim substrate. *)

module Rng = Lc_prim.Rng
module Primes = Lc_prim.Primes
module Modarith = Lc_prim.Modarith
module Bitpack = Lc_prim.Bitpack

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  checkb "different seeds diverge" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues the same stream" (Rng.next_int64 a) (Rng.next_int64 b);
  ignore (Rng.next_int64 a);
  (* advancing a does not advance b *)
  let a2 = Rng.next_int64 a and b2 = Rng.next_int64 b in
  checkb "streams now out of phase" true (a2 <> b2)

let test_rng_split_diverges () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  checkb "split streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for bound = 1 to 50 do
    for _ = 1 to 50 do
      let v = Rng.int rng bound in
      checkb "in range" true (v >= 0 && v < bound)
    done
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_uniformity () =
  let rng = Rng.create 13 in
  let bound = 10 in
  let counts = Array.make bound 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int trials /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      checkb (Printf.sprintf "bucket %d within 5%%" i) true (dev < 0.05))
    counts

let test_rng_int_in_range () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    checkb "in [-5, 5]" true (v >= -5 && v <= 5)
  done

let test_rng_float_range () =
  let rng = Rng.create 19 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    checkb "in [0, 1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_float_mean () =
  let rng = Rng.create 23 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  checkb "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_bool_balance () =
  let rng = Rng.create 29 in
  let heads = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int n in
  checkb "fair coin" true (Float.abs (frac -. 0.5) < 0.02)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 31 in
  let a = Array.init 100 Fun.id in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" a sorted;
  checkb "actually moved" true (b <> a)

let test_rng_choose () =
  let rng = Rng.create 37 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.choose rng a in
    checkb "element of array" true (Array.mem v a)
  done

let test_sample_distinct_sparse () =
  let rng = Rng.create 41 in
  let v = Rng.sample_distinct rng ~bound:1_000_000 ~count:100 in
  checki "count" 100 (Array.length v);
  let s = Array.copy v in
  Array.sort compare s;
  for i = 1 to 99 do
    checkb "distinct" true (s.(i) <> s.(i - 1))
  done

let test_sample_distinct_dense () =
  let rng = Rng.create 43 in
  let v = Rng.sample_distinct rng ~bound:100 ~count:100 in
  let s = Array.copy v in
  Array.sort compare s;
  check (Alcotest.array Alcotest.int) "full permutation" (Array.init 100 Fun.id) s

let test_sample_distinct_errors () =
  let rng = Rng.create 47 in
  Alcotest.check_raises "count > bound"
    (Invalid_argument "Rng.sample_distinct: count > bound") (fun () ->
      ignore (Rng.sample_distinct rng ~bound:5 ~count:6))

(* ------------------------------------------------------------------ *)
(* Primes                                                               *)
(* ------------------------------------------------------------------ *)

let test_is_prime_small () =
  let primes = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 997 ] in
  List.iter (fun p -> checkb (string_of_int p) true (Primes.is_prime p)) primes;
  let composites = [ -7; 0; 1; 4; 6; 8; 9; 15; 21; 25; 49; 91; 561; 1105 ] in
  List.iter (fun c -> checkb (string_of_int c) false (Primes.is_prime c)) composites

let test_is_prime_carmichael () =
  (* Carmichael numbers fool Fermat tests; Miller-Rabin must not be fooled. *)
  List.iter
    (fun c -> checkb (string_of_int c) false (Primes.is_prime c))
    [ 561; 1105; 1729; 2465; 2821; 6601; 8911; 41041; 62745; 162401 ]

let test_is_prime_exhaustive_small () =
  let sieve = Array.make 10_000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 9999 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 10_000 do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  for i = 0 to 9999 do
    checkb (string_of_int i) sieve.(i) (Primes.is_prime i)
  done

let test_is_prime_large () =
  checkb "2^31-1 is prime (Mersenne)" true (Primes.is_prime ((1 lsl 31) - 1));
  checkb "2^30 composite" false (Primes.is_prime (1 lsl 30));
  checkb "1073741789 prime" true (Primes.is_prime 1073741789)

let test_next_prime () =
  checki "next_prime 0" 2 (Primes.next_prime 0);
  checki "next_prime 2" 2 (Primes.next_prime 2);
  checki "next_prime 3" 3 (Primes.next_prime 3);
  checki "next_prime 4" 5 (Primes.next_prime 4);
  checki "next_prime 90" 97 (Primes.next_prime 90);
  checki "next_prime 1000" 1009 (Primes.next_prime 1000)

let test_prime_for_universe () =
  let p = Primes.prime_for_universe 1024 in
  checkb "strictly above universe" true (p > 1024);
  checkb "prime" true (Primes.is_prime p);
  checki "minimal" p (Primes.next_prime 1025)

(* ------------------------------------------------------------------ *)
(* Modarith                                                             *)
(* ------------------------------------------------------------------ *)

let test_mod_basic () =
  let p = 101 in
  checki "add" 3 (Modarith.add p 52 52);
  checki "sub wraps" 100 (Modarith.sub p 0 1);
  checki "mul" ((52 * 52) mod p) (Modarith.mul p 52 52);
  checki "pow" 1 (Modarith.pow p 7 0);
  checki "fermat" 1 (Modarith.pow p 7 (p - 1))

let test_mod_inverse () =
  let p = 1009 in
  for a = 1 to 200 do
    let inv = Modarith.inv p a in
    checki (Printf.sprintf "a=%d" a) 1 (Modarith.mul p a inv)
  done

let test_mod_inverse_zero () =
  Alcotest.check_raises "inv 0" (Invalid_argument "Modarith.inv: zero has no inverse") (fun () ->
      ignore (Modarith.inv 101 0))

let test_mod_large_no_overflow () =
  let p = (1 lsl 31) - 1 in
  let a = p - 1 and b = p - 2 in
  (* (p-1)(p-2) mod p = 2 mod p *)
  checki "no overflow" 2 (Modarith.mul p a b)

let test_poly_eval () =
  let p = 97 in
  (* 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38 *)
  checki "horner" 38 (Modarith.poly_eval p [| 3; 2; 1 |] 5);
  checki "constant" 7 (Modarith.poly_eval p [| 7 |] 55);
  checki "empty" 0 (Modarith.poly_eval p [||] 55)

let test_check_modulus () =
  Modarith.check_modulus 2;
  Modarith.check_modulus Modarith.max_modulus;
  Alcotest.check_raises "too small"
    (Invalid_argument "Modarith: modulus 1 outside [2, 2147483647]") (fun () ->
      Modarith.check_modulus 1)

(* ------------------------------------------------------------------ *)
(* Bitpack                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitpack_get_set () =
  let bp = Bitpack.create ~word_bits:7 ~bits:50 in
  for i = 0 to 49 do
    checkb "initially zero" false (Bitpack.get bp i)
  done;
  Bitpack.set bp 0 true;
  Bitpack.set bp 49 true;
  Bitpack.set bp 13 true;
  checkb "bit 0" true (Bitpack.get bp 0);
  checkb "bit 49" true (Bitpack.get bp 49);
  checkb "bit 13" true (Bitpack.get bp 13);
  checkb "bit 14" false (Bitpack.get bp 14);
  Bitpack.set bp 13 false;
  checkb "cleared" false (Bitpack.get bp 13)

let test_bitpack_bounds () =
  let bp = Bitpack.create ~word_bits:8 ~bits:10 in
  Alcotest.check_raises "index out of range" (Invalid_argument "Bitpack: bit index out of range")
    (fun () -> ignore (Bitpack.get bp 10))

let test_bitpack_fields () =
  let bp = Bitpack.create ~word_bits:9 ~bits:64 in
  Bitpack.set_field bp ~pos:3 ~width:11 1234;
  checki "round trip" 1234 (Bitpack.get_field bp ~pos:3 ~width:11);
  checki "outside untouched" 0 (Bitpack.get_field bp ~pos:14 ~width:10)

let test_bitpack_words_roundtrip () =
  let bp = Bitpack.create ~word_bits:5 ~bits:23 in
  Bitpack.set bp 0 true;
  Bitpack.set bp 7 true;
  Bitpack.set bp 22 true;
  let ws = Bitpack.words bp in
  checki "word count" 5 (Array.length ws);
  let bp2 = Bitpack.of_words ~word_bits:5 ~bits:23 ws in
  for i = 0 to 22 do
    checkb (Printf.sprintf "bit %d" i) (Bitpack.get bp i) (Bitpack.get bp2 i)
  done

let test_bitpack_unary () =
  let bp = Bitpack.create ~word_bits:6 ~bits:40 in
  let pos = Bitpack.append_unary bp ~pos:0 3 in
  checki "pos after 3" 4 pos;
  let pos = Bitpack.append_unary bp ~pos 0 in
  checki "pos after 0" 5 pos;
  let pos = Bitpack.append_unary bp ~pos 5 in
  checki "pos after 5" 11 pos;
  let v, next = Bitpack.read_unary bp ~pos:0 in
  checki "first run" 3 v;
  let v, next = Bitpack.read_unary bp ~pos:next in
  checki "second run" 0 v;
  let v, _ = Bitpack.read_unary bp ~pos:next in
  checki "third run" 5 v

let test_bitpack_unary_unterminated () =
  let bp = Bitpack.create ~word_bits:6 ~bits:4 in
  for i = 0 to 3 do
    Bitpack.set bp i true
  done;
  Alcotest.check_raises "unterminated" (Invalid_argument "Bitpack.read_unary: unterminated run")
    (fun () -> ignore (Bitpack.read_unary bp ~pos:0))

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_modmul_matches_int64 =
  QCheck.Test.make ~name:"Modarith.mul agrees with Int64 arithmetic" ~count:1000
    QCheck.(triple (int_range 2 Modarith.max_modulus) (int_range 0 (1 lsl 30)) (int_range 0 (1 lsl 30)))
    (fun (p, a, b) ->
      let a = a mod p and b = b mod p in
      let expected = Int64.to_int (Int64.rem (Int64.mul (Int64.of_int a) (Int64.of_int b)) (Int64.of_int p)) in
      Modarith.mul p a b = expected)

let prop_pow_matches_repeated_mul =
  QCheck.Test.make ~name:"Modarith.pow = iterated mul" ~count:300
    QCheck.(triple (int_range 2 100_000) (int_range 0 1_000) (int_range 0 24))
    (fun (p, a, e) ->
      let a = a mod p in
      let rec iter acc k = if k = 0 then acc else iter (Modarith.mul p acc a) (k - 1) in
      Modarith.pow p a e = iter 1 e)

let prop_bitpack_field_roundtrip =
  QCheck.Test.make ~name:"Bitpack field round-trip" ~count:500
    QCheck.(triple (int_range 1 62) (int_range 0 100) (int_range 0 20))
    (fun (word_bits, pos, width) ->
      QCheck.assume (width >= 1 && width <= 30);
      let bp = Bitpack.create ~word_bits ~bits:(pos + width + 8) in
      let v = (pos * 7919) land ((1 lsl width) - 1) in
      Bitpack.set_field bp ~pos ~width v;
      Bitpack.get_field bp ~pos ~width = v)

let prop_unary_roundtrip =
  QCheck.Test.make ~name:"unary encode/decode round-trip" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 15))
    (fun loads ->
      let total = List.fold_left ( + ) 0 loads + List.length loads in
      let bp = Bitpack.create ~word_bits:13 ~bits:(total + 4) in
      let pos = List.fold_left (fun pos l -> Bitpack.append_unary bp ~pos l) 0 loads in
      ignore pos;
      let decoded =
        List.fold_left
          (fun (acc, pos) _ ->
            let v, next = Bitpack.read_unary bp ~pos in
            (v :: acc, next))
          ([], 0) loads
        |> fst |> List.rev
      in
      decoded = loads)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_distinct: distinct and in range" ~count:200
    QCheck.(pair (int_range 1 500) (int_range 0 500))
    (fun (bound, count) ->
      QCheck.assume (count <= bound);
      let rng = Rng.create (bound + (count * 7)) in
      let v = Rng.sample_distinct rng ~bound ~count in
      let s = List.sort_uniq compare (Array.to_list v) in
      List.length s = count && List.for_all (fun x -> x >= 0 && x < bound) s)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lc_prim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects nonpositive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "choose" `Quick test_rng_choose;
          Alcotest.test_case "sample_distinct sparse" `Quick test_sample_distinct_sparse;
          Alcotest.test_case "sample_distinct dense" `Quick test_sample_distinct_dense;
          Alcotest.test_case "sample_distinct errors" `Quick test_sample_distinct_errors;
        ] );
      ( "primes",
        [
          Alcotest.test_case "small primes and composites" `Quick test_is_prime_small;
          Alcotest.test_case "carmichael numbers" `Quick test_is_prime_carmichael;
          Alcotest.test_case "exhaustive below 10000" `Quick test_is_prime_exhaustive_small;
          Alcotest.test_case "large primes" `Quick test_is_prime_large;
          Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "prime_for_universe" `Quick test_prime_for_universe;
        ] );
      ( "modarith",
        [
          Alcotest.test_case "basic ops" `Quick test_mod_basic;
          Alcotest.test_case "inverse" `Quick test_mod_inverse;
          Alcotest.test_case "inverse of zero" `Quick test_mod_inverse_zero;
          Alcotest.test_case "no overflow at max modulus" `Quick test_mod_large_no_overflow;
          Alcotest.test_case "poly_eval" `Quick test_poly_eval;
          Alcotest.test_case "check_modulus" `Quick test_check_modulus;
        ] );
      ( "bitpack",
        [
          Alcotest.test_case "get/set" `Quick test_bitpack_get_set;
          Alcotest.test_case "bounds" `Quick test_bitpack_bounds;
          Alcotest.test_case "fields" `Quick test_bitpack_fields;
          Alcotest.test_case "words round-trip" `Quick test_bitpack_words_roundtrip;
          Alcotest.test_case "unary runs" `Quick test_bitpack_unary;
          Alcotest.test_case "unterminated unary" `Quick test_bitpack_unary_unterminated;
        ] );
      qsuite "properties"
        [
          prop_modmul_matches_int64;
          prop_pow_matches_repeated_mul;
          prop_bitpack_field_roundtrip;
          prop_unary_roundtrip;
          prop_sample_distinct;
        ];
    ]
