(* Benchmark harness.

   Two halves:

   1. Bechamel micro-benchmarks — one Test.make per experiment family
      (build cost for T3/T6, query latency for F6, hash-family and
      histogram primitives for T4, the contention engine and the
      recurrence solver for F1/F3).

   2. The full experiment suite — every table (T1-T8) and figure
      (F1-F6) of DESIGN.md §4, regenerated and printed, so that
      `dune exec bench/main.exe | tee bench_output.txt` is the complete
      reproduction record. *)

open Bechamel
open Toolkit

module Rng = Lc_prim.Rng

let universe = 1 lsl 20
let bench_n = 1024

(* Shared fixtures, built once. *)
let fixture_rng = Rng.create 4242
let keys = Lc_workload.Keyset.random fixture_rng ~universe ~n:bench_n
let lc = Lc_core.Dictionary.build fixture_rng ~universe ~keys
let lc_inst = Lc_core.Dictionary.instance lc
let fks = Lc_dict.Fks.build fixture_rng ~universe ~keys
let fks_inst = Lc_dict.Fks.instance fks
let dm = Lc_dict.Dm_dict.build fixture_rng ~universe ~keys
let dm_inst = Lc_dict.Dm_dict.instance dm
let cuckoo = Lc_dict.Cuckoo.build fixture_rng ~universe ~keys
let cuckoo_inst = Lc_dict.Cuckoo.instance cuckoo
let bs_inst = Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys)
let pos_dist = Lc_cellprobe.Qdist.uniform ~name:"pos" keys

(* All whole-engine benches below go through the unified entry point;
   the deprecated [serve]/[serve_windowed] wrappers are not exercised
   here. *)
let run_static ?cost ?obs ?monitor ~domains ~queries_per_domain ~seed inst qdist =
  Lc_parallel.Engine.run
    (Lc_parallel.Engine.Config.make ?cost ?obs ?monitor ~domains ~seed ())
    (Lc_parallel.Engine.Static { inst; qdist; queries_per_domain })

let params = Lc_core.Dictionary.params lc

let histogram_words =
  let loads = Array.make params.g_per_group 0 in
  loads.(0) <- 3;
  loads.(1) <- 2;
  loads.(2) <- 1;
  Lc_core.Histogram.encode params ~loads

let poly = Lc_hash.Poly_hash.create fixture_rng ~d:3 ~p:params.p ~m:params.s

let dm_hash =
  Lc_hash.Dm_family.create fixture_rng ~d:3 ~p:params.p ~r:params.r ~m:params.s

let query_bench name (inst : Lc_dict.Instance.t) =
  let rng = Rng.create 7 in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         i := (!i + 97) mod bench_n;
         ignore (inst.mem rng keys.(!i) : bool)))

let build_bench name f =
  let rng = Rng.create 11 in
  Test.make ~name (Staged.stage (fun () -> ignore (f rng)))

let tests =
  Test.make_grouped ~name:"lowcon"
    [
      Test.make_grouped ~name:"build(T3/T6)"
        [
          build_bench "low-contention" (fun rng -> Lc_core.Dictionary.build rng ~universe ~keys);
          build_bench "fks" (fun rng -> Lc_dict.Fks.build rng ~universe ~keys);
          build_bench "dm" (fun rng -> Lc_dict.Dm_dict.build rng ~universe ~keys);
          build_bench "cuckoo" (fun rng -> Lc_dict.Cuckoo.build rng ~universe ~keys);
          build_bench "binary-search" (fun _ -> Lc_dict.Sorted_array.build ~universe ~keys);
        ];
      Test.make_grouped ~name:"query(F6)"
        [
          query_bench "low-contention" lc_inst;
          query_bench "fks" fks_inst;
          query_bench "dm" dm_inst;
          query_bench "cuckoo" cuckoo_inst;
          query_bench "binary-search" bs_inst;
        ];
      Test.make_grouped ~name:"hash(T4)"
        [
          Test.make ~name:"poly_eval"
            (Staged.stage (fun () -> ignore (Lc_hash.Poly_hash.eval poly 123_456)));
          Test.make ~name:"dm_eval"
            (Staged.stage (fun () -> ignore (Lc_hash.Dm_family.eval dm_hash 123_456)));
          Test.make ~name:"tabulation_eval"
            (let tab =
               Lc_hash.Tabulation.create (Rng.create 29) ~universe_bits:20 ~chunk_bits:10
                 ~m:bench_n
             in
             Staged.stage (fun () -> ignore (Lc_hash.Tabulation.eval tab 123_456)));
          Test.make ~name:"perfect_find_8keys"
            (let rng = Rng.create 13 in
             let bucket = Array.sub keys 0 8 in
             Staged.stage (fun () -> ignore (Lc_hash.Perfect.find rng ~p:params.p ~keys:bucket)));
        ];
      Test.make_grouped ~name:"histogram"
        [
          Test.make ~name:"decode"
            (Staged.stage (fun () -> ignore (Lc_core.Histogram.decode params histogram_words)));
        ];
      Test.make_grouped ~name:"parallel(T12)"
        [
          (* Whole-engine runs: domain spawn + join + the query storm.
             Small batches keep each bechamel iteration ~milliseconds. *)
          Test.make ~name:"serve_1dom_lowcon_500q"
            (Staged.stage (fun () ->
                 ignore
                   (run_static ~domains:1 ~queries_per_domain:500 ~seed:3 lc_inst pos_dist)));
          Test.make ~name:"serve_2dom_lowcon_500q"
            (Staged.stage (fun () ->
                 ignore
                   (run_static ~domains:2 ~queries_per_domain:500 ~seed:3 lc_inst pos_dist)));
          Test.make ~name:"serve_2dom_fks_500q"
            (Staged.stage (fun () ->
                 ignore
                   (run_static ~domains:2 ~queries_per_domain:500 ~seed:3 fks_inst pos_dist)));
          Test.make ~name:"serve_2dom_binsearch_500q"
            (Staged.stage (fun () ->
                 ignore
                   (run_static ~domains:2 ~queries_per_domain:500 ~seed:3 bs_inst pos_dist)));
          (* Telemetry overhead: the same run with per-domain metric
             shards, latency histograms, and span timelines attached. *)
          Test.make ~name:"serve_2dom_lowcon_500q_obs"
            (Staged.stage (fun () ->
                 let obs = Lc_obs.Obs.create () in
                 ignore
                   (run_static ~obs ~domains:2 ~queries_per_domain:500 ~seed:3 lc_inst
                      pos_dist)));
        ];
      Test.make_grouped ~name:"obs"
        [
          (* The primitives the serving hot path pays for when ?obs is
             supplied: a shard-local counter bump, a log-bucketed
             histogram observation, and a span begin/end pair. *)
          Test.make ~name:"counter_incr"
            (let obs = Lc_obs.Obs.create () in
             let c = Lc_obs.Metrics.counter obs.metrics "bench_counter" in
             let sh = Lc_obs.Obs.shard obs ~domain:0 in
             Staged.stage (fun () -> Lc_obs.Metrics.incr sh c 1));
          Test.make ~name:"histogram_observe"
            (let obs = Lc_obs.Obs.create () in
             let h = Lc_obs.Metrics.histogram obs.metrics "bench_hist" in
             let sh = Lc_obs.Obs.shard obs ~domain:0 in
             let v = ref 1 in
             Staged.stage (fun () ->
                 v := (!v * 7) land 0xFFFFF;
                 Lc_obs.Metrics.observe sh h !v));
          Test.make ~name:"span_begin_end"
            (let obs = Lc_obs.Obs.create () in
             let tl = Lc_obs.Obs.timeline obs ~tid:0 in
             Staged.stage (fun () ->
                 Lc_obs.Span.begin_span tl "bench";
                 Lc_obs.Span.end_span tl));
          Test.make ~name:"clock_now_ns"
            (Staged.stage (fun () -> ignore (Lc_obs.Clock.now_ns () : int64)));
        ];
      Test.make_grouped ~name:"monitor(T13)"
        [
          (* The extra work a monitored worker pays per probe (sketch
             scan) and per publish_period queries (seqlock publication),
             plus a whole monitored run against the plain one above. *)
          Test.make ~name:"heavy_observe_k16"
            (let s = Lc_obs.Heavy.create ~k:16 in
             let v = ref 1 in
             Staged.stage (fun () ->
                 v := (!v * 7) land 0xFFFF;
                 Lc_obs.Heavy.observe s !v));
          Test.make ~name:"window_publish"
            (let obs = Lc_obs.Obs.create () in
             ignore (Lc_obs.Metrics.counter obs.metrics "bench_q_total" : Lc_obs.Metrics.counter);
             let sh = Lc_obs.Obs.shard obs ~domain:0 in
             let w =
               Lc_obs.Window.create obs.metrics
                 {
                   Lc_obs.Window.ring_capacity = 8;
                   queries_counter = "bench_q_total";
                   probes_counter = "bench_q_total";
                   latency_histogram = "bench_q_total";
                   space = 1024;
                   max_probes = 4;
                   top_k = 16;
                   alert_factor = 8.0;
                 }
                 ~publishers:1
             in
             let pub = Lc_obs.Window.publisher w 0 in
             let sketch = Lc_obs.Heavy.create ~k:16 in
             Staged.stage (fun () -> Lc_obs.Window.publish pub sh sketch));
          Test.make ~name:"serve_2dom_lowcon_500q_monitored"
            (Staged.stage (fun () ->
                 let mon = Lc_parallel.Engine.Monitor.create ~interval_s:0.05 ~domains:2 lc_inst in
                 ignore
                   (run_static ~monitor:mon ~domains:2 ~queries_per_domain:500 ~seed:3
                      lc_inst pos_dist)));
          (* Flight recorder armed: the same monitored run with a
             journal attached. Workers record once per publication and
             the monitor once per window, so this twin must sit within a
             few percent of the bare monitored run above. *)
          Test.make ~name:"journal_record"
            (let j = Lc_obs.Journal.create ~writers:1 ~capacity:256 in
             Staged.stage (fun () ->
                 Lc_obs.Journal.record j ~writer:0 (Lc_obs.Journal.Publish { queries = 500 })));
          Test.make ~name:"serve_2dom_lowcon_500q_recorded"
            (Staged.stage (fun () ->
                 let journal = Lc_obs.Journal.create ~writers:4 ~capacity:256 in
                 let mon =
                   Lc_parallel.Engine.Monitor.create ~interval_s:0.05 ~journal ~domains:2 lc_inst
                 in
                 ignore
                   (run_static ~monitor:mon ~domains:2 ~queries_per_domain:500 ~seed:3
                      lc_inst pos_dist)));
        ];
      Test.make_grouped ~name:"harness(T1/T2)"
        [
          Test.make ~name:"contention_exact_n1024"
            (Staged.stage (fun () ->
                 ignore
                   (Lc_cellprobe.Contention.exact ~cells:lc_inst.space ~qdist:pos_dist
                      ~spec:lc_inst.spec)));
        ];
      Test.make_grouped ~name:"recurrence(F3)"
        [
          Test.make ~name:"min_rounds_2^4096"
            (Staged.stage (fun () ->
                 ignore
                   (Lc_lowerbound.Recursion.min_rounds ~b:4096.0 ~phi_s:16_777_216.0
                      ~log2_n:4096.0)));
        ];
      Test.make_grouped ~name:"dynamic(T9)"
        [
          Test.make ~name:"insert_512_stream"
            (let rng = Rng.create 17 in
             Staged.stage (fun () ->
                 let t = Lc_dynamic.Dynamic.create rng ~universe () in
                 for x = 1 to 512 do
                   Lc_dynamic.Dynamic.insert t x
                 done));
        ];
      Test.make_grouped ~name:"lowerbound(F4/F9)"
        [
          Test.make ~name:"coupling_draw_64x128"
            (let rng = Rng.create 19 in
             let marginals =
               Lc_lowerbound.Probe_spec.random rng ~rows:64 ~cols:128 ~support:4
             in
             Staged.stage (fun () ->
                 ignore (Lc_lowerbound.Coupling.draw rng ~marginals)));
          Test.make ~name:"adaptive_game_n64"
            (let rng = Rng.create 23 in
             let small_keys = Array.sub keys 0 64 in
             let dict = Lc_core.Dictionary.build rng ~universe ~keys:small_keys in
             let inst = Lc_core.Dictionary.instance dict in
             Staged.stage (fun () ->
                 ignore
                   (Lc_lowerbound.Game.play_adaptive rng inst ~queries:small_keys ~phi:0.01
                      ~bits:(Lc_cellprobe.Table.bits inst.table) ~rounds:inst.max_probes)));
        ];
    ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  Analyze.merge ols instances results

let print_benchmarks results =
  print_endline "== Bechamel micro-benchmarks (monotonic clock, ns/run) ==";
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-45s %14.1f ns/run\n" name est
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    rows;
  print_newline ()

let () =
  print_benchmarks (run_benchmarks ());
  print_endline "== Experiment suite: every table and figure of DESIGN.md section 4 ==";
  print_newline ();
  Lc_experiments.Registry.install ();
  print_string (Lc_analysis.Experiment.run_all ~seed:20100613)
