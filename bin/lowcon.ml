(* lowcon: a command-line workbench for the low-contention dictionary.

     lowcon report  --n 1024                build, verify, and profile one dictionary
     lowcon compare --n 1024 --dist zipf:1.0   contention of every structure under a distribution
     lowcon hotspot --n 1024 --m 256        concurrent hot-spot simulation

   Everything is deterministic given --seed. *)

open Cmdliner

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Contention = Lc_cellprobe.Contention
module Instance = Lc_dict.Instance
module Keyset = Lc_workload.Keyset
module Stats = Lc_analysis.Stats

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(value & opt int 1024 & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of keys.")

let universe_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "universe" ] ~docv:"U" ~doc:"Universe size (default: max(16n, n^2) capped at 2^28).")

let resolve_universe n = function
  | Some u ->
    if u < n then failwith "universe must be at least n";
    u
  | None -> min (max (16 * n) (n * n)) (1 lsl 28)

let dist_arg =
  let doc =
    "Query distribution: 'pos' (uniform positive), 'neg' (uniform negative sample), \
     'mix:P' (positive with probability P), 'zipf:S' (Zipf skew S over the keys), \
     'point' (a single hot key)."
  in
  Arg.(value & opt string "pos" & info [ "dist" ] ~docv:"DIST" ~doc)

let parse_dist rng ~universe ~keys spec =
  let negs () = Keyset.negatives rng ~universe ~keys ~count:(8 * Array.length keys) in
  match String.split_on_char ':' spec with
  | [ "pos" ] -> Qdist.uniform ~name:"uniform-positive" keys
  | [ "neg" ] -> Qdist.uniform ~name:"uniform-negative" (negs ())
  | [ "point" ] -> Qdist.point keys.(0)
  | [ "mix"; p ] -> Qdist.pos_neg ~pos:keys ~neg:(negs ()) ~p_pos:(float_of_string p)
  | [ "zipf"; s ] -> Qdist.zipf ~skew:(float_of_string s) keys
  | _ -> failwith (Printf.sprintf "unknown distribution %S" spec)

let with_errors f =
  try `Ok (f ()) with
  | Failure msg -> `Error (false, msg)
  | Lc_core.Dictionary.Build_failed { stage; trials; detail } ->
    `Error
      ( false,
        Printf.sprintf "dictionary construction failed at stage %S after %d trial(s): %s" stage
          trials detail )

(* ------------------------------------------------------------------ *)

let report seed n universe_opt =
  with_errors @@ fun () ->
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let dict, build_s =
    let t0 = Unix.gettimeofday () in
    let d = Lc_core.Dictionary.build rng ~universe ~keys in
    (d, Unix.gettimeofday () -. t0)
  in
  Format.printf "Parameters:@.%a@.@." Lc_core.Params.pp (Lc_core.Dictionary.params dict);
  Printf.printf "Built in %.4f s (%d P(S) trial(s)).\n" build_s
    (Lc_core.Dictionary.build_trials dict);
  (match Lc_core.Dictionary.verify dict with
  | Ok () -> print_endline "Structural verification: ok."
  | Error e -> Printf.printf "Structural verification FAILED: %s\n" e);
  let inst = Lc_core.Dictionary.instance dict in
  let report_dist label qd =
    let c = Instance.contention_exact inst qd in
    let prof = Contention.profile c in
    Printf.printf
      "%-18s mean probes %.2f | s*maxPhi %.1f (per-step %.1f) | profile p50 %.1f p99 %.1f\n"
      label c.mean_probes
      (Contention.normalized_max c)
      (Contention.normalized_step_max c)
      (Stats.median prof) (Stats.quantile prof 0.99)
  in
  report_dist "uniform positive" (Qdist.uniform ~name:"pos" keys);
  report_dist "uniform negative"
    (Qdist.uniform ~name:"neg" (Keyset.negatives rng ~universe ~keys ~count:(8 * n)));
  Printf.printf "Space: %d cells of %d bits (%.1f cells/key); max probes %d.\n" inst.space
    (Lc_cellprobe.Table.bits inst.table)
    (float_of_int inst.space /. float_of_int n)
    inst.max_probes

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Build one low-contention dictionary and profile it.")
    Term.(ret (const report $ seed_arg $ n_arg $ universe_arg))

(* ------------------------------------------------------------------ *)

let compare_structures seed n universe_opt dist =
  with_errors @@ fun () ->
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let qd = parse_dist rng ~universe ~keys dist in
  Printf.printf "Distribution: %s (entropy %.2f bits)\n\n" (Qdist.name qd) (Qdist.entropy qd);
  Printf.printf "%-20s %10s %12s %12s %12s\n" "structure" "cells" "max probes" "mean probes"
    "s*maxPhi";
  let arm label inst =
    let c = Instance.contention_exact inst qd in
    Printf.printf "%-20s %10d %12d %12.2f %12.1f\n" label inst.Instance.space
      inst.Instance.max_probes c.mean_probes
      (Contention.normalized_max c)
  in
  arm "low-contention" (Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys));
  arm "fks" (Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys));
  arm "fks-replicated" (Lc_dict.Fks.instance (Lc_dict.Fks.build rng ~universe ~keys));
  arm "dm-replicated" (Lc_dict.Dm_dict.instance (Lc_dict.Dm_dict.build rng ~universe ~keys));
  arm "cuckoo-replicated" (Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build rng ~universe ~keys));
  arm "binary-search" (Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys));
  arm "repl-bst (pred.)" (Lc_dict.Repl_bst.instance (Lc_dict.Repl_bst.build ~universe ~keys))

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all structures' contention under a query distribution.")
    Term.(ret (const compare_structures $ seed_arg $ n_arg $ universe_arg $ dist_arg))

(* ------------------------------------------------------------------ *)

let m_arg =
  Arg.(value & opt int 256 & info [ "m"; "concurrency" ] ~docv:"M" ~doc:"Concurrent queries per trial.")

let hotspot seed n universe_opt m dist =
  with_errors @@ fun () ->
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let qd = parse_dist rng ~universe ~keys dist in
  Printf.printf
    "Hot spot = max queries probing one cell in one lock-step round (m = %d, 50 trials).\n\n" m;
  Printf.printf "%-20s %14s %14s\n" "structure" "mean hotspot" "worst hotspot";
  let arm label (inst : Instance.t) =
    let stats =
      Lc_cellprobe.Concurrency.simulate ~rng ~cells:inst.space ~qdist:qd ~spec:inst.spec ~m
        ~trials:50
    in
    Printf.printf "%-20s %14.1f %14d\n" label stats.mean_hotspot stats.max_hotspot
  in
  arm "low-contention" (Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys));
  arm "fks-replicated" (Lc_dict.Fks.instance (Lc_dict.Fks.build rng ~universe ~keys));
  arm "cuckoo-replicated" (Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build rng ~universe ~keys));
  arm "binary-search" (Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys))

let hotspot_cmd =
  Cmd.v
    (Cmd.info "hotspot" ~doc:"Simulate m concurrent queries and report the hottest cell.")
    Term.(ret (const hotspot $ seed_arg $ n_arg $ universe_arg $ m_arg $ dist_arg))

(* ------------------------------------------------------------------ *)

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"M" ~doc:"Worker domains for the serving run.")

let queries_arg =
  Arg.(
    value
    & opt int 4000
    & info [ "queries" ] ~docv:"Q" ~doc:"Queries per domain in the serving run.")

let cost_arg =
  let doc = "Probe cost model: 'free' or 'spin:H' (per-cell spinlock held H extra relax loops)." in
  Arg.(value & opt string "free" & info [ "cost" ] ~docv:"COST" ~doc)

let parse_cost spec =
  match String.split_on_char ':' spec with
  | [ "free" ] -> Lc_parallel.Engine.Free
  | [ "spin"; h ] -> (
    match int_of_string_opt h with
    | Some hold when hold >= 0 -> Lc_parallel.Engine.Spinlock { hold }
    | _ -> failwith (Printf.sprintf "bad spin hold in %S" spec))
  | _ -> failwith (Printf.sprintf "unknown cost model %S (want 'free' or 'spin:H')" spec)

let out_arg =
  Arg.(
    value
    & opt string "lowcon-profile"
    & info [ "out"; "o" ] ~docv:"PREFIX"
        ~doc:
          "Output prefix: writes $(docv).trace.json (Chrome trace events, open in Perfetto or \
           chrome://tracing), $(docv).prom (Prometheus text exposition), and \
           $(docv).metrics.json.")

let profile seed n universe_opt dist domains queries cost_spec out =
  with_errors @@ fun () ->
  let cost = parse_cost cost_spec in
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let obs = Lc_obs.Obs.create () in
  let dict = Lc_core.Dictionary.build ~obs rng ~universe ~keys in
  let inst = Lc_core.Dictionary.instance dict in
  let qd = parse_dist rng ~universe ~keys dist in
  let r =
    Lc_parallel.Engine.serve ~cost ~obs ~domains ~queries_per_domain:queries ~seed inst qd
  in
  let snap = Lc_obs.Obs.snapshot obs in
  Printf.printf "Served %d queries on %d domains in %.4f s (%.0f q/s).\n" r.queries r.domains
    r.seconds r.throughput;
  Printf.printf "Probes: %d total; hottest cell %d with %d (%.1fx the flat bound %.1f).\n"
    r.total_probes r.hottest_cell r.hottest_count
    (Lc_parallel.Engine.hotspot_ratio r)
    r.flat_bound;
  (match Lc_obs.Metrics.Snapshot.find_hist snap "engine_query_latency_ns" with
  | Some h ->
    let q p = Lc_obs.Metrics.Snapshot.quantile h p /. 1e3 in
    Printf.printf "Query latency: p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us.\n" (q 0.5)
      (q 0.9) (q 0.99)
      (float_of_int h.max_value /. 1e3)
  | None -> ());
  (match Lc_obs.Metrics.Snapshot.find_hist snap "engine_spinlock_wait_ns" with
  | Some h when h.count > 0 ->
    Printf.printf "Spinlock: %d acquisitions, %.2f ms total wait, p99 wait %.1f us.\n" h.count
      (float_of_int h.sum /. 1e6)
      (Lc_obs.Metrics.Snapshot.quantile h 0.99 /. 1e3)
  | _ -> ());
  print_newline ();
  print_string (Lc_obs.Span.summary obs.spans);
  let trace_path = out ^ ".trace.json" in
  let prom_path = out ^ ".prom" in
  let json_path = out ^ ".metrics.json" in
  (match Lc_obs.Span.check_balanced obs.spans with
  | Ok () -> ()
  | Error e -> failwith ("internal: unbalanced trace — " ^ e));
  Lc_obs.Export.write_file ~path:trace_path (Lc_obs.Span.to_chrome_json obs.spans);
  Lc_obs.Export.write_file ~path:prom_path (Lc_obs.Export.prometheus snap);
  Lc_obs.Export.write_file ~path:json_path (Lc_obs.Export.json_snapshot snap);
  Printf.printf "\nWrote %s (load in https://ui.perfetto.dev), %s, %s.\n" trace_path prom_path
    json_path

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Build with build-stage spans, serve a workload with per-domain telemetry, and dump \
          metrics (Prometheus + JSON) and a Chrome trace side by side.")
    Term.(
      ret
        (const profile $ seed_arg $ n_arg $ universe_arg $ dist_arg $ domains_arg $ queries_arg
       $ cost_arg $ out_arg))

let () =
  let doc = "Workbench for low-contention static dictionaries (SPAA 2010)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "lowcon" ~version:"1.0.0" ~doc)
          [ report_cmd; compare_cmd; hotspot_cmd; profile_cmd ]))
