(* lowcon: a command-line workbench for the low-contention dictionary.

     lowcon report  --n 1024                build, verify, and profile one dictionary
     lowcon compare --n 1024 --dist zipf:1.0   contention of every structure under a distribution
     lowcon hotspot --n 1024 --m 256        concurrent hot-spot simulation

   Everything is deterministic given --seed. *)

open Cmdliner

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Contention = Lc_cellprobe.Contention
module Instance = Lc_dict.Instance
module Keyset = Lc_workload.Keyset
module Stats = Lc_analysis.Stats

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(value & opt int 1024 & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of keys.")

let universe_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "universe" ] ~docv:"U" ~doc:"Universe size (default: max(16n, n^2) capped at 2^28).")

let resolve_universe n = function
  | Some u ->
    if u < n then failwith "universe must be at least n";
    u
  | None -> min (max (16 * n) (n * n)) (1 lsl 28)

let dist_arg =
  let doc =
    "Query distribution: 'pos' (uniform positive), 'neg' (uniform negative sample), \
     'mix:P' (positive with probability P), 'zipf:S' (Zipf skew S over the keys), \
     'point' (a single hot key). For $(b,lowcon monitor) only, 'rw:F' selects a mixed \
     read-write op stream (read fraction F, updates split evenly between inserts and \
     deletes) served by the epoch-published dynamic dictionary — pair it with \
     --structure lc-dyn. 'flash:S' (also lc-dyn only) is a query-only flash crowd: flat \
     for the first third of the stream, then one hot key absorbs share S of all queries \
     — the workload $(b,--adaptive) exists to absorb."
  in
  Arg.(value & opt string "pos" & info [ "dist" ] ~docv:"DIST" ~doc)

(* One vocabulary for workload and structure names, shared with the
   perf suite so artifact keys mean the same thing everywhere. *)
let parse_dist rng ~universe ~keys spec = Lc_perf.Select.workload rng ~universe ~keys spec

let with_errors f =
  try `Ok (f ()) with
  | Failure msg -> `Error (false, msg)
  | Lc_core.Dictionary.Build_failed { stage; trials; detail } ->
    `Error
      ( false,
        Printf.sprintf "dictionary construction failed at stage %S after %d trial(s): %s" stage
          trials detail )

(* ------------------------------------------------------------------ *)

let report seed n universe_opt =
  with_errors @@ fun () ->
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let dict, build_s =
    let t0 = Unix.gettimeofday () in
    let d = Lc_core.Dictionary.build rng ~universe ~keys in
    (d, Unix.gettimeofday () -. t0)
  in
  Format.printf "Parameters:@.%a@.@." Lc_core.Params.pp (Lc_core.Dictionary.params dict);
  Printf.printf "Built in %.4f s (%d P(S) trial(s)).\n" build_s
    (Lc_core.Dictionary.build_trials dict);
  (match Lc_core.Dictionary.verify dict with
  | Ok () -> print_endline "Structural verification: ok."
  | Error e -> Printf.printf "Structural verification FAILED: %s\n" e);
  let inst = Lc_core.Dictionary.instance dict in
  let report_dist label qd =
    let c = Instance.contention_exact inst qd in
    let prof = Contention.profile c in
    Printf.printf
      "%-18s mean probes %.2f | s*maxPhi %.1f (per-step %.1f) | profile p50 %.1f p99 %.1f\n"
      label c.mean_probes
      (Contention.normalized_max c)
      (Contention.normalized_step_max c)
      (Stats.median prof) (Stats.quantile prof 0.99)
  in
  report_dist "uniform positive" (Qdist.uniform ~name:"pos" keys);
  report_dist "uniform negative"
    (Qdist.uniform ~name:"neg" (Keyset.negatives rng ~universe ~keys ~count:(8 * n)));
  Printf.printf "Space: %d cells of %d bits (%.1f cells/key); max probes %d.\n" inst.space
    (Lc_cellprobe.Table.bits inst.table)
    (float_of_int inst.space /. float_of_int n)
    inst.max_probes

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Build one low-contention dictionary and profile it.")
    Term.(ret (const report $ seed_arg $ n_arg $ universe_arg))

(* ------------------------------------------------------------------ *)

let compare_structures seed n universe_opt dist =
  with_errors @@ fun () ->
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let qd = parse_dist rng ~universe ~keys dist in
  Printf.printf "Distribution: %s (entropy %.2f bits)\n\n" (Qdist.name qd) (Qdist.entropy qd);
  Printf.printf "%-20s %10s %12s %12s %12s\n" "structure" "cells" "max probes" "mean probes"
    "s*maxPhi";
  let arm label inst =
    let c = Instance.contention_exact inst qd in
    Printf.printf "%-20s %10d %12d %12.2f %12.1f\n" label inst.Instance.space
      inst.Instance.max_probes c.mean_probes
      (Contention.normalized_max c)
  in
  arm "low-contention" (Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys));
  arm "fks" (Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys));
  arm "fks-replicated" (Lc_dict.Fks.instance (Lc_dict.Fks.build rng ~universe ~keys));
  arm "dm-replicated" (Lc_dict.Dm_dict.instance (Lc_dict.Dm_dict.build rng ~universe ~keys));
  arm "cuckoo-replicated" (Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build rng ~universe ~keys));
  arm "binary-search" (Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys));
  arm "repl-bst (pred.)" (Lc_dict.Repl_bst.instance (Lc_dict.Repl_bst.build ~universe ~keys))

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all structures' contention under a query distribution.")
    Term.(ret (const compare_structures $ seed_arg $ n_arg $ universe_arg $ dist_arg))

(* ------------------------------------------------------------------ *)

let m_arg =
  Arg.(value & opt int 256 & info [ "m"; "concurrency" ] ~docv:"M" ~doc:"Concurrent queries per trial.")

let hotspot seed n universe_opt m dist =
  with_errors @@ fun () ->
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let qd = parse_dist rng ~universe ~keys dist in
  Printf.printf
    "Hot spot = max queries probing one cell in one lock-step round (m = %d, 50 trials).\n\n" m;
  Printf.printf "%-20s %14s %14s\n" "structure" "mean hotspot" "worst hotspot";
  let arm label (inst : Instance.t) =
    let stats =
      Lc_cellprobe.Concurrency.simulate ~rng ~cells:inst.space ~qdist:qd ~spec:inst.spec ~m
        ~trials:50
    in
    Printf.printf "%-20s %14.1f %14d\n" label stats.mean_hotspot stats.max_hotspot
  in
  arm "low-contention" (Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys));
  arm "fks-replicated" (Lc_dict.Fks.instance (Lc_dict.Fks.build rng ~universe ~keys));
  arm "cuckoo-replicated" (Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build rng ~universe ~keys));
  arm "binary-search" (Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys))

let hotspot_cmd =
  Cmd.v
    (Cmd.info "hotspot" ~doc:"Simulate m concurrent queries and report the hottest cell.")
    Term.(ret (const hotspot $ seed_arg $ n_arg $ universe_arg $ m_arg $ dist_arg))

(* ------------------------------------------------------------------ *)

let domains_arg =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"M" ~doc:"Worker domains for the serving run.")

let queries_arg =
  Arg.(
    value
    & opt int 4000
    & info [ "queries" ] ~docv:"Q" ~doc:"Queries per domain in the serving run.")

let cost_arg =
  let doc = "Probe cost model: 'free' or 'spin:H' (per-cell spinlock held H extra relax loops)." in
  Arg.(value & opt string "free" & info [ "cost" ] ~docv:"COST" ~doc)

(* Cost-model names, like structure and workload names, are interpreted
   in exactly one place: Lc_perf.Select. *)
let parse_cost spec = Lc_perf.Select.cost spec

let structure_arg =
  let doc =
    "Structure to serve: 'lc' (the low-contention dictionary), 'fks-norepl' (unreplicated FKS \
     — the deliberately hot one), 'fks', 'dm', 'cuckoo', 'binary', or 'lc-dyn' (the \
     epoch-published dynamic dictionary; pair it with --dist rw:F)."
  in
  Arg.(value & opt string "lc" & info [ "structure" ] ~docv:"S" ~doc)

let build_structure ?obs rng ~universe ~keys s = Lc_perf.Select.structure ?obs rng ~universe ~keys s

let out_arg =
  Arg.(
    value
    & opt string "lowcon-profile"
    & info [ "out"; "o" ] ~docv:"PREFIX"
        ~doc:
          "Output prefix: writes $(docv).trace.json (Chrome trace events, open in Perfetto or \
           chrome://tracing), $(docv).prom (Prometheus text exposition), and \
           $(docv).metrics.json.")

let profile seed n universe_opt dist structure domains queries cost_spec out =
  with_errors @@ fun () ->
  let cost = parse_cost cost_spec in
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let obs = Lc_obs.Obs.create () in
  let inst = build_structure ~obs rng ~universe ~keys structure in
  let qd = parse_dist rng ~universe ~keys dist in
  let cfg = Lc_parallel.Engine.Config.make ~cost ~obs ~domains ~seed () in
  let o =
    Lc_parallel.Engine.run cfg
      (Lc_parallel.Engine.Static { inst; qdist = qd; queries_per_domain = queries })
  in
  let r = o.Lc_parallel.Engine.result in
  let snap = Lc_obs.Obs.snapshot obs in
  Printf.printf "Served %d queries on %d domains in %.4f s (%.0f q/s).\n" r.queries r.domains
    r.seconds r.throughput;
  Printf.printf "Probes: %d total; hottest cell %d with %d (%.1fx the flat bound %.1f).\n"
    r.total_probes r.hottest_cell r.hottest_count
    (Lc_parallel.Engine.hotspot_ratio r)
    r.flat_bound;
  (match Lc_obs.Metrics.Snapshot.find_hist snap "engine_query_latency_ns" with
  | Some h ->
    let q p = Lc_obs.Metrics.Snapshot.quantile h p /. 1e3 in
    Printf.printf "Query latency: p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us.\n" (q 0.5)
      (q 0.9) (q 0.99)
      (float_of_int h.max_value /. 1e3)
  | None -> ());
  (match Lc_obs.Metrics.Snapshot.find_hist snap "engine_spinlock_wait_ns" with
  | Some h when h.count > 0 ->
    Printf.printf "Spinlock: %d acquisitions, %.2f ms total wait, p99 wait %.1f us.\n" h.count
      (float_of_int h.sum /. 1e6)
      (Lc_obs.Metrics.Snapshot.quantile h 0.99 /. 1e3)
  | _ -> ());
  print_newline ();
  print_string (Lc_obs.Span.summary obs.spans);
  let trace_path = out ^ ".trace.json" in
  let prom_path = out ^ ".prom" in
  let json_path = out ^ ".metrics.json" in
  (match Lc_obs.Span.check_balanced obs.spans with
  | Ok () -> ()
  | Error e -> failwith ("internal: unbalanced trace — " ^ e));
  Lc_obs.Export.write_file ~path:trace_path (Lc_obs.Span.to_chrome_json obs.spans);
  Lc_obs.Export.write_file ~path:prom_path (Lc_obs.Export.prometheus snap);
  Lc_obs.Export.write_file ~path:json_path (Lc_obs.Export.json_snapshot snap);
  Printf.printf "\nWrote %s (load in https://ui.perfetto.dev), %s, %s.\n" trace_path prom_path
    json_path

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Build any named structure (with build-stage spans where the builder supports them), \
          serve a workload with per-domain telemetry, and dump metrics (Prometheus + JSON) and \
          a Chrome trace side by side.")
    Term.(
      ret
        (const profile $ seed_arg $ n_arg $ universe_arg $ dist_arg $ structure_arg
       $ domains_arg $ queries_arg $ cost_arg $ out_arg))

(* ------------------------------------------------------------------ *)

module Engine = Lc_parallel.Engine
module Window = Lc_obs.Window

let window_arg =
  Arg.(
    value
    & opt float 0.25
    & info [ "window" ] ~docv:"SECONDS" ~doc:"Monitor tick period — one window per tick.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:
          "Serve /metrics, /snapshot.json, /cells.json, /windows.json, /updates.json, \
           /scaling.json, /control.json and /healthz on 127.0.0.1:$(docv) during the run \
           (0 picks an ephemeral port).")

let top_k_arg =
  Arg.(value & opt int 16 & info [ "top-k" ] ~docv:"K" ~doc:"Hot-cell sketch capacity per worker.")

let alert_arg =
  Arg.(
    value
    & opt float 8.0
    & info [ "alert-factor" ] ~docv:"X"
        ~doc:
          "Fire the hotspot alert when a window's engine_hotspot_ratio exceeds $(docv) times \
           the flat 1/s bound.")

let no_dashboard_arg =
  Arg.(
    value
    & flag
    & info [ "no-dashboard" ]
        ~doc:"Append one log line per window instead of redrawing a terminal dashboard.")

let linger_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "linger" ] ~docv:"SECONDS"
        ~doc:"Keep the HTTP endpoint up this long after the run completes.")

let dump_on_alert_arg =
  Arg.(
    value
    & opt ~vopt:(Some "auto") (some string) None
    & info [ "dump-on-alert" ] ~docv:"PATH"
        ~doc:
          "Attach a flight recorder (lock-free per-domain event journals) and, the moment the \
           hotspot alert first fires, dump a postmortem artifact — window ring, journal \
           timeline, alert state, environment fingerprint — to $(docv) (default: a timestamped \
           postmortem-*.json in the current directory). Analyze it with $(b,lowcon \
           postmortem).")

let journal_capacity_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "journal-capacity" ] ~docv:"EVENTS"
        ~doc:"Flight-recorder ring capacity per recording domain (oldest events overwritten).")

let adaptive_arg =
  Arg.(
    value
    & flag
    & info [ "adaptive" ]
        ~doc:
          "Attach the replication controller (dynamic structure only): each window's sketch \
           evidence steps a hysteresis policy that raises or lowers the small-level \
           replication boost online, actuated through the builder's next epoch publication — \
           readers are never blocked. Decisions land on their own flight-recorder ring, in \
           /control.json and on the dashboard.")

let control_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "control-out" ] ~docv:"PATH"
        ~doc:
          "Write the final /control.json document (schema lowcon-control) to $(docv) after \
           the run — validate it with $(b,lowcon validate).")

let postmortem_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem-out" ] ~docv:"PATH"
        ~doc:
          "Attach a flight recorder and write a postmortem artifact to $(docv) at the end of \
           the run, triggered by the final window — unlike $(b,--dump-on-alert), which \
           captures at the first alert edge, this captures the whole story (for an adaptive \
           run: every controller decision interleaved with the alerts). Replay it with \
           $(b,lowcon postmortem).")

let window_line (e : Window.entry) =
  let base =
    Printf.sprintf
      "w%03d  [%6.2fs,%6.2fs)  q %7d  qps %9.0f  p50 %7.1fus  p99 %7.1fus  hot %6.1fx  %s"
      e.index e.t_start_s e.t_end_s e.queries e.qps (e.p50_ns /. 1e3) (e.p99_ns /. 1e3)
      e.hotspot_ratio
      (if e.alert then "ALERT" else "-")
  in
  match e.updates with
  | None -> base
  | Some u ->
    base
    ^ Printf.sprintf "  | ups %7.0f/s  pubs %5.1f/s  w-amp %5.2f  rb-p99 %6.1fus" u.Window.ups
        u.Window.pubs_per_s u.Window.write_amp
        (u.Window.rebuild_p99_ns /. 1e3)

let render_dashboard ~name ~domains ~port ~alert_factor mon (_ : Window.entry) =
  let w = Engine.Monitor.window mon in
  let entries = Window.entries w in
  let recent =
    let len = List.length entries in
    if len <= 16 then entries else List.filteri (fun i _ -> i >= len - 16) entries
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "\027[2J\027[H";
  Buffer.add_string buf
    (Printf.sprintf "lowcon monitor — %s, %d domains, alert at %.1fx flat%s\n\n" name domains
       alert_factor
       (match port with
       | Some p -> Printf.sprintf " — http://127.0.0.1:%d/metrics" p
       | None -> ""));
  List.iter (fun e -> Buffer.add_string buf (window_line e ^ "\n")) recent;
  Buffer.add_string buf
    (Printf.sprintf "\nwindows %d   alert %s (fired in %d, current run %d)\n"
       (Window.total_windows w)
       (if Window.alert_active w then "FIRING" else "quiet")
       (Window.alert_fired_total w) (Window.alert_firing_run w));
  (* Update panel: present only while the builder is reporting (the
     epoch-published dynamic dictionary under --dist rw:F). *)
  (match Window.last w with
  | Some { Window.updates = Some u; _ } ->
    Buffer.add_string buf
      (Printf.sprintf
         "updates   ups %8.0f/s   pubs %5.1f/s   write-amp %6.2f   rebuild p99 %7.1fus\n\
          epoch %-6d retired-pending %-4d reader-lag %-3d cum updates %d (cells %d)\n"
         u.Window.ups u.Window.pubs_per_s u.Window.write_amp
         (u.Window.rebuild_p99_ns /. 1e3)
         u.Window.u_epoch u.Window.u_retired u.Window.u_reader_lag u.Window.cum_updates
         u.Window.cum_cells)
  | _ -> ());
  (* Controller panel: present only when --adaptive attached one. *)
  (match Engine.Monitor.controller mon with
  | None -> ()
  | Some ctl ->
    let module C = Lc_control.Controller in
    Buffer.add_string buf
      (Printf.sprintf
         "control   boost %d -> target %d (applied %d)   windowed ratio %6.1fx   score %-5d \
          cooldown %d   decisions %d\n"
         (C.base_boost ctl) (C.target_boost ctl) (C.applied_boost ctl) (C.last_ratio ctl)
         (C.score ctl) (C.cooldown ctl) (C.decisions_total ctl));
    match C.decisions ctl with
    | [] -> ()
    | ds ->
      let d = List.nth ds (List.length ds - 1) in
      Buffer.add_string buf
        (Printf.sprintf "          last: #%d at w%d %s %d -> %d (ratio %.1fx, cell %d)\n"
           d.C.d_id d.C.d_window
           (match d.C.d_action with `Raise -> "RAISE" | `Lower -> "lower")
           d.C.d_old_boost d.C.d_new_boost d.C.d_ratio d.C.d_cell));
  print_string (Buffer.contents buf);
  flush stdout

let monitor_run seed n universe_opt dist structure domains queries cost_spec window_s port_opt
    top_k alert_factor no_dashboard linger dump_on_alert journal_capacity adaptive control_out
    postmortem_out =
  with_errors @@ fun () ->
  let cost = parse_cost cost_spec in
  let rw = Lc_perf.Select.rw_fraction dist in
  let flash = Lc_perf.Select.flash_share dist in
  let dyn = rw <> None || flash <> None in
  (match (dyn, structure) with
  | true, s when s <> Lc_perf.Select.dynamic_name ->
    failwith
      (Printf.sprintf "--dist %s is an op stream; pair it with --structure %s" dist
         Lc_perf.Select.dynamic_name)
  | false, s when s = Lc_perf.Select.dynamic_name ->
    failwith
      (Printf.sprintf
         "--structure %s serves op streams; pair it with --dist rw:F or --dist flash:S"
         Lc_perf.Select.dynamic_name)
  | _ -> ());
  if adaptive && not dyn then
    failwith
      (Printf.sprintf
         "--adaptive actuates replication through epoch publication; pair it with --structure \
          %s and --dist rw:F or flash:S"
         Lc_perf.Select.dynamic_name);
  (match (dyn, cost) with
  | true, Engine.Spinlock _ ->
    failwith
      "the epoch read path takes no per-cell locks; --cost spin:H only applies to static \
       serving"
  | _ -> ());
  let rng = Rng.create seed in
  let universe = resolve_universe n universe_opt in
  let keys = Keyset.random rng ~universe ~n in
  let journal =
    (* Ring layout: 0 = orchestrator, 1..domains = workers,
       domains+1 = monitor; a dynamic run gets one more ring
       (domains+2) for the builder's publish/merge/reclaim events, and
       an adaptive run one more again (domains+3) for the controller's
       decisions. *)
    let writers =
      domains + 2 + (if dyn then 1 else 0) + if adaptive then 1 else 0
    in
    if dump_on_alert <> None || postmortem_out <> None then
      Some (Lc_obs.Journal.create ~writers ~capacity:journal_capacity)
    else None
  in
  let stage name mark =
    Option.iter
      (fun j -> Lc_obs.Journal.record j ~writer:0 (Lc_obs.Journal.Stage { name; mark }))
      journal
  in
  stage "build" `Begin;
  let prepared =
    if not dyn then begin
      let inst = build_structure rng ~universe ~keys structure in
      let qd = parse_dist rng ~universe ~keys dist in
      `Static (inst, qd)
    end
    else begin
      let epoch = Lc_dynamic.Epoch.create rng ~universe () in
      let length = domains * queries in
      let ops =
        match (rw, flash) with
        | Some read_fraction, _ ->
          Array.iter (fun k -> Lc_dynamic.Epoch.insert epoch k) keys;
          Lc_dynamic.Epoch.publish epoch;
          Lc_workload.Opstream.generate
            ~mix:(Lc_workload.Opstream.read_write_mix ~read_fraction)
            ~initial_pool:keys rng ~universe ~length
            ~working_set:(min universe (2 * n))
        | None, Some hot_share ->
          (* Query-only flash crowd: the hot key is a member but stays
             outside the base pool, so the first third of the stream
             never touches it. *)
          let hot_key = (Keyset.negatives rng ~universe ~keys ~count:1).(0) in
          Array.iter (fun k -> Lc_dynamic.Epoch.insert epoch k) keys;
          Lc_dynamic.Epoch.insert epoch hot_key;
          Lc_dynamic.Epoch.publish epoch;
          Lc_workload.Opstream.point_mass
            ~mix:{ Lc_workload.Opstream.p_insert = 0.0; p_delete = 0.0 }
            ~initial_pool:keys rng ~universe ~length ~working_set:n
            ~hot_from:(length / 3) ~hot_share ~hot_key
        | None, None -> assert false
      in
      `Dynamic (epoch, ops)
    end
  in
  stage "build" `End;
  let display_name =
    match prepared with
    | `Static (inst, _) -> inst.Instance.name
    | `Dynamic _ -> Lc_perf.Select.dynamic_name
  in
  (* The dashboard hook needs the monitor (for the window ring) and the
     HTTP port, neither of which exists until after the hook does;
     thread both through refs set before the run starts. *)
  let bound_port = ref None in
  let mon_ref = ref None in
  let last_window = ref None in
  let on_window e =
    last_window := Some e;
    if no_dashboard then begin
      print_endline (window_line e);
      flush stdout
    end
    else
      match !mon_ref with
      | None -> ()
      | Some mon ->
        render_dashboard ~name:display_name ~domains ~port:!bound_port ~alert_factor mon e
  in
  let dumped = ref [] in
  let on_alert =
    match dump_on_alert with
    | None -> None
    | Some spec ->
      Some
        (fun (e : Window.entry) ->
          match !mon_ref with
          | None -> ()
          | Some mon ->
            let pm =
              Lc_perf.Postmortem.capture
                ~fingerprint:(Lc_perf.Artifact.fingerprint ~seed)
                ~structure ~workload:dist ~domains ~trigger:e mon
            in
            let path =
              if spec = "auto" then
                Printf.sprintf "postmortem-%.0f-w%d.json" (Unix.time ()) e.Window.index
              else spec
            in
            Lc_perf.Postmortem.write ~path pm;
            dumped := path :: !dumped)
  in
  let mon =
    match prepared with
    | `Static (inst, _) ->
      Engine.Monitor.create ~interval_s:window_s ~top_k ~alert_factor ~on_window ?journal
        ?on_alert ~domains inst
    | `Dynamic (epoch, _) ->
      let s0 = Lc_dynamic.Epoch.current epoch in
      Engine.Monitor.create_for ~interval_s:window_s ~top_k ~alert_factor ~on_window ?journal
        ?on_alert ~domains ~space:(Lc_dynamic.Epoch.space s0)
        ~max_probes:(Lc_dynamic.Epoch.max_probes s0) ()
  in
  mon_ref := Some mon;
  (if adaptive then
     match prepared with
     | `Dynamic (epoch, _) ->
       let s0 = Lc_dynamic.Epoch.current epoch in
       let ctl =
         Lc_control.Controller.create
           ?journal:
             (Option.map (fun j -> (j, Engine.Monitor.controller_writer ~domains)) journal)
           ~space:(Lc_dynamic.Epoch.space s0)
           ~max_probes:(Lc_dynamic.Epoch.max_probes s0)
           ~boost:(Lc_dynamic.Dynamic.small_level_boost (Lc_dynamic.Epoch.inner epoch))
           ()
       in
       Engine.Monitor.attach_controller mon ctl
     | `Static _ -> assert false);
  let server =
    Option.map (fun p -> Lc_obs.Http.start ~port:p (Engine.Monitor.routes mon)) port_opt
  in
  (match server with
  | Some s ->
    bound_port := Some (Lc_obs.Http.port s);
    Printf.printf "Scrape endpoint: http://127.0.0.1:%d/metrics (also /snapshot.json, \
                   /cells.json, /windows.json, /updates.json, /scaling.json, /healthz)\n%!"
      (Lc_obs.Http.port s)
  | None -> ());
  let w =
    let cfg = Engine.Config.make ~cost ~monitor:mon ~domains ~seed () in
    match prepared with
    | `Static (inst, qd) ->
      Engine.run cfg (Engine.Static { inst; qdist = qd; queries_per_domain = queries })
    | `Dynamic (epoch, ops) ->
      Engine.run cfg (Engine.Dynamic { epoch; ops; publish_every = 64 })
  in
  let r = w.Engine.result in
  if not no_dashboard then print_newline ();
  Printf.printf "\nServed %d queries on %d domains in %.4f s (%.0f q/s); %d windows.\n" r.queries
    r.domains r.seconds r.throughput (List.length w.windows);
  Printf.printf "Hottest cell %d: %d probes, %.1fx the flat bound %.1f (exact).\n" r.hottest_cell
    r.hottest_count (Engine.hotspot_ratio r) r.flat_bound;
  (* Cache-line co-heat: how much probe traffic lands next to other
     traffic on the same line — the false-sharing signature. Exact
     per-cell counts exist only for static runs. *)
  (if Array.length r.Engine.counts > 0 then
     let ch = Lc_analysis.Coheat.of_counts r.Engine.counts in
     if ch.Lc_analysis.Coheat.total > 0 then
       Printf.printf
         "Cache-line co-heat: %.3f over %d lines of %d cells (uniform bound %.3f); hottest \
          line %d carries %.1f%% of probes.\n"
         ch.Lc_analysis.Coheat.ratio ch.Lc_analysis.Coheat.lines
         ch.Lc_analysis.Coheat.line_cells
         (Lc_analysis.Coheat.uniform_bound ch)
         ch.Lc_analysis.Coheat.hottest_line
         (100.0 *. ch.Lc_analysis.Coheat.hottest_line_share));
  (match w.windows with
  | [] -> ()
  | ws ->
    let final = List.nth ws (List.length ws - 1) in
    Printf.printf "Final window: sketched ratio %.1fx, hottest sketched cell %d.\n"
      final.hotspot_ratio final.max_cell);
  (match w.cells with
  | Some cells when cells.top <> [] ->
    Printf.printf "Sketched top cells (error bound %d):" cells.error_bound;
    List.iteri
      (fun i (e : Lc_obs.Heavy.entry) ->
        if i < 5 then Printf.printf "  %d:%d±%d" e.item e.count e.err)
      cells.top;
    print_newline ()
  | _ -> ());
  if w.alert_windows > 0 then
    Printf.printf
      "ALERT: hotspot ratio exceeded %.1fx flat in %d of %d windows — a contended cell is \
       absorbing far more than its 1/s share (Theta(sqrt n) regression territory).\n"
      alert_factor w.alert_windows (List.length w.windows)
  else
    Printf.printf "Alert quiet: every window stayed within %.1fx of the flat bound.\n"
      alert_factor;
  (match w.Engine.updates with
  | None -> ()
  | Some u ->
    Printf.printf
      "Updates: %d inserts + %d deletes applied off the read path; %d publications, %d levels \
       reclaimed (%d pending), %d keys rebuilt, %d purges.\n"
      u.Engine.inserts u.Engine.deletes u.Engine.publications u.Engine.reclaimed
      u.Engine.retired_pending u.Engine.keys_rebuilt u.Engine.purges;
    let update_ops = u.Engine.inserts + u.Engine.deletes in
    Printf.printf
      "Write path: %d cells written in %d level builds (write-amp %.2f); %.1f us/update, \
       rebuild %.2f ms + publish %.2f ms wall; worst reclaim lag %d epoch(s).\n"
      u.Engine.cells_written u.Engine.rebuilds u.Engine.write_amp
      (if update_ops = 0 then 0.0
       else float_of_int u.Engine.builder_ns /. float_of_int update_ops /. 1e3)
      (float_of_int u.Engine.rebuild_ns /. 1e6)
      (float_of_int u.Engine.publish_ns /. 1e6)
      u.Engine.reclaim_lag_max;
    Printf.printf "Final snapshot: epoch %d, %d live keys; %d of %d queries hit.\n"
      u.Engine.final_epoch u.Engine.final_live u.Engine.query_hits r.queries);
  (match Engine.Monitor.controller mon with
  | None -> ()
  | Some ctl ->
    let module C = Lc_control.Controller in
    Printf.printf
      "Control: %d decision(s) over %d windows; boost %d -> %d (applied %d), final windowed \
       ratio %.1fx.\n"
      (C.decisions_total ctl) (C.windows_seen ctl) (C.base_boost ctl) (C.target_boost ctl)
      (C.applied_boost ctl) (C.last_ratio ctl);
    List.iter
      (fun (d : C.decision) ->
        Printf.printf "  #%d w%-3d %s %4d -> %-4d ratio %6.1fx cell %d (score %d, cooldown %d)\n"
          d.C.d_id d.C.d_window
          (match d.C.d_action with `Raise -> "RAISE" | `Lower -> "lower")
          d.C.d_old_boost d.C.d_new_boost d.C.d_ratio d.C.d_cell d.C.d_score d.C.d_cooldown)
      (C.decisions ctl));
  (match control_out with
  | None -> ()
  | Some path ->
    Lc_obs.Export.write_file ~path (Engine.Monitor.control_json mon);
    Printf.printf "Control document: %s (check with 'lowcon validate %s').\n" path path);
  (match (postmortem_out, !last_window) with
  | None, _ -> ()
  | Some _, None -> Printf.printf "No windows were cut; final postmortem not written.\n"
  | Some path, Some e ->
    let pm =
      Lc_perf.Postmortem.capture
        ~fingerprint:(Lc_perf.Artifact.fingerprint ~seed)
        ~structure ~workload:dist ~domains ~trigger:e mon
    in
    Lc_perf.Postmortem.write ~path pm;
    Printf.printf "Final postmortem: %s (replay with 'lowcon postmortem %s').\n" path path);
  List.iter
    (fun path ->
      Printf.printf "Postmortem dump: %s (inspect with 'lowcon postmortem %s').\n" path path)
    (List.rev !dumped);
  (if dump_on_alert <> None && !dumped = [] then
     Printf.printf "Flight recorder armed; alert never fired, no postmortem written.\n");
  (match server with
  | Some s ->
    if linger > 0.0 then begin
      Printf.printf "Endpoint stays up for %.1f s (ctrl-C to stop early)...\n%!" linger;
      Unix.sleepf linger
    end;
    Lc_obs.Http.stop s
  | None -> ())

let monitor_cmd =
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Serve a workload while watching it live: windowed qps and latency quantiles, \
          sketched hot cells, a theory-bound hotspot alert, and an optional HTTP scrape \
          endpoint.")
    Term.(
      ret
        (const monitor_run $ seed_arg $ n_arg $ universe_arg $ dist_arg $ structure_arg
       $ domains_arg $ queries_arg $ cost_arg $ window_arg $ port_arg $ top_k_arg $ alert_arg
       $ no_dashboard_arg $ linger_arg $ dump_on_alert_arg $ journal_capacity_arg
       $ adaptive_arg $ control_out_arg $ postmortem_out_arg))

(* ------------------------------------------------------------------ *)

module Artifact = Lc_perf.Artifact
module Suite = Lc_perf.Suite
module Diff = Lc_perf.Diff
module Postmortem = Lc_perf.Postmortem
module Tablefmt = Lc_analysis.Tablefmt

let quick_arg =
  Arg.(
    value
    & flag
    & info [ "quick" ]
        ~doc:"Run the reduced CI smoke grid instead of the full default suite.")

let dir_arg =
  Arg.(
    value
    & opt string "."
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Directory for automatic BENCH_<n>.json numbering (ignored with $(b,--out)).")

let perf_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"PATH"
        ~doc:"Write the artifact here instead of the next free BENCH_<n>.json in $(b,--dir).")

let entry_table (entries : Artifact.entry list) =
  let t =
    Tablefmt.create ~title:"perf suite results"
      ~columns:
        [
          "config"; "ns/q"; "95% CI"; "probes/q"; "p50 us"; "p99 us"; "hotspot"; "queries";
          "ns/upd"; "w-amp";
        ]
  in
  List.iter
    (fun (e : Artifact.entry) ->
      Tablefmt.add_row t
        [
          Diff.key_string (Artifact.key e);
          Printf.sprintf "%.1f" e.Artifact.ns_per_query.Artifact.mean;
          Printf.sprintf "[%.1f, %.1f]" e.Artifact.ns_per_query.Artifact.lo
            e.Artifact.ns_per_query.Artifact.hi;
          Printf.sprintf "%.2f" e.Artifact.probes_per_query.Artifact.mean;
          Printf.sprintf "%.1f" (e.Artifact.p50_ns /. 1e3);
          Printf.sprintf "%.1f" (e.Artifact.p99_ns /. 1e3);
          Printf.sprintf "%.2fx" e.Artifact.hotspot_ratio;
          string_of_int e.Artifact.queries;
          (match e.Artifact.ns_per_update with
          | Some c -> Printf.sprintf "%.0f" c.Artifact.mean
          | None -> "-");
          (match e.Artifact.write_amp with
          | Some w -> Printf.sprintf "%.2f" w
          | None -> "-");
        ])
    entries;
  Tablefmt.render t

let perf_run seed quick dir out =
  with_errors @@ fun () ->
  let spec = if quick then Suite.quick else Suite.default in
  let art =
    Suite.run ~progress:(fun label -> Printf.printf "  %s\n%!" label) ~seed spec
  in
  print_newline ();
  print_string (entry_table art.Artifact.entries);
  let path = match out with Some p -> p | None -> Artifact.next_path ~dir in
  Artifact.write ~path art;
  let f = art.Artifact.fingerprint in
  Printf.printf
    "\nWrote %s (%s v%d; ocaml %s, %d cores, git %s, seed %d, clock overhead %.1f ns).\n" path
    Artifact.schema_name Artifact.schema_version f.Artifact.ocaml_version f.Artifact.cores
    f.Artifact.git_rev f.Artifact.seed f.Artifact.clock_overhead_ns

let perf_run_term =
  Term.(ret (const perf_run $ seed_arg $ quick_arg $ dir_arg $ perf_out_arg))

let perf_run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the perf suite (structure x workload x domain-count grid, several trials each) \
          and write a schema-versioned BENCH_<n>.json artifact with bootstrap confidence \
          intervals and an environment fingerprint.")
    perf_run_term

let diff_a_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"Baseline artifact (JSON).")

let diff_b_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"Candidate artifact (JSON).")

let diff_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH" ~doc:"Also write the report as JSON to $(docv).")

let diff_prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"PATH"
        ~doc:"Also write perf_diff_* Prometheus gauges to $(docv).")

let alpha_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "alpha" ] ~docv:"A" ~doc:"Mann-Whitney significance threshold.")

let fail_on_regression_arg =
  Arg.(
    value
    & flag
    & info [ "fail-on-regression" ]
        ~doc:"Exit non-zero when any configuration shows a significant regression.")

let perf_diff a b alpha json_out prom_out fail_on_regression =
  with_errors @@ fun () ->
  let load path =
    match Artifact.load path with Ok art -> art | Error e -> failwith e
  in
  let report = Diff.compare_artifacts ~alpha (load a) (load b) in
  print_string (Diff.render report);
  Option.iter
    (fun path ->
      match Lc_obs.Json.to_string_strict (Diff.to_json report) with
      | Ok s -> Lc_obs.Export.write_file ~path s
      | Error { Lc_obs.Json.path = jpath; _ } ->
        failwith (Printf.sprintf "non-finite value at %s in diff report" jpath))
    json_out;
  Option.iter (fun path -> Lc_obs.Export.write_file ~path (Diff.prometheus report)) prom_out;
  if fail_on_regression && Diff.has_regression report then begin
    Printf.printf "%d configuration(s) regressed significantly\n" report.Diff.regressions;
    exit 1
  end

let perf_diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two bench artifacts configuration by configuration: Mann-Whitney U on the \
          raw trial samples plus bootstrap-CI overlap, flagging a change only when both \
          agree.")
    Term.(
      ret
        (const perf_diff $ diff_a_arg $ diff_b_arg $ alpha_arg $ diff_json_arg $ diff_prom_arg
       $ fail_on_regression_arg))

let perf_cmd =
  Cmd.group ~default:perf_run_term
    (Cmd.info "perf"
       ~doc:
         "Performance trajectory: run the bench suite into schema-versioned artifacts and \
          diff artifacts for statistically significant regressions.")
    [ perf_run_cmd; perf_diff_cmd ]

(* ------------------------------------------------------------------ *)

module Scaling = Lc_perf.Scaling

let max_domains_arg =
  Arg.(
    value
    & opt int 4
    & info [ "max-domains" ] ~docv:"M" ~doc:"Sweep domain counts 1 through $(docv).")

let scale_queries_arg =
  Arg.(
    value
    & opt int 2000
    & info [ "queries" ] ~docv:"Q" ~doc:"Queries per domain per trial.")

let scale_trials_arg =
  Arg.(value & opt int 3 & info [ "trials" ] ~docv:"T" ~doc:"Trials per sweep point.")

let scale_out_arg =
  Arg.(
    value
    & opt string "SCALING.json"
    & info [ "out"; "o" ] ~docv:"PATH" ~doc:"Write the lowcon-scaling artifact to $(docv).")

let scale seed n dist structure max_domains queries trials out =
  with_errors @@ fun () ->
  if max_domains < 1 then failwith "--max-domains must be >= 1";
  if structure = Lc_perf.Select.dynamic_name then
    failwith "lowcon scale sweeps static read-side serving; lc-dyn is not supported here";
  let spec =
    {
      Scaling.structure;
      workload = dist;
      domain_counts = List.init max_domains (fun i -> i + 1);
      queries_per_domain = queries;
      trials;
      n;
    }
  in
  let art = Scaling.run ~progress:(fun label -> Printf.printf "  %s\n%!" label) ~seed spec in
  print_newline ();
  print_string (Scaling.render art);
  Scaling.write ~path:out art;
  (* Read back through the strict decoder: a written artifact that does
     not validate must never be reported as written. *)
  (match Scaling.load out with
  | Ok _ -> ()
  | Error e -> failwith (Printf.sprintf "written artifact fails validation — %s" e));
  Printf.printf "\nWrote %s (%s v%d, seed %d).\n" out Scaling.schema_name
    Scaling.schema_version seed

let scale_cmd =
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Serve one structure across a 1..M domain sweep with phase and GC attribution, fit \
          the Universal Scalability Law to the throughput curve, and write a schema-versioned \
          lowcon-scaling artifact (lambda / sigma / kappa, per-phase time shares, allocation \
          per query).")
    Term.(
      ret
        (const scale $ seed_arg $ n_arg $ dist_arg $ structure_arg $ max_domains_arg
       $ scale_queries_arg $ scale_trials_arg $ scale_out_arg))

(* ------------------------------------------------------------------ *)

let postmortem_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"DUMP" ~doc:"A postmortem JSON written by $(b,--dump-on-alert).")

let postmortem_cmd =
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Reconstruct an alert timeline from a flight-recorder dump: stages, worker \
          publications, window cuts, the raising window and the hot-cell sketch at the \
          raise.")
    Term.(
      ret
        (const (fun path ->
             with_errors @@ fun () ->
             match Postmortem.load path with
             | Ok pm -> print_string (Postmortem.analyze pm)
             | Error e -> failwith e)
        $ postmortem_file_arg))

(* ------------------------------------------------------------------ *)

let validate_files_arg =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"ARTIFACT"
        ~doc:
          "Artifact files (BENCH_*.json, postmortem dumps, *.prom, *.metrics.json, \
           *.trace.json) or a $(b,lowcon profile) output prefix, which expands to its three \
           files.")

(* A scrape line is either a comment or "name[{labels}] value". *)
let check_prom_line line =
  if line = "" || String.length line >= 2 && String.sub line 0 2 = "# " then Ok ()
  else
    match String.rindex_opt line ' ' with
    | None -> Error "no value separator"
    | Some i ->
      let value = String.sub line (i + 1) (String.length line - i - 1) in
      let name = String.sub line 0 i in
      if name = "" then Error "empty series name"
      else if float_of_string_opt value = None then
        Error (Printf.sprintf "unparseable value %S" value)
      else Ok ()

(* The /updates.json document ("lowcon-updates" v1): cumulative builder
   counters — null exactly when the run never exercised the update path
   — plus the per-window update entries. Validated structurally, the
   same way the monitor builds it. *)
let validate_updates doc =
  let module J = Lc_obs.Json in
  let module U = Lc_perf.Jsonu in
  let ( let* ) = Result.bind in
  let* () =
    U.check_schema ~expect:Engine.Monitor.updates_schema_name
      ~version:Engine.Monitor.updates_schema_version doc
  in
  let* seen = U.bool_field "updates_seen" doc in
  let* cumulative = U.field "cumulative" doc in
  let* () =
    match (seen, cumulative) with
    | false, J.Null -> Ok ()
    | false, _ -> Error "\"cumulative\" must be null when updates_seen is false"
    | true, J.Null -> Error "\"cumulative\" must be an object when updates_seen is true"
    | true, c ->
      let* _ = U.int_field "inserts" c in
      let* _ = U.int_field "deletes" c in
      let* _ = U.int_field "publications" c in
      let* _ = U.int_field "reclaimed" c in
      let* _ = U.int_field "cells_written" c in
      let* _ = U.float_field "write_amp" c in
      let* _ = U.int_field "epoch" c in
      let* _ = U.int_field "retired_pending" c in
      let* _ = U.int_field "reader_lag" c in
      Ok ()
  in
  let* windows = U.list_field "windows" doc in
  let* _ =
    U.decode_list "windows"
      (fun w ->
        let* _ = U.int_field "index" w in
        let* _ = U.float_field "ups" w in
        let* _ = U.int_field "publications" w in
        let* _ = U.int_field "cells_written" w in
        let* _ = U.float_field "write_amp" w in
        let* _ = U.float_field "rebuild_p99_ns" w in
        let* _ = U.int_field "epoch" w in
        let* _ = U.int_field "retired_pending" w in
        let* _ = U.int_field "reader_lag" w in
        Ok ())
      windows
  in
  Ok (seen, List.length windows)

(* The /scaling.json document ("lowcon-scaling-live" v1): cumulative
   phase counters (checked against the attribution invariant: the five
   in-wall phases sum exactly to wall), GC counters with their windowed
   entries, and the co-heat object (null for runs without live per-cell
   counters). *)
let validate_scaling_live doc =
  let module J = Lc_obs.Json in
  let module U = Lc_perf.Jsonu in
  let ( let* ) = Result.bind in
  let* () =
    U.check_schema ~expect:Engine.Monitor.scaling_schema_name
      ~version:Engine.Monitor.scaling_schema_version doc
  in
  let* domains = U.int_field "domains" doc in
  let* phases = U.field "phases" doc in
  let* () =
    List.fold_left
      (fun acc (phase, _) ->
        let* () = acc in
        let* _ = U.in_context "phases" (U.int_field (phase ^ "_ns") phases) in
        Ok ())
      (Ok ()) Engine.phase_counter_names
  in
  let* () =
    let ns phase =
      match J.member (phase ^ "_ns") phases with
      | Some v -> Option.value ~default:0 (J.int_value v)
      | None -> 0
    in
    let parts = ns "probe" + ns "tally" + ns "publish" + ns "pin" + ns "other" in
    if parts <> ns "wall" then
      Error
        (Printf.sprintf "phases sum to %d ns but wall is %d ns — attribution does not \
                         reconcile" parts (ns "wall"))
    else Ok ()
  in
  let* gc = U.field "gc" doc in
  let* _ = U.in_context "gc" (U.int_field "minor_words" gc) in
  let* _ = U.in_context "gc" (U.int_field "promoted_words" gc) in
  let* _ = U.in_context "gc" (U.int_field "major_words" gc) in
  let* gws = U.in_context "gc" (U.list_field "windows" gc) in
  let* _ =
    U.decode_list "windows"
      (fun w ->
        let* _ = U.int_field "index" w in
        let* _ = U.int_field "queries" w in
        let* _ = U.int_field "minor_words" w in
        let* _ = U.int_field "minor_collections" w in
        let* _ = U.int_field "major_collections" w in
        let* _ = U.float_field "alloc_per_query" w in
        let* _ = U.int_field "heap_words" w in
        Ok ())
      gws
  in
  let* () =
    match J.member "coheat" doc with
    | None -> Error "missing member \"coheat\""
    | Some J.Null -> Ok ()
    | Some ch ->
      U.in_context "coheat"
        (let* _ = U.int_field "line_cells" ch in
         let* ratio = U.float_field "ratio" ch in
         let* _ = U.float_field "uniform_bound" ch in
         let* _ = U.int_field "hottest_line" ch in
         if ratio < 0.0 || ratio >= 1.0 then Error "ratio out of [0, 1)" else Ok ())
  in
  Ok (domains, List.length gws)

(* The /control.json document ("lowcon-control" v1): the replication
   controller's policy, live state and decision log. Beyond shape, the
   decision log's internal invariants are checked: ids are 1..N with
   N = decisions_total, every boost is a power of two inside the
   policy's [min, max] band, and consecutive decisions chain (each
   old_boost is the previous new_boost) — the same reconciliation the
   postmortem replay performs against the journal. *)
let validate_control doc =
  let module J = Lc_obs.Json in
  let module U = Lc_perf.Jsonu in
  let ( let* ) = Result.bind in
  let* () =
    U.check_schema ~expect:Engine.Monitor.control_schema_name
      ~version:Engine.Monitor.control_schema_version doc
  in
  let* attached = U.bool_field "attached" doc in
  if not attached then Ok (false, 0)
  else
    let* boost = U.field "boost" doc in
    let* base = U.in_context "boost" (U.int_field "base" boost) in
    let* _ = U.in_context "boost" (U.int_field "target" boost) in
    let* _ = U.in_context "boost" (U.int_field "applied" boost) in
    let* policy = U.field "policy" doc in
    let* () =
      U.in_context "policy"
        (let* _ = U.float_field "high_ratio" policy in
         let* _ = U.float_field "low_ratio" policy in
         let* _ = U.int_field "hot_contrib" policy in
         let* _ = U.int_field "cool_contrib" policy in
         let* _ = U.int_field "high_threshold" policy in
         let* _ = U.int_field "low_threshold" policy in
         let* _ = U.int_field "cooldown_windows" policy in
         let* _ = U.int_field "step" policy in
         Ok ())
    in
    let* min_boost = U.in_context "policy" (U.int_field "min_boost" policy) in
    let* max_boost = U.in_context "policy" (U.int_field "max_boost" policy) in
    let* state = U.field "state" doc in
    let* () =
      U.in_context "state"
        (let* _ = U.int_field "score" state in
         let* _ = U.int_field "cooldown" state in
         let* _ = U.int_field "windows_seen" state in
         let* _ = U.float_field "last_ratio" state in
         Ok ())
    in
    let* total = U.int_field "decisions_total" doc in
    let* ds = U.list_field "decisions" doc in
    let pow2 b = b > 0 && b land (b - 1) = 0 in
    let* decisions =
      U.decode_list "decisions"
        (fun d ->
          let* id = U.int_field "id" d in
          let* _ = U.int_field "window" d in
          let* _ = U.float_field "ratio" d in
          let* _ = U.int_field "cell" d in
          let* _ = U.int_field "count" d in
          let* _ = U.int_field "err" d in
          let* _ = U.int_field "score" d in
          let* action = U.str_field "action" d in
          let* () =
            if action = "raise" || action = "lower" then Ok ()
            else Error (Printf.sprintf "decision %d: bad action %S" id action)
          in
          let* old_boost = U.int_field "old_boost" d in
          let* new_boost = U.int_field "new_boost" d in
          let* _ = U.int_field "cooldown" d in
          let* () =
            if pow2 old_boost && pow2 new_boost && new_boost >= min_boost
               && new_boost <= max_boost
            then Ok ()
            else Error (Printf.sprintf "decision %d: boost %d -> %d outside the power-of-two \
                                        [%d, %d] band" id old_boost new_boost min_boost
                          max_boost)
          in
          Ok (id, old_boost, new_boost))
        ds
    in
    let* () =
      if List.length decisions <> total then
        Error
          (Printf.sprintf "decisions_total is %d but %d decision(s) listed" total
             (List.length decisions))
      else Ok ()
    in
    let* _ =
      List.fold_left
        (fun acc (id, old_boost, new_boost) ->
          let* expect_id, expect_boost = acc in
          if id <> expect_id then
            Error (Printf.sprintf "decision ids not consecutive: expected %d, got %d" expect_id id)
          else if old_boost <> expect_boost then
            Error
              (Printf.sprintf "decision %d: old_boost %d does not chain from %d" id old_boost
                 expect_boost)
          else Ok (id + 1, new_boost))
        (Ok (1, base)) decisions
    in
    Ok (true, total)

(* Per-file verdict: Ok describes what was recognised, Error what broke.
   Recognition is by content (the "schema" member), not by filename, so
   a renamed artifact still validates against the right grammar. *)
let validate_one path =
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if not (Sys.file_exists path) then Error "no such file"
  else if Filename.check_suffix path ".prom" then begin
    let lines = String.split_on_char '\n' (read path) in
    let series = ref 0 in
    let first_err = ref None in
    List.iteri
      (fun i line ->
        match check_prom_line line with
        | Ok () -> if line <> "" && line.[0] <> '#' then incr series
        | Error e ->
          if !first_err = None then
            first_err := Some (Printf.sprintf "line %d: %s" (i + 1) e))
      lines;
    match !first_err with
    | Some e -> Error e
    | None ->
      if !series = 0 then Error "no series lines"
      else Ok (Printf.sprintf "prometheus exposition, %d series lines" !series)
  end
  else
    match Lc_obs.Json.parse (read path) with
    | Error e -> Error ("invalid JSON — " ^ e)
    | Ok doc -> (
      match Lc_obs.Json.member "schema" doc with
      | Some (Lc_obs.Json.String s) when s = Artifact.schema_name -> (
        match Artifact.of_json doc with
        | Ok art ->
          Ok
            (Printf.sprintf "%s v%d, %d entries, seed %d" Artifact.schema_name
               Artifact.schema_version
               (List.length art.Artifact.entries)
               art.Artifact.fingerprint.Artifact.seed)
        | Error e -> Error e)
      | Some (Lc_obs.Json.String s) when s = Lc_lint.Report.schema_name -> (
        match Lc_lint.Report.of_json doc with
        | Ok r ->
          let active =
            List.length (List.filter (fun a -> a.Lc_lint.Report.suppressed = None)
                           r.Lc_lint.Report.results)
          in
          Ok
            (Printf.sprintf "%s v%d, %d file(s) scanned, %d active / %d suppressed finding(s)"
               Lc_lint.Report.schema_name Lc_lint.Report.schema_version
               r.Lc_lint.Report.files_scanned active
               (List.length r.Lc_lint.Report.results - active))
        | Error e -> Error e)
      | Some (Lc_obs.Json.String s) when s = Engine.Monitor.updates_schema_name -> (
        match validate_updates doc with
        | Ok (seen, nwindows) ->
          Ok
            (Printf.sprintf "%s v%d, %s, %d update window(s)"
               Engine.Monitor.updates_schema_name Engine.Monitor.updates_schema_version
               (if seen then "updates seen" else "no updates (static run)")
               nwindows)
        | Error e -> Error e)
      | Some (Lc_obs.Json.String s) when s = Scaling.schema_name -> (
        match Scaling.of_json doc with
        | Ok sc ->
          Ok
            (Printf.sprintf "%s v%d, %s/%s, %d point(s), %s" Scaling.schema_name
               Scaling.schema_version sc.Scaling.structure sc.Scaling.workload
               (List.length sc.Scaling.points)
               (match sc.Scaling.fit with
               | Some f ->
                 Printf.sprintf "sigma %.4f kappa %.6f" f.Lc_analysis.Usl.sigma
                   f.Lc_analysis.Usl.kappa
               | None -> "no fit"))
        | Error e -> Error e)
      | Some (Lc_obs.Json.String s) when s = Engine.Monitor.scaling_schema_name -> (
        match validate_scaling_live doc with
        | Ok (domains, gwindows) ->
          Ok
            (Printf.sprintf "%s v%d, %d domain(s), %d GC window(s)"
               Engine.Monitor.scaling_schema_name Engine.Monitor.scaling_schema_version domains
               gwindows)
        | Error e -> Error e)
      | Some (Lc_obs.Json.String s) when s = Engine.Monitor.control_schema_name -> (
        match validate_control doc with
        | Ok (attached, total) ->
          Ok
            (Printf.sprintf "%s v%d, %s"
               Engine.Monitor.control_schema_name Engine.Monitor.control_schema_version
               (if attached then Printf.sprintf "%d decision(s), chain reconciled" total
                else "no controller attached"))
        | Error e -> Error e)
      | Some (Lc_obs.Json.String s) when s = Postmortem.schema_name -> (
        match Postmortem.of_json doc with
        | Ok pm ->
          Ok
            (Printf.sprintf "%s v%d, %d windows, %d events, trigger window %d"
               Postmortem.schema_name Postmortem.schema_version
               (List.length pm.Postmortem.windows)
               (List.length pm.Postmortem.events)
               pm.Postmortem.trigger.Postmortem.index)
        | Error e -> Error e)
      | Some (Lc_obs.Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
      | Some _ -> Error "\"schema\" member is not a string"
      | None -> (
        match (Lc_obs.Json.member "version" doc, Lc_obs.Json.member "runs" doc) with
        | Some (Lc_obs.Json.String v), Some _ when v = Lc_lint.Sarif.version -> (
          (* SARIF has "$schema"/"version", not our "schema" member. *)
          match Lc_lint.Sarif.validate doc with
          | Ok () -> Ok (Printf.sprintf "SARIF %s, structurally valid" Lc_lint.Sarif.version)
          | Error e -> Error ("invalid SARIF — " ^ e))
        | _ -> (
          (* Legacy unversioned artifacts from lowcon profile. *)
          match Lc_obs.Json.member "counters" doc with
          | Some (Lc_obs.Json.Obj _) -> Ok "metrics snapshot (valid JSON with counters)"
          | Some _ -> Error "\"counters\" member is not an object"
          | None -> Ok "valid JSON")))

let validate files =
  with_errors @@ fun () ->
  let expand p =
    if (not (Sys.file_exists p)) && Sys.file_exists (p ^ ".trace.json") then
      [ p ^ ".trace.json"; p ^ ".metrics.json"; p ^ ".prom" ]
    else [ p ]
  in
  let failed = ref 0 in
  List.iter
    (fun path ->
      match validate_one path with
      | Ok msg -> Printf.printf "%-40s ok (%s)\n" path msg
      | Error msg ->
        incr failed;
        Printf.printf "%-40s FAIL (%s)\n" path msg)
    (List.concat_map expand files);
  (* Same exit contract as lint: 1 = findings (here: failed artifacts),
     2 = usage errors (handled by the driver in main). *)
  if !failed > 0 then begin
    Printf.printf "%d artifact(s) failed validation\n" !failed;
    exit 1
  end

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Grammar-check artifacts: BENCH_*.json, lowcon-scaling sweeps, /scaling.json and \
          /updates.json scrapes, postmortem dumps, and lowcon-lint reports against their \
          schemas, metrics JSON for its counters object, and .prom files against the \
          Prometheus exposition line grammar. One pass/fail line per file; exit 1 if any \
          file fails.")
    Term.(ret (const validate $ validate_files_arg))

(* ------------------------------------------------------------------ *)

module Lint_report = Lc_lint.Report
module Lint_driver = Lc_lint.Driver

let lint_root_arg =
  Arg.(
    value
    & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan (lints every .ml under \\$(docv)/lib).")

let lint_json_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Emit the schema-versioned lowcon-lint report as JSON to $(docv) ('-' or no value: \
           stdout, replacing the text rendering).")

let lint_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"PATH"
        ~doc:
          "Allowlist of suppressed findings (default: ROOT/lint-baseline.txt when present). \
           Each line: '<RULE> <file> <context> [owner=M.f] [protocol=NAME] \
           [expires=YYYY-MM-DD] -- <justification>'. owner= claims are verified by LC006; \
           entries with neither tag warn as prose-only.")

let lint_no_baseline_arg =
  Arg.(
    value & flag & info [ "no-baseline" ] ~doc:"Ignore any baseline; report raw findings.")

let lint_rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"LIST"
        ~doc:"Comma-separated rule subset to run (e.g. 'LC001,LC005'; default: all).")

let lint_self_check_arg =
  Arg.(
    value
    & flag
    & info [ "self-check" ]
        ~doc:
          "Instead of linting, parse every .ml and .mli in the repository, load every .cmt \
           under lib/, and check every lib/ module is covered by one; exit 2 on any failure \
           — proof the typed rules saw the whole tree.")

let lint_sarif_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "sarif" ] ~docv:"PATH"
        ~doc:
          "Also emit the report as SARIF 2.1.0 to $(docv) ('-' or no value: stdout) for \
           GitHub code scanning; baseline-suppressed findings carry external suppressions.")

let lint_gh_summary_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "gh-summary" ] ~docv:"PATH"
        ~doc:"Also append a Markdown findings table to $(docv) (GitHub job summary format).")

let lint_show_suppressed_arg =
  Arg.(
    value
    & flag
    & info [ "show-suppressed" ]
        ~doc:"Include baseline-suppressed findings (with their justifications) in text output.")

let usage_error msg =
  prerr_endline ("lowcon: lint: " ^ msg);
  exit 2

let lint root json_out sarif_out baseline_path no_baseline rules_opt self_check gh_summary
    show_suppressed =
  `Ok
    (if self_check then begin
       let sc = Lint_driver.self_check ~root () in
       List.iter
         (fun (pe : Lint_report.parse_error) ->
           Printf.printf "%s:%d:%d: parse error: %s\n" pe.pe_file pe.pe_line pe.pe_col
             pe.pe_message)
         sc.Lint_driver.sc_errors;
       Printf.printf "self-check: %d file(s) parsed, %d .cmt(s) loaded, %d failure(s)\n"
         sc.Lint_driver.sc_parsed sc.Lint_driver.sc_cmts
         (List.length sc.Lint_driver.sc_errors);
       exit (if sc.Lint_driver.sc_errors = [] then 0 else 2)
     end
     else begin
       let rules =
         match rules_opt with
         | None -> Lc_lint.Rule.all
         | Some s -> (
           match Lc_lint.Rule.parse_list s with Ok rs -> rs | Error e -> usage_error e)
       in
       let baseline =
         if no_baseline then None
         else
           let path =
             match baseline_path with
             | Some p -> Some p
             | None ->
               let d = Filename.concat root "lint-baseline.txt" in
               if Sys.file_exists d then Some d else None
           in
           match path with
           | None -> None
           | Some p -> (
             match Lc_lint.Baseline.load p with
             | Ok b -> Some b
             | Error e -> usage_error ("bad baseline: " ^ e))
       in
       let report = Lint_driver.run ~rules ?baseline ~root () in
       let json_to_stdout = json_out = Some "-" || sarif_out = Some "-" in
       (match json_out with
       | Some "-" -> print_endline (Lc_obs.Json.to_string (Lint_report.to_json report))
       | Some path ->
         Lc_obs.Export.write_file ~path
           (Lc_obs.Json.to_string (Lint_report.to_json report) ^ "\n")
       | None -> ());
       (match sarif_out with
       | Some "-" ->
         print_endline (Lc_obs.Json.to_string (Lc_lint.Sarif.of_report report))
       | Some path ->
         Lc_obs.Export.write_file ~path
           (Lc_obs.Json.to_string (Lc_lint.Sarif.of_report report) ^ "\n")
       | None -> ());
       if not json_to_stdout then
         print_string (Lint_report.render_text ~show_suppressed report);
       Option.iter
         (fun path ->
           let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () -> output_string oc (Lint_report.render_markdown report)))
         gh_summary;
       exit (Lint_report.exit_code report)
     end)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Typed static concurrency and hot-path analysis over the .cmt files dune emits for \
          lib/: non-atomic read-modify-writes (LC001), blocking primitives on hot paths \
          (LC002), un-Atomic shared mutable state (LC003), allocation in manifest hot \
          functions (LC004), Obj.magic (LC005), call-graph verification of baseline owner= \
          single-writer claims (LC006), published-state reads without a dominating pin \
          (LC007), and transitive hot-path allocation accounting (LC008). Exits 0 when clean \
          or fully suppressed by the committed baseline, 1 on active findings, 2 on usage \
          errors or .cmt files that are missing or do not load.")
    Term.(
      ret
        (const lint $ lint_root_arg $ lint_json_arg $ lint_sarif_arg $ lint_baseline_arg
       $ lint_no_baseline_arg $ lint_rules_arg $ lint_self_check_arg $ lint_gh_summary_arg
       $ lint_show_suppressed_arg))

let () =
  let doc = "Workbench for low-contention static dictionaries (SPAA 2010)" in
  let man =
    [
      `S "EXIT CODES";
      `P
        "All commands follow one convention: 0 on success ($(b,lint): no unsuppressed \
         findings; $(b,validate): every artifact passes), 1 when the check itself fails \
         ($(b,lint): active findings; $(b,validate): failed artifacts; $(b,perf diff \
         --fail-on-regression): significant regression), 2 on usage errors or inputs the \
         tool cannot read (bad flags, unparseable sources, malformed baselines).";
    ]
  in
  let code =
    Cmd.eval
      (Cmd.group
         (Cmd.info "lowcon" ~version:"1.0.0" ~doc ~man)
         [
           report_cmd;
           compare_cmd;
           hotspot_cmd;
           profile_cmd;
           monitor_cmd;
           perf_cmd;
           scale_cmd;
           postmortem_cmd;
           validate_cmd;
           lint_cmd;
         ])
  in
  (* cmdliner's cli_error is 124; fold it into the documented usage-error
     code so scripts and CI see the 0/1/2 contract everywhere. *)
  exit (if code = 124 then 2 else code)
