(* The multicore serving engine, end to end:

     dune exec examples/parallel_serving.exe

   [multicore_demo.exe] replays pre-computed probe *plans* against
   atomic counters. This demo goes the rest of the way: the engine in
   [Lc_parallel.Engine] runs the *actual query algorithm* — the same
   [Dict_intf.S] core the sequential experiments use — from m domains at
   once, counting every probe with a per-cell fetch-and-add. A second
   pass turns on the per-cell spinlock cost model, so probes that land
   on the same cell genuinely serialise the way a contended cache line
   does: now the hot-spot column is paid for in wall-clock time, and the
   low-contention dictionary's extra probes per query stop mattering
   because none of them queue. *)

module Rng = Lc_prim.Rng
module Qdist = Lc_cellprobe.Qdist
module Engine = Lc_parallel.Engine

let qpd = 30_000

let run_pass ~cost ~label arms qdist =
  Printf.printf "-- %s --\n" label;
  Printf.printf "%-16s %3s %10s %12s %10s %8s %9s\n" "structure" "m" "kqueries/s" "hottest cell"
    "x flat" "share%" "seconds";
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun domains ->
          let o =
            Engine.run
              (Engine.Config.make ~cost ~domains ~seed:11 ())
              (Engine.Static { inst; qdist; queries_per_domain = qpd })
          in
          let r = o.Engine.result in
          Printf.printf "%-16s %3d %10.0f %12d %10.1f %8.2f %9.3f\n" name domains
            (r.throughput /. 1e3) r.hottest_count (Engine.hotspot_ratio r)
            (100.0 *. r.hottest_share) r.seconds)
        [ 1; 2; 4 ])
    arms;
  print_newline ()

let () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "Serving membership queries from multiple domains against one shared table\n\
     (machine reports %d core(s); per-cell tallies are exact regardless).\n\n"
    cores;
  let rng = Rng.create 7 in
  let universe = 1 lsl 20 in
  let n = 1024 in
  let keys = Lc_workload.Keyset.random rng ~universe ~n in
  let arms =
    [
      ("low-contention", Lc_core.Dictionary.instance (Lc_core.Dictionary.build rng ~universe ~keys));
      ( "fks (no repl.)",
        Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys) );
      ("binary-search", Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys));
    ]
  in
  let qdist = Qdist.uniform ~name:"uniform-positive" keys in
  run_pass ~cost:Engine.Free ~label:"free probes (atomic counting only)" arms qdist;
  run_pass
    ~cost:(Engine.Spinlock { hold = 8 })
    ~label:"spinlock cost model (hold = 8): same-cell probes serialise" arms qdist;
  Printf.printf
    "Reading: 'x flat' is the hottest cell's probe tally over the flat bound q*t/s —\n\
     O(1) for the low-contention dictionary (Theorem 3), Theta(s) for structures with\n\
     an unreplicated shared cell. With the spinlock model, every probe to a hot cell\n\
     waits for the previous one, so fks and binary-search throughput collapses as m\n\
     grows while the low-contention dictionary keeps scaling: the O(1/n) contention\n\
     bound, observed as wall-clock.\n"
