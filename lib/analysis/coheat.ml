(* Cache-line co-heat: how much of the probe traffic lands on cells that
   share a cache line with *other* hot cells. Per-cell tallies are boxed
   [Atomic.t] words, so [line_cells] consecutive cell counters share a
   64-byte line (8 words by default); when two domains hammer distinct
   cells of the same line every increment ping-pongs the line between
   cores even though the cells never logically conflict — classic false
   sharing, invisible in the per-cell histogram.

   The metric: for a cell c with tally k_c on a line with total heat
   H(c), the probability that a uniformly chosen *other* probe of the
   same line precedes/follows one of c's is (H(c) - k_c)/H(c); weighting
   by k_c and normalising by total probes gives

       ratio = sum_c k_c * (H(c) - k_c) / H(c)  /  total

   which is 0 when every line has at most one hot cell (no co-heat) and
   approaches (L-1)/L for perfectly uniform traffic over lines of L
   cells. The ratio is a *diagnostic*, not a proof: high co-heat plus
   degrading throughput-per-domain is the false-sharing signature. *)

type t = {
  line_cells : int;  (* cells per cache line bucket *)
  lines : int;  (* number of buckets *)
  total : int;  (* total probes across all cells *)
  ratio : float;  (* neighbour co-heat ratio in [0, 1) *)
  heats : int array;  (* per-line probe totals, length [lines] *)
  hottest_line : int;  (* index of the hottest line (0 if empty) *)
  hottest_line_heat : int;
  hottest_line_share : float;  (* hottest line heat / total *)
}

let default_line_cells = 8

let of_counts ?(line_cells = default_line_cells) counts =
  if line_cells < 1 then invalid_arg "Coheat.of_counts: line_cells must be >= 1";
  let cells = Array.length counts in
  let lines = (cells + line_cells - 1) / line_cells in
  let heats = Array.make (max lines 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i k ->
      if k < 0 then invalid_arg "Coheat.of_counts: negative count";
      heats.(i / line_cells) <- heats.(i / line_cells) + k;
      total := !total + k)
    counts;
  let co = ref 0.0 in
  Array.iteri
    (fun i k ->
      let h = heats.(i / line_cells) in
      if h > 0 && k > 0 then
        co := !co +. (float_of_int k *. float_of_int (h - k) /. float_of_int h))
    counts;
  let ratio = if !total > 0 then !co /. float_of_int !total else 0.0 in
  let hottest_line = ref 0 in
  Array.iteri (fun i h -> if h > heats.(!hottest_line) then hottest_line := i) heats;
  let hottest_line_heat = heats.(!hottest_line) in
  let hottest_line_share =
    if !total > 0 then float_of_int hottest_line_heat /. float_of_int !total else 0.0
  in
  {
    line_cells;
    lines;
    total = !total;
    ratio;
    heats;
    hottest_line = !hottest_line;
    hottest_line_heat;
    hottest_line_share;
  }

(* Upper bound of the ratio for this line width: uniform traffic over a
   full line scores (L-1)/L. Useful for rendering "x of max". *)
let uniform_bound t = float_of_int (t.line_cells - 1) /. float_of_int t.line_cells
