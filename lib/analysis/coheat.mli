(** Cache-line co-heat diagnostic for per-cell probe tallies.

    Buckets a per-cell count array into cache-line-sized groups
    ([line_cells] consecutive cells, default 8 — one 64-byte line of
    boxed [Atomic.t] words) and reports how much probe traffic shares a
    line with other hot cells. High co-heat means per-cell counters
    that never logically conflict still fight for the same cache line —
    the false-sharing suspect ROADMAP names for the engine's negative
    scaling. *)

type t = {
  line_cells : int;  (** cells per cache-line bucket *)
  lines : int;  (** number of buckets *)
  total : int;  (** total probes across all cells *)
  ratio : float;
      (** neighbour co-heat in [0, 1): 0 = every line has at most one
          hot cell; (line_cells-1)/line_cells = uniform traffic *)
  heats : int array;  (** per-line probe totals *)
  hottest_line : int;
  hottest_line_heat : int;
  hottest_line_share : float;
}

val default_line_cells : int
(** 8 — one 64-byte cache line of boxed words. *)

val of_counts : ?line_cells:int -> int array -> t
(** [of_counts counts] aggregates a per-cell tally array (as returned by
    the engine's [counts] result field) into line buckets. Raises
    [Invalid_argument] on negative counts or [line_cells < 1]. *)

val uniform_bound : t -> float
(** The ratio uniform traffic would score: (line_cells-1)/line_cells. *)
