(* Two-sample significance testing for the perf-trajectory differ.

   Timing samples are small (a handful of trials per config) and not
   normal, so the workhorse is the Mann-Whitney U rank test: exact null
   distribution when the samples are small and tie-free, normal
   approximation with tie correction otherwise. The differ combines the
   test with a confidence-interval overlap check — both must agree
   before a change is called significant. *)

type method_ = Exact | Normal_approx

type mann_whitney = { u : float; p_two_sided : float; method_ : method_ }

(* Ranks of the pooled sample, midranks for ties. Returns the rank sum
   of the first sample and the tie-group sizes (for the variance
   correction). *)
let rank_sum xs ys =
  let n = Array.length xs and m = Array.length ys in
  let pooled = Array.make (n + m) (0.0, false) in
  Array.iteri (fun i x -> pooled.(i) <- (x, true)) xs;
  Array.iteri (fun i y -> pooled.(n + i) <- (y, false)) ys;
  Array.sort (fun (a, _) (b, _) -> compare a b) pooled;
  let r1 = ref 0.0 in
  let ties = ref [] in
  let i = ref 0 in
  while !i < n + m do
    let v = fst pooled.(!i) in
    let j = ref !i in
    while !j < n + m && fst pooled.(!j) = v do
      incr j
    done;
    (* Items !i .. !j-1 share the value; midrank is the average of
       1-based ranks !i+1 .. !j. *)
    let midrank = float_of_int (!i + 1 + !j) /. 2.0 in
    let group = !j - !i in
    if group > 1 then ties := group :: !ties;
    for k = !i to !j - 1 do
      if snd pooled.(k) then r1 := !r1 +. midrank
    done;
    i := !j
  done;
  (!r1, !ties)

let has_ties xs ys =
  let all = Array.append xs ys in
  Array.sort compare all;
  let rec dup i = i < Array.length all - 1 && (all.(i) = all.(i + 1) || dup (i + 1)) in
  dup 0

(* Exact null distribution of U by the standard recurrence: the number
   of arrangements of n first-sample ranks among n+m with statistic u is
   N(u; n, m) = N(u - m; n - 1, m) + N(u; n, m - 1). Memoised bottom-up;
   cost O(n * m^2 * (n + m)), negligible for the sample sizes the exact
   path accepts. *)
let exact_cdf n m =
  let umax = n * m in
  (* table.(i).(j) is the count array over u for samples of size i, j. *)
  let table = Array.init (n + 1) (fun _ -> Array.make (m + 1) [||]) in
  for i = 0 to n do
    for j = 0 to m do
      let counts = Array.make (umax + 1) 0.0 in
      if i = 0 || j = 0 then counts.(0) <- 1.0
      else
        for u = 0 to i * j do
          let a = if u >= j then table.(i - 1).(j).(u - j) else 0.0 in
          let b = table.(i).(j - 1).(u) in
          counts.(u) <- a +. b
        done;
      table.(i).(j) <- counts
    done
  done;
  let counts = table.(n).(m) in
  let total = Array.fold_left ( +. ) 0.0 counts in
  fun u ->
    (* P(U <= u) *)
    let acc = ref 0.0 in
    for v = 0 to min u (n * m) do
      acc := !acc +. counts.(v)
    done;
    !acc /. total

(* Abramowitz & Stegun 7.1.26 erf approximation; |error| < 1.5e-7,
   ample for a 0.05 significance threshold. *)
let std_normal_cdf z =
  let t = 1.0 /. (1.0 +. (0.3275911 *. Float.abs z /. Float.sqrt 2.0)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let erf = 1.0 -. (poly *. Float.exp (-.(z *. z /. 2.0))) in
  if z >= 0.0 then 0.5 *. (1.0 +. erf) else 0.5 *. (1.0 -. erf)

let exact_limit = 400

let mann_whitney_u xs ys =
  let n = Array.length xs and m = Array.length ys in
  if n = 0 || m = 0 then invalid_arg "Sigtest.mann_whitney_u: empty sample";
  let r1, tie_groups = rank_sum xs ys in
  let nf = float_of_int n and mf = float_of_int m in
  let u1 = r1 -. (nf *. (nf +. 1.0) /. 2.0) in
  let u = Float.min u1 ((nf *. mf) -. u1) in
  if (not (has_ties xs ys)) && n * m <= exact_limit then begin
    let cdf = exact_cdf n m in
    (* Two-sided: double the tail at the smaller U. U is integral when
       there are no ties. *)
    let p = 2.0 *. cdf (int_of_float (Float.round u)) in
    { u = u1; p_two_sided = Float.min 1.0 p; method_ = Exact }
  end
  else begin
    let nm = nf +. mf in
    let tie_term =
      List.fold_left
        (fun acc g ->
          let g = float_of_int g in
          acc +. ((g *. g *. g) -. g))
        0.0 tie_groups
    in
    let sigma2 =
      nf *. mf /. 12.0 *. (nm +. 1.0 -. (tie_term /. (nm *. (nm -. 1.0))))
    in
    if sigma2 <= 0.0 then
      (* Every observation identical: no evidence of any difference. *)
      { u = u1; p_two_sided = 1.0; method_ = Normal_approx }
    else begin
      let mu = nf *. mf /. 2.0 in
      (* Continuity correction towards the mean. *)
      let z = (Float.abs (u1 -. mu) -. 0.5) /. Float.sqrt sigma2 in
      let z = Float.max z 0.0 in
      let p = 2.0 *. (1.0 -. std_normal_cdf z) in
      { u = u1; p_two_sided = Float.min 1.0 p; method_ = Normal_approx }
    end
  end

let ci_disjoint ~a:(alo, ahi) ~b:(blo, bhi) =
  if alo > ahi || blo > bhi then invalid_arg "Sigtest.ci_disjoint: interval with lo > hi";
  ahi < blo || bhi < alo
