(** Two-sample significance tests for differential perf analysis.

    The perf differ must answer "did ns/query really change between
    these two artifacts?" from a handful of trials per side. A t-test
    assumes normality that wall-clock timings flout; the Mann-Whitney U
    rank test does not, and for the tiny tie-free samples a perf suite
    produces its {e exact} null distribution is cheap to enumerate — no
    asymptotics at all. The differ pairs the test with a
    confidence-interval overlap check ({!ci_disjoint}); a change is
    flagged only when both agree. *)

type method_ =
  | Exact  (** Null distribution enumerated exactly (no ties, [n*m <= 400]). *)
  | Normal_approx
      (** Normal approximation with tie correction and continuity
          correction. *)

type mann_whitney = {
  u : float;  (** The first sample's U statistic. *)
  p_two_sided : float;  (** Two-sided p-value, in [0, 1]. *)
  method_ : method_;
}

val mann_whitney_u : float array -> float array -> mann_whitney
(** [mann_whitney_u xs ys] tests the null hypothesis that [xs] and [ys]
    are drawn from the same distribution. Ties take midranks; a pooled
    sample with zero rank variance (every value identical — e.g. an
    artifact diffed against itself) reports [p_two_sided = 1.0]. Raises
    on an empty sample. *)

val ci_disjoint : a:float * float -> b:float * float -> bool
(** Whether two [(lo, hi)] intervals do not overlap (sharing an endpoint
    counts as overlap). Raises if an interval has [lo > hi]. *)
