let check_nonempty xs = if Array.length xs = 0 then invalid_arg "Stats: empty sample"

let mean xs =
  check_nonempty xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mu = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = Float.sqrt (variance xs)

let minimum xs =
  check_nonempty xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  check_nonempty xs;
  Array.fold_left Float.max xs.(0) xs

let quantile xs p =
  check_nonempty xs;
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.quantile: p outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = quantile xs 0.5

let describe xs =
  Printf.sprintf "mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g" (mean xs) (stddev xs)
    (minimum xs) (median xs) (maximum xs)

(* Percentile bootstrap of the mean. Resampling with replacement from a
   handful of repeated measurements is the standard treatment when the
   sampling distribution is unknown and skewed (wall-clock timings are
   both); with the small trial counts a perf suite affords, a normal
   interval would lean on an asymptotic it has not earned. *)
let bootstrap_ci ~rng ?(reps = 2000) ?(confidence = 0.95) xs =
  check_nonempty xs;
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Stats.bootstrap_ci: confidence outside (0, 1)";
  let n = Array.length xs in
  if n = 1 then (xs.(0), xs.(0))
  else begin
    let means = Array.make reps 0.0 in
    for r = 0 to reps - 1 do
      let acc = ref 0.0 in
      for _ = 1 to n do
        acc := !acc +. xs.(Lc_prim.Rng.int rng n)
      done;
      means.(r) <- !acc /. float_of_int n
    done;
    let alpha = (1.0 -. confidence) /. 2.0 in
    (quantile means alpha, quantile means (1.0 -. alpha))
  end

let geometric_mean xs =
  check_nonempty xs;
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive entry";
        acc +. Float.log x)
      0.0 xs
  in
  Float.exp (acc /. float_of_int (Array.length xs))
