(** Summary statistics for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean; raises on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (0 for fewer than two samples). *)

val stddev : float array -> float

val minimum : float array -> float
val maximum : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [0, 1], by linear interpolation on the
    sorted data (type-7, the R default). Does not mutate the input. *)

val median : float array -> float

val bootstrap_ci :
  rng:Lc_prim.Rng.t -> ?reps:int -> ?confidence:float -> float array -> float * float
(** [bootstrap_ci ~rng xs] is a percentile-bootstrap confidence interval
    [(lo, hi)] for the mean of [xs]: [reps] (default 2000) resamples
    with replacement, interval at [confidence] (default 0.95).
    Deterministic given [rng]'s state. A single sample yields the
    degenerate interval [(x, x)]; raises on an empty array. *)

val describe : float array -> string
(** One-line [mean/std/min/median/max] rendering. *)

val geometric_mean : float array -> float
(** Requires strictly positive entries. *)
