(* Universal Scalability Law fitting (Gunther): throughput at n domains
   is modelled as

       X(n) = lambda * n / (1 + sigma*(n-1) + kappa*n*(n-1))

   where [lambda] is per-domain capacity at n=1, [sigma] the contention
   (serialisation) coefficient and [kappa] the coherency (crosstalk)
   coefficient. The fit is deterministic: for fixed (sigma, kappa) the
   optimal lambda has a closed form (linear least squares through the
   origin against g(n) = n / denom(n)), so we only search the
   (sigma, kappa) plane, with a multi-resolution grid that shrinks the
   search box around the argmin. No randomness, no NaN escapes: inputs
   that cannot identify the parameters (fewer than three distinct
   domain counts, flat or perfectly linear curves, non-positive or
   non-finite throughputs) are rejected with a diagnostic string. *)

type fit = {
  lambda : float;  (** per-domain capacity at n=1 (queries/s) *)
  sigma : float;  (** contention coefficient, >= 0 *)
  kappa : float;  (** coherency coefficient, >= 0 *)
  r2 : float;  (** coefficient of determination of the fit *)
}

let denom ~sigma ~kappa n =
  let nf = float_of_int n in
  1.0 +. (sigma *. (nf -. 1.0)) +. (kappa *. nf *. (nf -. 1.0))

let predict f n = f.lambda *. float_of_int n /. denom ~sigma:f.sigma ~kappa:f.kappa n

(* Fitted throughput peak: X(n) is maximised at n* = sqrt((1-sigma)/kappa)
   when kappa > 0; with kappa = 0 the curve is monotone (no peak). *)
let peak f =
  if f.kappa > 0.0 && f.sigma < 1.0 then Some (sqrt ((1.0 -. f.sigma) /. f.kappa))
  else None

(* Closed-form lambda for fixed (sigma, kappa): minimise
   sum (y_i - lambda*g_i)^2 with g_i = n_i/denom(n_i), giving
   lambda* = sum(y_i*g_i) / sum(g_i^2). Returns (lambda, sse). *)
let lambda_and_sse pts ~sigma ~kappa =
  let num = ref 0.0 and den = ref 0.0 in
  List.iter
    (fun (n, y) ->
      let g = float_of_int n /. denom ~sigma ~kappa n in
      num := !num +. (y *. g);
      den := !den +. (g *. g))
    pts;
  let lambda = if !den > 0.0 then !num /. !den else 0.0 in
  let sse =
    List.fold_left
      (fun acc (n, y) ->
        let g = float_of_int n /. denom ~sigma ~kappa n in
        let r = y -. (lambda *. g) in
        acc +. (r *. r))
      0.0 pts
  in
  (lambda, sse)

let sigma_max = 4.0
let kappa_max = 2.0
let grid_steps = 24
let refine_rounds = 5

let fit points =
  let pts = List.filter (fun (n, _) -> n >= 1) points in
  if List.length pts <> List.length points then
    Error "usl: domain counts must be >= 1"
  else if List.exists (fun (_, y) -> not (Float.is_finite y)) pts then
    Error "usl: non-finite throughput in input"
  else if List.exists (fun (_, y) -> y <= 0.0) pts then
    Error "usl: non-positive throughput in input"
  else begin
    let distinct = List.sort_uniq compare (List.map fst pts) in
    if List.length distinct < 3 then
      Error
        (Printf.sprintf
           "usl: need >= 3 distinct domain counts to identify (sigma, kappa), got %d"
           (List.length distinct))
    else begin
      let ys = List.map snd pts in
      let ymin = List.fold_left min infinity ys in
      let ymax = List.fold_left max neg_infinity ys in
      if ymax -. ymin <= 1e-9 *. ymax then
        Error "usl: flat throughput curve (same throughput at every domain count); contention parameters are unidentifiable"
      else begin
        (* Perfectly linear through the origin means sigma = kappa = 0
           exactly: the whole (sigma, kappa) neighbourhood of 0 fits
           equally well, so report it as degenerate rather than claiming
           a fitted contention coefficient. *)
        let lin_lambda, lin_sse = lambda_and_sse pts ~sigma:0.0 ~kappa:0.0 in
        let scale =
          List.fold_left (fun acc (_, y) -> acc +. (y *. y)) 0.0 pts
        in
        if lin_lambda > 0.0 && lin_sse <= 1e-12 *. scale then
          Error "usl: throughput is exactly linear in domains (no measurable contention); sigma and kappa are unidentifiable"
        else begin
          let best_sigma = ref 0.0 and best_kappa = ref 0.0 in
          let best_sse = ref infinity and best_lambda = ref 0.0 in
          let slo = ref 0.0 and shi = ref sigma_max in
          let klo = ref 0.0 and khi = ref kappa_max in
          for _round = 1 to refine_rounds do
            let sstep = (!shi -. !slo) /. float_of_int grid_steps in
            let kstep = (!khi -. !klo) /. float_of_int grid_steps in
            for i = 0 to grid_steps do
              for j = 0 to grid_steps do
                let sigma = !slo +. (float_of_int i *. sstep) in
                let kappa = !klo +. (float_of_int j *. kstep) in
                let lambda, sse = lambda_and_sse pts ~sigma ~kappa in
                if sse < !best_sse then begin
                  best_sse := sse;
                  best_sigma := sigma;
                  best_kappa := kappa;
                  best_lambda := lambda
                end
              done
            done;
            (* Shrink the box to +-1.5 grid cells around the argmin,
               clamped to the original bounds. *)
            slo := Float.max 0.0 (!best_sigma -. (1.5 *. sstep));
            shi := Float.min sigma_max (!best_sigma +. (1.5 *. sstep));
            klo := Float.max 0.0 (!best_kappa -. (1.5 *. kstep));
            khi := Float.min kappa_max (!best_kappa +. (1.5 *. kstep))
          done;
          let n = float_of_int (List.length pts) in
          let mean = List.fold_left ( +. ) 0.0 ys /. n in
          let sst =
            List.fold_left (fun acc y -> acc +. ((y -. mean) *. (y -. mean))) 0.0 ys
          in
          let r2 = if sst > 0.0 then 1.0 -. (!best_sse /. sst) else 0.0 in
          Ok { lambda = !best_lambda; sigma = !best_sigma; kappa = !best_kappa; r2 }
        end
      end
    end
  end
