(** Universal Scalability Law fitting.

    Fits Gunther's USL — X(n) = lambda*n / (1 + sigma*(n-1) +
    kappa*n*(n-1)) — to a measured throughput-vs-domains curve. [sigma]
    is the contention (serialisation) coefficient the paper's
    replication argument is supposed to shrink; [kappa] captures
    coherency crosstalk (the false-sharing signature: throughput that
    *decreases* past its peak). The fitter is deterministic: closed-form
    lambda per candidate, multi-resolution grid search over
    (sigma, kappa) in [0,4] x [0,2]. *)

type fit = {
  lambda : float;  (** per-domain capacity at n=1 (queries/s) *)
  sigma : float;  (** contention coefficient, >= 0 *)
  kappa : float;  (** coherency coefficient, >= 0 *)
  r2 : float;  (** coefficient of determination vs the mean model *)
}

val fit : (int * float) list -> (fit, string) result
(** [fit points] fits the USL to [(domains, throughput)] samples.
    Degenerate inputs are rejected with a human-readable reason instead
    of producing NaN: fewer than three distinct domain counts, any
    non-finite or non-positive throughput, a flat curve (identical
    throughput everywhere), or a perfectly linear curve (sigma and kappa
    indistinguishable from zero). *)

val predict : fit -> int -> float
(** [predict f n] evaluates the fitted curve at [n] domains. *)

val peak : fit -> float option
(** Domain count maximising the fitted curve: sqrt((1-sigma)/kappa) when
    [kappa > 0] (and [sigma < 1]); [None] for monotone fits. *)
