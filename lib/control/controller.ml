module Heavy = Lc_obs.Heavy
module Journal = Lc_obs.Journal

type decision = {
  d_id : int;
  d_window : int;
  d_ratio : float;
  d_cell : int;
  d_count : int;
  d_err : int;
  d_score : int;
  d_action : [ `Raise | `Lower ];
  d_old_boost : int;
  d_new_boost : int;
  d_cooldown : int;
}

(* Observing-domain-owned state (single writer: the monitor domain calls
   [observe]); the scrape-side accessors read [decisions_rev] and the
   scalars racily, which is safe for the same reason journal dumps are —
   immutable cons cells behind one mutable head. *)
type t = {
  policy : Policy.t;
  c_space : int;
  c_max_probes : int;
  base : int;
  journal : (Journal.t * int) option;
  mutable actuate : (id:int -> boost:int -> unit) option;
  mutable applied : (unit -> int) option;
  mutable prev_top : (int * (int * int)) list;  (* cell -> (estimate, err) *)
  mutable decisions_rev : decision list;
  mutable n_decisions : int;
  mutable n_windows : int;
  mutable c_last_ratio : float;
}

let create ?policy ?journal ~space ~max_probes ~boost () =
  if space <= 0 || max_probes <= 0 then
    invalid_arg "Controller.create: space and max_probes must be positive";
  {
    policy = Policy.create ?config:policy ~boost ();
    c_space = space;
    c_max_probes = max_probes;
    base = boost;
    journal;
    actuate = None;
    applied = None;
    prev_top = [];
    decisions_rev = [];
    n_decisions = 0;
    n_windows = 0;
    c_last_ratio = 0.0;
  }

let set_actuator t f = t.actuate <- Some f
let set_applied_reader t f = t.applied <- Some f

(* The hottest cell by *windowed* tally. A space-saving counter
   increments exactly while its cell stays resident, and [err] is
   frozen at entry — so when a cell appears in both snapshots with the
   same [err], the count delta is the window's tally exactly. On entry
   or re-entry ([err] changed) only the guaranteed lower bound
   [count - err] minus the previous estimate is available; under churn
   that is near zero, which is correct — a cell that cannot hold a
   sketch slot is not the contention story of the window. *)
let windowed_evidence prev top =
  List.fold_left
    (fun acc (e : Heavy.entry) ->
      let w =
        match List.assoc_opt e.item prev with
        | Some (pc, pe) when pe = e.err -> max 0 (e.count - pc)
        | Some (pc, _) -> max 0 (e.count - e.err - pc)
        | None -> max 0 (e.count - e.err)
      in
      match acc with
      | Some (_, best, _, _) when best >= w -> acc
      | _ -> Some (e.item, w, e.count, e.err))
    None top

let observe t ~window ~queries top =
  t.n_windows <- t.n_windows + 1;
  let cell, wtally, count, err =
    match windowed_evidence t.prev_top top with
    | Some (c, w, cnt, e) -> (c, w, cnt, e)
    | None -> (-1, 0, 0, 0)
  in
  t.prev_top <- List.map (fun (e : Heavy.entry) -> (e.item, (e.count, e.err))) top;
  let flat =
    float_of_int queries *. float_of_int t.c_max_probes /. float_of_int t.c_space
  in
  let ratio = if flat > 0.0 then float_of_int wtally /. flat else 0.0 in
  t.c_last_ratio <- ratio;
  match Policy.step t.policy ~ratio with
  | Policy.Hold -> None
  | Policy.Raise { from_boost; to_boost; score }
  | Policy.Lower { from_boost; to_boost; score } ->
    let action = if to_boost > from_boost then `Raise else `Lower in
    let id = t.n_decisions + 1 in
    let d =
      {
        d_id = id;
        d_window = window;
        d_ratio = ratio;
        d_cell = cell;
        d_count = count;
        d_err = err;
        d_score = score;
        d_action = action;
        d_old_boost = from_boost;
        d_new_boost = to_boost;
        d_cooldown = Policy.cooldown t.policy;
      }
    in
    t.decisions_rev <- d :: t.decisions_rev;
    t.n_decisions <- id;
    (match t.journal with
    | None -> ()
    | Some (j, writer) ->
      Journal.record j ~writer
        (Journal.Control_decision
           {
             id;
             window;
             ratio;
             cell;
             count;
             err;
             score;
             action;
             old_boost = from_boost;
             new_boost = to_boost;
             cooldown = d.d_cooldown;
           }));
    (match t.actuate with None -> () | Some f -> f ~id ~boost:to_boost);
    Some d

let decisions t = List.rev t.decisions_rev
let decisions_total t = t.n_decisions
let windows_seen t = t.n_windows
let last_ratio t = t.c_last_ratio
let score t = Policy.score t.policy
let cooldown t = Policy.cooldown t.policy
let target_boost t = Policy.boost t.policy
let applied_boost t = match t.applied with Some f -> f () | None -> Policy.boost t.policy
let base_boost t = t.base
let policy_config t = Policy.config t.policy
let space t = t.c_space
let max_probes t = t.c_max_probes
