(** The replication controller: sense → decide → act, every step
    telemetry.

    One controller rides a monitored serving run. The monitor domain
    feeds it ({!observe}) each cut window together with the merged
    {!Lc_obs.Heavy} sketch; the controller derives a {e windowed}
    contention ratio (see below), steps the {!Policy} hysteresis, and on
    a trip records a {!decision} on its own flight-recorder ring and
    fires the actuator — for the engine's dynamic path, an
    [Epoch.request_boost] the builder picks up at its next publication,
    so actuation never blocks a reader.

    {b The windowed signal.} The window ring's own [hotspot_ratio] is
    cumulative — after a long flat phase it responds to a flash crowd
    only asymptotically, far too slowly to drive recovery. The
    controller instead diffs successive merged sketches: a space-saving
    counter increments exactly while its cell stays resident (its [err]
    is frozen at entry), so a cell present in both snapshots with
    unchanged [err] contributes its exact count delta; cells that
    entered or re-entered contribute only the guaranteed lower bound
    [count - err] minus their previous estimate, which under churn is
    near zero — by design, since a cell that cannot hold a sketch slot
    is not the window's contention story. The maximum over cells,
    divided by the window's flat bound [queries * max_probes / space]
    (the same frozen space/probe budget the window recorder normalises
    by), is the windowed ratio. It responds within two windows of a
    skew shift (one for the hot cell to take a slot, one resident
    delta), and it {e falls} as actuated replication spreads the hot
    key across replicas — closing the loop.

    {b Threading.} All mutable state is owned by the observing (monitor)
    domain; {!decisions}, the scalar accessors and {!observe}'s results
    may be read concurrently by a scrape domain and tolerate the same
    benign races as the flight recorder (immutable record lists behind
    one mutable head — a reader sees a complete old-or-new list, never a
    torn one). *)

type decision = {
  d_id : int;  (** Monotone decision number, from 1. *)
  d_window : int;  (** Index of the window that tripped the policy. *)
  d_ratio : float;  (** The windowed contention ratio at the trip. *)
  d_cell : int;
      (** The hottest windowed cell — the sketch evidence ([-1] when the
          sketch was empty). *)
  d_count : int;  (** That cell's cumulative sketched count... *)
  d_err : int;  (** ...and its error bracket: true tally in [count ± err]. *)
  d_score : int;  (** The hysteresis score that tripped. *)
  d_action : [ `Raise | `Lower ];
  d_old_boost : int;
  d_new_boost : int;
  d_cooldown : int;  (** Cooldown windows entered after the action. *)
}
(** One actuation decision — exactly what is journaled as
    [Control_decision] and served in [/control.json]; the three views
    reconcile field for field. *)

type t

val create :
  ?policy:Policy.config ->
  ?journal:Lc_obs.Journal.t * int ->
  space:int ->
  max_probes:int ->
  boost:int ->
  unit ->
  t
(** A controller for one run. [space] and [max_probes] fix the flat
    bound the windowed ratio is normalised by (use the same budget the
    monitor's window recorder was created with); [boost] is the
    structure's create-time replication boost; [journal], when given, is
    the flight recorder and the ring index this controller records its
    decisions on (by convention [domains + 3]). *)

val set_actuator : t -> (id:int -> boost:int -> unit) -> unit
(** Install the actuation callback, fired once per non-hold decision
    with the decision id and the new target boost. The engine wires
    [Epoch.request_boost] in here. Install before serving starts. *)

val set_applied_reader : t -> (unit -> int) -> unit
(** Install the getter for the boost the builder has actually applied
    (the engine wires [Epoch.applied_boost]); used only for telemetry
    ([/control.json], gauges). Defaults to the policy's own target. *)

val observe :
  t -> window:int -> queries:int -> Lc_obs.Heavy.entry list -> decision option
(** Account one cut window: derive the windowed ratio from the window's
    merged top-k entries (pass the cut entry's own [top_cells], so the
    journaled evidence reconciles exactly with the window's sketch
    snapshot), step the policy, and on a trip journal + actuate + return
    the decision. Call from the observing domain only, once per
    window. *)

(** {2 Telemetry accessors} (safe from any domain, racy-read tolerant) *)

val decisions : t -> decision list
(** Every decision so far, oldest first. *)

val decisions_total : t -> int

val windows_seen : t -> int
val last_ratio : t -> float
(** The windowed ratio of the most recent {!observe}. *)

val score : t -> int
val cooldown : t -> int

val target_boost : t -> int
(** The policy's current target. *)

val applied_boost : t -> int
(** What the actuator has actually applied (via the applied reader). *)

val base_boost : t -> int
(** The create-time boost. *)

val policy_config : t -> Policy.config
val space : t -> int
val max_probes : t -> int
