type config = {
  high_ratio : float;
  low_ratio : float;
  hot_contrib : int;
  cool_contrib : int;
  high_threshold : int;
  low_threshold : int;
  cooldown_windows : int;
  min_boost : int;
  max_boost : int;
  step : int;
}

(* The lock_statistics constants, kept asymmetric on purpose: 250 per
   contended event against ±1000 trip points means four bad windows
   trip a raise, while quiet windows bleed only 25 — a decay step every
   forty. The asymmetry is load-bearing, not conservatism: once
   replication splits a hot cell's traffic [step] ways, each replica's
   share can fall below the sketch's retention floor (about 1/k of the
   probe stream), where a genuinely quiet stream and a successfully
   suppressed crowd are indistinguishable. The only safe decay under
   that floor is a slow probe: lower rarely, and let the fast raise
   path re-absorb the crowd within a few windows if the lowering
   flares. The ratio band must also be multiplicatively wider than the
   boost step (8.0 / 1.5 > 4), or no stable boost exists inside it. *)
let default =
  {
    high_ratio = 8.0;
    low_ratio = 1.5;
    hot_contrib = 250;
    cool_contrib = 25;
    high_threshold = 1000;
    low_threshold = -1000;
    cooldown_windows = 2;
    min_boost = 1;
    max_boost = 4096;
    step = 4;
  }

type action =
  | Raise of { from_boost : int; to_boost : int; score : int }
  | Lower of { from_boost : int; to_boost : int; score : int }
  | Hold

type t = {
  c : config;
  mutable sc : int;
  mutable cd : int;
  mutable b : int;
}

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let create ?(config = default) ~boost () =
  let c = config in
  if not (is_power_of_two c.min_boost && is_power_of_two c.max_boost) then
    invalid_arg "Policy.create: min/max boost must be powers of two";
  if c.min_boost > c.max_boost then invalid_arg "Policy.create: min_boost > max_boost";
  if not (is_power_of_two c.step && c.step > 1) then
    invalid_arg "Policy.create: step must be a power of two > 1";
  if c.hot_contrib <= 0 || c.cool_contrib <= 0 then
    invalid_arg "Policy.create: contributions must be positive";
  if c.high_threshold <= 0 || c.low_threshold >= 0 then
    invalid_arg "Policy.create: thresholds must straddle zero";
  if c.low_ratio < 0.0 || c.high_ratio <= c.low_ratio then
    invalid_arg "Policy.create: need 0 <= low_ratio < high_ratio";
  if not (is_power_of_two boost) then
    invalid_arg "Policy.create: boost must be a power of two";
  { c; sc = 0; cd = 0; b = min c.max_boost (max c.min_boost boost) }

let step t ~ratio =
  let c = t.c in
  (* Sense: saturating score accumulation, dead band between the
     ratios. *)
  if ratio >= c.high_ratio then t.sc <- min c.high_threshold (t.sc + c.hot_contrib)
  else if ratio <= c.low_ratio then t.sc <- max c.low_threshold (t.sc - c.cool_contrib);
  (* Decide: cooldown absorbs trips; a trip resets score and re-arms the
     cooldown, so actions are provably >= cooldown_windows + 1 apart. *)
  if t.cd > 0 then begin
    t.cd <- t.cd - 1;
    Hold
  end
  else if t.sc >= c.high_threshold && t.b < c.max_boost then begin
    let from_boost = t.b in
    let score = t.sc in
    t.b <- min c.max_boost (t.b * c.step);
    t.sc <- 0;
    t.cd <- c.cooldown_windows;
    Raise { from_boost; to_boost = t.b; score }
  end
  else if t.sc <= c.low_threshold && t.b > c.min_boost then begin
    let from_boost = t.b in
    let score = t.sc in
    t.b <- max c.min_boost (t.b / c.step);
    t.sc <- 0;
    t.cd <- c.cooldown_windows;
    Lower { from_boost; to_boost = t.b; score }
  end
  else Hold

let score t = t.sc
let cooldown t = t.cd
let boost t = t.b
let config t = t.c
