(** The hysteresis policy: a pure, sequential state machine deciding
    when replication should move.

    The idiom is ported from the contention-adaptive trees'
    [lock_statistics] (HIGH_CONT/LOW_CONT thresholds driving split/join)
    — from locks to replica counts. A per-component contention {e score}
    accumulates every window: a {e hot} window (windowed contention
    ratio at or above [high_ratio]) adds [hot_contrib], a {e cool} one
    (ratio at or below [low_ratio]) subtracts [cool_contrib], and the
    score saturates at the trip thresholds. When the score reaches
    [high_threshold] the policy raises the replication boost one
    multiplicative [step]; at [low_threshold] it lowers one step; either
    action resets the score and starts a [cooldown_windows]-window hold
    during which no further action fires, so a flapping signal cannot
    make the boost oscillate (asymmetric contributions give the same
    flap-absorbing bias as the lock statistics' 250/1 split).

    The module is deliberately free of domains, clocks and telemetry:
    one {!step} per window, everything else is the caller's. That is
    what makes the no-oscillation and decay properties unit-testable. *)

type config = {
  high_ratio : float;
      (** A window whose contention ratio is >= this is {e hot}. *)
  low_ratio : float;
      (** A window whose ratio is <= this is {e cool}; between the two
          the score holds (the hysteresis dead band). *)
  hot_contrib : int;  (** Score added per hot window. *)
  cool_contrib : int;  (** Score subtracted per cool window. *)
  high_threshold : int;  (** Raise when the score reaches this. *)
  low_threshold : int;
      (** Lower when the score falls to this (negative). *)
  cooldown_windows : int;
      (** Windows to hold after any action before the next may fire. *)
  min_boost : int;  (** Floor (power of two); decay stops here. *)
  max_boost : int;  (** Ceiling (power of two); raises stop here. *)
  step : int;
      (** Multiplicative boost step per action (power of two > 1). *)
}

val default : config
(** [high_ratio = 4.0], [low_ratio = 1.5], [hot_contrib = 250],
    [cool_contrib = 125], thresholds [±1000] (so sustained heat trips in
    4 windows, sustained cool decays in 8), [cooldown_windows = 2],
    boost in [1, 4096] stepping by [8]. *)

type action =
  | Raise of { from_boost : int; to_boost : int; score : int }
      (** The score reached [high_threshold] at value [score]. *)
  | Lower of { from_boost : int; to_boost : int; score : int }
      (** The score fell to [low_threshold] at value [score]. *)
  | Hold  (** No threshold tripped, or the policy is cooling down. *)

type t
(** Mutable policy state: score, cooldown counter, current target
    boost. Sequential — one caller. *)

val create : ?config:config -> boost:int -> unit -> t
(** Fresh state at target [boost] (clamped into
    [[min_boost, max_boost]]), score 0, no cooldown. Raises
    [Invalid_argument] on a malformed [config] (non-power-of-two
    boosts/step, inverted ratios or thresholds, non-positive
    contributions). *)

val step : t -> ratio:float -> action
(** Account one window's contention ratio and return the decision. At
    most one non-[Hold] action per call; consecutive non-[Hold] actions
    are always at least [cooldown_windows + 1] calls apart. *)

val score : t -> int
val cooldown : t -> int
(** Windows of hold remaining (0 when armed). *)

val boost : t -> int
(** The current target boost. *)

val config : t -> config
