type t = Structure.t

exception Build_failed = Structure.Build_failed

let build ?d ?delta ?c ?alpha ?beta ?max_trials ?obs rng ~universe ~keys =
  let params = Params.make ?d ?delta ?c ?alpha ?beta ~universe ~n:(Array.length keys) () in
  Structure.build ?max_trials ?obs rng params ~keys

let of_structure s = s

let mem t rng x = Query.mem t rng x
let params (t : t) = t.params
let structure t = t
let space (t : t) = Lc_cellprobe.Table.size t.table
let max_probes t = Query.max_probes t
let build_trials (t : t) = t.trials
let spec t x = Query.spec t x

let core (t : t) : (module Lc_dict.Dict_intf.S) =
  (module struct
    let name = "low-contention"
    let table = t.table
    let space = space t
    let max_probes = max_probes t
    let mem ~probe rng x = Query.mem_probe t ~probe rng x
    let spec x = spec t x
  end)

let instance t = Lc_dict.Instance.of_core (core t)

let verify t = Verify.check t
