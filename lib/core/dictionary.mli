(** Public facade: the low-contention static dictionary.

    This is the API a downstream user sees — Theorem 3 as a library. For
    the membership problem on [n] keys from a universe of size [N], and
    query distributions uniform on positives and uniform on negatives, it
    provides an [(O(n), b, O(1), O(1/n))]-balanced cell-probing scheme:

    - space: [O(n)] cells of [b = Theta(log N)] bits ({!space});
    - time: at most [2d + rho + 4 = O(1)] probes per query
      ({!max_probes});
    - contention: [O(1/n)] expected probes per cell per query
      (measured by experiments T1/T2; the guarantee holds for uniform
      positive / uniform negative query distributions);
    - construction: expected [O(n)] time ({!build}).

    {[
      let rng = Lc_prim.Rng.create 42 in
      let keys = [| 3; 14; 15; 92; 65; 35 |] in
      let dict = Dictionary.build rng ~universe:1024 ~keys in
      assert (Dictionary.mem dict rng 92);
      assert (not (Dictionary.mem dict rng 4))
    ]} *)

type t

exception Build_failed of { stage : string; trials : int; detail : string }
(** An alias for {!Structure.Build_failed} (the same exception
    constructor, rebound), raised by {!build} when rejection sampling
    exhausts [max_trials];
    carries the failing stage, the trials consumed, and the instance
    parameters. *)

val build :
  ?d:int ->
  ?delta:float ->
  ?c:float ->
  ?alpha:float ->
  ?beta:int ->
  ?max_trials:int ->
  ?obs:Lc_obs.Obs.t ->
  Lc_prim.Rng.t ->
  universe:int ->
  keys:int array ->
  t
(** [build rng ~universe ~keys] derives parameters
    ({!Params.make}) and runs the Section 2.2 construction. Keys must be
    distinct and in [0, universe). Expected O(n) time.
    Raises [Invalid_argument] on bad inputs and {!Build_failed} (with
    stage and trial diagnostics) if rejection sampling exhausts
    [max_trials].

    [obs] wires the construction stages into the observability layer —
    spans for [P(S)] sampling / GBAS layout / per-bucket perfect hashing
    / row writing, plus rejection-reason counters; see
    {!Structure.build}. Absent (the default) means no telemetry work. *)

val of_structure : Structure.t -> t
(** Wrap an already-built structure (used by experiments that need the
    internals too). *)

val mem : t -> Lc_prim.Rng.t -> int -> bool
(** [mem t rng x] answers the membership query; [rng] only balances
    probes across replicas, so the answer is deterministic. *)

val params : t -> Params.t
val structure : t -> Structure.t

val space : t -> int
(** Total cells. *)

val max_probes : t -> int

val build_trials : t -> int
(** [P(S)] rejection-sampling trials (experiment T6). *)

val spec : t -> int -> Lc_cellprobe.Spec.t
(** Exact probe plan for a query. *)

val core : t -> (module Lc_dict.Dict_intf.S)
(** The dictionary as a first-class {!Lc_dict.Dict_intf.S} core — the
    reentrant query path, parameterised by the probing function. *)

val instance : t -> Lc_dict.Instance.t
(** The uniform experiment-facing instance ({!Lc_dict.Instance.of_core},
    instrumented mode). *)

val verify : t -> (unit, string) result
(** Full structural invariant check ({!Verify.check}). *)
