module Rng = Lc_prim.Rng
module Modarith = Lc_prim.Modarith
module Poly_hash = Lc_hash.Poly_hash
module Dm_family = Lc_hash.Dm_family
module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec

let mem_probe (t : Structure.t) ~(probe : Lc_dict.Dict_intf.probe) rng x =
  let p = t.params in
  if x < 0 || x >= p.universe then invalid_arg "Query.mem: key outside universe";
  let step = ref 0 in
  let probe j =
    let v = probe ~step:!step j in
    incr step;
    v
  in
  let probe_rc ~row j = probe (Layout.cell p ~row j) in
  (* Phase 1: hash-function words. *)
  let f_coeffs = Array.init p.d (fun i -> probe_rc ~row:(Layout.f_row p i) (Rng.int rng p.s)) in
  let g_coeffs = Array.init p.d (fun i -> probe_rc ~row:(Layout.g_row p i) (Rng.int rng p.s)) in
  let f = Poly_hash.of_coeffs ~p:p.p ~m:p.s f_coeffs in
  let g = Poly_hash.of_coeffs ~p:p.p ~m:p.r g_coeffs in
  let gx = Poly_hash.eval g x in
  let z_gx = probe_rc ~row:(Layout.z_row p) (gx + (p.r * Rng.int rng (Layout.z_replicas p gx))) in
  let hx = (Poly_hash.eval f x + z_gx) mod p.s in
  let h'x = hx mod p.m in
  (* Phase 2: group base address and histogram. *)
  let replica () = h'x + (p.m * Rng.int rng p.g_per_group) in
  let gbas = probe_rc ~row:(Layout.gbas_row p) (replica ()) in
  let words = Array.init p.rho (fun w -> probe_rc ~row:(Layout.hist_row p w) (replica ())) in
  let loads = Histogram.decode p words in
  let k = Layout.index_in_group p hx in
  let off_rel, len = Histogram.slot_range p ~loads ~k in
  (* Phase 3: empty bucket means a definite negative. *)
  if len = 0 then false
  else begin
    (* Phase 4: perfect hash within the bucket. *)
    let start = gbas + off_rel in
    let kstar = probe_rc ~row:(Layout.phash_row p) (start + Rng.int rng len) in
    let slot = Modarith.mul p.p kstar x mod len in
    probe_rc ~row:(Layout.data_row p) (start + slot) = x
  end

let mem (t : Structure.t) rng x =
  mem_probe t ~probe:(fun ~step j -> Table.read t.table ~step j) rng x

let spec (t : Structure.t) x =
  let p = t.params in
  let base ~row j = Layout.cell p ~row j in
  let full_row row = Spec.Stride { base = base ~row 0; stride = 1; count = p.s } in
  let coeff_steps =
    Array.init (2 * p.d) (fun i ->
        if i < p.d then full_row (Layout.f_row p i) else full_row (Layout.g_row p (i - p.d)))
  in
  let gx = Poly_hash.eval (Dm_family.g t.top) x in
  let z_step =
    Spec.Stride
      { base = base ~row:(Layout.z_row p) gx; stride = p.r; count = Layout.z_replicas p gx }
  in
  let hx = Structure.bucket_of t x in
  let h'x = hx mod p.m in
  let group_step row =
    Spec.Stride { base = base ~row h'x; stride = p.m; count = p.g_per_group }
  in
  let gbas_step = group_step (Layout.gbas_row p) in
  let hist_steps = Array.init p.rho (fun w -> group_step (Layout.hist_row p w)) in
  let head =
    Array.concat [ coeff_steps; [| z_step; gbas_step |]; hist_steps ]
  in
  let l = t.loads.(hx) in
  if l = 0 then head
  else begin
    let len = l * l in
    let start = t.starts.(hx) in
    let kstar = t.multipliers.(hx) in
    let slot = Lc_prim.Modarith.mul p.p kstar x mod len in
    Array.append head
      [|
        Spec.Stride { base = base ~row:(Layout.phash_row p) start; stride = 1; count = len };
        Spec.Point (base ~row:(Layout.data_row p) (start + slot));
      |]
  end

let max_probes (t : Structure.t) = Params.max_probes t.params
