(** The four-phase query algorithm of Section 2.3.

    [mem] answers a membership query using only table probes and the
    problem-level parameters; its randomness is used solely to pick
    replicas, never to decide anything (Definition 12's restriction).
    Phases:

    + read the [2d] coefficient words of [f] and [g], each from a
      uniformly random cell of its row, and one replica of [z_{g(x)}];
      compute [h(x)] and [h'(x) = h(x) mod m];
    + read [GBAS(h'(x))] and the [rho] histogram words of group [h'(x)],
      each from a uniformly random replica; decode the group's loads and
      locate bucket [h(x)]'s slot range;
    + if the range is empty, answer negative;
    + otherwise read the bucket's perfect-hash word from a uniformly
      random cell of the range, and compare the key at the hashed slot.

    [spec] returns the exact distribution of those probes (using the
    builder's retained metadata), which {!Lc_cellprobe.Contention.exact}
    turns into contention numbers. *)

val mem_probe : Structure.t -> probe:Lc_dict.Dict_intf.probe -> Lc_prim.Rng.t -> int -> bool
(** [mem_probe t ~probe rng x] answers "is [x] in [S]?" with at most
    [2d + rho + 4] probes, each performed through [probe] — the
    reentrant core behind every probing mode of
    {!Lc_dict.Instance}. *)

val mem : Structure.t -> Lc_prim.Rng.t -> int -> bool
(** [mem t rng x] is [mem_probe] with instrumented probes (counted by
    the table's mutable counters; sequential use only). *)

val spec : Structure.t -> int -> Lc_cellprobe.Spec.t
(** [spec t x] is the exact probe plan for query [x]. *)

val max_probes : Structure.t -> int
