module Rng = Lc_prim.Rng
module Poly_hash = Lc_hash.Poly_hash
module Dm_family = Lc_hash.Dm_family
module Perfect = Lc_hash.Perfect
module Loads = Lc_hash.Loads
module Table = Lc_cellprobe.Table

exception Build_failed of { stage : string; trials : int; detail : string }

let () =
  Printexc.register_printer (function
    | Build_failed { stage; trials; detail } ->
      Some
        (Printf.sprintf "Lc_core.Structure.Build_failed(stage = %s, trials = %d): %s" stage
           trials detail)
    | _ -> None)

type t = {
  params : Params.t;
  table : Table.t;
  top : Dm_family.t;
  loads : int array;
  gbas : int array;
  starts : int array;
  multipliers : int array;
  trials : int;
  perfect_trials_total : int;
  keys : int array;
}

(* The three sub-checks of P(S), in the order Section 2.2 states them;
   the names are the stage vocabulary [Build_failed] and the build-stage
   spans share: the g-bucket cap, the group cap on h' = h mod m, and the
   FKS sum-of-squares condition on h. *)
type ps_verdict = Ps_ok | Ps_reject_g | Ps_reject_group | Ps_reject_fks

let property_p_verdict (p : Params.t) ~g ~h ~keys =
  if Dm_family.range h <> p.s then invalid_arg "Structure.property_p: h must map to [s]";
  let g_loads = Loads.loads ~hash:(Poly_hash.eval g) ~buckets:p.r keys in
  if Loads.max_load g_loads > p.cap_g then Ps_reject_g
  else begin
    let h' = Dm_family.reduce h p.m in
    let group_loads = Loads.loads ~hash:(Dm_family.eval h') ~buckets:p.m keys in
    if Loads.max_load group_loads > p.cap_group then Ps_reject_group
    else begin
      let bucket_loads = Loads.loads ~hash:(Dm_family.eval h) ~buckets:p.s keys in
      if Loads.sum_squares bucket_loads > p.s then Ps_reject_fks else Ps_ok
    end
  end

let property_p p ~g ~h ~keys = property_p_verdict p ~g ~h ~keys = Ps_ok

let check_keys (p : Params.t) keys =
  if Array.length keys <> p.n then
    invalid_arg
      (Printf.sprintf "Structure.build: %d keys but params.n = %d" (Array.length keys) p.n);
  let seen = Hashtbl.create (2 * p.n) in
  Array.iter
    (fun x ->
      if x < 0 || x >= p.universe then invalid_arg "Structure.build: key outside universe";
      if Hashtbl.mem seen x then invalid_arg "Structure.build: duplicate key";
      Hashtbl.add seen x ())
    keys

let sample_hashes rng (p : Params.t) =
  let f = Poly_hash.create rng ~d:p.d ~p:p.p ~m:p.s in
  let g = Poly_hash.create rng ~d:p.d ~p:p.p ~m:p.r in
  let z = Array.init p.r (fun _ -> Rng.int rng p.s) in
  (g, Dm_family.of_parts ~f ~g ~z)

(* Build-stage telemetry: a span per construction stage on the
   orchestrator timeline (tid 0, shard 0) plus counters for the P(S)
   rejection reasons and the per-bucket perfect-hash trials. [None]
   means zero telemetry work, as everywhere else. *)
type build_obs = {
  tl : Lc_obs.Span.timeline;
  shard : Lc_obs.Metrics.shard;
  trials_c : Lc_obs.Metrics.counter;
  reject_g_c : Lc_obs.Metrics.counter;
  reject_group_c : Lc_obs.Metrics.counter;
  reject_fks_c : Lc_obs.Metrics.counter;
  perfect_c : Lc_obs.Metrics.counter;
}

let build_obs_of (o : Lc_obs.Obs.t) =
  let c help name = Lc_obs.Metrics.counter o.metrics ~help name in
  let trials_c = c "P(S) rejection-sampling trials" "build_ps_trials_total" in
  let reject_g_c = c "P(S) rejections: g-bucket cap exceeded" "build_ps_rejects_g_total" in
  let reject_group_c =
    c "P(S) rejections: group cap on h' exceeded" "build_ps_rejects_group_total"
  in
  let reject_fks_c =
    c "P(S) rejections: FKS sum-of-squares condition failed" "build_ps_rejects_fks_total"
  in
  let perfect_c = c "Per-bucket perfect-hash trials" "build_perfect_trials_total" in
  {
    tl = Lc_obs.Obs.timeline o ~tid:0;
    shard = Lc_obs.Obs.shard o ~domain:0;
    trials_c;
    reject_g_c;
    reject_group_c;
    reject_fks_c;
    perfect_c;
  }

let build ?(max_trials = 10_000) ?obs rng (p : Params.t) ~keys =
  check_keys p keys;
  let bo = Option.map build_obs_of obs in
  let span name f =
    match bo with None -> f () | Some bo -> Lc_obs.Span.with_span bo.tl name f
  in
  span "build" @@ fun () ->
  (* Rejection-sample (g, h', h) until P(S). *)
  let rec search trials =
    if trials > max_trials then
      raise
        (Build_failed
           {
             stage = "P(S) rejection sampling";
             trials = max_trials;
             detail =
               Printf.sprintf
                 "property P(S) failed %d consecutive trials (n = %d, s = %d, r = %d, m = %d); \
                  raise max_trials or revisit the parameters"
                 max_trials p.n p.s p.r p.m;
           });
    let g, h = sample_hashes rng p in
    match bo with
    | None -> if property_p p ~g ~h ~keys then (h, trials) else search (trials + 1)
    | Some bo -> (
      Lc_obs.Metrics.incr bo.shard bo.trials_c 1;
      match property_p_verdict p ~g ~h ~keys with
      | Ps_ok -> (h, trials)
      | Ps_reject_g ->
        Lc_obs.Metrics.incr bo.shard bo.reject_g_c 1;
        Lc_obs.Span.instant bo.tl "reject:g-cap";
        search (trials + 1)
      | Ps_reject_group ->
        Lc_obs.Metrics.incr bo.shard bo.reject_group_c 1;
        Lc_obs.Span.instant bo.tl "reject:h'-group-cap";
        search (trials + 1)
      | Ps_reject_fks ->
        Lc_obs.Metrics.incr bo.shard bo.reject_fks_c 1;
        Lc_obs.Span.instant bo.tl "reject:fks-sum-squares";
        search (trials + 1))
  in
  let top, trials = span "P(S)-sampling" (fun () -> search 1) in
  let hash x = Dm_family.eval top x in
  let buckets = Loads.bucket_keys ~hash ~buckets:p.s keys in
  let loads = Array.map Array.length buckets in
  (* Group base addresses, cumulative over groups (paper's GBAS). *)
  let group_size i =
    let acc = ref 0 in
    for k = 0 to p.g_per_group - 1 do
      let l = loads.(Layout.bucket_of_group_index p ~group:i k) in
      acc := !acc + (l * l)
    done;
    !acc
  in
  let gbas = Array.make p.m 0 in
  let starts = Array.make p.s 0 in
  span "layout-gbas" (fun () ->
      for i = 1 to p.m - 1 do
        gbas.(i) <- gbas.(i - 1) + group_size (i - 1)
      done;
      (* Absolute slot start per bucket. *)
      for i = 0 to p.m - 1 do
        let off = ref gbas.(i) in
        for k = 0 to p.g_per_group - 1 do
          let bk = Layout.bucket_of_group_index p ~group:i k in
          starts.(bk) <- !off;
          off := !off + (loads.(bk) * loads.(bk))
        done
      done);
  (* Per-bucket perfect hashing. *)
  let multipliers = Array.make p.s 0 in
  let perfect_trials_total = ref 0 in
  span "perfect-hashing" (fun () ->
      Array.iteri
        (fun bk bucket ->
          if Array.length bucket > 0 then begin
            let ph = Perfect.find rng ~p:p.p ~keys:bucket in
            multipliers.(bk) <- Perfect.multiplier ph;
            perfect_trials_total := !perfect_trials_total + Perfect.trials ph
          end)
        buckets;
      match bo with
      | Some bo -> Lc_obs.Metrics.incr bo.shard bo.perfect_c !perfect_trials_total
      | None -> ());
  (* Write all rows. *)
  span "write-rows" @@ fun () ->
  let table = Table.create ~init:(-1) ~cells:(Params.total_cells p) ~bits:p.cell_bits () in
  let set ~row j v = Table.write table (Layout.cell p ~row j) v in
  let fill_row row value =
    for j = 0 to p.s - 1 do
      set ~row j value
    done
  in
  let f_coeffs = Poly_hash.coeffs (Dm_family.f top) in
  let g_coeffs = Poly_hash.coeffs (Dm_family.g top) in
  for i = 0 to p.d - 1 do
    fill_row (Layout.f_row p i) f_coeffs.(i);
    fill_row (Layout.g_row p i) g_coeffs.(i)
  done;
  let z = Dm_family.z top in
  for j = 0 to p.s - 1 do
    set ~row:(Layout.z_row p) j z.(j mod p.r)
  done;
  for j = 0 to p.s - 1 do
    set ~row:(Layout.gbas_row p) j gbas.(j mod p.m)
  done;
  (* Histograms: encode each group's loads once, then replicate. *)
  let group_words =
    Array.init p.m (fun i ->
        let gl =
          Array.init p.g_per_group (fun k -> loads.(Layout.bucket_of_group_index p ~group:i k))
        in
        Histogram.encode p ~loads:gl)
  in
  for w = 0 to p.rho - 1 do
    for j = 0 to p.s - 1 do
      set ~row:(Layout.hist_row p w) j group_words.(j mod p.m).(w)
    done
  done;
  (* Perfect-hash and data rows. *)
  Array.iteri
    (fun bk bucket ->
      let l = loads.(bk) in
      if l > 0 then begin
        let sz = l * l in
        for j = starts.(bk) to starts.(bk) + sz - 1 do
          set ~row:(Layout.phash_row p) j multipliers.(bk)
        done;
        let ph = Perfect.of_multiplier ~p:p.p ~size:sz multipliers.(bk) in
        Array.iter (fun x -> set ~row:(Layout.data_row p) (starts.(bk) + Perfect.eval ph x) x) bucket
      end)
    buckets;
  {
    params = p;
    table;
    top;
    loads;
    gbas;
    starts;
    multipliers;
    trials;
    perfect_trials_total = !perfect_trials_total;
    keys = Array.copy keys;
  }

let bucket_of t x = Dm_family.eval t.top x
let group_of t x = Dm_family.eval t.top x mod t.params.m
