(** Construction of the low-contention dictionary (Section 2.2).

    Given the derived {!Params.t} and a key set [S], the builder:

    + draws [f] uniform in [H^d_s], [g] uniform in [H^d_r] and [z]
      uniform in [[s]^r], forming [h = (f + z_g) mod s] in [R^d_{r,s}]
      and the group map [h' = h mod m] in [R^d_{r,m}];
    + rejects until the property [P(S)] holds — every [g]-bucket load at
      most [cap_g], every group load at most [cap_group], and the FKS
      condition [sum_i l(S,h,i)^2 <= s] (Lemma 9 makes this succeed with
      probability [1/2 - o(1)] per trial, so expected O(1) trials);
    + computes the group base addresses [GBAS], finds a perfect hash for
      every bucket, and writes all [2d + rho + 4] rows.

    The result retains the hash functions and bucket metadata so that
    {!Query.spec} can produce exact probe plans; the query path itself
    ({!Query.mem}) reads everything back out of the cells. *)

exception Build_failed of { stage : string; trials : int; detail : string }
(** Raised when rejection sampling exhausts its budget — statistically
    implausible for valid parameters, so it signals a configuration
    problem rather than bad luck. [stage] names the construction stage
    that gave up (currently always ["P(S) rejection sampling"]),
    [trials] is the number of trials consumed, and [detail] carries the
    instance parameters for the error report. A printer is registered
    with [Printexc]. *)

type t = private {
  params : Params.t;
  table : Lc_cellprobe.Table.t;
  top : Lc_hash.Dm_family.t;  (** [h : U -> [s]], a member of [R^d_{r,s}]. *)
  loads : int array;  (** Bucket loads [l(S, h, i)], length [s]. *)
  gbas : int array;  (** Group base addresses, length [m]. *)
  starts : int array;
      (** Absolute column of each bucket's slot block in the perfect-hash
          and data rows, length [s]. *)
  multipliers : int array;  (** Per-bucket perfect-hash words, length [s]. *)
  trials : int;  (** Rejection-sampling trials until [P(S)] held. *)
  perfect_trials_total : int;
      (** Sum over buckets of per-bucket perfect-hash trials (T6 data). *)
  keys : int array;  (** A defensive copy of [S] for verification. *)
}

val property_p : Params.t -> g:Lc_hash.Poly_hash.t -> h:Lc_hash.Dm_family.t -> keys:int array -> bool
(** The predicate [P(S)] of Section 2.2, checkable in O(n) time; exposed
    for the Lemma 9 experiments (T4). [h] must map to [s]; the group map
    is derived internally as [h mod m]. *)

val build :
  ?max_trials:int -> ?obs:Lc_obs.Obs.t -> Lc_prim.Rng.t -> Params.t -> keys:int array -> t
(** [build rng params ~keys] runs the construction. [max_trials]
    (default 10_000) bounds [P(S)] rejection sampling.
    Raises [Invalid_argument] on duplicate or out-of-universe keys and
    when [Array.length keys <> params.n].

    [obs], when supplied, records the construction on timeline 0 /
    shard 0 of the handle: spans [build] > [P(S)-sampling] /
    [layout-gbas] / [perfect-hashing] / [write-rows], an instant event
    per rejected trial naming the failed sub-check ([reject:g-cap],
    [reject:h'-group-cap], [reject:fks-sum-squares] — the three clauses
    of [P(S)]), and counters [build_ps_trials_total],
    [build_ps_rejects_{g,group,fks}_total],
    [build_perfect_trials_total]. Absent means no telemetry work. *)

val bucket_of : t -> int -> int
(** [bucket_of t x = h(x)], for tests and experiments. *)

val group_of : t -> int -> int
(** [group_of t x = h(x) mod m]. *)
