module Rng = Lc_prim.Rng
module Primes = Lc_prim.Primes
module Poly_hash = Lc_hash.Poly_hash
module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec

type t = {
  table : Table.t;
  p : int;
  d : int;
  size_each : int;
  copies : int;  (* replicas of each coefficient word *)
  h0 : Poly_hash.t;
  h1 : Poly_hash.t;
  rehashes : int;
}

(* Cell layout: 2*d coefficient regions of [copies] cells each
   (h0's coefficients then h1's), then T_0, then T_1. *)
let coeff_base t which i = ((which * t.d) + i) * t.copies
let t0_base t = 2 * t.d * t.copies
let t1_base t = t0_base t + t.size_each

(* In-memory cuckoo insertion; returns slot arrays or None on failure. *)
let try_insert ~h0 ~h1 ~size_each keys =
  let slots = Array.make (2 * size_each) (-1) in
  let limit = (10 * Table.bits_for (Array.length keys + 1)) + 20 in
  let place x =
    let rec walk x side steps =
      if steps > limit then false
      else
        let h = if side = 0 then h0 else h1 in
        let j = (side * size_each) + Poly_hash.eval h x in
        let prev = slots.(j) in
        slots.(j) <- x;
        if prev = -1 then true else walk prev (1 - side) (steps + 1)
    in
    walk x 0 0
  in
  let ok = Array.for_all place keys in
  if ok then Some slots else None

let build ?(replicate = true) ?(d = 3) rng ~universe ~keys =
  if Array.length keys = 0 then invalid_arg "Cuckoo.build: empty key set";
  let seen = Hashtbl.create (Array.length keys) in
  Array.iter
    (fun x ->
      if x < 0 || x >= universe then invalid_arg "Cuckoo.build: key outside universe";
      if Hashtbl.mem seen x then invalid_arg "Cuckoo.build: duplicate key";
      Hashtbl.add seen x ())
    keys;
  let n = Array.length keys in
  let p = Primes.prime_for_universe universe in
  let size_each = max 2 ((13 * n / 10) + 1) in
  let rec attempt rehashes =
    let h0 = Poly_hash.create rng ~d ~p ~m:size_each in
    let h1 = Poly_hash.create rng ~d ~p ~m:size_each in
    match try_insert ~h0 ~h1 ~size_each keys with
    | Some slots -> (h0, h1, slots, rehashes)
    | None -> attempt (rehashes + 1)
  in
  let h0, h1, slots, rehashes = attempt 0 in
  let copies = if replicate then n else 1 in
  let cells = (2 * d * copies) + (2 * size_each) in
  let bits = Table.bits_for (max (universe - 1) (p - 1)) in
  let table = Table.create ~init:(-1) ~cells ~bits () in
  let t = { table; p; d; size_each; copies; h0; h1; rehashes } in
  let write_coeffs which h =
    let cs = Poly_hash.coeffs h in
    Array.iteri
      (fun i c ->
        for r = 0 to copies - 1 do
          Table.write table (coeff_base t which i + r) c
        done)
      cs
  in
  write_coeffs 0 h0;
  write_coeffs 1 h1;
  Array.iteri
    (fun j x -> if x <> -1 then Table.write table (t0_base t + j) x)
    slots;
  t

let mem_probe t ~(probe : Dict_intf.probe) rng x =
  if x < 0 || x >= t.p then invalid_arg "Cuckoo.mem: key outside universe";
  let step = ref 0 in
  let probe j =
    let v = probe ~step:!step j in
    incr step;
    v
  in
  let read_poly which =
    let cs = Array.init t.d (fun i -> probe (coeff_base t which i + Rng.int rng t.copies)) in
    Poly_hash.of_coeffs ~p:t.p ~m:t.size_each cs
  in
  let h0 = read_poly 0 in
  let h1 = read_poly 1 in
  let v0 = probe (t0_base t + Poly_hash.eval h0 x) in
  if v0 = x then true
  else
    let v1 = probe (t1_base t + Poly_hash.eval h1 x) in
    v1 = x

let spec t x =
  let coeff_steps =
    Array.init (2 * t.d) (fun idx ->
        Spec.Stride { base = idx * t.copies; stride = 1; count = t.copies })
  in
  let j0 = t0_base t + Poly_hash.eval t.h0 x in
  (* mem stops after the first data probe when it hits; the plan mirrors
     that. *)
  if Table.peek t.table j0 = x then Array.append coeff_steps [| Spec.Point j0 |]
  else
    let j1 = t1_base t + Poly_hash.eval t.h1 x in
    Array.append coeff_steps [| Spec.Point j0; Spec.Point j1 |]

let mem t rng x = mem_probe t ~probe:(fun ~step j -> Table.read t.table ~step j) rng x

let rehashes t = t.rehashes

let core t : (module Dict_intf.S) =
  (module struct
    let name = if t.copies > 1 then "cuckoo-replicated" else "cuckoo"
    let table = t.table
    let space = Table.size t.table
    let max_probes = (2 * t.d) + 2
    let mem ~probe rng x = mem_probe t ~probe rng x
    let spec x = spec t x
  end)

let instance t = Instance.of_core (core t)
