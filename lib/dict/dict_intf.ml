(** The first-class dictionary signature.

    Every membership structure in this repository reduces to the same
    four ingredients: a cell-probe table, a space/probe budget, a query
    procedure, and the exact per-query probe plan. [S] captures them as
    a module signature whose query procedure is {e parameterised by the
    probing function}: the algorithm decides {e which} cells to visit
    (and consumes its [Rng.t] only to pick replicas), while the caller
    decides {e how} a visit is performed — counted against the table's
    mutable counters, counter-free, or counted on per-cell atomics.

    This split is what makes one implementation serve three consumers:

    - the sequential experiment harness (instrumented probes feeding
      the {!Lc_cellprobe.Table} counters, as before);
    - the spec cross-validation, which re-instruments any instance;
    - the multicore serving engine ([lc_parallel]), which needs a
      reentrant query path it can drive from many domains at once.

    Query code must never poke the table's counters directly
    ([Table.read] from inside a [mem] body is deprecated); all probes
    flow through the supplied [probe]. *)

type probe = step:int -> int -> int
(** [probe ~step j] visits cell [j] as the [step]-th probe (0-indexed)
    of the running query and returns the cell's contents. The
    implementations live in {!Instance}: counting into the table
    ({!Instance.instrumented}), plain reads ({!Instance.uninstrumented}),
    or fetch-and-add on per-cell atomics ({!Instance.atomic}). *)

module type S = sig
  val name : string
  (** Human-readable structure name for tables and reports. *)

  val table : Lc_cellprobe.Table.t
  (** The shared cells. Cell {e contents} are written only at
      construction time, so concurrent probing is safe; the table's
      built-in probe counters are not, which is exactly why [mem] takes
      the probing function as a parameter. *)

  val space : int
  (** Number of cells, the paper's [s]. *)

  val max_probes : int
  (** Worst-case probes per query, the paper's [t]. *)

  val mem : probe:probe -> Lc_prim.Rng.t -> int -> bool
  (** [mem ~probe rng x] answers the membership query, visiting every
      cell through [probe]; [rng] drives only replica balancing, never
      the answer. Reentrant whenever [probe] is. *)

  val spec : int -> Lc_cellprobe.Spec.t
  (** [spec x] is the exact probe plan the query algorithm uses for [x]
      on this table. *)
end
