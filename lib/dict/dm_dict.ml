module Rng = Lc_prim.Rng
module Primes = Lc_prim.Primes
module Modarith = Lc_prim.Modarith
module Poly_hash = Lc_hash.Poly_hash
module Dm_family = Lc_hash.Dm_family
module Perfect = Lc_hash.Perfect
module Loads = Lc_hash.Loads
module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec

type t = {
  table : Table.t;
  p : int;
  d : int;
  nb : int;  (* top-level buckets *)
  r : int;  (* displacement-vector length *)
  copies : int;  (* replicas of each coefficient word *)
  z_copies : int;  (* replicas of each z entry *)
  top : Dm_family.t;
  offsets : int array;
  loads : int array;
  multipliers : int array;
  top_trials : int;
  load_base : int;
}

(* Cell layout: 2*d coefficient regions of [copies] cells (f's then g's),
   then the z region of r * z_copies cells laid out as z.(j mod r), then
   headers, per-bucket multipliers, slot blocks. *)
let coeff_base t idx = idx * t.copies
let z_base t = 2 * t.d * t.copies
let z_width t = t.r * t.z_copies
let header_base t = z_base t + z_width t
let kparam_base t = header_base t + t.nb
let header_off t i = header_base t + i
let kparam_off t i = kparam_base t + i

(* The max-load cap the builder enforces: c * ln n / ln ln n with a
   generous constant, floored at d so tiny instances are feasible. *)
let load_cap n d =
  let fn = float_of_int (max n 3) in
  let cap = 3.0 *. Float.log fn /. Float.log (Float.log fn) in
  max (d + 1) (int_of_float (Float.ceil cap))

let build ?(replicate = true) ?(d = 3) rng ~universe ~keys =
  if Array.length keys = 0 then invalid_arg "Dm_dict.build: empty key set";
  let seen = Hashtbl.create (Array.length keys) in
  Array.iter
    (fun x ->
      if x < 0 || x >= universe then invalid_arg "Dm_dict.build: key outside universe";
      if Hashtbl.mem seen x then invalid_arg "Dm_dict.build: duplicate key";
      Hashtbl.add seen x ())
    keys;
  let n = Array.length keys in
  let p = Primes.prime_for_universe universe in
  let nb = n in
  let r = max 1 (int_of_float (Float.ceil (Float.sqrt (float_of_int n)))) in
  let cap = load_cap n d in
  let rec search trials =
    let f = Poly_hash.create rng ~d ~p ~m:nb in
    let g = Poly_hash.create rng ~d ~p ~m:r in
    let z = Array.init r (fun _ -> Rng.int rng nb) in
    let top = Dm_family.of_parts ~f ~g ~z in
    let hash x = Dm_family.eval top x in
    let loads = Loads.loads ~hash ~buckets:nb keys in
    if Loads.max_load loads <= cap && Loads.sum_squares loads <= 4 * n then (top, loads, trials)
    else search (trials + 1)
  in
  let top, loads, top_trials = search 1 in
  let copies = if replicate then n else 1 in
  let z_copies = if replicate then max 1 ((n + r - 1) / r) else 1 in
  let slots_total = Loads.sum_squares loads in
  let load_base = n + 1 in
  let groups = Loads.bucket_keys ~hash:(Dm_family.eval top) ~buckets:nb keys in
  let header_region = (2 * d * copies) + (r * z_copies) + (2 * nb) in
  let cells = header_region + slots_total in
  let header_max = (cells * load_base) + n in
  let bits = max (Table.bits_for (max (universe - 1) (p - 1))) (Table.bits_for header_max) in
  let table = Table.create ~init:(-1) ~cells ~bits () in
  let t =
    {
      table;
      p;
      d;
      nb;
      r;
      copies;
      z_copies;
      top;
      offsets = Array.make nb 0;
      loads;
      multipliers = Array.make nb 0;
      top_trials;
      load_base;
    }
  in
  (* Coefficient words: f's d coefficients then g's. *)
  let write_coeffs idx0 h =
    Array.iteri
      (fun i c ->
        for k = 0 to copies - 1 do
          Table.write table (coeff_base t (idx0 + i) + k) c
        done)
      (Poly_hash.coeffs h)
  in
  write_coeffs 0 (Dm_family.f top);
  write_coeffs d (Dm_family.g top);
  let z = Dm_family.z top in
  for j = 0 to z_width t - 1 do
    Table.write table (z_base t + j) z.(j mod r)
  done;
  let next = ref header_region in
  let prng = Rng.split rng in
  Array.iteri
    (fun i bucket ->
      let l = t.loads.(i) in
      t.offsets.(i) <- !next;
      if l > 0 then begin
        let ph = Perfect.find prng ~p ~keys:bucket in
        t.multipliers.(i) <- Perfect.multiplier ph;
        Array.iter (fun x -> Table.write table (!next + Perfect.eval ph x) x) bucket;
        next := !next + Perfect.size ph
      end;
      Table.write table (header_off t i) ((t.offsets.(i) * load_base) + l);
      Table.write table (kparam_off t i) t.multipliers.(i))
    groups;
  t

let mem_probe t ~(probe : Dict_intf.probe) rng x =
  if x < 0 || x >= t.p then invalid_arg "Dm_dict.mem: key outside universe";
  let step = ref 0 in
  let probe j =
    let v = probe ~step:!step j in
    incr step;
    v
  in
  let read_poly idx0 m =
    let cs = Array.init t.d (fun i -> probe (coeff_base t (idx0 + i) + Rng.int rng t.copies)) in
    Poly_hash.of_coeffs ~p:t.p ~m cs
  in
  let f = read_poly 0 t.nb in
  let g = read_poly t.d t.r in
  let gx = Poly_hash.eval g x in
  let zslot = gx + (t.r * Rng.int rng t.z_copies) in
  let zg = probe (z_base t + zslot) in
  let i = (Poly_hash.eval f x + zg) mod t.nb in
  let header = probe (header_off t i) in
  let off = header / t.load_base and l = header mod t.load_base in
  if l = 0 then false
  else begin
    let ki = probe (kparam_off t i) in
    let slot = Modarith.mul t.p ki x mod (l * l) in
    probe (off + slot) = x
  end

let spec t x =
  let coeff_steps =
    Array.init (2 * t.d) (fun idx ->
        Spec.Stride { base = coeff_base t idx; stride = 1; count = t.copies })
  in
  let gx = Poly_hash.eval (Dm_family.g t.top) x in
  let z_step = Spec.Stride { base = z_base t + gx; stride = t.r; count = t.z_copies } in
  let i = Dm_family.eval t.top x in
  let l = t.loads.(i) in
  let tail =
    if l = 0 then [| z_step; Spec.Point (header_off t i) |]
    else
      let slot = Modarith.mul t.p t.multipliers.(i) x mod (l * l) in
      [|
        z_step;
        Spec.Point (header_off t i);
        Spec.Point (kparam_off t i);
        Spec.Point (t.offsets.(i) + slot);
      |]
  in
  Array.append coeff_steps tail

let mem t rng x = mem_probe t ~probe:(fun ~step j -> Table.read t.table ~step j) rng x

let max_bucket_load t = Loads.max_load t.loads
let top_trials t = t.top_trials

let core t : (module Dict_intf.S) =
  (module struct
    let name = if t.copies > 1 then "dm-replicated" else "dm"
    let table = t.table
    let space = Table.size t.table
    let max_probes = (2 * t.d) + 4
    let mem ~probe rng x = mem_probe t ~probe rng x
    let spec x = spec t x
  end)

let instance t = Instance.of_core (core t)
