module Rng = Lc_prim.Rng
module Primes = Lc_prim.Primes
module Modarith = Lc_prim.Modarith
module Perfect = Lc_hash.Perfect
module Loads = Lc_hash.Loads
module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec

type t = {
  table : Table.t;
  p : int;
  k_top : int;
  nb : int;  (* top-level buckets *)
  copies : int;  (* replicas of the k_top cell *)
  offsets : int array;  (* absolute slot-block start per bucket *)
  loads : int array;
  multipliers : int array;  (* per-bucket perfect-hash word *)
  n : int;
  top_trials : int;
  load_base : int;  (* header packing radix *)
}

let header_off t i = t.copies + i
let kparam_off t i = t.copies + t.nb + i

let top_bucket t x = Modarith.mul t.p t.k_top x mod t.nb

let check_keys ~universe keys =
  if Array.length keys = 0 then invalid_arg "Fks.build: empty key set";
  let seen = Hashtbl.create (Array.length keys) in
  Array.iter
    (fun x ->
      if x < 0 || x >= universe then invalid_arg "Fks.build: key outside universe";
      if Hashtbl.mem seen x then invalid_arg "Fks.build: duplicate key";
      Hashtbl.add seen x ())
    keys

(* Assemble the table for a fixed, already-accepted top-level multiplier. *)
let assemble ~replicate ~universe ~p ~k_top ~top_trials keys =
  let n = Array.length keys in
  let nb = n in
  let hash x = Modarith.mul p k_top x mod nb in
  let groups = Loads.bucket_keys ~hash ~buckets:nb keys in
  let loads = Array.map Array.length groups in
  let copies = if replicate then n else 1 in
  let slots_total = Loads.sum_squares loads in
  let cells = copies + (2 * nb) + slots_total in
  let load_base = n + 1 in
  let header_max = (cells * load_base) + n in
  let bits = max (Table.bits_for (max (universe - 1) (p - 1))) (Table.bits_for header_max) in
  let table = Table.create ~init:(-1) ~cells ~bits () in
  for j = 0 to copies - 1 do
    Table.write table j k_top
  done;
  let offsets = Array.make nb 0 in
  let multipliers = Array.make nb 0 in
  let next = ref (copies + (2 * nb)) in
  (* A local deterministic rng for the per-bucket perfect hashes keeps
     assemble's signature free of the caller's rng; seeded from k_top so
     rebuilds are reproducible. *)
  let rng = Rng.create (k_top + (7919 * top_trials)) in
  Array.iteri
    (fun i bucket ->
      let l = loads.(i) in
      offsets.(i) <- !next;
      if l > 0 then begin
        let ph = Perfect.find rng ~p ~keys:bucket in
        multipliers.(i) <- Perfect.multiplier ph;
        Array.iter (fun x -> Table.write table (!next + Perfect.eval ph x) x) bucket;
        next := !next + Perfect.size ph
      end;
      Table.write table (copies + i) ((offsets.(i) * load_base) + l);
      Table.write table (copies + nb + i) multipliers.(i))
    groups;
  { table; p; k_top; nb; copies; offsets; loads; multipliers; n; top_trials; load_base }

let build ?(replicate = true) rng ~universe ~keys =
  check_keys ~universe keys;
  let n = Array.length keys in
  let p = Primes.prime_for_universe universe in
  let rec search trials =
    let k_top = 1 + Rng.int rng (p - 1) in
    let hash x = Modarith.mul p k_top x mod n in
    let loads = Loads.loads ~hash ~buckets:n keys in
    if Loads.sum_squares loads <= 4 * n then (k_top, trials)
    else search (trials + 1)
  in
  let k_top, top_trials = search 1 in
  assemble ~replicate ~universe ~p ~k_top ~top_trials keys

let build_planted ?(replicate = true) rng ~universe ~n ~heavy =
  if n < 2 then invalid_arg "Fks.build_planted: n must be >= 2";
  if heavy < 1 || heavy * heavy > 2 * n then
    invalid_arg "Fks.build_planted: heavy^2 must stay within the FKS budget (<= 2n)";
  let p = Primes.prime_for_universe universe in
  let k_top = 1 + Rng.int rng (p - 1) in
  let k_inv = Modarith.inv p k_top in
  let nb = n in
  (* Keys hashing to bucket 0: x = k^-1 * (t * nb) mod p, provided the
     preimage t*nb is itself a valid universe element after inversion. *)
  let seen = Hashtbl.create (2 * n) in
  let keys = ref [] in
  let count = ref 0 in
  let add x =
    if x >= 0 && x < universe && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      keys := x :: !keys;
      incr count
    end
  in
  let t = ref 1 in
  while !count < heavy do
    let y = !t * nb in
    if y >= p then invalid_arg "Fks.build_planted: universe too small to plant the bucket";
    add (Modarith.mul p k_inv y);
    incr t
  done;
  (* Fill the rest with random keys, re-drawing until the FKS condition
     still holds for this fixed k_top (almost always immediate: the
     planted bucket uses heavy^2 <= 2n of the 4n budget). *)
  let hash x = Modarith.mul p k_top x mod nb in
  let rec fill () =
    let extra = ref [] and extra_count = ref 0 in
    while !extra_count < n - heavy do
      let x = Rng.int rng universe in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        extra := x :: !extra;
        incr extra_count
      end
    done;
    let all = Array.of_list (!keys @ !extra) in
    let loads = Loads.loads ~hash ~buckets:nb all in
    if Loads.sum_squares loads <= (heavy * heavy) + (4 * n) then all
    else begin
      List.iter (Hashtbl.remove seen) !extra;
      fill ()
    end
  in
  let all = fill () in
  let structure = assemble ~replicate ~universe ~p ~k_top ~top_trials:1 all in
  (structure, all)

let mem_probe t ~(probe : Dict_intf.probe) rng x =
  if x < 0 || x >= t.p then invalid_arg "Fks.mem: key outside universe";
  let step = ref 0 in
  let probe j =
    let v = probe ~step:!step j in
    incr step;
    v
  in
  let k_top = probe (Rng.int rng t.copies) in
  let i = Modarith.mul t.p k_top x mod t.nb in
  let header = probe (header_off t i) in
  let off = header / t.load_base and l = header mod t.load_base in
  if l = 0 then false
  else begin
    let ki = probe (kparam_off t i) in
    let slot = Modarith.mul t.p ki x mod (l * l) in
    probe (off + slot) = x
  end

let spec t x =
  let i = top_bucket t x in
  let l = t.loads.(i) in
  let first = Spec.Stride { base = 0; stride = 1; count = t.copies } in
  if l = 0 then [| first; Spec.Point (header_off t i) |]
  else
    let slot = Modarith.mul t.p t.multipliers.(i) x mod (l * l) in
    [|
      first;
      Spec.Point (header_off t i);
      Spec.Point (kparam_off t i);
      Spec.Point (t.offsets.(i) + slot);
    |]

let mem t rng x = mem_probe t ~probe:(fun ~step j -> Table.read t.table ~step j) rng x

let max_bucket_load t = Loads.max_load t.loads
let top_trials t = t.top_trials

let core t : (module Dict_intf.S) =
  (module struct
    let name = if t.copies > 1 then "fks-replicated" else "fks"
    let table = t.table
    let space = Table.size t.table
    let max_probes = 4
    let mem ~probe rng x = mem_probe t ~probe rng x
    let spec x = spec t x
  end)

let instance t = Instance.of_core (core t)
