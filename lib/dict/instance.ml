module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec
module Contention = Lc_cellprobe.Contention

type mode = Instrumented | Uninstrumented | Atomic_counters

type t = {
  name : string;
  table : Table.t;
  space : int;
  max_probes : int;
  mem : Lc_prim.Rng.t -> int -> bool;
  spec : int -> Spec.t;
  core : (module Dict_intf.S);
  mode : mode;
  counters : int Atomic.t array; (* length [space] iff mode = Atomic_counters *)
}

let instrumented_probe table : Dict_intf.probe = fun ~step j -> Table.read table ~step j
let uninstrumented_probe table : Dict_intf.probe = fun ~step:_ j -> Table.peek table j

let atomic_probe table counters : Dict_intf.probe =
 fun ~step:_ j ->
  Atomic.incr counters.(j);
  Table.peek table j

let make mode ((module D : Dict_intf.S) as core) =
  let counters =
    match mode with
    | Atomic_counters -> Array.init D.space (fun _ -> Atomic.make 0)
    | Instrumented | Uninstrumented -> [||]
  in
  let probe =
    match mode with
    | Instrumented -> instrumented_probe D.table
    | Uninstrumented -> uninstrumented_probe D.table
    | Atomic_counters -> atomic_probe D.table counters
  in
  {
    name = D.name;
    table = D.table;
    space = D.space;
    max_probes = D.max_probes;
    mem = (fun rng x -> D.mem ~probe rng x);
    spec = D.spec;
    core;
    mode;
    counters;
  }

let of_core core = make Instrumented core
let mode t = t.mode
let core t = t.core
let instrumented t = match t.mode with Instrumented -> t | _ -> make Instrumented t.core
let uninstrumented t = match t.mode with Uninstrumented -> t | _ -> make Uninstrumented t.core
let atomic t = make Atomic_counters t.core

let atomic_counts t =
  match t.mode with
  | Atomic_counters -> Array.map Atomic.get t.counters
  | Instrumented | Uninstrumented ->
    invalid_arg "Instance.atomic_counts: instance is not in atomic mode"

let reset_atomic_counts t =
  match t.mode with
  | Atomic_counters -> Array.iter (fun c -> Atomic.set c 0) t.counters
  | Instrumented | Uninstrumented ->
    invalid_arg "Instance.reset_atomic_counts: instance is not in atomic mode"

(* The trivial Ops_intf implementation: membership through a private
   atomic-mode rewrap (so probes are counted reentrantly), updates
   rejected loudly — a static table cannot change. *)
module Static_ops = struct
  type nonrec t = t

  let name t = t.name

  let insert t _ =
    invalid_arg (Printf.sprintf "%s is a static structure: insert unsupported" t.name)

  let delete t _ =
    invalid_arg (Printf.sprintf "%s is a static structure: delete unsupported" t.name)

  let mem t rng x = t.mem rng x

  (* A static structure's population is fixed at build time; expose the
     table size as the closest honest answer without re-deriving the key
     count from the core. *)
  let size _ = 0

  let probes t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counters
end

let ops_handle t =
  let t = make Atomic_counters t.core in
  Ops_intf.Handle ((module Static_ops), t)

let contention_exact t qdist =
  Contention.exact ~cells:t.space ~qdist ~spec:t.spec

let contention_mc t qdist ~rng ~queries =
  let t = instrumented t in
  Contention.monte_carlo ~table:t.table ~qdist ~mem:t.mem ~rng ~queries

let check_spec_against_mem t ~rng ~queries =
  (* Re-instrument whatever mode the caller hands us: validation needs
     the table's per-step counters, but the verdict is about the core. *)
  let t = instrumented t in
  let table = t.table in
  let check_query x =
    let plan = t.spec x in
    (match Spec.validate ~cells:t.space plan with
    | Error e -> Error (Printf.sprintf "query %d: invalid spec: %s" x e)
    | Ok () -> Ok ())
    |> function
    | Error _ as e -> e
    | Ok () ->
      Table.reset_counters table;
      ignore (t.mem rng x : bool);
      let nsteps = Table.max_step table in
      if nsteps <> Spec.probes plan then
        Error
          (Printf.sprintf "query %d: mem made %d probes but spec plans %d" x nsteps
             (Spec.probes plan))
      else begin
        (* Each executed step must touch exactly one cell, inside the
           planned step's support. *)
        let bad = ref None in
        for step = 0 to nsteps - 1 do
          let touched = ref [] in
          for j = 0 to t.space - 1 do
            let c = Table.probes_at table ~step j in
            if c > 0 then touched := (j, c) :: !touched
          done;
          match !touched with
          | [ (j, 1) ] ->
            let in_support =
              Seq.exists (fun (cell, _) -> cell = j) (Spec.step_cells plan.(step))
            in
            if not in_support && !bad = None then
              bad := Some (Printf.sprintf "query %d step %d probed cell %d outside spec" x step j)
          | other ->
            if !bad = None then
              bad :=
                Some
                  (Printf.sprintf "query %d step %d probed %d cells (want exactly 1)" x step
                     (List.length other))
        done;
        Table.reset_counters table;
        match !bad with None -> Ok () | Some msg -> Error msg
      end
  in
  Array.fold_left
    (fun acc x -> match acc with Error _ -> acc | Ok () -> check_query x)
    (Ok ()) queries
