(** A first-class membership structure in the cell-probe model.

    Every dictionary in this repository — the baselines here and the
    paper's low-contention dictionary in [Lc_core] — exposes itself as a
    {!Dict_intf.S} core: a table, a space/probe budget, a query
    procedure parameterised by the probing function, and the exact
    per-query probe plan. An {!t} wraps one core together with a chosen
    {e probing mode}, which decides what a probe physically does:

    - {!instrumented} (the default, and what {!of_core} builds): every
      probe goes through {!Lc_cellprobe.Table.read}, feeding the
      per-cell/per-step counters the sequential experiments consume.
      Not reentrant — the counters are plain mutable state.
    - {!uninstrumented}: probes are plain reads
      ({!Lc_cellprobe.Table.peek}); the query path is pure with respect
      to shared state and therefore safe to run from many domains.
    - {!atomic}: probes are plain reads plus a fetch-and-add on a
      per-cell [Atomic.t] counter owned by the instance — reentrant
      {e and} counted, the mode the [lc_parallel] serving engine and
      experiment T10 are built on.

    The record fields are exposed read-only by convention: consumers
    (experiments, the lower-bound game, tests) read [mem], [spec],
    [space], [max_probes], [name]; only the builders in this library and
    [Lc_core.Dictionary] construct values, via {!of_core}. Query code
    must not poke the table counters directly — see {!Dict_intf}. *)

type mode =
  | Instrumented  (** Probes counted by the table's mutable counters. *)
  | Uninstrumented  (** Counter-free plain reads; reentrant. *)
  | Atomic_counters  (** Per-cell [Atomic.t] counters; reentrant. *)

type t = {
  name : string;  (** Human-readable structure name for tables. *)
  table : Lc_cellprobe.Table.t;  (** The cells. *)
  space : int;  (** Number of cells, the paper's [s]. *)
  max_probes : int;  (** Worst-case probes per query, the paper's [t]. *)
  mem : Lc_prim.Rng.t -> int -> bool;
      (** [mem rng x] answers the membership query through this
          instance's probing mode; [rng] drives only probe balancing. *)
  spec : int -> Lc_cellprobe.Spec.t;
      (** [spec x] is the exact probe plan the query algorithm uses for
          [x] on this table. *)
  core : (module Dict_intf.S);
      (** The underlying implementation, shared by all modes. *)
  mode : mode;
  counters : int Atomic.t array;
      (** Per-cell atomic probe counters; length [space] in
          [Atomic_counters] mode and empty otherwise. Prefer
          {!atomic_counts} for reading. *)
}

val of_core : (module Dict_intf.S) -> t
(** The canonical constructor: wrap a core in {!Instrumented} mode,
    reproducing the historical (counter-poking) behaviour exactly. *)

val mode : t -> mode

val core : t -> (module Dict_intf.S)
(** The underlying implementation; callers that need a bespoke probing
    discipline (e.g. the parallel engine's cost models) drive its [mem]
    with their own {!Dict_intf.probe}. *)

val instrumented : t -> t
(** [instrumented t] shares [t]'s core and table but counts probes into
    the table's mutable counters. Returns [t] itself if already in that
    mode. *)

val uninstrumented : t -> t
(** [uninstrumented t] shares [t]'s core and table but performs
    counter-free probes; the resulting [mem] is reentrant and may be
    called concurrently from multiple domains (each with its own
    [Rng.t]). Returns [t] itself if already in that mode. *)

val atomic : t -> t
(** [atomic t] shares [t]'s core and table and counts every probe with
    a fetch-and-add on a {e fresh} per-cell [Atomic.t] array (so each
    call starts a new tally). The resulting [mem] is reentrant. *)

val atomic_counts : t -> int array
(** Snapshot of the per-cell atomic counters. Raises [Invalid_argument]
    unless the instance is in [Atomic_counters] mode. *)

val reset_atomic_counts : t -> unit
(** Zero the atomic counters (callers must ensure no query is in
    flight). Raises [Invalid_argument] unless in [Atomic_counters]
    mode. *)

val ops_handle : t -> Ops_intf.handle
(** The instance as a uniform {!Ops_intf.S} structure: [mem] runs
    through a {e fresh} atomic-mode rewrap of the core (reentrant,
    probe-counted — {!Ops_intf.probes} reads the tally), while [insert]
    and [delete] raise [Invalid_argument] — static tables are immutable,
    and a driver that routes updates at one has made a wiring error.
    [size] reports 0: a static instance does not carry its key count.
    The dynamic counterpart is [Lc_dynamic.Dynamic.ops_handle]. *)

val contention_exact : t -> Lc_cellprobe.Qdist.t -> Lc_cellprobe.Contention.result
(** Exact contention of this structure under a query distribution. *)

val contention_mc :
  t -> Lc_cellprobe.Qdist.t -> rng:Lc_prim.Rng.t -> queries:int -> Lc_cellprobe.Contention.result
(** Monte-Carlo contention by replaying instrumented queries (the
    instance is re-instrumented internally if in another mode). *)

val check_spec_against_mem :
  t -> rng:Lc_prim.Rng.t -> queries:int array -> (unit, string) result
(** Cross-validation used by the test suite: for each query, run [mem]
    and confirm that every counted probe lands inside the support of the
    corresponding [spec] step (and that probe counts match plan length).
    Works for any mode — the core is re-instrumented internally, so an
    {!uninstrumented} instance validates against the same plans. *)
