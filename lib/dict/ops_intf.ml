(** The uniform mutable-dictionary operations signature.

    The static structures ({!Instance.t} over any {!Dict_intf.S} core)
    and the dynamic logarithmic-method dictionary ([Lc_dynamic.Dynamic])
    answer the same three requests — insert, delete, membership — but
    until this signature existed every consumer (the op-stream player,
    the CLI selectors, the perf suite) addressed them through ad-hoc
    per-structure code. [S] is the common denominator: the three
    operations plus cumulative probe accounting, so a consumer can play
    a mixed workload against {e any} structure and still reconcile the
    probes it caused.

    Static structures implement the signature trivially: [insert] and
    [delete] raise (their tables are immutable by construction), which
    is the honest encoding — a caller that feeds updates to a static
    structure has made a wiring error and should hear about it loudly.

    The packing is a first-class module pair ({!handle}), so call sites
    stay monomorphic and allocation-free on the query path. *)

module type S = sig
  type t

  val name : t -> string
  (** Human-readable structure name for tables and artifacts. *)

  val insert : t -> int -> unit
  (** Add a key. Static structures raise [Invalid_argument]. *)

  val delete : t -> int -> unit
  (** Remove a key. Static structures raise [Invalid_argument]. *)

  val mem : t -> Lc_prim.Rng.t -> int -> bool
  (** Membership; [rng] drives only probe balancing, never the answer.
      Probes made through this entry point must be counted (visible via
      {!probes}). *)

  val size : t -> int
  (** Live keys currently stored. *)

  val probes : t -> int
  (** Cumulative cell probes issued by {!mem} through this handle since
      construction — the accounting that lets a mixed-workload driver
      reconcile its telemetry against the structure's own counters. *)
end

type handle = Handle : (module S with type t = 'a) * 'a -> handle
(** A structure packed with its operations — what {!Instance.ops_handle}
    and [Lc_dynamic.Dynamic.ops_handle] return and what
    [Lc_workload.Opstream.apply_handle] consumes. *)

let name (Handle ((module M), t)) = M.name t
let insert (Handle ((module M), t)) x = M.insert t x
let delete (Handle ((module M), t)) x = M.delete t x
let mem (Handle ((module M), t)) rng x = M.mem t rng x
let size (Handle ((module M), t)) = M.size t
let probes (Handle ((module M), t)) = M.probes t
