module Rng = Lc_prim.Rng
module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec

type t = {
  table : Table.t;
  universe : int;  (* doubles as the +infinity sentinel *)
  levels : int;
  width : int;  (* cells per row, 2^levels *)
  heap : int array;  (* Eytzinger array, 1-indexed, size 2^levels *)
}

(* Fill the 1-indexed Eytzinger heap with the sorted keys (in-order
   traversal); unfilled slots keep the +infinity sentinel. *)
let eytzinger sorted size =
  let heap = Array.make size max_int in
  let pos = ref 0 in
  let rec fill v =
    if v < size then begin
      fill (2 * v);
      if !pos < Array.length sorted then begin
        heap.(v) <- sorted.(!pos);
        incr pos
      end;
      fill ((2 * v) + 1)
    end
  in
  fill 1;
  heap

let build ~universe ~keys =
  if Array.length keys = 0 then invalid_arg "Repl_bst.build: empty key set";
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Array.iter
    (fun x -> if x < 0 || x >= universe then invalid_arg "Repl_bst.build: key outside universe")
    sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then invalid_arg "Repl_bst.build: duplicate key"
  done;
  let n = Array.length sorted in
  let levels =
    let rec go l = if 1 lsl l >= n + 1 then l else go (l + 1) in
    go 1
  in
  let width = 1 lsl levels in
  let heap = eytzinger sorted width in
  (* Replace the internal max_int padding by the storable sentinel. *)
  let heap = Array.map (fun v -> if v = max_int then universe else v) heap in
  let table = Table.create ~cells:(levels * width) ~bits:(Table.bits_for universe) () in
  for depth = 0 to levels - 1 do
    let nodes = 1 lsl depth in
    for v = nodes to (2 * nodes) - 1 do
      (* Node v's replicas: cells congruent to (v - nodes) mod nodes. *)
      let offset = v - nodes in
      let k = ref offset in
      while !k < width do
        Table.write table ((depth * width) + !k) heap.(v);
        k := !k + nodes
      done
    done
  done;
  { table; universe; levels; width; heap }

(* The descent shared by queries and probe plans: [probe ~depth v] must
   return node v's pivot; returns the predecessor if any. *)
let descend t x ~probe =
  let best = ref None in
  let v = ref 1 in
  for depth = 0 to t.levels - 1 do
    let pivot = probe ~depth !v in
    if x >= pivot && pivot <> t.universe then begin
      best := Some pivot;
      v := (2 * !v) + 1
    end
    else v := 2 * !v
  done;
  !best

let predecessor_probe t ~(probe : Dict_intf.probe) rng x =
  if x < 0 || x >= t.universe then invalid_arg "Repl_bst.predecessor: key outside universe";
  let pick ~depth v =
    let nodes = 1 lsl depth in
    let replica = Rng.int rng (t.width / nodes) in
    probe ~step:depth ((depth * t.width) + (v - nodes) + (replica * nodes))
  in
  descend t x ~probe:pick

let predecessor t rng x =
  predecessor_probe t ~probe:(fun ~step j -> Table.read t.table ~step j) rng x

let mem_probe t ~probe rng x =
  match predecessor_probe t ~probe rng x with Some y -> y = x | None -> false

let mem t rng x = match predecessor t rng x with Some y -> y = x | None -> false

let spec t x =
  let steps = ref [] in
  let probe ~depth v =
    let nodes = 1 lsl depth in
    steps :=
      Spec.Stride
        { base = (depth * t.width) + (v - nodes); stride = nodes; count = t.width / nodes }
      :: !steps;
    t.heap.(v)
  in
  ignore (descend t x ~probe : int option);
  Array.of_list (List.rev !steps)

let levels t = t.levels

let core t : (module Dict_intf.S) =
  (module struct
    let name = "repl-bst-predecessor"
    let table = t.table
    let space = Table.size t.table
    let max_probes = t.levels
    let mem ~probe rng x = mem_probe t ~probe rng x
    let spec x = spec t x
  end)

let instance t = Instance.of_core (core t)
