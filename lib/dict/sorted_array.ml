module Table = Lc_cellprobe.Table
module Spec = Lc_cellprobe.Spec

type t = { table : Table.t; n : int }

let build ~universe ~keys =
  if Array.length keys = 0 then invalid_arg "Sorted_array.build: empty key set";
  Array.iter
    (fun x -> if x < 0 || x >= universe then invalid_arg "Sorted_array.build: key outside universe")
    keys;
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then invalid_arg "Sorted_array.build: duplicate key"
  done;
  let n = Array.length sorted in
  let table = Table.create ~cells:n ~bits:(Table.bits_for (universe - 1)) () in
  Array.iteri (fun i x -> Table.write table i x) sorted;
  { table; n }

(* The deterministic binary-search path for [x]; [probe] observes each
   visited cell and its content. *)
let search_path t x ~probe =
  let rec go lo hi step =
    if lo > hi then false
    else
      let mid = (lo + hi) / 2 in
      let v = probe ~step mid in
      if v = x then true
      else if v < x then go (mid + 1) hi (step + 1)
      else go lo (mid - 1) (step + 1)
  in
  go 0 (t.n - 1) 0

let mem_probe t ~(probe : Dict_intf.probe) _rng x = search_path t x ~probe:(fun ~step j -> probe ~step j)

let mem t x = search_path t x ~probe:(fun ~step j -> Table.read t.table ~step j)

let spec t x =
  let cells = ref [] in
  let (_ : bool) =
    search_path t x ~probe:(fun ~step:_ j ->
        cells := j :: !cells;
        Table.peek t.table j)
  in
  Array.of_list (List.rev_map (fun j -> Spec.Point j) !cells)

let max_probes t =
  let rec depth n = if n <= 0 then 0 else 1 + depth (n / 2) in
  depth t.n

let core t : (module Dict_intf.S) =
  (module struct
    let name = "binary-search"
    let table = t.table
    let space = t.n
    let max_probes = max_probes t
    let mem ~probe rng x = mem_probe t ~probe rng x
    let spec x = spec t x
  end)

let instance t = Instance.of_core (core t)
