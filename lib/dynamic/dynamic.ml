module Rng = Lc_prim.Rng
module Dictionary = Lc_core.Dictionary
module Qdist = Lc_cellprobe.Qdist
module Contention = Lc_cellprobe.Contention
module Spec = Lc_cellprobe.Spec

type level = {
  index : int;
  keys : int array;  (* exactly 2^index keys *)
  replicas : Dictionary.t array;  (* >= 1 independently built copies *)
}

(* One Bentley–Saxe merge, as seen by the update-path observatory: the
   level (re)built, how many keys went in, across how many replicas,
   the exact cell count written (sum of replica spaces) and the build's
   wall duration. Reported to the build hook and folded into the
   cumulative rebuild counters. *)
type build_info = {
  bi_index : int;
  bi_keys : int;
  bi_replicas : int;
  bi_cells : int;
  bi_ns : int;
}

type t = {
  universe : int;
  mutable boost : int;  (* effective small_level_boost; builder-owned *)
  rng : Rng.t;  (* private stream for rebuilds *)
  mutable levels : level option array;
  deleted : (int, unit) Hashtbl.t;
  stored_set : (int, unit) Hashtbl.t;  (* O(1) duplicate checks for updates *)
  mutable live : int;  (* stored keys minus tombstones *)
  mutable stored : int;  (* keys across levels, tombstones included *)
  mutable keys_rebuilt : int;
  mutable purges : int;
  mutable probe_count : int;  (* cumulative cell probes issued by [mem] *)
  (* Update-path accounting, builder-owned like everything above: every
     level build adds its exact written-cell count (the write half of
     write amplification), bumps the rebuild counter and accumulates the
     build's wall time. *)
  mutable cells_written : int;
  mutable rebuilds : int;
  mutable rebuild_ns : int;
  mutable build_hook : (build_info -> unit) option;
}

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let create ?(small_level_boost = 1) rng ~universe () =
  if not (is_power_of_two small_level_boost) then
    invalid_arg "Dynamic.create: small_level_boost must be a power of two";
  if universe < 2 then invalid_arg "Dynamic.create: universe too small";
  {
    universe;
    boost = small_level_boost;
    rng = Rng.split rng;
    levels = Array.make 8 None;
    deleted = Hashtbl.create 64;
    stored_set = Hashtbl.create 64;
    live = 0;
    stored = 0;
    keys_rebuilt = 0;
    purges = 0;
    probe_count = 0;
    cells_written = 0;
    rebuilds = 0;
    rebuild_ns = 0;
    build_hook = None;
  }

let replica_count t index = max 1 (t.boost lsr index)

let build_level t ~index keys =
  let t0 = Monotonic_clock.now () in
  let replicas =
    Array.init (replica_count t index) (fun _ ->
        Dictionary.build t.rng ~universe:t.universe ~keys)
  in
  let ns = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
  let cells = Array.fold_left (fun a d -> a + Dictionary.space d) 0 replicas in
  t.keys_rebuilt <- t.keys_rebuilt + (Array.length keys * Array.length replicas);
  t.cells_written <- t.cells_written + cells;
  t.rebuilds <- t.rebuilds + 1;
  t.rebuild_ns <- t.rebuild_ns + ns;
  (match t.build_hook with
  | None -> ()
  | Some f ->
    f
      {
        bi_index = index;
        bi_keys = Array.length keys;
        bi_replicas = Array.length replicas;
        bi_cells = cells;
        bi_ns = ns;
      });
  { index; keys = Array.copy keys; replicas }

let ensure_capacity t index =
  if index >= Array.length t.levels then begin
    let grown = Array.make (2 * (index + 1)) None in
    Array.blit t.levels 0 grown 0 (Array.length t.levels);
    t.levels <- grown
  end

let mem t rng x =
  if x < 0 || x >= t.universe then invalid_arg "Dynamic.mem: key outside universe";
  if Hashtbl.mem t.deleted x then false
  else begin
    (* Largest level first: it holds at least half the keys. *)
    let hit = ref false in
    for i = Array.length t.levels - 1 downto 0 do
      if not !hit then
        match t.levels.(i) with
        | None -> ()
        | Some l ->
          let d = l.replicas.(Rng.int rng (Array.length l.replicas)) in
          (* Same instrumented probes Dictionary.mem would make (feeding
             the table's per-step counters), plus the dictionary-wide
             cumulative tally behind [probes] / [ops_handle]. *)
          let (module D : Lc_dict.Dict_intf.S) = Dictionary.core d in
          let probe ~step j =
            t.probe_count <- t.probe_count + 1;
            Lc_cellprobe.Table.read D.table ~step j
          in
          if D.mem ~probe rng x then hit := true
    done;
    !hit
  end

(* Distribute [keys] into fresh levels according to the binary
   representation of their count (the canonical logarithmic-method
   shape), replacing all current levels. *)
let rebuild_all t keys =
  Array.iteri (fun i _ -> t.levels.(i) <- None) t.levels;
  Hashtbl.reset t.stored_set;
  Array.iter (fun x -> Hashtbl.replace t.stored_set x ()) keys;
  let count = Array.length keys in
  let pos = ref 0 in
  let bit = ref 0 in
  while count lsr !bit > 0 do
    if (count lsr !bit) land 1 = 1 then begin
      ensure_capacity t !bit;
      let chunk = Array.sub keys !pos (1 lsl !bit) in
      t.levels.(!bit) <- Some (build_level t ~index:!bit chunk);
      pos := !pos + (1 lsl !bit)
    end;
    incr bit
  done;
  t.stored <- count

let purge t =
  t.purges <- t.purges + 1;
  let all = ref [] in
  Array.iter
    (fun lvl ->
      match lvl with
      | Some l ->
        Array.iter (fun x -> if not (Hashtbl.mem t.deleted x) then all := x :: !all) l.keys
      | None -> ())
    t.levels;
  Hashtbl.reset t.deleted;
  rebuild_all t (Array.of_list !all);
  t.live <- t.stored

let insert t x =
  if x < 0 || x >= t.universe then invalid_arg "Dynamic.insert: key outside universe";
  if Hashtbl.mem t.deleted x then begin
    (* The key is still stored in some level; un-delete it. *)
    Hashtbl.remove t.deleted x;
    t.live <- t.live + 1
  end
  else if Hashtbl.mem t.stored_set x then () (* already present *)
  else begin
    (* Cascade into the first empty level. *)
    ensure_capacity t 0;
    let j =
      let limit = Array.length t.levels in
      let rec scan j =
        if j >= limit then j
        else match t.levels.(j) with None -> j | Some _ -> scan (j + 1)
      in
      scan 0
    in
    ensure_capacity t j;
    let moved = ref [ x ] in
    for i = 0 to j - 1 do
      match t.levels.(i) with
      | Some l ->
        Array.iter (fun k -> moved := k :: !moved) l.keys;
        t.levels.(i) <- None
      | None -> ()
    done;
    let chunk = Array.of_list !moved in
    assert (Array.length chunk = 1 lsl j);
    t.levels.(j) <- Some (build_level t ~index:j chunk);
    Hashtbl.replace t.stored_set x ();
    t.live <- t.live + 1;
    t.stored <- t.stored + 1
  end

let delete t x =
  if x < 0 || x >= t.universe then invalid_arg "Dynamic.delete: key outside universe";
  if (not (Hashtbl.mem t.deleted x)) && Hashtbl.mem t.stored_set x then begin
    Hashtbl.add t.deleted x ();
    t.live <- t.live - 1;
    if Hashtbl.length t.deleted >= max 4 (t.stored / 2) then purge t
  end

let size t = t.live
let universe t = t.universe
let small_level_boost t = t.boost

(* Change the effective boost in place: only levels whose replica count
   actually changes are rebuilt (through [build_level], so the rebuild
   counters, write-amplification accounting and the build hook all fire,
   and every touched level gets a fresh record — fresh physical identity
   — which is exactly what lets Epoch publish the re-replicated levels
   as new and retire the old ones). Returns the number of levels
   rebuilt. *)
let set_small_level_boost t boost =
  if not (is_power_of_two boost) then
    invalid_arg "Dynamic.set_small_level_boost: boost must be a power of two";
  if boost = t.boost then 0
  else begin
    t.boost <- boost;
    let rebuilt = ref 0 in
    Array.iteri
      (fun i lvl ->
        match lvl with
        | None -> ()
        | Some l ->
          if Array.length l.replicas <> replica_count t i then begin
            t.levels.(i) <- Some (build_level t ~index:i l.keys);
            incr rebuilt
          end)
      t.levels;
    !rebuilt
  end

let space t =
  Array.fold_left
    (fun acc lvl ->
      match lvl with
      | None -> acc
      | Some l -> acc + Array.fold_left (fun a d -> a + Dictionary.space d) 0 l.replicas)
    0 t.levels

let level_sizes t =
  Array.to_list t.levels
  |> List.filter_map (fun lvl ->
         Option.map (fun l -> (l.index, Array.length l.keys, Array.length l.replicas)) lvl)

let keys_rebuilt t = t.keys_rebuilt
let purges t = t.purges
let probes t = t.probe_count
let cells_written t = t.cells_written
let rebuilds t = t.rebuilds
let rebuild_ns t = t.rebuild_ns
let set_build_hook t f = t.build_hook <- Some f
let clear_build_hook t = t.build_hook <- None

type level_view = {
  lv_index : int;
  lv_keys : int array;
  lv_replicas : Dictionary.t array;
}

let level_views t =
  Array.to_list t.levels
  |> List.filter_map
       (Option.map (fun l ->
            (* lv_replicas is the level's own replica array, NOT a copy:
               its physical identity is stable for the level's whole
               lifetime (rebuilds allocate a fresh level record), which
               is exactly what Epoch keys its snapshot cache on. *)
            { lv_index = l.index; lv_keys = Array.copy l.keys; lv_replicas = l.replicas }))

let tombstone_keys t =
  Hashtbl.fold (fun x () acc -> x :: acc) t.deleted [] |> List.sort compare

module Ops = struct
  type nonrec t = t

  let name _ = "lc-dyn"
  let insert = insert
  let delete = delete
  let mem = mem
  let size t = t.live
  let probes = probes
end

let ops_handle t = Lc_dict.Ops_intf.Handle ((module Ops), t)

type contention_summary = {
  total_cells : int;
  per_level : (int * float) list;
  worst : float;
  worst_level : int;
}

let contention_exact t qdist =
  let total_cells = space t in
  let levels = List.filter_map Fun.id (Array.to_list t.levels) in
  (* Search order: largest index first. A query contributes a plan to
     every level it reaches: all levels before its hit level (misses)
     plus the hit level itself; tombstoned and absent keys reach every
     level. *)
  let ordered = List.sort (fun a b -> compare b.index a.index) levels in
  let hit_level x =
    if Hashtbl.mem t.deleted x then None
    else
      List.find_opt (fun l -> Array.exists (fun k -> k = x) l.keys) ordered
      |> Option.map (fun l -> l.index)
  in
  let per_level =
    List.map
      (fun l ->
        let d = l.replicas.(0) in
        let reps = float_of_int (Array.length l.replicas) in
        (* Restrict the pmf to queries that actually reach this level. *)
        let reaches x =
          match hit_level x with None -> true | Some h -> h <= l.index
        in
        let support = Array.to_list (Qdist.support qdist) in
        let reached = List.filter (fun (x, _) -> reaches x) support in
        let normalized =
          if reached = [] then 0.0
          else begin
            let qd = Qdist.weighted ~name:"reached" (Array.of_list reached) in
            let mass = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 reached in
            let c =
              Contention.exact ~cells:(Dictionary.space d) ~qdist:qd
                ~spec:(Dictionary.spec d)
            in
            (* Scale back: qd was renormalised to 1, real mass is
               [mass]; replicas split it [reps] ways; normalise by the
               whole structure's cells. *)
            c.max_total *. mass /. reps *. float_of_int total_cells
          end
        in
        (l.index, normalized))
      ordered
  in
  let worst_level, worst =
    List.fold_left
      (fun (wl, w) (i, v) -> if v > w then (i, v) else (wl, w))
      (-1, 0.0) per_level
  in
  { total_cells; per_level = List.sort compare per_level; worst; worst_level }

let check t rng =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ( let* ) r f = match r with Error _ -> r | Ok () -> f () in
  (* Level shape. *)
  let rec levels_ok i =
    if i >= Array.length t.levels then Ok ()
    else
      match t.levels.(i) with
      | None -> levels_ok (i + 1)
      | Some l ->
        if l.index <> i then err "level %d stored at slot %d" l.index i
        else if Array.length l.keys <> 1 lsl i then
          err "level %d holds %d keys (want %d)" i (Array.length l.keys) (1 lsl i)
        else if Array.length l.replicas <> replica_count t i then
          err "level %d has %d replicas (want %d)" i (Array.length l.replicas)
            (replica_count t i)
        else levels_ok (i + 1)
  in
  let* () = levels_ok 0 in
  (* No key in two levels; counters consistent. *)
  let seen = Hashtbl.create (2 * max 1 t.stored) in
  let dup = ref None in
  Array.iter
    (fun lvl ->
      match lvl with
      | None -> ()
      | Some l ->
        Array.iter
          (fun x ->
            if Hashtbl.mem seen x && !dup = None then dup := Some x else Hashtbl.add seen x ())
          l.keys)
    t.levels;
  let* () = match !dup with Some x -> err "key %d stored twice" x | None -> Ok () in
  let* () =
    if Hashtbl.length seen <> t.stored then
      err "stored counter %d but %d keys on levels" t.stored (Hashtbl.length seen)
    else Ok ()
  in
  let* () =
    if t.live <> t.stored - Hashtbl.length t.deleted then err "live counter inconsistent"
    else Ok ()
  in
  (* Tombstones point at stored keys. *)
  let* () =
    Hashtbl.fold
      (fun x () acc ->
        match acc with
        | Error _ -> acc
        | Ok () -> if Hashtbl.mem seen x then Ok () else err "tombstone %d not stored" x)
      t.deleted (Ok ())
  in
  (* Static verifiers. *)
  let* () =
    Array.fold_left
      (fun acc lvl ->
        match (acc, lvl) with
        | (Error _, _) | (_, None) -> acc
        | Ok (), Some l ->
          Array.fold_left
            (fun acc d ->
              match acc with
              | Error _ -> acc
              | Ok () -> (
                match Dictionary.verify d with
                | Ok () -> Ok ()
                | Error e -> err "level %d replica: %s" l.index e))
            (Ok ()) l.replicas)
      (Ok ()) t.levels
  in
  (* Behavioural check. *)
  let bad = ref None in
  Hashtbl.iter
    (fun x () ->
      if Hashtbl.mem t.deleted x then begin
        if mem t rng x && !bad = None then bad := Some (x, true)
      end
      else if (not (mem t rng x)) && !bad = None then bad := Some (x, false))
    seen;
  match !bad with
  | Some (x, true) -> err "tombstoned key %d still answers true" x
  | Some (x, false) -> err "live key %d answers false" x
  | None -> Ok ()
