(** A dynamic low-contention dictionary — the paper's closing question
    ("study the contention caused by the updates in dynamic data
    structures"), made concrete.

    {2 Construction}

    The classic logarithmic method (Bentley-Saxe): live keys are
    partitioned into levels, level [i] holding either nothing or a
    static low-contention dictionary ({!Lc_core.Dictionary}) over
    exactly [2^i] keys. An insert cascades the lowest empty level:
    level [j] absorbs the new key plus all keys of levels [0..j-1]
    (one expected-[O(2^j)] static rebuild, so inserts cost amortized
    [O(log n)] rebuilt keys). Deletions are tombstones with a global
    purge once half the stored keys are dead, keeping space and query
    time honest. A membership query probes levels from largest to
    smallest and stops at the first hit.

    {2 What happens to contention — the finding this module exists for}

    Dynamization {e breaks} Theorem 3's guarantee: every query probes
    every non-empty level, and a level holding [2^i] keys is a table of
    only [Theta(2^i)] cells, so its cells see contention [Theta(1/2^i)]
    — for small levels, a hot spot as bad as an unreplicated index cell.
    Experiment F7 measures exactly this.

    The mitigation implemented here (and measured by the same
    experiment) is {e level replication}: with [small_level_boost = B],
    level [i] keeps [max 1 (B / 2^i)] independently built replicas and
    each query probes a uniformly chosen one, dividing the level's
    per-cell contention by the replica count at a bounded space and
    rebuild-cost premium. This levels small-level contention down to
    [Theta(1/B)]; making the {e whole} dynamic structure [O(1/n)] again
    within [O(n)] space appears to genuinely require new ideas — which
    is presumably why the paper left it as future work. DESIGN.md
    discusses the trade-off.

    Tombstone bookkeeping lives in an O(1) RAM-model side table and is
    not charged cell probes; the object of study is the contention on
    the (static, repeatedly rebuilt) cell-probe tables. *)

type t

val create :
  ?small_level_boost:int -> Lc_prim.Rng.t -> universe:int -> unit -> t
(** [create rng ~universe ()] is an empty dynamic dictionary over
    [0, universe). [small_level_boost] (default 1 = off) is the [B]
    above; it must be a power of two. *)

val insert : t -> int -> unit
(** [insert t x] adds [x] (no-op if already present; un-deletes a
    tombstoned key). Amortized expected [O(log n)] rebuilt keys. *)

val delete : t -> int -> unit
(** [delete t x] removes [x] (no-op if absent). Triggers a purge
    rebuild when tombstones reach half of the stored keys. *)

val mem : t -> Lc_prim.Rng.t -> int -> bool
(** Membership by instrumented probes into the level tables, largest
    level first. *)

val size : t -> int
(** Number of live keys. *)

val universe : t -> int
(** The key universe bound given to {!create}. *)

val space : t -> int
(** Total cells across all level tables and replicas. *)

val small_level_boost : t -> int
(** The effective replication boost [B]: level [i] keeps
    [max 1 (B / 2^i)] replicas. Builder-owned plain field. *)

val set_small_level_boost : t -> int -> int
(** [set_small_level_boost t b] changes the effective boost in place —
    the replication controller's actuation primitive. Must be a power of
    two. Only levels whose replica count changes under the new boost are
    rebuilt (through the same accounted build path as inserts: rebuild
    counters, {!cells_written} and the build hook all fire), and each
    rebuilt level gets a fresh record, so a following
    {!Epoch.publish} retires the old replicas and publishes the new
    ones without ever blocking readers. Returns the number of levels
    rebuilt (0 when [b] equals the current boost). Builder-side only. *)

val level_sizes : t -> (int * int * int) list
(** [(level, keys, replicas)] for each non-empty level, ascending. *)

val keys_rebuilt : t -> int
(** Total keys passed through static rebuilds since creation — the
    amortized-cost counter of experiment T9. *)

val purges : t -> int
(** Number of global tombstone purges. *)

val probes : t -> int
(** Cumulative cell probes issued by {!mem} since creation (across all
    rebuilds — unlike the per-table counters, this survives levels being
    discarded). *)

val cells_written : t -> int
(** Exact cells written by level builds since creation: every
    {e build_level} adds the sum of [Dictionary.space] over the replicas
    it constructed. Divided by the number of keys inserted this is the
    structure's write amplification. Builder-owned plain counter — read
    it only from the domain that mutates [t]. *)

val rebuilds : t -> int
(** Number of level builds since creation (each Bentley–Saxe cascade
    target or purge-rebuild chunk counts once). Builder-owned. *)

val rebuild_ns : t -> int
(** Cumulative wall time, in nanoseconds, spent inside level builds.
    Builder-owned. *)

type build_info = {
  bi_index : int;  (** Level index that was (re)built. *)
  bi_keys : int;  (** Keys merged into the level ([2^bi_index]). *)
  bi_replicas : int;  (** Independently built replica count. *)
  bi_cells : int;  (** Exact cells written (sum of replica spaces). *)
  bi_ns : int;  (** Wall duration of the build, nanoseconds. *)
}
(** One Bentley–Saxe merge as seen by the update-path observatory. *)

val set_build_hook : t -> (build_info -> unit) -> unit
(** [set_build_hook t f] calls [f] after every level build with that
    build's exact accounting, from the mutating (builder) domain, before
    the level is installed. At most one hook; a second call replaces the
    first. The hook runs on the update path — keep it allocation-light
    (plain stores into builder-owned telemetry, as {!Lc_obs.Metrics}
    shards do). *)

val clear_build_hook : t -> unit
(** Remove the build hook, if any. *)

type level_view = {
  lv_index : int;  (** The level's index [i]; it holds [2^i] keys. *)
  lv_keys : int array;  (** The stored keys (tombstones included), a copy. *)
  lv_replicas : Lc_core.Dictionary.t array;
      (** The level's replica array — {e not} a copy. Its physical
          identity is stable for the level's whole lifetime (every
          rebuild allocates a fresh level), so callers may use it as the
          level's identity token across calls; {!Epoch} keys its
          snapshot cache on exactly this. Treat as read-only. *)
}

val level_views : t -> level_view list
(** The non-empty levels, ascending by index — the introspection hook
    {!Epoch} snapshots from. *)

val tombstone_keys : t -> int list
(** The currently tombstoned keys, sorted ascending. *)

val ops_handle : t -> Lc_dict.Ops_intf.handle
(** The dictionary as a uniform {!Lc_dict.Ops_intf.S} structure (name
    ["lc-dyn"]): real [insert]/[delete], [mem] counted by {!probes}.
    The static counterpart is {!Lc_dict.Instance.ops_handle}. *)

type contention_summary = {
  total_cells : int;
  per_level : (int * float) list;
      (** [(level, s_total * max_j Phi(j))] — each level's worst cell,
          normalized against the {e total} space so levels are
          comparable; replicas divide a level's contention evenly. *)
  worst : float;  (** Max over levels. *)
  worst_level : int;  (** The level attaining it. *)
}

val contention_exact : t -> Lc_cellprobe.Qdist.t -> contention_summary
(** Exact contention of the query algorithm under [q]: a query's plan
    touches every level down to (and including) the one that holds it,
    using each level's exact static probe plans. Replica choice is
    uniform; replicas are statistically identical, so replica 0 is
    computed exactly and scaled by the replica count. *)

val check : t -> Lc_prim.Rng.t -> (unit, string) result
(** Structural self-check: every level's static verifier passes, level
    populations are exact powers of two, no key lives in two levels,
    tombstones are all present in some level, and every live key
    answers [true] / every tombstone [false]. *)
