module Rng = Lc_prim.Rng
module Table = Lc_cellprobe.Table
module Dictionary = Lc_core.Dictionary

exception Freed_level of { epoch : int; level : int }

(* One published level: the immutable replica tables of a Dynamic level,
   plus per-replica/per-cell atomic probe tallies and the poison flag
   reclamation sets when the level's memory is handed back. The record is
   shared by every snapshot that contains the level; [identity] (the
   Dynamic level's own replica array) is the token the builder's cache is
   keyed on. *)
type elevel = {
  el_index : int;
  cores : (module Lc_dict.Dict_intf.S) array;
  tables : Table.t array;
  counters : int Atomic.t array array;  (* per replica, per cell *)
  rep_base : int array;  (* replica's first cell id within the level *)
  el_space : int;
  el_max_probes : int;  (* max over replicas *)
  freed : bool Atomic.t;
  identity : Dictionary.t array;
}

type snapshot = {
  epoch : int;
  levels : elevel array;  (* probe order: largest index first *)
  bases : int array;  (* levels.(i)'s first global cell id *)
  deleted : int array;  (* sorted tombstoned keys *)
  snap_space : int;
  snap_max_probes : int;  (* sum over levels: a miss probes them all *)
  snap_live : int;
  snap_universe : int;
}

(* Reader slots: quiescent readers announce [quiescent]; a pinned reader
   announces the epoch of the snapshot it probes. *)
let quiescent = max_int

(* A replication-boost request from the controller domain: the builder
   applies the request whose id it has not yet seen. The record is
   immutable, so one Atomic holds both fields consistently. *)
type boost_request = { br_id : int; br_boost : int }

type t = {
  inner : Dynamic.t;
  current : snapshot Atomic.t;
  slots : int Atomic.t array;
  next_reader : int Atomic.t;
  boost_request : boost_request Atomic.t;
  applied_boost : int Atomic.t;  (* builder writes, anyone reads *)
  mutable applied_request_id : int;  (* builder-owned *)
  (* Builder-owned bookkeeping (single-writer by protocol; never touched
     on the read path): *)
  mutable cache : (Dictionary.t array * elevel) list;
      (* levels of the current snapshot, keyed by physical identity *)
  mutable retired : (int * elevel) list;  (* (retiring publication epoch, level) *)
  mutable publications : int;
  mutable reclaimed : int;
  mutable drained_probes : int;  (* tallies of freed levels, preserved *)
  (* Update-path observatory (builder-owned, like the rest of this
     block): updates applied since the last publication, cumulative
     publication wall time, and reclamation lag in epochs. *)
  mutable pending_updates : int;
  mutable publish_ns_total : int;
  mutable reclaim_lag_total : int;
  mutable reclaim_lag_max : int;
}

type reader = {
  slot : int Atomic.t;
  r_rng : Rng.t;
  mutable snap : snapshot;  (* last pinned snapshot *)
  mutable r_probes : int;
  (* Owner-domain scratch for phase accounting: nanoseconds spent in the
     pin/unpin announcement windows by [mem_phased]. Plain field — read
     by the engine after joining the owning domain. *)
  mutable r_pin_ns : int;
  (* The probe closure is allocated once per reader and re-pointed at
     the replica under probe by [mem] — the hot read path allocates
     nothing per query or per level. *)
  mutable cur_counters : int Atomic.t array;
  mutable cur_table : Table.t;
  mutable cur_base : int;
  mutable observe : int -> unit;
  mutable probe : Lc_dict.Dict_intf.probe;
}

let no_observe (_ : int) = ()

let make_elevel (v : Dynamic.level_view) =
  let cores = Array.map Dictionary.core v.lv_replicas in
  let tables =
    Array.map (fun c -> let (module D : Lc_dict.Dict_intf.S) = c in D.table) cores
  in
  let spaces =
    Array.map (fun c -> let (module D : Lc_dict.Dict_intf.S) = c in D.space) cores
  in
  let counters = Array.map (fun s -> Array.init s (fun _ -> Atomic.make 0)) spaces in
  let rep_base = Array.make (Array.length cores) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i s ->
      rep_base.(i) <- !total;
      total := !total + s)
    spaces;
  let el_max_probes =
    Array.fold_left
      (fun acc c -> let (module D : Lc_dict.Dict_intf.S) = c in max acc D.max_probes)
      0 cores
  in
  {
    el_index = v.lv_index;
    cores;
    tables;
    counters;
    rep_base;
    el_space = !total;
    el_max_probes;
    freed = Atomic.make false;
    identity = v.lv_replicas;
  }

(* Build the next snapshot from the inner dictionary's current levels,
   reusing published elevels for levels whose identity is unchanged (so
   their probe tallies keep accumulating across publications). Returns
   the snapshot and the refreshed cache. Builder-only. *)
let snapshot_of_inner t ~epoch =
  let views = List.rev (Dynamic.level_views t.inner) (* largest first *) in
  let levels =
    Array.of_list
      (List.map
         (fun (v : Dynamic.level_view) ->
           match List.assq_opt v.lv_replicas t.cache with
           | Some el -> el
           | None -> make_elevel v)
         views)
  in
  let bases = Array.make (Array.length levels) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i l ->
      bases.(i) <- !total;
      total := !total + l.el_space)
    levels;
  let snap_max_probes = Array.fold_left (fun acc l -> acc + l.el_max_probes) 0 levels in
  let deleted = Array.of_list (Dynamic.tombstone_keys t.inner) in
  ( {
      epoch;
      levels;
      bases;
      deleted;
      snap_space = !total;
      snap_max_probes;
      snap_live = Dynamic.size t.inner;
      snap_universe = Dynamic.universe t.inner;
    },
    Array.to_list (Array.map (fun l -> (l.identity, l)) levels) )

let create ?small_level_boost ?(max_readers = 64) rng ~universe () =
  if max_readers < 1 then invalid_arg "Epoch.create: max_readers must be >= 1";
  let inner = Dynamic.create ?small_level_boost rng ~universe () in
  let t =
    {
      inner;
      current =
        Atomic.make
          {
            epoch = 0;
            levels = [||];
            bases = [||];
            deleted = [||];
            snap_space = 0;
            snap_max_probes = 0;
            snap_live = 0;
            snap_universe = universe;
          };
      slots = Array.init max_readers (fun _ -> Atomic.make quiescent);
      next_reader = Atomic.make 0;
      boost_request =
        Atomic.make { br_id = 0; br_boost = Dynamic.small_level_boost inner };
      applied_boost = Atomic.make (Dynamic.small_level_boost inner);
      applied_request_id = 0;
      cache = [];
      retired = [];
      publications = 0;
      reclaimed = 0;
      drained_probes = 0;
      pending_updates = 0;
      publish_ns_total = 0;
      reclaim_lag_total = 0;
      reclaim_lag_max = 0;
    }
  in
  t

(* ------------------------------------------------------------------ *)
(* Builder side                                                        *)
(* ------------------------------------------------------------------ *)

let insert t x =
  Dynamic.insert t.inner x;
  t.pending_updates <- t.pending_updates + 1

let delete t x =
  Dynamic.delete t.inner x;
  t.pending_updates <- t.pending_updates + 1

let inner t = t.inner

type publish_info = {
  pi_epoch : int;
  pi_batch : int;
  pi_levels : int;
  pi_fresh_levels : int;
  pi_fresh_cells : int;
  pi_dur_ns : int;
}

let publish_stats t =
  let t0 = Monotonic_clock.now () in
  let old = Atomic.get t.current in
  let snap, cache = snapshot_of_inner t ~epoch:(old.epoch + 1) in
  (* Levels of the outgoing cache that the new snapshot no longer
     references retire at this publication's epoch: a reader announcing
     an epoch >= snap.epoch can only reach the new snapshot. *)
  let dropped =
    List.filter (fun (id, _) -> not (List.mem_assq id cache)) t.cache
  in
  (* Levels in the new snapshot the outgoing cache did not hold were
     materialised by this publication — the write half of the epoch's
     work, reported exactly. *)
  let fresh =
    List.filter (fun (id, _) -> not (List.mem_assq id t.cache)) cache
  in
  t.retired <- List.map (fun (_, el) -> (snap.epoch, el)) dropped @ t.retired;
  t.cache <- cache;
  t.publications <- t.publications + 1;
  let batch = t.pending_updates in
  t.pending_updates <- 0;
  (* The one linearisation point: readers pinning from here on see the
     new level set. *)
  Atomic.set t.current snap;
  let ns = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
  t.publish_ns_total <- t.publish_ns_total + ns;
  {
    pi_epoch = snap.epoch;
    pi_batch = batch;
    pi_levels = Array.length snap.levels;
    pi_fresh_levels = List.length fresh;
    pi_fresh_cells = List.fold_left (fun a (_, el) -> a + el.el_space) 0 fresh;
    pi_dur_ns = ns;
  }

let publish t = ignore (publish_stats t : publish_info)

(* --- Replication-boost actuation ---------------------------------- *)

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let request_boost t ~id ~boost =
  if not (is_power_of_two boost) then
    invalid_arg "Epoch.request_boost: boost must be a power of two";
  Atomic.set t.boost_request { br_id = id; br_boost = boost }

let requested_boost t = (Atomic.get t.boost_request).br_boost
let applied_boost t = Atomic.get t.applied_boost
let boost_pending t = (Atomic.get t.boost_request).br_id <> t.applied_request_id

type boost_applied = {
  ba_id : int;  (* the request id applied *)
  ba_boost : int;
  ba_levels : int;  (* levels rebuilt under the new boost *)
  ba_cells : int;  (* cells written by those rebuilds *)
  ba_ns : int;
}

let apply_boost_request t =
  let req = Atomic.get t.boost_request in
  if req.br_id = t.applied_request_id then None
  else begin
    let t0 = Monotonic_clock.now () in
    let cells0 = Dynamic.cells_written t.inner in
    let levels = Dynamic.set_small_level_boost t.inner req.br_boost in
    t.applied_request_id <- req.br_id;
    Atomic.set t.applied_boost req.br_boost;
    let ns = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
    Some
      {
        ba_id = req.br_id;
        ba_boost = req.br_boost;
        ba_levels = levels;
        ba_cells = Dynamic.cells_written t.inner - cells0;
        ba_ns = ns;
      }
  end

let min_announced t =
  Array.fold_left (fun acc s -> min acc (Atomic.get s)) quiescent t.slots

let drain_elevel el =
  Array.fold_left
    (fun acc cells -> Array.fold_left (fun a c -> a + Atomic.get c) acc cells)
    0 el.counters

let try_reclaim t =
  match t.retired with
  | [] -> 0
  | retired ->
    let horizon = min_announced t in
    let now_epoch = (Atomic.get t.current).epoch in
    (* A level that retired at publication epoch [e] is reachable only
       through snapshots of epoch < e; once every announced epoch is
       >= e (quiescent slots announce max_int), no reader can hold such
       a snapshot pinned, so the level is free. *)
    let free, keep = List.partition (fun (e, _) -> e <= horizon) retired in
    List.iter
      (fun (e, el) ->
        Atomic.set el.freed true;
        t.drained_probes <- t.drained_probes + drain_elevel el;
        t.reclaimed <- t.reclaimed + 1;
        (* Reclamation lag: how many publications the level outlived its
           retirement by before memory actually came back. *)
        let lag = now_epoch - e in
        t.reclaim_lag_total <- t.reclaim_lag_total + lag;
        t.reclaim_lag_max <- max t.reclaim_lag_max lag)
      free;
    t.retired <- keep;
    List.length free

(* ------------------------------------------------------------------ *)
(* Reader side                                                         *)
(* ------------------------------------------------------------------ *)

let reader t rng =
  let idx = Atomic.fetch_and_add t.next_reader 1 in
  if idx >= Array.length t.slots then
    invalid_arg "Epoch.reader: max_readers exhausted";
  let r =
    {
      slot = t.slots.(idx);
      r_rng = rng;
      snap = Atomic.get t.current;
      r_probes = 0;
      r_pin_ns = 0;
      cur_counters = [||];
      cur_table = Table.create ~cells:1 ~bits:1 ();
      cur_base = 0;
      observe = no_observe;
      probe = (fun ~step:_ j -> j);
    }
  in
  r.probe <-
    (fun ~step:_ j ->
      Atomic.incr r.cur_counters.(j);
      r.r_probes <- r.r_probes + 1;
      r.observe (r.cur_base + j);
      Table.peek r.cur_table j);
  r

let set_observe r f = r.observe <- f
let clear_observe r = r.observe <- no_observe
let reader_probes r = r.r_probes
let reader_pin_ns r = r.r_pin_ns
let last_epoch r = r.snap.epoch

(* Pin: announce an epoch, then confirm the snapshot did not move past
   us while we were announcing. OCaml atomics are SC, so once the
   re-read returns the same snapshot the builder is guaranteed to see
   our announcement before it retires anything that snapshot holds. *)
let rec pin r t =
  let s = Atomic.get t.current in
  Atomic.set r.slot s.epoch;
  let s' = Atomic.get t.current in
  if s == s' then begin
    r.snap <- s;
    s
  end
  else pin r t

let unpin r = Atomic.set r.slot quiescent

(* Explicit pin/unpin, exposed for readers that need to hold a snapshot
   across other work (and for the reclamation-lag tests, which park a
   reader across many publications). Note [mem] manages its own pin:
   calling it between [acquire] and [release] re-announces and then
   returns the slot to quiescent, ending the held pin. *)
let acquire t r = ignore (pin r t : snapshot)
let release r = unpin r

let tombstoned (deleted : int array) x =
  let n = Array.length deleted in
  if n = 0 then false
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = deleted.(mid) in
      if v = x then found := true else if v < x then lo := mid + 1 else hi := mid - 1
    done;
    !found
  end

let mem t r x =
  let s = pin r t in
  if x < 0 || x >= s.snap_universe then begin
    unpin r;
    invalid_arg "Epoch.mem: key outside universe"
  end;
  let answer =
    if tombstoned s.deleted x then false
    else begin
      (* Largest level first, like Dynamic.mem; stop at the first hit. *)
      let hit = ref false in
      let nl = Array.length s.levels in
      let i = ref 0 in
      while (not !hit) && !i < nl do
        let l = s.levels.(!i) in
        (* Poison check: under a correct reclamation protocol this is
           unreachable; the concurrent property test exists to prove it
           stays that way. *)
        if Atomic.get l.freed then begin
          unpin r;
          raise (Freed_level { epoch = s.epoch; level = l.el_index })
        end;
        let rep = Rng.int r.r_rng (Array.length l.cores) in
        r.cur_counters <- l.counters.(rep);
        r.cur_table <- l.tables.(rep);
        r.cur_base <- s.bases.(!i) + l.rep_base.(rep);
        let (module D : Lc_dict.Dict_intf.S) = l.cores.(rep) in
        if D.mem ~probe:r.probe r.r_rng x then hit := true;
        incr i
      done;
      !hit
    end
  in
  unpin r;
  answer

(* Phase-accounted variant of [mem] for monitored readers: the same
   probe protocol, plus monotonic timing of the pin and unpin
   announcement windows accumulated into the reader-owned [r_pin_ns]
   scratch. The probe loop is duplicated from [mem] deliberately — the
   untimed path must stay byte-identical for obs-off runs, and sharing
   an inner function would put an extra call (and clock plumbing) in
   it. Keep the two loops in sync. Error paths (invalid key, poisoned
   level) unpin without charging the pin phase: they abort the run. *)
let mem_phased t r x =
  let p0 = Monotonic_clock.now () in
  let s = pin r t in
  let p1 = Monotonic_clock.now () in
  if x < 0 || x >= s.snap_universe then begin
    unpin r;
    invalid_arg "Epoch.mem: key outside universe"
  end;
  let answer =
    if tombstoned s.deleted x then false
    else begin
      let hit = ref false in
      let nl = Array.length s.levels in
      let i = ref 0 in
      while (not !hit) && !i < nl do
        let l = s.levels.(!i) in
        if Atomic.get l.freed then begin
          unpin r;
          raise (Freed_level { epoch = s.epoch; level = l.el_index })
        end;
        let rep = Rng.int r.r_rng (Array.length l.cores) in
        r.cur_counters <- l.counters.(rep);
        r.cur_table <- l.tables.(rep);
        r.cur_base <- s.bases.(!i) + l.rep_base.(rep);
        let (module D : Lc_dict.Dict_intf.S) = l.cores.(rep) in
        if D.mem ~probe:r.probe r.r_rng x then hit := true;
        incr i
      done;
      !hit
    end
  in
  let u0 = Monotonic_clock.now () in
  unpin r;
  let u1 = Monotonic_clock.now () in
  r.r_pin_ns <-
    r.r_pin_ns
    + Int64.to_int (Int64.sub p1 p0)
    + Int64.to_int (Int64.sub u1 u0);
  answer

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let current t = Atomic.get t.current
let epoch s = s.epoch
let space s = s.snap_space
let max_probes s = s.snap_max_probes
let live s = s.snap_live

let snapshot_counts s =
  let counts = Array.make s.snap_space 0 in
  Array.iteri
    (fun i l ->
      Array.iteri
        (fun rep cells ->
          let base = s.bases.(i) + l.rep_base.(rep) in
          Array.iteri (fun j c -> counts.(base + j) <- Atomic.get c) cells)
        l.counters)
    s.levels;
  counts

let publications t = t.publications
let reclaimed t = t.reclaimed
let retired_pending t = List.length t.retired
let pending_updates t = t.pending_updates
let publish_ns_total t = t.publish_ns_total
let reclaim_lag_total t = t.reclaim_lag_total
let reclaim_lag_max t = t.reclaim_lag_max

let announced_min t =
  let m = min_announced t in
  if m = quiescent then None else Some m

let reader_lag t =
  match announced_min t with
  | None -> 0
  | Some m -> max 0 ((Atomic.get t.current).epoch - m)

let oldest_retired_age t =
  let cur = (Atomic.get t.current).epoch in
  List.fold_left (fun acc (e, _) -> max acc (cur - e)) 0 t.retired

let reader_staleness t r = (Atomic.get t.current).epoch - r.snap.epoch

let total_probes t =
  (* Live (cached) levels + retired-but-unfreed levels + drained tallies
     of freed levels: every probe any reader ever made is in exactly one
     of the three buckets. *)
  let live = List.fold_left (fun acc (_, el) -> acc + drain_elevel el) 0 t.cache in
  let pending = List.fold_left (fun acc (_, el) -> acc + drain_elevel el) 0 t.retired in
  t.drained_probes + live + pending
