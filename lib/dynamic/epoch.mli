(** Epoch-published dynamic levels: lock-free concurrent reads over a
    mutating {!Dynamic} dictionary.

    {2 The protocol}

    {!Dynamic} is strictly sequential — every insert may rebuild levels
    in place. This module layers an RCU-style publication scheme on top
    so that {e reads scale across domains while one builder mutates}:

    - The builder (exactly one domain) owns the inner {!Dynamic.t},
      applies inserts/deletes to it, and {!publish}es an immutable
      {!snapshot} of the current level tables — one [Atomic.set] of the
      [current] pointer per publication. Levels whose identity is
      unchanged since the previous snapshot are {e shared}, so their
      per-cell probe tallies keep accumulating.
    - Readers {e pin} the current snapshot before each query: announce
      its epoch in a per-reader slot ([int Atomic.t]), re-read the
      pointer, retry if it moved. Between pin and unpin a reader probes
      only immutable tables through a preallocated probe closure — no
      locks, no allocation, nothing but [Atomic] reads/increments on the
      query path.
    - Reclamation: a level dropped by the publication of epoch [e]
      retires at [e] and is freed only once the minimum announced epoch
      across all reader slots reaches [e] (quiescent slots announce
      [max_int]) — at that point no reader can still hold a snapshot
      that contains it. Freed levels have a poison flag the read path
      checks per level, raising {!Freed_level}; the concurrent property
      test in [test_dynamic] drives builder and readers hard to show the
      flag never trips and answers agree with a sequential oracle.

    Single-builder is a protocol obligation, not an enforced one:
    {!insert}, {!delete}, {!publish} and {!try_reclaim} must all be
    called from one domain at a time. Readers are registered up front
    ({!reader}, one per querying domain) and are mutually concurrent
    with each other and with the builder.

    {2 Accounting}

    Every probe lands on a per-cell [Atomic.t] tally of the level it
    touched and on the reader's own cumulative counter; freed levels
    drain their tallies into a preserved sum, so {!total_probes} equals
    the sum of {!reader_probes} over all readers at any quiescent point
    — the exact-reconciliation invariant the engine's telemetry and the
    perf suite assert. *)

type t
(** The published dictionary: inner {!Dynamic.t} + current snapshot
    pointer + reader slots + builder-side retire/reclaim bookkeeping. *)

type snapshot
(** One immutable published level set. Readers probe exactly one
    snapshot per query; snapshots share unchanged levels. *)

type reader
(** A registered reader: an announcement slot plus the preallocated
    probe state for the zero-allocation query path. One per domain —
    a reader must never be used from two domains concurrently. *)

exception Freed_level of { epoch : int; level : int }
(** Raised by {!mem} if a query ever observes a reclaimed level — the
    poisoned state a correct protocol makes unreachable. *)

val create :
  ?small_level_boost:int ->
  ?max_readers:int ->
  Lc_prim.Rng.t ->
  universe:int ->
  unit ->
  t
(** An empty published dictionary over [0, universe). The initial
    snapshot (epoch 0) has no levels, so every query answers [false].
    [small_level_boost] is {!Dynamic.create}'s replication knob;
    [max_readers] (default 64) bounds {!reader} registrations. *)

(** {2 Builder side — one domain only} *)

val insert : t -> int -> unit
(** Apply an insert to the inner dictionary. Invisible to readers until
    the next {!publish}. *)

val delete : t -> int -> unit
(** Apply a delete (tombstone, possibly purge). Invisible to readers
    until the next {!publish}. *)

val publish : t -> unit
(** Cut a new snapshot of the inner dictionary's levels and swing the
    current pointer — the single linearisation point readers observe.
    Levels no longer referenced retire at the new snapshot's epoch. *)

type publish_info = {
  pi_epoch : int;  (** Epoch of the snapshot just published. *)
  pi_batch : int;
      (** Updates ({!insert} + {!delete} calls) applied since the
          previous publication — the batch this snapshot made visible. *)
  pi_levels : int;  (** Levels in the published snapshot. *)
  pi_fresh_levels : int;
      (** Levels materialised by this publication (not shared with the
          previous snapshot). *)
  pi_fresh_cells : int;  (** Total cells of the fresh levels. *)
  pi_dur_ns : int;
      (** Wall time of snapshot construction + pointer swing, ns. *)
}
(** What one publication did — the per-publish record the engine feeds
    into histograms and the flight recorder. *)

val publish_stats : t -> publish_info
(** {!publish}, additionally returning the publication's accounting.
    [publish t] is [ignore (publish_stats t)]. *)

val try_reclaim : t -> int
(** Free every retired level whose retiring epoch all readers have
    provably left (minimum announced epoch, quiescent = [max_int]);
    returns how many levels were freed. Freed levels are poisoned and
    their probe tallies drained into the preserved sum. Cheap when the
    retired list is empty — the builder calls this after every
    {!publish}. *)

val inner : t -> Dynamic.t
(** The builder's underlying sequential dictionary (for its counters:
    {!Dynamic.keys_rebuilt}, {!Dynamic.purges}, {!Dynamic.size}).
    Builder-side use only. *)

(** {2 Replication-boost actuation}

    The online-adaptation channel between the controller domain and the
    builder. The controller {e requests} an effective
    [small_level_boost] ({!request_boost} — one [Atomic.set] of an
    immutable request record, safe from any domain); the builder, at a
    point of its choosing, {e applies} the latest unapplied request
    ({!apply_boost_request}: {!Dynamic.set_small_level_boost} on the
    inner dictionary, rebuilding exactly the levels whose replica count
    changes) and then publishes as usual — readers pick the
    re-replicated levels up at the next snapshot and are never blocked.
    Requests coalesce: only the newest matters. *)

val request_boost : t -> id:int -> boost:int -> unit
(** Ask the builder to move the effective boost to [boost] (a power of
    two, or [Invalid_argument]). [id] must be a fresh nonzero monotone
    request number (the controller's decision id); the builder applies
    a request exactly once per id and echoes the id in its accounting.
    Safe from any domain. *)

val requested_boost : t -> int
(** The most recently requested boost (the create-time boost before any
    request). Safe from any domain. *)

val applied_boost : t -> int
(** The effective boost the builder last applied (the create-time boost
    before any request) — the actuation gauge. Safe from any domain. *)

val boost_pending : t -> bool
(** Whether a request is waiting for the builder. Builder-side only
    (it reads the builder-owned applied-request cursor). *)

type boost_applied = {
  ba_id : int;  (** The request id applied. *)
  ba_boost : int;  (** The new effective boost. *)
  ba_levels : int;  (** Levels rebuilt under the new boost. *)
  ba_cells : int;  (** Cells written by those rebuilds. *)
  ba_ns : int;  (** Wall ns of the re-replication pass. *)
}
(** One applied boost request — what the engine journals as
    [Control_applied]. *)

val apply_boost_request : t -> boost_applied option
(** Apply the pending request, if any: rebuild the affected levels in
    the inner dictionary (through the accounted build path, so the
    rebuild counters and the build hook fire) and record the new
    effective boost. The caller must follow with {!publish} to make the
    re-replicated levels visible. [None] when no request is pending.
    Builder-side only. *)

(** {2 Reader side} *)

val reader : t -> Lc_prim.Rng.t -> reader
(** Register a reader owning [rng] (replica balancing only). Raises
    [Invalid_argument] once [max_readers] slots are taken. Registration
    is safe from any domain; the returned reader belongs to exactly
    one. *)

val mem : t -> reader -> int -> bool
(** [mem t r x]: pin the current snapshot, probe its levels largest
    first (tombstones answer [false] without probing), unpin. Lock-free
    and allocation-free; every cell visit increments the level's
    per-cell tally and [r]'s cumulative counter, and feeds the observe
    hook with the snapshot-global cell id. *)

val mem_phased : t -> reader -> int -> bool
(** {!mem} with phase accounting: additionally times the pin and unpin
    announcement windows with the monotonic clock and accumulates the
    nanoseconds into a reader-owned counter ({!reader_pin_ns}). Answers
    and probe accounting are identical to {!mem}; the only extra cost is
    four clock reads per query. The engine's monitored dynamic path uses
    this so epoch-protocol overhead shows up as its own phase instead of
    being folded into probe work. *)

val reader_pin_ns : reader -> int
(** Cumulative nanoseconds {!mem_phased} spent announcing (pin) and
    clearing (unpin) this reader's epoch slot. Reads owner scratch —
    call from the owning domain or after joining it. *)

val set_observe : reader -> (int -> unit) -> unit
(** Install a per-probe hook called with the snapshot-global cell index
    of every visit — the engine wires the hot-cell sketch in here for
    monitored runs. The hook runs on the reader's domain. *)

val clear_observe : reader -> unit
(** Reset the hook to a no-op. *)

val reader_probes : reader -> int
(** Cumulative probes this reader has issued. *)

val last_epoch : reader -> int
(** Epoch of the snapshot the reader's latest query pinned — what the
    linearizability property test records next to each answer. *)

val acquire : t -> reader -> unit
(** Pin the current snapshot and {e keep} it pinned — the announce /
    re-read / retry loop {!mem} uses per query, exposed for readers that
    must hold an epoch across other work (batched reads, or the
    reclamation-lag tests that park a reader across publications). While
    pinned, levels of the held snapshot cannot be reclaimed. Do not call
    {!mem} on the same reader while holding an acquire: [mem] manages
    its own pin and returns the slot to quiescent when it finishes. *)

val release : reader -> unit
(** Return the reader's slot to quiescent, ending an {!acquire}. *)

(** {2 Introspection} *)

val current : t -> snapshot
(** The currently published snapshot (any domain may read it). *)

val epoch : snapshot -> int

val space : snapshot -> int
(** Total cells across the snapshot's levels and replicas. *)

val max_probes : snapshot -> int
(** Worst-case probes for one query: the sum over levels of the
    worst replica bound (a miss probes every level). *)

val live : snapshot -> int
(** Live keys at publication time. *)

val snapshot_counts : snapshot -> int array
(** Per-cell probe tallies of the snapshot's levels, concatenated in
    probe order (largest level first, replicas in order) — length
    {!space}. Tallies are cumulative since each level was first
    published. *)

val publications : t -> int
val reclaimed : t -> int
(** Levels freed so far. *)

val retired_pending : t -> int
(** Retired levels still waiting for readers to leave. *)

val pending_updates : t -> int
(** Updates applied since the last publication (the batch the next
    {!publish} will make visible). Builder-owned counter. *)

val publish_ns_total : t -> int
(** Cumulative wall time spent inside {!publish}, nanoseconds.
    Builder-owned. *)

val reclaim_lag_total : t -> int
(** Sum over freed levels of their reclamation lag — how many epochs
    each level sat retired before {!try_reclaim} freed it. With
    {!reclaimed} this gives the mean lag. Builder-owned. *)

val reclaim_lag_max : t -> int
(** Worst reclamation lag observed so far, in epochs. Builder-owned. *)

val announced_min : t -> int option
(** The minimum epoch currently announced across reader slots — the
    reclamation horizon — or [None] when every reader is quiescent.
    Reads only atomics; safe from any domain. *)

val reader_lag : t -> int
(** [epoch (current t) - announced_min], or [0] when all readers are
    quiescent: how far the slowest pinned reader trails the published
    epoch right now. Safe from any domain. *)

val oldest_retired_age : t -> int
(** Age in epochs of the oldest retired-but-unfreed level ([0] when the
    retired list is empty). Builder-owned. *)

val reader_staleness : t -> reader -> int
(** [epoch (current t) - last_epoch r]: how many publications have
    happened since [r] last pinned. Reads [r]'s own snapshot field, so
    call it from [r]'s owning domain or after joining it. *)

val total_probes : t -> int
(** Probes across live levels, retired-but-unfreed levels and the
    drained tallies of freed levels. At any point where no query is in
    flight this equals the sum of {!reader_probes} over all readers. *)
