(* T15: concurrent read-write serving over epoch-published levels.
   T9 dynamized the dictionary sequentially; this experiment serves it
   concurrently: one builder domain applies a mixed insert/delete
   stream and publishes immutable level snapshots (one Atomic.set
   each), reader domains probe the published levels lock-free through
   pinned epochs, and retired levels are reclaimed only after every
   reader has provably left their epoch. The claims under test are
   that answers stay correct while the table churns beneath the
   readers, that reclamation keeps pace without ever freeing a level a
   reader can still see, and that the three independent probe
   accountings (reader counters, windowed telemetry, the structure's
   own per-cell tallies) reconcile exactly. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Engine = Lc_parallel.Engine
module Epoch = Lc_dynamic.Epoch
module Opstream = Lc_workload.Opstream
module Window = Lc_obs.Window

let t15 =
  {
    Experiment.id = "T15";
    title = "Epoch-published dynamic levels: lock-free reads under a mutating builder";
    claim =
      "A single builder domain can apply a 90/10 read-write op stream to the dynamized \
       dictionary while reader domains serve queries lock-free against epoch-published level \
       snapshots: every query answers from a consistent published epoch (the concurrent \
       property test in test_dynamic additionally checks answers against that epoch's \
       oracle), levels retired by a publication are reclaimed only after all readers leave \
       the epoch — so the reclaimed count grows with churn while retired-pending returns to \
       zero at quiescence — and the engine result, the windowed telemetry and the epoch \
       structure's per-cell tallies agree on the probe totals exactly, at every domain \
       count.";
    run =
      (fun ~seed ->
        let n = 512 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let ops_per_domain = 8_000 and read_fraction = 0.9 and publish_every = 64 in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "T15: rw:%.2f op stream, %d ops/domain, publish every %d updates (n = %d \
                  preloaded)"
                 read_fraction ops_per_domain publish_every n)
            ~columns:
              [
                "domains"; "queries"; "hit rate"; "ins+del"; "pubs"; "reclaimed"; "pending";
                "probes/q"; "ns/q"; "reconcile";
              ]
        in
        List.iter
          (fun domains ->
            let erng = Rng.create (seed + (31 * domains)) in
            let epoch = Epoch.create erng ~universe () in
            Array.iter (Epoch.insert epoch) keys;
            Epoch.publish epoch;
            let snap0 = Epoch.current epoch in
            let ops =
              Opstream.generate
                ~mix:(Opstream.read_write_mix ~read_fraction)
                ~initial_pool:keys erng ~universe ~length:(domains * ops_per_domain)
                ~working_set:(2 * n)
            in
            let mon =
              Engine.Monitor.create_for ~interval_s:0.03 ~domains ~space:(Epoch.space snap0)
                ~max_probes:(Epoch.max_probes snap0) ()
            in
            let cfg = Engine.Config.make ~monitor:mon ~domains ~seed:(seed + 17) () in
            let o = Engine.run cfg (Engine.Dynamic { epoch; ops; publish_every }) in
            let r = o.Engine.result in
            let u = Option.get o.Engine.updates in
            let sum_q =
              List.fold_left (fun a (e : Window.entry) -> a + e.queries) 0 o.Engine.windows
            in
            let reconcile =
              if sum_q = r.Engine.queries && Epoch.total_probes epoch = r.Engine.total_probes
              then "exact"
              else "MISMATCH"
            in
            Tablefmt.add_row tbl
              [
                string_of_int domains;
                string_of_int r.Engine.queries;
                Printf.sprintf "%.2f"
                  (float_of_int u.Engine.query_hits /. float_of_int r.Engine.queries);
                Printf.sprintf "%d+%d" u.Engine.inserts u.Engine.deletes;
                string_of_int u.Engine.publications;
                string_of_int u.Engine.reclaimed;
                string_of_int u.Engine.retired_pending;
                Printf.sprintf "%.2f"
                  (float_of_int r.Engine.total_probes /. float_of_int r.Engine.queries);
                Printf.sprintf "%.0f"
                  (r.Engine.seconds *. 1e9 /. float_of_int r.Engine.queries);
                reconcile;
              ])
          [ 1; 2; 4 ];
        Tablefmt.render tbl
        ^ "\nExpected shape: every row reconciles exactly — Σ window queries = engine \
           queries, and the epoch structure's per-cell tallies (live levels + retired + \
           drained-on-free) equal the readers' cumulative probe counters. The update column \
           is identical across rows at a fixed seed's mix draw only in expectation; what is \
           invariant is that publications = updates/publish_every (+ the final cut + the \
           preload), reclaimed grows into the tens as Bentley-Saxe cascades retire small \
           levels, and pending returns to 0 once the run's final try_reclaim sees all \
           readers quiescent. The hit rate stays high (~0.6-0.7), not near zero: \
           initial_pool seeds the query locality with the preloaded keys, decaying toward \
           the churn steady state as the run lengthens. ns/query is machine-dependent; reconciliation and reclamation \
           are not."
        ^ "\n");
  }

let register () = Experiment.register t15
