(* T18: flash-crowd recovery under contention-adaptive replication.
   The sensing stack (windowed sketches, alerts) existed since T13-T17;
   this experiment closes the loop. Two arms serve the *same*
   seed-deterministic point-mass stream — flat for the first third,
   then a 90% flash crowd on a single key — one with the replication
   controller attached, one with the boost frozen at its create-time
   value. The claim under test is asymmetric recovery: both arms see
   the same windowed contention spike at onset, but only the adaptive
   arm's controller trips, re-replicates the hot level through the
   epoch publication protocol, and drives the windowed ratio back under
   the trip threshold within a handful of windows, where it stays. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Engine = Lc_parallel.Engine
module Epoch = Lc_dynamic.Epoch
module Opstream = Lc_workload.Opstream
module Window = Lc_obs.Window
module Heavy = Lc_obs.Heavy
module Controller = Lc_control.Controller
module Policy = Lc_control.Policy

(* The controller's windowed estimator, replayed over the outcome's
   window list so both arms are scored by the same signal the policy
   acted on (see Controller's doc for why the cumulative hotspot_ratio
   is too slow to measure recovery). *)
let windowed_ratios ~space ~max_probes windows =
  let prev = ref [] in
  List.map
    (fun (e : Window.entry) ->
      let tally =
        List.fold_left
          (fun best (h : Heavy.entry) ->
            let w =
              match List.assoc_opt h.item !prev with
              | Some (pc, pe) when pe = h.err -> max 0 (h.count - pc)
              | Some (pc, _) -> max 0 (h.count - h.err - pc)
              | None -> max 0 (h.count - h.err)
            in
            max best w)
          0 e.Window.top_cells
      in
      prev :=
        List.map (fun (h : Heavy.entry) -> (h.item, (h.count, h.err))) e.Window.top_cells;
      let flat =
        float_of_int e.Window.queries *. float_of_int max_probes /. float_of_int space
      in
      if flat > 0.0 then float_of_int tally /. flat else 0.0)
    windows

type arm_result = {
  a_label : string;
  a_queries : int;
  a_nwindows : int;
  a_onset : int option;  (* first window at or above the trip ratio *)
  a_peak : float;
  a_recovery : int option;  (* windows from onset to sustained sub-trip *)
  a_hot_after : int;  (* post-onset windows at or above the trip ratio *)
  a_final_boost : int;
  a_decisions : Controller.decision list;
}

let run_arm ~seed ~adaptive ~domains ~n ~queries_per_domain ~hot_share ~interval_s =
  let rng = Rng.create seed in
  let universe = Common.universe_for n in
  let keys = Lc_workload.Keyset.random rng ~universe ~n in
  let hot_key = (Lc_workload.Keyset.negatives rng ~universe ~keys ~count:1).(0) in
  let epoch = Epoch.create rng ~universe () in
  Array.iter (Epoch.insert epoch) keys;
  Epoch.insert epoch hot_key;
  Epoch.publish epoch;
  let length = domains * queries_per_domain in
  let ops =
    Opstream.point_mass
      ~mix:{ Opstream.p_insert = 0.0; p_delete = 0.0 }
      ~initial_pool:keys rng ~universe ~length ~working_set:n ~hot_from:(length / 3)
      ~hot_share ~hot_key
  in
  let s0 = Epoch.current epoch in
  let space = Epoch.space s0 and max_probes = Epoch.max_probes s0 in
  (* top_k 64: a flash-crowd cell's probe-stream share is diluted by
     the ~max_probes flat probes every query costs, so the sketch's
     retention floor (~1/k) must sit below that share for the hot cell
     to stay resident. *)
  let mon =
    Engine.Monitor.create_for ~interval_s ~top_k:64 ~domains ~space ~max_probes ()
  in
  let ctl =
    if not adaptive then None
    else begin
      let c =
        Controller.create ~space ~max_probes
          ~boost:(Lc_dynamic.Dynamic.small_level_boost (Epoch.inner epoch))
          ()
      in
      Engine.Monitor.attach_controller mon c;
      Some c
    end
  in
  let cfg = Engine.Config.make ~monitor:mon ~domains ~seed:(seed + 17) () in
  let o = Engine.run cfg (Engine.Dynamic { epoch; ops; publish_every = 64 }) in
  let ratios = Array.of_list (windowed_ratios ~space ~max_probes o.Engine.windows) in
  let trip = Policy.default.Policy.high_ratio in
  let nw = Array.length ratios in
  let onset = ref None and peak = ref 0.0 in
  Array.iteri
    (fun i r ->
      if r > !peak then peak := r;
      if r >= trip && !onset = None then onset := Some i)
    ratios;
  (* Recovery: the first post-onset window opening a run of five
     consecutive sub-trip windows (or sub-trip through the end of the
     run), counted in windows after onset. The five-window run
     distinguishes recovery from the one-window dips a cumulative
     signal would smear over. *)
  let recovery =
    match !onset with
    | None -> None
    | Some on ->
      let rec scan i =
        if i >= nw then None
        else begin
          let stop = min nw (i + 5) in
          let rec clean j = j >= stop || (ratios.(j) < trip && clean (j + 1)) in
          if clean i then Some (i - on) else scan (i + 1)
        end
      in
      scan (on + 1)
  in
  let hot_after =
    match !onset with
    | None -> 0
    | Some on ->
      let c = ref 0 in
      Array.iteri (fun i r -> if i >= on && r >= trip then incr c) ratios;
      !c
  in
  {
    a_label = (if adaptive then "adaptive" else "frozen");
    a_queries = o.Engine.result.Engine.queries;
    a_nwindows = nw;
    a_onset = !onset;
    a_peak = !peak;
    a_recovery = recovery;
    a_hot_after = hot_after;
    a_final_boost = Epoch.applied_boost epoch;
    a_decisions = (match ctl with Some c -> Controller.decisions c | None -> []);
  }

let t18 =
  {
    Experiment.id = "T18";
    title = "Flash crowd: adaptive re-replication recovers, frozen boost stays degraded";
    claim =
      "When a query stream shifts from flat to a 90% point mass on one key, the windowed \
       contention ratio spikes identically in both arms, but only the arm with the \
       replication controller attached recovers: its hysteresis trips within a few hot \
       windows, each raise multiplies the small-level replication through the next epoch \
       publication (one Atomic.set, readers never blocked) and divides the hot cell's \
       per-replica traffic by the step, and the windowed ratio falls back under the trip \
       threshold and stays there — while the frozen-boost arm's ratio remains pinned above \
       the threshold for the rest of the run. Every controller decision in the adaptive arm \
       is recorded with its sketch evidence and reproduced in the rendered timeline.";
    run =
      (fun ~seed ->
        let domains = 2
        and n = 256
        and queries_per_domain = 400_000
        and hot_share = 0.9
        and interval_s = 0.03 in
        let arms =
          List.map
            (fun adaptive ->
              run_arm ~seed ~adaptive ~domains ~n ~queries_per_domain ~hot_share
                ~interval_s)
            [ false; true ]
        in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "T18: flash:%.1f point mass at 1/3 of %d ops, n = %d, %d domains, %.0f ms \
                  windows, trip ratio %.1f"
                 hot_share
                 (domains * queries_per_domain)
                 n domains (interval_s *. 1e3) Policy.default.Policy.high_ratio)
            ~columns:
              [
                "arm"; "queries"; "windows"; "onset"; "peak ratio"; "recovery";
                "hot windows after onset"; "final boost"; "decisions";
              ]
        in
        List.iter
          (fun a ->
            let opt = function None -> "never" | Some v -> string_of_int v in
            Tablefmt.add_row tbl
              [
                a.a_label;
                string_of_int a.a_queries;
                string_of_int a.a_nwindows;
                opt a.a_onset;
                Printf.sprintf "%.1fx" a.a_peak;
                (match a.a_recovery with
                | None -> "never"
                | Some w -> Printf.sprintf "%d windows" w);
                string_of_int a.a_hot_after;
                string_of_int a.a_final_boost;
                string_of_int (List.length a.a_decisions);
              ])
          arms;
        let timeline =
          match List.find_opt (fun a -> a.a_label = "adaptive") arms with
          | None | Some { a_decisions = []; _ } -> "\n(no controller decisions recorded)"
          | Some a ->
            List.fold_left
              (fun acc (d : Controller.decision) ->
                acc
                ^ Printf.sprintf
                    "\n  #%d at window %d: %s boost %d -> %d (windowed ratio %.1fx, cell \
                     %d tally %d±%d, score %d, cooldown %d)"
                    d.Controller.d_id d.d_window
                    (match d.d_action with `Raise -> "raise" | `Lower -> "lower")
                    d.d_old_boost d.d_new_boost d.d_ratio d.d_cell d.d_count d.d_err
                    d.d_score d.d_cooldown)
              "\nAdaptive arm decision timeline:" a.a_decisions
        in
        Tablefmt.render tbl ^ timeline
        ^ "\nExpected shape: onset lands about a third of the way into each arm's run (the \
           crowd arrives at a fixed op index; windows are wall-clock, so the absolute \
           window number differs with each arm's throughput), the peak ratio is far above \
           the trip threshold, and then the arms diverge. The adaptive arm recovers — \
           typically within ~15 windows of onset: four hot windows per raise times the \
           three raises the crowd needs, separated by cooldowns, each raise announced in \
           the timeline with the hot cell's sketched evidence — and its post-onset \
           hot-window count stays small, while the frozen arm's ratio never re-crosses the \
           threshold and nearly every post-onset window stays hot. Window counts are wall-clock (machine-dependent); \
           the asymmetry between the arms is not. The final decisions may include slow \
           decays (one per ~40 quiet windows): below the sketch's retention floor a \
           suppressed crowd and a quiet stream are indistinguishable, so the policy probes \
           downward rarely and relies on the fast raise path to re-absorb a flare."
        ^ "\n");
  }

let register () = Experiment.register t18
