(* T16: the update-path observatory answering the paper's closing
   question with live numbers. Aspnes-Eisenstat-Yampolskiy close by
   asking what dynamization costs when the structure must stay
   low-contention: level replication (small_level_boost) multiplies the
   cells each Bentley-Saxe merge writes, so the update path pays for
   the read path's contention bound. This experiment sweeps the boost
   against the read fraction and reads the price off the telemetry the
   engine now keeps: exact cells written per level build, wall time
   split between merging and publishing, and write amplification —
   all reconciled against the op stream's own counts and the epoch
   structure's publication/reclamation tallies. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Engine = Lc_parallel.Engine
module Epoch = Lc_dynamic.Epoch
module Opstream = Lc_workload.Opstream
module Window = Lc_obs.Window

let t16 =
  {
    Experiment.id = "T16";
    title = "Write amplification vs small_level_boost: what dynamization costs";
    claim =
      "The observatory prices dynamization exactly as the level geometry predicts: raising \
       small_level_boost grows the cells written (and the write amplification) sub-linearly \
       in B — only levels with B >> i > 1 carry extra replicas, so boost 4 costs ~1.5x \
       boost 1, not 4x — a higher read fraction raises the amplification ratio because the \
       preloaded large level's merges amortize over fewer inserts, and every row reconciles \
       exactly: builder inserts/deletes/queries equal Opstream.counts, the windowed u_cells \
       sums equal the run's cells_written, and the engine's publication/reclamation totals \
       equal the epoch structure's own.";
    run =
      (fun ~seed ->
        let n = 512 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let domains = 2 and ops_per_domain = 8_000 and publish_every = 64 in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "T16: boost x read-fraction sweep, %d domains, %d ops/domain, publish \
                  every %d (n = %d preloaded)"
                 domains ops_per_domain publish_every n)
            ~columns:
              [
                "boost"; "rw"; "ins+del"; "pubs"; "cells"; "w-amp"; "rebuilds"; "ns/upd";
                "rb-share"; "reconcile";
              ]
        in
        List.iter
          (fun small_level_boost ->
            List.iter
              (fun read_fraction ->
                let erng =
                  Rng.create (seed + (31 * small_level_boost) + (7 * int_of_float (read_fraction *. 100.)))
                in
                let epoch = Epoch.create ~small_level_boost erng ~universe () in
                Array.iter (Epoch.insert epoch) keys;
                Epoch.publish epoch;
                let snap0 = Epoch.current epoch in
                let ops =
                  Opstream.generate
                    ~mix:(Opstream.read_write_mix ~read_fraction)
                    ~initial_pool:keys erng ~universe ~length:(domains * ops_per_domain)
                    ~working_set:(2 * n)
                in
                let s_ins, s_del, s_q = Opstream.counts ops in
                let mon =
                  Engine.Monitor.create_for ~interval_s:0.03 ~domains
                    ~space:(Epoch.space snap0) ~max_probes:(Epoch.max_probes snap0) ()
                in
                let cfg = Engine.Config.make ~monitor:mon ~domains ~seed:(seed + 23) () in
                let o = Engine.run cfg (Engine.Dynamic { epoch; ops; publish_every }) in
                let r = o.Engine.result in
                let u = Option.get o.Engine.updates in
                let win_cells =
                  List.fold_left
                    (fun a (e : Window.entry) ->
                      match e.updates with Some w -> a + w.Window.u_cells | None -> a)
                    0 o.Engine.windows
                in
                let update_ops = u.Engine.inserts + u.Engine.deletes in
                let reconcile =
                  if
                    u.Engine.inserts = s_ins && u.Engine.deletes = s_del
                    && r.Engine.queries = s_q
                    && win_cells = u.Engine.cells_written
                    && u.Engine.publications = Epoch.publications epoch
                    && u.Engine.reclaimed = Epoch.reclaimed epoch
                  then "exact"
                  else "MISMATCH"
                in
                Tablefmt.add_row tbl
                  [
                    string_of_int small_level_boost;
                    Printf.sprintf "%.2f" read_fraction;
                    Printf.sprintf "%d+%d" u.Engine.inserts u.Engine.deletes;
                    string_of_int u.Engine.publications;
                    string_of_int u.Engine.cells_written;
                    Printf.sprintf "%.2f" u.Engine.write_amp;
                    string_of_int u.Engine.rebuilds;
                    Printf.sprintf "%.0f"
                      (if update_ops = 0 then 0.
                       else float_of_int u.Engine.builder_ns /. float_of_int update_ops);
                    Printf.sprintf "%.2f"
                      (if u.Engine.builder_ns = 0 then 0.
                       else
                         float_of_int u.Engine.rebuild_ns /. float_of_int u.Engine.builder_ns);
                    reconcile;
                  ])
              [ 0.5; 0.9 ])
          [ 1; 2; 4 ];
        Tablefmt.render tbl
        ^ "\nExpected shape: every row reconciles exactly. At fixed rw the cells and w-amp \
           columns grow with the boost but sub-linearly — boost B replicates level i into \
           max(1, B >> i) copies, so only the smallest levels pay extra and boost 4 writes \
           ~1.5x the cells of boost 1 — while pubs and ins+del stay put (the stream and \
           publish cadence do not depend on the boost). Dropping rw from 0.90 to 0.50 \
           multiplies the update count ~5x and the absolute cells with it, yet w-amp \
           (cells per insert) is {e lower}: the preloaded n-key level is rewritten by \
           cascades either way, and the longer stream amortizes that fixed bill over more \
           inserts. rb-share is the fraction of builder wall time spent inside merges — \
           the paper's closing question priced per row: the boost buys the read side its \
           contention bound, and this column (with ns/upd and w-amp) is what the write \
           side pays for it. ns/upd is machine-dependent; reconciliation and the \
           amplification ratios are not."
        ^ "\n");
  }

let register () = Experiment.register t16
