(* T12: the multicore serving engine — real domains, per-cell atomic
   probe counters — turns the contention bound of Theorem 3 into a
   measured quantity. The quantity to watch is "x flat": the hottest
   cell's tally divided by the flat bound q*t/s. For the low-contention
   dictionary it is O(1); for any structure that routes every query
   through an unreplicated cell it is Theta(s). *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Qdist = Lc_cellprobe.Qdist
module Engine = Lc_parallel.Engine

let t12 =
  {
    Experiment.id = "T12";
    title = "Multicore serving: throughput and per-cell atomic probe counts";
    claim =
      "Theorem 3, measured instead of counted: with m domains serving queries against one \
       shared table, the low-contention dictionary's hottest per-cell atomic tally stays \
       within a constant factor of the flat bound q*t/s (contention O(1/n)), while FKS's \
       unreplicated top-level parameter cell and binary search's root absorb a constant \
       fraction of all probes — Theta(s) over the flat bound — and serialise every domain \
       behind one cache line.";
    run =
      (fun ~seed ->
        let n = 512 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let arms =
          [
            ( "low-contention",
              Lc_core.Dictionary.instance (Common.lc_build rng ~universe ~keys) );
            ( "fks (no repl.)",
              Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys) );
            ( "dm-replicated",
              Lc_dict.Dm_dict.instance (Lc_dict.Dm_dict.build ~replicate:true rng ~universe ~keys)
            );
            ( "cuckoo-repl.",
              Lc_dict.Cuckoo.instance (Lc_dict.Cuckoo.build ~replicate:true rng ~universe ~keys)
            );
            ( "binary-search",
              Lc_dict.Sorted_array.instance (Lc_dict.Sorted_array.build ~universe ~keys) );
          ]
        in
        let pos = Qdist.uniform ~name:"uniform-positive" keys in
        let zipf = Qdist.zipf ~skew:1.0 keys in
        let qpd = 4_000 in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "T12: m domains x %d queries each, per-cell fetch-and-add counters (n = %d)" qpd
                 n)
            ~columns:
              [
                "structure"; "dist"; "m"; "queries"; "kq/s"; "hottest"; "flat q*t/s"; "x flat";
                "share %"; "p50 us"; "p99 us"; "lockwait ms";
              ]
        in
        List.iter
          (fun (label, inst) ->
            List.iter
              (fun (dname, qd, cost, ms) ->
                List.iter
                  (fun m ->
                    (* A fresh handle per run: the per-domain latency
                       histograms and spin-wait totals below come from
                       this serve alone. *)
                    let obs = Lc_obs.Obs.create () in
                    let o =
                      Engine.run
                        (Engine.Config.make ~cost ~obs ~domains:m ~seed:(seed + (13 * m)) ())
                        (Engine.Static { inst; qdist = qd; queries_per_domain = qpd })
                    in
                    let r = o.Engine.result in
                    let snap = Lc_obs.Obs.snapshot obs in
                    let lat_q q =
                      match Lc_obs.Metrics.Snapshot.find_hist snap "engine_query_latency_ns" with
                      | Some h -> Lc_obs.Metrics.Snapshot.quantile h q /. 1e3
                      | None -> 0.0
                    in
                    let lock_wait_ms =
                      match Lc_obs.Metrics.Snapshot.find_hist snap "engine_spinlock_wait_ns" with
                      | Some h -> float_of_int h.sum /. 1e6
                      | None -> 0.0
                    in
                    Tablefmt.add_row tbl
                      [
                        label;
                        dname;
                        string_of_int m;
                        string_of_int r.queries;
                        Printf.sprintf "%.0f" (r.throughput /. 1e3);
                        string_of_int r.hottest_count;
                        Printf.sprintf "%.1f" r.flat_bound;
                        Printf.sprintf "%.1f" (Engine.hotspot_ratio r);
                        Printf.sprintf "%.2f" (100.0 *. r.hottest_share);
                        Printf.sprintf "%.1f" (lat_q 0.5);
                        Printf.sprintf "%.1f" (lat_q 0.99);
                        Printf.sprintf "%.2f" lock_wait_ms;
                      ])
                  ms)
              [
                ("uniform", pos, Engine.Free, [ 1; 2; 4 ]);
                ("zipf(1.0)", zipf, Engine.Free, [ 4 ]);
                ("unif+spin16", pos, Engine.Spinlock { hold = 16 }, [ 4 ]);
              ])
          arms;
        Tablefmt.render tbl
        ^ "\nExpected shape: under the uniform distribution (the Theorem 3 regime) the \
           low-contention dictionary's 'x flat' stays O(1) at every domain count, so no cell \
           serialises the domains; fks (no repl.) and binary-search concentrate 25% / ~1/log n \
           of all probes on their hottest cell, putting 'x flat' in the hundreds — the \
           Theta(sqrt n)-vs-O(1/n) separation of Section 1.3 as hardware traffic. Under \
           zipf(1.0) every bounded-probe structure shows a hot data cell (the repeated query's \
           own Point probe — replication cannot spread one query asked q_max of the time), but \
           the low-contention dictionary still beats the shared-cell structures by the same \
           Theta(s) factor. The telemetry columns (per-domain shard histograms, merged at \
           snapshot) localise the cost: p50/p99 per-query latency, and under the spinlock cost \
           model ('unif+spin16', every same-cell visit serialised with a 16-relax hold) the \
           summed wait time behind per-cell locks — a hot-cell structure spends orders of \
           magnitude more wall-clock waiting than the levelled dictionary. Wall-clock \
           throughput, latency, and wait columns depend on the machine's core count; the \
           per-cell tallies do not.");
  }

let register () = Experiment.register t12
