(* T14: the perf trajectory closed loop. T12/T13 measure a single run;
   this experiment exercises the machinery that compares runs across
   time: a schema-versioned bench artifact is produced, diffed against
   itself (the differ must stay silent — CI-overlap and Mann-Whitney
   both see identical samples), then diffed against a copy with a
   planted 2x ns/query regression (the differ must flag exactly that
   configuration and nothing else), and finally the alert-triggered
   flight recorder is driven over an unreplicated structure to show a
   postmortem dump that reconstructs the alert timeline offline. *)

module Rng = Lc_prim.Rng
module Experiment = Lc_analysis.Experiment
module Artifact = Lc_perf.Artifact
module Suite = Lc_perf.Suite
module Diff = Lc_perf.Diff
module Select = Lc_perf.Select
module Postmortem = Lc_perf.Postmortem
module Engine = Lc_parallel.Engine
module Journal = Lc_obs.Journal

(* Double one configuration's ns/query samples in memory: the planted
   regression a trajectory diff exists to catch. *)
let plant_regression (art : Artifact.t) ~structure =
  let double (c : Artifact.ci) =
    {
      Artifact.mean = c.Artifact.mean *. 2.0;
      lo = c.Artifact.lo *. 2.0;
      hi = c.Artifact.hi *. 2.0;
      samples = List.map (fun s -> s *. 2.0) c.Artifact.samples;
    }
  in
  {
    art with
    Artifact.entries =
      List.map
        (fun (e : Artifact.entry) ->
          if e.Artifact.structure = structure then
            { e with Artifact.ns_per_query = double e.Artifact.ns_per_query }
          else e)
        art.Artifact.entries;
  }

let flight_recorder_arm ~seed ~structure ~alert_factor =
  let n = 256 in
  let rng = Rng.create (seed + 71) in
  let universe = Common.universe_for n in
  let keys = Lc_workload.Keyset.random rng ~universe ~n in
  let inst = Select.structure rng ~universe ~keys structure in
  let qd = Select.workload rng ~universe ~keys "pos" in
  let domains = 2 in
  let journal = Journal.create ~writers:(domains + 2) ~capacity:512 in
  let captured = ref None in
  let mon_ref = ref None in
  let on_alert e =
    Option.iter
      (fun mon ->
        captured :=
          Some
            (Postmortem.capture
               ~fingerprint:(Artifact.fingerprint ~seed)
               ~structure ~workload:"pos" ~domains ~trigger:e mon))
      !mon_ref
  in
  let mon = Engine.Monitor.create ~alert_factor ~journal ~on_alert ~domains inst in
  mon_ref := Some mon;
  let w =
    Engine.run
      (Engine.Config.make ~monitor:mon ~domains ~seed:(seed + 5) ())
      (Engine.Static { inst; qdist = qd; queries_per_domain = 2_000 })
  in
  (w, !captured)

let t14 =
  {
    Experiment.id = "T14";
    title = "Perf trajectory: artifact self-diff silence, planted-regression detection, postmortem";
    claim =
      "The perf-trajectory machinery is trustworthy in both directions: an artifact diffed \
       against itself reports no change in any configuration (identical samples give \
       Mann-Whitney p = 1 and overlapping bootstrap CIs, so neither significance gate \
       opens), while a planted 2x ns/query regression in one configuration is flagged as \
       significant in exactly that configuration (disjoint CIs and exact-null p < 0.05 \
       agree) and nowhere else. When the hotspot alert fires on an unreplicated structure \
       the flight recorder's postmortem dump round-trips through its schema and \
       reconstructs the alert timeline — stage marks, worker publications, window cuts and \
       the raise itself — offline, from the document alone.";
    run =
      (fun ~seed ->
        let buf = Buffer.create 4096 in
        let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        (* Arm 1: artifact + self-diff. Four trials, not quick's three:
           the exact Mann-Whitney null needs 4 vs 4 before even fully
           separated samples can reach p = 2/70 < 0.05. *)
        let art = Suite.run ~seed { Suite.quick with Suite.trials = 4 } in
        add "Suite: %d entries, seed %d, git %s\n\n"
          (List.length art.Artifact.entries)
          art.Artifact.fingerprint.Artifact.seed
          art.Artifact.fingerprint.Artifact.git_rev;
        let self = Diff.compare_artifacts art art in
        add "%s\n" (Diff.render self);
        add "Self-diff verdict: %s\n\n"
          (if self.Diff.regressions = 0 && self.Diff.improvements = 0 then
             "silent (as required)"
           else "NOISY — differ flagged identical samples");
        (* Arm 2: planted 2x regression on the first structure. *)
        let victim =
          (List.hd art.Artifact.entries).Artifact.structure
        in
        let planted = Diff.compare_artifacts art (plant_regression art ~structure:victim) in
        add "%s\n" (Diff.render planted);
        let flagged_only_victim =
          Diff.has_regression planted
          && List.for_all
               (fun (row : Diff.row) ->
                 let s, _, _ = row.Diff.key in
                 if s = victim then row.Diff.ns.Diff.verdict = Diff.Regression
                 else row.Diff.ns.Diff.verdict = Diff.No_change)
               planted.Diff.rows
        in
        add "Planted-regression verdict: %s\n\n"
          (if flagged_only_victim then
             Printf.sprintf "flagged %s and only %s (as required)" victim victim
           else "WRONG ROWS FLAGGED");
        (* Arm 3: flight recorder on hot vs quiet structures. *)
        let hot, dump = flight_recorder_arm ~seed ~structure:"fks-norepl" ~alert_factor:2.0 in
        let quiet, quiet_dump = flight_recorder_arm ~seed ~structure:"lc" ~alert_factor:8.0 in
        add "Flight recorder, fks-norepl at 2.0x: %d alert windows, dump %s\n"
          hot.Engine.alert_windows
          (match dump with
          | None -> "MISSING"
          | Some pm ->
            let roundtrip =
              match Postmortem.of_string (Postmortem.to_string pm) with
              | Ok pm' when pm' = pm -> "round-trips"
              | Ok _ -> "ROUND-TRIP DRIFT"
              | Error e -> "ROUND-TRIP FAILED: " ^ e
            in
            Printf.sprintf "captured (%d events, %d windows, %s)"
              (List.length pm.Postmortem.events)
              (List.length pm.Postmortem.windows)
              roundtrip);
        add "Flight recorder, lc at 8.0x: %d alert windows, dump %s\n"
          quiet.Engine.alert_windows
          (match quiet_dump with None -> "none (as required)" | Some _ -> "SPURIOUS");
        (match dump with
        | Some pm ->
          add "\nPostmortem reconstruction:\n%s" (Postmortem.analyze pm)
        | None -> ());
        add
          "\nExpected shape: the self-diff is silent in every configuration; the planted \
           diff flags the doubled structure's ns/query (CIs disjoint, p < 0.05) and leaves \
           the other rows and all probe counts untouched; the unreplicated arm fires the \
           alert and dumps a postmortem whose timeline shows build/serve stages, worker \
           publications and the ALERT RAISED transition; the low-contention arm at the \
           default factor records nothing. Timings vary by machine; the verdicts do not.\n";
        Buffer.contents buf);
  }

let register () = Experiment.register t14
