(* T17: the scaling observatory's headline claim, measured. The paper's
   replication argument says the low-contention dictionary should keep
   its serialisation penalty small as domains are added: what limits
   throughput(n) is the contention coefficient sigma in Gunther's USL,
   and replication exists precisely to shrink it. This experiment runs
   the same read-side sweep over the low-contention structure and
   unreplicated FKS, fits both curves, and compares the fitted sigmas —
   the number the whole construction is supposed to move. Phase shares
   and allocation gauges ride along so a sigma difference can be
   attributed to probe-path contention rather than GC or engine
   overhead. *)

module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Usl = Lc_analysis.Usl
module Scaling = Lc_perf.Scaling

let t17 =
  {
    Experiment.id = "T17";
    title = "USL contention fit: lc vs unreplicated FKS across domain counts";
    claim =
      "Fitting throughput(n) = lambda*n / (1 + sigma*(n-1) + kappa*n*(n-1)) to a 1..4 \
       domain sweep over the same key set and query distribution: on a machine with at \
       least as many hardware cores as the largest sweep point, the low-contention \
       dictionary's fitted sigma is smaller than unreplicated FKS's — replication \
       spreads the hot probes across cells, so adding domains serialises less of the \
       work. On core-starved machines the sweep degenerates honestly: the rendered core \
       count and per-point idle shares say so, and the fitted sigma measures scheduler \
       time-slicing, not cell contention. Every point's per-worker phase attribution \
       reconciles exactly with its batch wall time (the sweep raises otherwise), and \
       the alloc/query gauge separates the structures' allocation behaviour (lc's \
       per-query probe-plan closures are the documented LC004 debt; FKS allocates a \
       few words) without either confounding the fit through GC pauses.";
    run =
      (fun ~seed ->
        let n = 512 in
        let domain_counts = [ 1; 2; 3; 4 ] in
        let queries_per_domain = 4_000 and trials = 3 in
        let cores = Domain.recommended_domain_count () in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "T17: throughput and phase shares, %d queries/domain x %d trials (n = %d, \
                  uniform positive, %d hardware core(s))"
                 queries_per_domain trials n cores)
            ~columns:
              [ "structure"; "domains"; "qps"; "ns/q"; "probe%"; "idle%"; "alloc/q" ]
        in
        let fits =
          List.map
            (fun structure ->
              let spec =
                {
                  Scaling.structure;
                  workload = "pos";
                  domain_counts;
                  queries_per_domain;
                  trials;
                  n;
                }
              in
              let art = Scaling.run ~seed spec in
              List.iter
                (fun (p : Scaling.point) ->
                  let ph = p.Scaling.p_phases in
                  let wall = float_of_int ph.Scaling.wall_ns in
                  let share part =
                    if wall = 0. then 0. else 100. *. float_of_int part /. wall
                  in
                  Tablefmt.add_row tbl
                    [
                      structure;
                      string_of_int p.Scaling.p_domains;
                      Printf.sprintf "%.0f" p.Scaling.throughput.Lc_perf.Artifact.mean;
                      Printf.sprintf "%.0f" p.Scaling.p_ns_per_query;
                      Printf.sprintf "%.1f" (share ph.Scaling.probe_ns);
                      Printf.sprintf "%.1f" (share ph.Scaling.idle_ns);
                      Printf.sprintf "%.2f" p.Scaling.p_gc.Scaling.minor_words_per_query;
                    ])
                art.Scaling.points;
              (structure, art.Scaling.fit, art.Scaling.fit_error))
            [ "lc"; "fks-norepl" ]
        in
        let fit_lines =
          List.map
            (fun (structure, fit, fit_error) ->
              match (fit, fit_error) with
              | Some (f : Usl.fit), _ ->
                Printf.sprintf
                  "%-10s lambda = %.0f qps  sigma = %.4f  kappa = %.6f  r2 = %.4f"
                  structure f.Usl.lambda f.Usl.sigma f.Usl.kappa f.Usl.r2
              | None, Some e -> Printf.sprintf "%-10s USL fit rejected: %s" structure e
              | None, None -> Printf.sprintf "%-10s USL fit missing" structure)
            fits
        in
        let starved = cores < List.fold_left max 1 domain_counts in
        let sigma_verdict =
          match fits with
          | [ (_, Some lc, _); (_, Some fks, _) ] ->
            Printf.sprintf "sigma(lc) = %.4f vs sigma(fks-norepl) = %.4f — %s"
              lc.Usl.sigma fks.Usl.sigma
              (if starved then
                 Printf.sprintf
                   "INCONCLUSIVE: only %d core(s) for a %d-domain sweep, so the fit \
                    measures time-slicing, not cell contention (note the idle shares \
                    above)"
                   cores
                   (List.fold_left max 1 domain_counts)
               else if lc.Usl.sigma < fks.Usl.sigma then
                 "replication shrinks the serialisation coefficient as claimed"
               else "NOT smaller on this machine/seed; inspect the phase shares above")
          | _ -> "sigma comparison unavailable: at least one fit was rejected"
        in
        Tablefmt.render tbl ^ "\n" ^ String.concat "\n" fit_lines ^ "\n" ^ sigma_verdict
        ^ "\n\
           Expected shape (with enough cores): both structures scale, but the \
           unreplicated FKS curve bends away from linear sooner — its fitted sigma \
           exceeds lc's because every domain hammers the same unreplicated buckets. \
           Phase attribution reconciles per worker by construction; the alloc/q column \
           is the observatory's own finding — lc pays its per-query probe-plan \
           closures (the documented LC004 debt), FKS a few words — and neither moves \
           the fit through GC: major collections during a sweep point are rare at \
           these sizes.");
  }

let register () = Experiment.register t17
