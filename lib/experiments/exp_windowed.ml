(* T13: the live contention observatory. While T12 measures a serving
   run's hot spot after the fact, this experiment watches it happen:
   per-worker Space-Saving sketches and metric shards are seqlock-
   published mid-run, a monitor domain cuts windows on an interval, and
   the windowed engine_hotspot_ratio drives the Theta(sqrt n)-regression
   alert. The claim under test is that the streaming estimate agrees
   with the exact post-run tally (within the sketch error bound), and
   that the alert separates Theorem 3 from an unreplicated structure
   without seeing the exact counts. *)

module Rng = Lc_prim.Rng
module Tablefmt = Lc_analysis.Tablefmt
module Experiment = Lc_analysis.Experiment
module Qdist = Lc_cellprobe.Qdist
module Engine = Lc_parallel.Engine
module Window = Lc_obs.Window

let t13 =
  {
    Experiment.id = "T13";
    title = "Live observatory: windowed rates, sketched hot cells, theory-bound alert";
    claim =
      "The streaming view of a serving run is faithful to the exact one: windowed query \
       counts published through per-worker seqlocks sum to the engine's query total, the \
       merged Space-Saving top-k contains the true hottest cell with its tally bracketed by \
       the sketch error bound, and the final window's engine_hotspot_ratio matches the exact \
       hottest/flat ratio closely enough that a fixed alert factor fires on unreplicated FKS \
       (ratio Theta(s)) while staying silent on the low-contention dictionary (ratio O(1)) — \
       a Theta(sqrt n) contention regression is detectable live, from O(k)-memory sketches, \
       without ever reading the O(s) exact counters.";
    run =
      (fun ~seed ->
        let n = 512 in
        let rng = Rng.create seed in
        let universe = Common.universe_for n in
        let keys = Lc_workload.Keyset.random rng ~universe ~n in
        let arms =
          [
            ( "low-contention",
              Lc_core.Dictionary.instance (Common.lc_build rng ~universe ~keys) );
            ( "fks (no repl.)",
              Lc_dict.Fks.instance (Lc_dict.Fks.build ~replicate:false rng ~universe ~keys) );
          ]
        in
        let qd = Qdist.uniform ~name:"uniform-positive" keys in
        let domains = 4 and qpd = 8_000 and alert_factor = 8.0 in
        let tbl =
          Tablefmt.create
            ~title:
              (Printf.sprintf
                 "T13: %d domains x %d queries, windows every 30 ms, alert at %.0fx flat (n = \
                  %d)"
                 domains qpd alert_factor n)
            ~columns:
              [
                "structure"; "windows"; "sum q"; "engine q"; "ratio (sketch)"; "ratio (exact)";
                "err bound"; "hot cell"; "alerts"; "verdict";
              ]
        in
        let transcripts = Buffer.create 256 in
        List.iter
          (fun (label, inst) ->
            let mon =
              Engine.Monitor.create ~interval_s:0.03 ~publish_period:128 ~top_k:16
                ~alert_factor ~domains inst
            in
            let w =
              Engine.run
                (Engine.Config.make ~monitor:mon ~domains ~seed:(seed + 17) ())
                (Engine.Static { inst; qdist = qd; queries_per_domain = qpd })
            in
            let r = w.result in
            let sum_q = List.fold_left (fun a (e : Window.entry) -> a + e.queries) 0 w.windows in
            let final = List.nth w.windows (List.length w.windows - 1) in
            let cells = Option.get w.cells in
            let flat = r.flat_bound in
            (* The sketch owes us the hottest cell only when it is a
               genuine heavy hitter: tracked with its exact tally inside
               [count - err, count]. Below the error bound (the
               low-contention arm — no cell stands out) it may
               legitimately go untracked. *)
            let hot_cell_verdict =
              let tracked =
                List.exists
                  (fun (e : Lc_obs.Heavy.entry) ->
                    e.item = r.hottest_cell
                    && e.count - e.err <= r.hottest_count
                    && r.hottest_count <= e.count)
                  cells.top
              in
              if tracked then "tracked"
              else if r.hottest_count <= cells.error_bound then "<= bound"
              else "MISSED"
            in
            Tablefmt.add_row tbl
              [
                label;
                string_of_int (List.length w.windows);
                string_of_int sum_q;
                string_of_int r.queries;
                Printf.sprintf "%.1f" final.hotspot_ratio;
                Printf.sprintf "%.1f" (Engine.hotspot_ratio r);
                Printf.sprintf "%.1f" (float_of_int cells.error_bound /. flat);
                hot_cell_verdict;
                string_of_int w.alert_windows;
                (if w.alert_windows > 0 then "ALERT" else "quiet");
              ];
            Buffer.add_string transcripts (Printf.sprintf "\n%s, per window:\n" label);
            List.iter
              (fun (e : Window.entry) ->
                Buffer.add_string transcripts
                  (Printf.sprintf
                     "  w%02d  [%6.3fs, %6.3fs)  q %6d  qps %9.0f  p99 %8.1f us  hot %6.1fx  %s\n"
                     e.index e.t_start_s e.t_end_s e.queries e.qps (e.p99_ns /. 1e3)
                     e.hotspot_ratio
                     (if e.alert then "ALERT" else "-")))
              w.windows)
          arms;
        Tablefmt.render tbl ^ Buffer.contents transcripts
        ^ "\nExpected shape: both arms reconcile exactly ('sum q' = 'engine q' — the final \
           window is cut after the workers' last seqlock publication), the true hottest cell \
           is tracked with its exact tally inside [count - err, count], and the sketched \
           ratio (the guaranteed lower bound) sits within 'err bound' below the exact one. \
           On the low-contention arm the near-uniform stream leaves the sketch no guaranteed \
           heavy hitter, so the ratio reads ~0 (the exact one is itself O(1)) and the alert \
           stays quiet; fks routes every query through its unreplicated parameter cell, the \
           bounds pinch (err 0), the ratio lands in the hundreds, and essentially every \
           window alert fires. Window count and qps depend on the machine; ratios and \
           reconciliation do not."
        ^ "\n");
  }

let register () = Experiment.register t13
