let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Exp_contention_sweep.register ();
    Exp_cost.register ();
    Exp_lemma9.register ();
    Exp_skew.register ();
    Exp_profile.register ();
    Exp_lowerbound.register ();
    Exp_dynamic.register ();
    Exp_ablation.register ();
    Exp_mixture.register ();
    Exp_adaptive.register ();
    Exp_simulation.register ();
    Exp_predecessor.register ();
    Exp_parallel.register ();
    Exp_windowed.register ();
    Exp_perf.register ();
    Exp_epoch.register ();
    Exp_observatory.register ();
    Exp_scaling.register ();
    Exp_flashcrowd.register ()
  end
