(* The committed allowlist, baseline grammar v2. Every suppression names
   its rule, its span (file + enclosing definition), a *typed claim*
   (owner=/protocol= tags) and a one-line justification. The tags are
   machine-readable: an [owner=] tag turns the prose "single writer"
   argument into an LC006-checked fact (the call graph must show every
   non-harness path to the store passing through the declared owners),
   and a [protocol=] tag classifies the discipline that makes the
   construct safe. Entries with neither tag are prose-only and warn:
   the allowlist is supposed to be a ledger of checked claims, not a
   pile of assertions.

   Grammar, one entry per line ('#' starts a comment):

     <RULE> <file> <context> [owner=M.f[,M.g...]] [protocol=NAME]
            [expires=YYYY-MM-DD] -- <justification>

   Tags may appear in any order between the context and the ' -- '.
   Protocol vocabulary (closed set):
     seqlock        — readers retry under an epoch-validated seqlock copy
     epoch          — RCU/epoch publication: immutable snapshots behind
                      one Atomic, reclamation gated on announced epochs
     monitor-domain — written only by the monitor/scrape domain
     domain-local   — per-domain/per-record ownership (shards, readers,
                      rings): one owner per instance, not per function
     lock           — control-plane mutex, never on the probe path
     setup-once     — written before domains spawn / after they join
     bounded-alloc  — allocation accepted with a bounded per-call size

   Matching is on (rule, file, context), not line numbers, so baseline
   entries survive edits that only move code around. Entries may expire:
   after [expires=YYYY-MM-DD] the suppression goes inert and the finding
   resurfaces, which is how "temporarily accepted" debt is kept honest. *)

type date = { y : int; m : int; d : int }

type entry = {
  rule : Rule.t;
  file : string;
  context : string;
  owner : string list;  (* [] = no owner claim; else qualified Module.fn names *)
  protocol : string option;
  expires : date option;  (* None = never *)
  justification : string;
  line_no : int;  (* in the baseline file, for diagnostics *)
}

type t = { path : string; entries : entry list }

let protocols =
  [ "seqlock"; "epoch"; "monitor-domain"; "domain-local"; "lock"; "setup-once"; "bounded-alloc" ]

(* A tagged entry carries a machine-readable claim; a prose-only entry
   does not and is warned about by the driver. *)
let tagged e = e.owner <> [] || e.protocol <> None

let date_to_string d = Printf.sprintf "%04d-%02d-%02d" d.y d.m d.d

let date_of_string s =
  match Scanf.sscanf_opt s "%4d-%2d-%2d%!" (fun y m d -> { y; m; d }) with
  | Some d when d.m >= 1 && d.m <= 12 && d.d >= 1 && d.d <= 31 -> Some d
  | _ -> None

(* An entry is expired from its expiry date onward (inclusive): the
   date names the day the debt comes due. *)
let is_expired ~today e =
  match e.expires with
  | None -> false
  | Some d -> Stdlib.compare (d.y, d.m, d.d) (today.y, today.m, today.d) <= 0

let matches e (f : Finding.t) =
  e.rule = f.rule && e.file = f.file && e.context = f.context

let entry_to_string e =
  Printf.sprintf "%s %s %s%s%s%s" (Rule.id e.rule) e.file e.context
    (match e.owner with [] -> "" | os -> " owner=" ^ String.concat "," os)
    (match e.protocol with None -> "" | Some p -> " protocol=" ^ p)
    (match e.expires with None -> "" | Some d -> " expires=" ^ date_to_string d)

(* Split "head -- justification" on the first " -- ". *)
let split_justification line =
  let n = String.length line in
  let rec find i =
    if i + 4 > n then None
    else if String.sub line i 4 = " -- " then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub line 0 i, String.trim (String.sub line (i + 4) (n - i - 4)))

let tag_value ~tag tok =
  let p = tag ^ "=" in
  if String.length tok > String.length p && String.sub tok 0 (String.length p) = p then
    Some (String.sub tok (String.length p) (String.length tok - String.length p))
  else None

(* Owners are comma-separated qualified names: each must look like
   Module.fn (at least one dot, capitalised head) so typos fail at
   parse time, not as a silently-unverifiable LC006 claim. *)
let parse_owner s =
  let names = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
  if names = [] then Error "empty owner list"
  else if
    List.for_all
      (fun n ->
        match String.split_on_char '.' n with
        | [] | [ _ ] -> false
        | parts ->
          List.for_all (fun p -> p <> "") parts
          && (match (List.hd parts).[0] with 'A' .. 'Z' -> true | _ -> false))
      names
  then Ok names
  else Error (Printf.sprintf "bad owner %S (want Module.fn[,Module.fn...])" s)

let parse_line ~line_no line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let err msg = Error (Printf.sprintf "line %d: %s" line_no msg) in
    match split_justification line with
    | None -> err "missing ' -- justification'"
    | Some (_, "") -> err "empty justification"
    | Some (head, justification) -> (
      let toks =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' head)
      in
      match toks with
      | rule_s :: file :: context :: rest -> (
        match Rule.of_id rule_s with
        | None -> err (Printf.sprintf "unknown rule %S" rule_s)
        | Some rule -> (
          let rec tags owner protocol expires = function
            | [] -> Ok (owner, protocol, expires)
            | tok :: rest -> (
              match tag_value ~tag:"owner" tok with
              | Some v -> (
                if owner <> [] then Error "duplicate owner= tag"
                else
                  match parse_owner v with
                  | Ok os -> tags os protocol expires rest
                  | Error e -> Error e)
              | None -> (
                match tag_value ~tag:"protocol" tok with
                | Some v ->
                  if protocol <> None then Error "duplicate protocol= tag"
                  else if not (List.mem v protocols) then
                    Error
                      (Printf.sprintf "unknown protocol %S (want %s)" v
                         (String.concat "|" protocols))
                  else tags owner (Some v) expires rest
                | None -> (
                  match tag_value ~tag:"expires" tok with
                  | Some ds -> (
                    if expires <> None then Error "duplicate expires= tag"
                    else
                      match date_of_string ds with
                      | Some d -> tags owner protocol (Some d) rest
                      | None ->
                        Error (Printf.sprintf "bad expiry date %S (want YYYY-MM-DD)" ds))
                  | None -> Error (Printf.sprintf "unexpected token %S" tok))))
          in
          match tags [] None None rest with
          | Error msg -> err msg
          | Ok (owner, protocol, expires) ->
            Ok (Some { rule; file; context; owner; protocol; expires; justification; line_no })))
      | _ ->
        err
          "want '<RULE> <file> <context> [owner=M.f] [protocol=NAME] [expires=DATE] -- \
           <justification>'")

let parse ~path content =
  let lines = String.split_on_char '\n' content in
  let entries, errors =
    List.fold_left
      (fun (es, errs) (line_no, line) ->
        match parse_line ~line_no line with
        | Ok None -> (es, errs)
        | Ok (Some e) -> (e :: es, errs)
        | Error msg -> (es, msg :: errs))
      ([], [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  match errors with
  | [] -> Ok { path; entries = List.rev entries }
  | errs -> Error (Printf.sprintf "%s: %s" path (String.concat "; " (List.rev errs)))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> parse ~path content
  | exception Sys_error msg -> Error msg
