(* The committed allowlist. Every suppression names its rule, its span
   (file + enclosing definition), and a one-line justification — the
   single-writer or seqlock argument that makes the flagged construct
   safe. Entries may expire: after [expires=YYYY-MM-DD] the suppression
   goes inert and the finding resurfaces, which is how "temporarily
   accepted" debt is kept honest.

   Grammar, one entry per line ('#' starts a comment):

     <RULE> <file> <context> [expires=YYYY-MM-DD] -- <justification>

   Matching is on (rule, file, context), not line numbers, so baseline
   entries survive edits that only move code around. *)

type date = { y : int; m : int; d : int }

type entry = {
  rule : Rule.t;
  file : string;
  context : string;
  expires : date option;  (* None = never *)
  justification : string;
  line_no : int;  (* in the baseline file, for diagnostics *)
}

type t = { path : string; entries : entry list }

let date_to_string d = Printf.sprintf "%04d-%02d-%02d" d.y d.m d.d

let date_of_string s =
  match Scanf.sscanf_opt s "%4d-%2d-%2d%!" (fun y m d -> { y; m; d }) with
  | Some d when d.m >= 1 && d.m <= 12 && d.d >= 1 && d.d <= 31 -> Some d
  | _ -> None

(* An entry is expired from its expiry date onward (inclusive): the
   date names the day the debt comes due. *)
let is_expired ~today e =
  match e.expires with
  | None -> false
  | Some d -> Stdlib.compare (d.y, d.m, d.d) (today.y, today.m, today.d) <= 0

let matches e (f : Finding.t) =
  e.rule = f.rule && e.file = f.file && e.context = f.context

let entry_to_string e =
  Printf.sprintf "%s %s %s%s" (Rule.id e.rule) e.file e.context
    (match e.expires with None -> "" | Some d -> " expires=" ^ date_to_string d)

(* Split "head -- justification" on the first " -- ". *)
let split_justification line =
  let n = String.length line in
  let rec find i =
    if i + 4 > n then None
    else if String.sub line i 4 = " -- " then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub line 0 i, String.trim (String.sub line (i + 4) (n - i - 4)))

let parse_line ~line_no line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    let err msg = Error (Printf.sprintf "line %d: %s" line_no msg) in
    match split_justification line with
    | None -> err "missing ' -- justification'"
    | Some (_, "") -> err "empty justification"
    | Some (head, justification) -> (
      let toks =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' head)
      in
      match toks with
      | rule_s :: file :: context :: rest -> (
        match Rule.of_id rule_s with
        | None -> err (Printf.sprintf "unknown rule %S" rule_s)
        | Some rule -> (
          let expires =
            match rest with
            | [] -> Ok None
            | [ tok ] when String.length tok > 8 && String.sub tok 0 8 = "expires=" -> (
              let ds = String.sub tok 8 (String.length tok - 8) in
              match date_of_string ds with
              | Some d -> Ok (Some d)
              | None -> Error (Printf.sprintf "bad expiry date %S (want YYYY-MM-DD)" ds))
            | tok :: _ -> Error (Printf.sprintf "unexpected token %S" tok)
          in
          match expires with
          | Error msg -> err msg
          | Ok expires ->
            Ok (Some { rule; file; context; expires; justification; line_no })))
      | _ -> err "want '<RULE> <file> <context> [expires=DATE] -- <justification>'")

let parse ~path content =
  let lines = String.split_on_char '\n' content in
  let entries, errors =
    List.fold_left
      (fun (es, errs) (line_no, line) ->
        match parse_line ~line_no line with
        | Ok None -> (es, errs)
        | Ok (Some e) -> (e :: es, errs)
        | Error msg -> (es, msg :: errs))
      ([], [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  match errors with
  | [] -> Ok { path; entries = List.rev entries }
  | errs -> Error (Printf.sprintf "%s: %s" path (String.concat "; " (List.rev errs)))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> parse ~path content
  | exception Sys_error msg -> Error msg
