(* The whole-repo call graph over Checks def summaries, and the three
   interprocedural rules that run on it.

   Nodes are top-level definitions. An edge exists when one definition
   *references* another by path — a call, or an escape of the function
   as a value. Treating escape as a call over-approximates reachability,
   which is the right direction for every rule here: LC006 wants no
   unaccounted path to a write, LC007 wants no unpinned path to a read,
   LC008 wants no unaccounted allocation below a hot root.

   Resolution, in order:
   - a single-component reference resolves by the head ident's stamp to
     a top-level definition of the same file (inner lets and parameters
     have stamps that match nothing and resolve to nothing);
   - a qualified reference resolves by dotted-suffix match against every
     definition's qualified name, preferring same-file candidates and
     keeping *all* candidates when ambiguous (conservative).
   Calls through record fields, functor arguments, and first-class
   modules (Ops_intf handles) resolve to nothing: those are the
   documented opaque boundaries of the analysis. *)

type node = {
  def : Checks.def;
  idx : int;
  mutable callees : (int * Location.t) list;  (* edge with the referencing loc *)
  mutable callers : int list;
}

type t = {
  nodes : node array;
  hot : Hotpath.t;
  by_key : (string * string, int list) Hashtbl.t;  (* (file, context) *)
}

let pos_of (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let finding ?words ~rule ~(node : node) ?loc message =
  let loc = match loc with Some l -> l | None -> node.def.Checks.d_loc in
  let line, col = pos_of loc in
  let f =
    Finding.make ~rule ~file:node.def.Checks.d_file ~line ~col
      ~context:node.def.Checks.d_context ~message
  in
  { f with Finding.words }

let build ~hot (defs : Checks.def list) =
  let nodes =
    Array.of_list (List.mapi (fun idx def -> { def; idx; callees = []; callers = [] }) defs)
  in
  let by_key = Hashtbl.create 64 in
  let by_stamp : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun n ->
      let d = n.def in
      let key = (d.Checks.d_file, d.Checks.d_context) in
      Hashtbl.replace by_key key
        (match Hashtbl.find_opt by_key key with Some l -> l @ [ n.idx ] | None -> [ n.idx ]);
      match d.Checks.d_stamp with
      | Some s -> Hashtbl.replace by_stamp (d.Checks.d_file, s) n.idx
      | None -> ())
    nodes;
  let resolve (n : node) (u : Checks.use) =
    match u.Checks.u_stamp with
    | Some s when Hashtbl.mem by_stamp (n.def.Checks.d_file, s) ->
      [ Hashtbl.find by_stamp (n.def.Checks.d_file, s) ]
    | _ ->
      if List.length u.Checks.u_path < 2 then []
      else
        let cands = ref [] in
        Array.iter
          (fun m ->
            if Checks.suffix_match u.Checks.u_path m.def.Checks.d_qual then
              cands := m.idx :: !cands)
          nodes;
        let cands = List.rev !cands in
        let same_file =
          List.filter
            (fun i -> nodes.(i).def.Checks.d_file = n.def.Checks.d_file)
            cands
        in
        if same_file <> [] then same_file else cands
  in
  Array.iter
    (fun n ->
      List.iter
        (function
          | Checks.Use u ->
            List.iter
              (fun j ->
                if not (List.mem_assoc j n.callees) then (
                  n.callees <- (j, u.Checks.u_loc) :: n.callees;
                  nodes.(j).callers <- n.idx :: nodes.(j).callers))
              (resolve n u)
          | Checks.Pub_read _ -> ())
        n.def.Checks.d_events)
    nodes;
  Array.iter
    (fun n ->
      n.callees <- List.rev n.callees;
      n.callers <- List.sort_uniq compare n.callers)
    nodes;
  { nodes; hot; by_key }

let forward_closure g seeds =
  let seen = Hashtbl.create 64 in
  let rec go i =
    if not (Hashtbl.mem seen i) then (
      Hashtbl.add seen i ();
      List.iter (fun (j, _) -> go j) g.nodes.(i).callees)
  in
  List.iter go seeds;
  seen

(* ------------------------------------------------------------------ *)
(* LC006: verify owner= single-writer claims                           *)
(* ------------------------------------------------------------------ *)

(* A baseline entry "… owner=M.f" claims: the suppressed construct is
   only ever driven through M.f's call tree. The graph check: every
   caller of any function through which the write site is reached must
   itself be inside some owner's call tree (or be harness code, which
   builds private single-domain instances). Violations surface at the
   *caller*, whose author is the one adding an unaccounted path. *)
let lc006 g (claims : Baseline.entry list) =
  let out = ref [] in
  let emit f = out := f :: !out in
  List.iter
    (fun (e : Baseline.entry) ->
      if e.Baseline.owner <> [] then (
        let writers =
          match Hashtbl.find_opt g.by_key (e.Baseline.file, e.Baseline.context) with
          | Some l -> l
          | None -> []
        in
        let owner_idxs =
          List.concat_map
            (fun o ->
              let comps = String.split_on_char '.' o in
              let hits = ref [] in
              Array.iter
                (fun n ->
                  if Checks.suffix_match comps n.def.Checks.d_qual then
                    hits := n.idx :: !hits)
                g.nodes;
              (match !hits with
              | [] ->
                emit
                  (Finding.make ~rule:Rule.LC006 ~file:e.Baseline.file ~line:1 ~col:0
                     ~context:e.Baseline.context
                     ~message:
                       (Printf.sprintf
                          "baseline line %d: owner %s does not resolve to any definition"
                          e.Baseline.line_no o))
              | _ -> ());
              List.rev !hits)
            e.Baseline.owner
        in
        if writers = [] then
          emit
            (Finding.make ~rule:Rule.LC006 ~file:e.Baseline.file ~line:1 ~col:0
               ~context:e.Baseline.context
               ~message:
                 (Printf.sprintf
                    "baseline line %d: owner= entry names a definition that no longer \
                     exists"
                    e.Baseline.line_no))
        else if owner_idxs <> [] then (
          let in_tree = forward_closure g owner_idxs in
          let covered_writers = List.filter (Hashtbl.mem in_tree) writers in
          List.iter
            (fun w ->
              if not (Hashtbl.mem in_tree w) then
                emit
                  (finding ~rule:Rule.LC006 ~node:g.nodes.(w)
                     (Printf.sprintf
                        "write site is not reachable from declared owner(s) %s — the \
                         single-writer claim does not cover it"
                        (String.concat "," e.Baseline.owner))))
            writers;
          (* Backward slice: the functions inside the owners' tree
             through which the write is reached. *)
          let wreach = Hashtbl.create 16 in
          let rec back i =
            if Hashtbl.mem in_tree i && not (Hashtbl.mem wreach i) then (
              Hashtbl.add wreach i ();
              List.iter back g.nodes.(i).callers)
          in
          List.iter back covered_writers;
          Hashtbl.iter
            (fun d () ->
              List.iter
                (fun c ->
                  let cn = g.nodes.(c) in
                  if
                    (not (Hashtbl.mem in_tree c))
                    && not (g.hot.Hotpath.harness cn.def.Checks.d_file)
                  then
                    let loc =
                      match List.assoc_opt d cn.callees with
                      | Some l -> Some l
                      | None -> None
                    in
                    emit
                      (finding ~rule:Rule.LC006 ~node:cn ?loc
                         (Printf.sprintf
                            "call into single-writer territory from outside the owner \
                             tree: reaches %s (write site %s, owner=%s, baseline line %d)"
                            g.nodes.(d).def.Checks.d_context e.Baseline.context
                            (String.concat "," e.Baseline.owner)
                            e.Baseline.line_no)))
                g.nodes.(d).callers)
            wreach)))
    claims;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* LC007: published-state reads must be pin-dominated                  *)
(* ------------------------------------------------------------------ *)

let is_pin_def g (n : node) =
  Checks.matches_qualified ~config:g.hot.Hotpath.pin_functions n.def.Checks.d_qual

(* A definition "pins" if it is a pin function or calls one anywhere.
   Path-insensitive by design: the codebase convention is pin-at-entry,
   and a function that pins anywhere is treated as a pinned scope. *)
let pinner g (n : node) =
  is_pin_def g n
  || List.exists (fun (j, _) -> is_pin_def g g.nodes.(j)) n.callees
  || List.exists
       (function
         | Checks.Use u ->
           Checks.matches_qualified ~config:g.hot.Hotpath.pin_functions u.Checks.u_path
         | Checks.Pub_read _ -> false)
       n.def.Checks.d_events

let lc007 g =
  let out = ref [] in
  Array.iter
    (fun n ->
      let file = n.def.Checks.d_file in
      if
        g.hot.Hotpath.shared_scope file
        && (not (g.hot.Hotpath.harness file))
        && not (is_pin_def g n)
      then (
        let pinned = ref false in
        let reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
        List.iter
          (function
            | Checks.Use u ->
              (* Matches both qualified pin calls (Epoch.pin from the
                 engine) and bare same-file ones (pin inside epoch.ml):
                 suffix matching accepts the single-component name. *)
              if
                Checks.matches_qualified ~config:g.hot.Hotpath.pin_functions
                  u.Checks.u_path
              then pinned := true
            | Checks.Pub_read { pr_loc; pr_type; pr_field } ->
              let key = String.concat "." pr_type ^ "#" ^ pr_field in
              if (not !pinned) && not (Hashtbl.mem reported key) then (
                (* Locally unpinned: safe only if every non-harness
                   caller chain passes through a pinning scope. *)
                let escapes = ref [] in
                let visited = Hashtbl.create 16 in
                let rec up i =
                  if not (Hashtbl.mem visited i) then (
                    Hashtbl.add visited i ();
                    let callers =
                      List.filter
                        (fun c ->
                          not (g.hot.Hotpath.harness g.nodes.(c).def.Checks.d_file))
                        g.nodes.(i).callers
                    in
                    if callers = [] then escapes := i :: !escapes
                    else
                      List.iter (fun c -> if not (pinner g g.nodes.(c)) then up c) callers)
                in
                up n.idx;
                if !escapes <> [] then (
                  Hashtbl.add reported key ();
                  let roots =
                    List.sort_uniq String.compare
                      (List.map (fun i -> g.nodes.(i).def.Checks.d_context) !escapes)
                  in
                  let shown =
                    match roots with
                    | a :: b :: c :: _ :: _ -> String.concat ", " [ a; b; c ] ^ ", …"
                    | l -> String.concat ", " l
                  in
                  out :=
                    finding ~rule:Rule.LC007 ~node:n ~loc:pr_loc
                      (Printf.sprintf
                         "plain read of published %s.%s is not dominated by a pin \
                          (%s); unpinned entry path(s) via: %s"
                         (String.concat "." pr_type)
                         pr_field
                         (String.concat "/" g.hot.Hotpath.pin_functions)
                         shown)
                    :: !out)))
          n.def.Checks.d_events))
    g.nodes;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* LC008: transitive hot-path allocation accounting                    *)
(* ------------------------------------------------------------------ *)

(* Close the LC004 manifest over the call graph: every function
   definition reachable from a manifest root is on the hot path, and
   each of its allocation sites is accounted. Root definitions
   themselves are LC004's direct-audit territory and are skipped here.
   Non-function definitions allocate at module init, not per call, so
   the closure neither traverses into nor collects from them. *)
let lc008 g =
  let roots =
    Array.to_list g.nodes
    |> List.filter_map (fun n ->
           if
             List.mem n.def.Checks.d_context
               (g.hot.Hotpath.hot_functions n.def.Checks.d_file)
           then Some n.idx
           else None)
  in
  let is_root = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.add is_root i ()) roots;
  (* Multi-source BFS remembering the first root that reaches each
     node, for attribution in the message. *)
  let origin : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun i ->
      Hashtbl.replace origin i g.nodes.(i).def.Checks.d_context;
      Queue.add i q)
    roots;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    let root = Hashtbl.find origin i in
    List.iter
      (fun (j, _) ->
        if g.nodes.(j).def.Checks.d_is_fun && not (Hashtbl.mem origin j) then (
          Hashtbl.replace origin j root;
          Queue.add j q))
      g.nodes.(i).callees
  done;
  let out = ref [] in
  Hashtbl.iter
    (fun i root ->
      if not (Hashtbl.mem is_root i) then (
        let n = g.nodes.(i) in
        let root_label =
          match
            List.find_opt (fun r -> g.nodes.(r).def.Checks.d_context = root) roots
          with
          | Some r -> List.hd g.nodes.(r).def.Checks.d_qual ^ "." ^ root
          | None -> root
        in
        List.iter
          (fun (a : Checks.alloc) ->
            out :=
              finding ?words:a.Checks.al_words ~rule:Rule.LC008 ~node:n
                ~loc:a.Checks.al_loc
                (Printf.sprintf "%s on the hot path from %s%s" a.Checks.al_desc
                   root_label
                   (match a.Checks.al_words with
                   | Some w -> Printf.sprintf " (≈%d words per call)" w
                   | None -> " (unbounded per call)"))
              :: !out)
          n.def.Checks.d_allocs;
        (* Allocating combinators in reachable helpers: same signal
           LC004 gives for the roots themselves. *)
        List.iter
          (function
            | Checks.Use u -> (
              match u.Checks.u_path with
              | hd :: _ when List.mem hd Checks.alloc_roots ->
                out :=
                  finding ~rule:Rule.LC008 ~node:n ~loc:u.Checks.u_loc
                    (Printf.sprintf
                       "%s on the hot path from %s (allocates or formats per call)"
                       (String.concat "." u.Checks.u_path)
                       root_label)
                  :: !out
              | _ -> ())
            | Checks.Pub_read _ -> ())
          n.def.Checks.d_events))
    origin;
  List.rev !out

let run ~hot ~rules ~claims (defs : Checks.def list) =
  let g = build ~hot defs in
  let fs = ref [] in
  if List.mem Rule.LC006 rules then fs := !fs @ lc006 g claims;
  if List.mem Rule.LC007 rules then fs := !fs @ lc007 g;
  if List.mem Rule.LC008 rules then fs := !fs @ lc008 g;
  List.sort Finding.compare !fs
