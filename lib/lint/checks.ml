(* The per-file rule pass, on the *Typedtree*: one walk per top-level
   definition over code the compiler has already resolved, so targets
   are real paths and record fields carry their declared types — not
   source text. Two things come out of a file:

   - findings for the local rules (LC001–LC005), and
   - one [def] summary per top-level definition: the resolved
     references it makes (in evaluation order, with the head ident's
     stamp for same-file resolution), the plain reads of epoch/seqlock
     published record types, and its allocation sites classified with
     estimated words per call. Callgraph stitches the summaries into
     the whole-repo graph for LC006/LC007/LC008.

   Granularity choices worth knowing:

   - The unit of analysis is the top-level definition: inner [let rec
     loop] helpers fold into their enclosing definition, which is also
     the granularity baseline contexts and owner= tags use.
   - LC001 matches an Atomic.get and Atomic.set on the same *resolved*
     target within one definition: local idents match by stamp, record
     fields by declared field identity — aliasing no longer evades it.
   - LC003 emits one aggregated finding per definition (first store's
     location, store count in the message) plus one per record type
     that declares mutable fields. Stores to plain local identifiers
     are treated as domain-private: every structure that crosses a
     domain boundary here is carried behind a record field.
   - LC004 exempts lambdas on the *spine* of a manifest function (its
     own parameters and tail positions): returning a closure is the
     function's contract; allocating one mid-body is the bug. The same
     spine logic classifies closure sites for the [def] summaries.
   - First-class-module dispatch (Ops_intf handles) and closures passed
     as values are opaque edges: referencing a function *value* adds a
     conservative call edge, but a call through a record field or a
     packed module resolves to nothing. DESIGN.md §7 spells out the
     boundary. *)

open Typedtree

type enabled = {
  r1 : bool;
  r2 : bool;
  r3 : bool;
  r4 : bool;
  r5 : bool;
}

let enabled_of rules =
  {
    r1 = List.mem Rule.LC001 rules;
    r2 = List.mem Rule.LC002 rules;
    r3 = List.mem Rule.LC003 rules;
    r4 = List.mem Rule.LC004 rules;
    r5 = List.mem Rule.LC005 rules;
  }

(* ------------------------------------------------------------------ *)
(* Definition summaries (input to Callgraph)                           *)
(* ------------------------------------------------------------------ *)

type use = {
  u_path : string list;  (* normalised components, e.g. ["Epoch"; "pin"] *)
  u_stamp : string option;  (* head ident's unique name, for same-file lookup *)
  u_loc : Location.t;
}

type event =
  | Use of use  (* any reference to a value path: call or escape *)
  | Pub_read of { pr_loc : Location.t; pr_type : string list; pr_field : string }

type alloc = { al_loc : Location.t; al_desc : string; al_words : int option }

type def = {
  d_file : string;
  d_context : string;  (* module-qualified, e.g. "Monitor.tick" *)
  d_qual : string list;  (* [file module] @ submodule path @ [name] *)
  d_loc : Location.t;
  d_stamp : string option;  (* bound ident's unique name *)
  d_is_fun : bool;  (* top-level lambda: body runs per call *)
  mutable d_events : event list;  (* evaluation order *)
  mutable d_allocs : alloc list;  (* evaluation order *)
}

(* "lib/obs/metrics.ml" -> "Metrics" *)
let module_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

(* ------------------------------------------------------------------ *)
(* Path normalisation                                                  *)
(* ------------------------------------------------------------------ *)

(* Dune name-mangles wrapped-library units ("Lc_dynamic__Epoch"); keep
   the part users write. *)
let demangle comp =
  let n = String.length comp in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if comp.[i] = '_' && comp.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some j when j < n -> String.capitalize_ascii (String.sub comp j (n - j))
  | _ -> comp

let rec raw_components (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p', s) -> raw_components p' @ [ s ]
  | Path.Papply (p', _) -> raw_components p'
  | Path.Pextra_ty (p', _) -> raw_components p'

let head_ident (p : Path.t) =
  match p with
  | Path.Pident id -> Some id
  | _ -> ( match Path.head p with id -> Some id | exception _ -> None)

(* [aliases] maps a local module alias's stamp ("M/42" for
   [module M = Lc_cellprobe.Table]) to the normalised components of its
   target, so references through the alias resolve like direct ones. *)
let normalize ~aliases (p : Path.t) =
  let comps = List.map demangle (raw_components p) in
  let comps =
    match (head_ident p, comps) with
    | Some id, _ :: rest -> (
      match Hashtbl.find_opt aliases (Ident.unique_name id) with
      | Some target -> target @ rest
      | None -> comps)
    | _ -> comps
  in
  match comps with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | comps -> comps

let dots = String.concat "."

(* ------------------------------------------------------------------ *)
(* Shared small helpers                                                *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable findings : Finding.t list;
  mutable defs : def list;
  aliases : (string, string list) Hashtbl.t;
}

let pos_of (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let add acc ~file ~context rule (loc : Location.t) message =
  let line, col = pos_of loc in
  acc.findings <- Finding.make ~rule ~file ~line ~col ~context ~message :: acc.findings

let mutator_fns = [ "set"; "unsafe_set"; "blit"; "unsafe_blit"; "fill"; "unsafe_fill" ]
let blocking_roots = [ "Mutex"; "Condition"; "Semaphore" ]
let obj_banned = [ "magic"; "repr"; "obj" ]
let alloc_roots = [ "List"; "ListLabels"; "Printf"; "Format" ]
let atomic_rmw = [ "incr"; "decr"; "fetch_and_add"; "compare_and_set"; "exchange" ]

let ident_comps ~aliases e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> ( match normalize ~aliases p with [] -> None | c -> Some c)
  | _ -> None

(* A stable key for the target of an atomic operation: stamps for local
   idents, declared (type, field) identity for projections, so
   [Atomic.get c] / [Atomic.set c v] pair up by what they resolve to.
   Unrecognised subterms collapse to "_", erring towards matching —
   conservative for a race lint. *)
let rec target_key ~aliases e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match p with
    | Path.Pident id -> Ident.unique_name id
    | _ -> dots (normalize ~aliases p))
  | Texp_field (b, _, lbl) ->
    let tname =
      match Types.get_desc lbl.Types.lbl_res with
      | Types.Tconstr (tp, _, _) -> dots (List.map demangle (raw_components tp))
      | _ -> "?"
    in
    Printf.sprintf "%s.%s<%s>" (target_key ~aliases b) lbl.Types.lbl_name tname
  | Texp_apply (f, args) ->
    "("
    ^ target_key ~aliases f
    ^ " "
    ^ String.concat " "
        (List.map
           (fun (_, a) ->
             match a with Some a -> target_key ~aliases a | None -> "_")
           args)
    ^ ")"
  | _ -> "_"

(* Does a store target reach through a record field (t.buf, sh.store,
   st.hist_buckets.(h))? Plain local identifiers do not. *)
let rec reaches_field ~aliases e =
  match e.exp_desc with
  | Texp_field _ -> true
  | Texp_apply (f, (_, Some a) :: _) -> (
    match ident_comps ~aliases f with
    | Some [ ("Array" | "Bytes"); ("get" | "unsafe_get") ] -> reaches_field ~aliases a
    | _ -> false)
  | _ -> false

(* The declared record type behind a field projection, qualified with
   the file's module when the type is file-local (its path is then a
   bare ident). *)
let field_type_comps ~file_module (lbl : Types.label_description) =
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (tp, _, _) -> (
    match List.map demangle (raw_components tp) with
    | [ one ] -> Some [ file_module; one ]
    | [] -> None
    | comps -> Some comps)
  | _ -> None

(* Suffix match on dotted names: ["Lc_obs"; "Metrics"; "incr"] matches
   ["Metrics"; "incr"]; requires at least the last two components (or
   everything, when one side is a single name) to agree. *)
let suffix_match a b =
  let la = List.length a and lb = List.length b in
  let k = min la lb in
  k >= 1
  && (k >= 2 || la = 1 || lb = 1)
  &&
  let rec last n l = if List.length l = n then l else last n (List.tl l) in
  last k a = last k b

let matches_qualified ~config comps =
  List.exists (fun c -> suffix_match (String.split_on_char '.' c) comps) config

(* ------------------------------------------------------------------ *)
(* One top-level definition                                            *)
(* ------------------------------------------------------------------ *)

(* Walk one definition body, in source (≈ evaluation) order, doing all
   local rule checks and filling the def summary. [spine] is true while
   we are on the definition's own curried/tail structure, where a
   lambda is the definition's contract rather than a per-call
   allocation. *)
(* Structured constants — immutable constructions whose leaves are all
   literals — are emitted once as static data by the compiler, not
   allocated per call. The compiled form of a format-string literal is
   the canonical example: a deep Texp_construct tree of CamlinternalFormat
   constructors over string/char constants. Constructors carrying an
   inline mutable record are excluded: mutable blocks cannot be shared. *)
let rec is_static_const (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant _ -> true
  | Texp_tuple es -> List.for_all is_static_const es
  | Texp_construct (_, cd, args) ->
    cd.Types.cstr_inlined = None && List.for_all is_static_const args
  | Texp_variant (_, arg) -> (
    match arg with None -> true | Some a -> is_static_const a)
  | _ -> false

let check_binding acc ~hot ~on ~(d : def) expr =
  let aliases = acc.aliases in
  let file = d.d_file and context = d.d_context in
  let file_module = List.hd d.d_qual in
  let in_hot = on.r2 && hot.Hotpath.hot_module file in
  let in_shared = on.r3 && hot.Hotpath.shared_scope file in
  let gets : (string, Location.t) Hashtbl.t = Hashtbl.create 8 in
  let sets : (string, Location.t) Hashtbl.t = Hashtbl.create 8 in
  let rmws : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let store_count = ref 0 in
  let first_store = ref None in
  let note_store loc =
    incr store_count;
    if !first_store = None then first_store := Some loc
  in
  let events = ref [] in
  let allocs = ref [] in
  let note_event ev = events := ev :: !events in
  let note_alloc al_loc al_desc al_words =
    allocs := { al_loc; al_desc; al_words } :: !allocs
  in
  let in_manifest = List.mem context (hot.Hotpath.hot_functions file) in
  let rec walk ~spine e =
    match Tcompat.lambda_bodies e with
    | Some bodies ->
      if not spine then (
        note_alloc e.exp_loc "closure (capture happens per call)" (Some 3);
        if on.r4 && in_manifest then
          add acc ~file ~context Rule.LC004 e.exp_loc
            "closure allocated on a manifest hot path (capture happens per call)");
      List.iter (walk ~spine:true) bodies
    | None -> (
      match e.exp_desc with
      | Texp_ident (p, _, _) -> (
        let comps = normalize ~aliases p in
        note_event
          (Use { u_path = comps; u_stamp = Option.map Ident.unique_name (head_ident p); u_loc = e.exp_loc });
        match comps with
        | root :: _ when in_hot && List.mem root blocking_roots ->
          add acc ~file ~context Rule.LC002 e.exp_loc
            (Printf.sprintf "blocking primitive %s in a hot-path module" (dots comps))
        | [ "Unix"; (("sleep" | "sleepf") as fn) ] when in_hot ->
          add acc ~file ~context Rule.LC002 e.exp_loc
            (Printf.sprintf "blocking primitive Unix.%s in a hot-path module" fn)
        | [ "Obj"; fn ] when on.r5 && List.mem fn obj_banned ->
          add acc ~file ~context Rule.LC005 e.exp_loc
            (Printf.sprintf "Obj.%s defeats the type system and the memory model" fn)
        | (root :: _ as comps) when on.r4 && in_manifest && List.mem root alloc_roots ->
          add acc ~file ~context Rule.LC004 e.exp_loc
            (Printf.sprintf "%s on a manifest hot path (allocates or formats per call)"
               (dots comps))
        | _ -> ())
      | Texp_apply (f, args) ->
        (match ident_comps ~aliases f with
        | Some [ "Atomic"; op ] when on.r1 -> (
          match args with
          | (_, Some a) :: _ ->
            let key = target_key ~aliases a in
            if op = "get" then (
              if not (Hashtbl.mem gets key) then Hashtbl.add gets key e.exp_loc)
            else if op = "set" then (
              if not (Hashtbl.mem sets key) then Hashtbl.add sets key e.exp_loc)
            else if List.mem op atomic_rmw then Hashtbl.replace rmws key ()
          | _ -> ())
        | Some ([ ("Array" | "Bytes"); fn ] as _p) when in_shared && List.mem fn mutator_fns
          -> (
          match args with
          | (_, Some a) :: _ when reaches_field ~aliases a -> note_store e.exp_loc
          | _ -> ())
        | Some [ ":=" ] when in_shared -> (
          match args with
          | (_, Some lhs) :: _ when reaches_field ~aliases lhs -> note_store e.exp_loc
          | _ -> ())
        | _ -> ());
        walk ~spine:false f;
        List.iter (fun (_, a) -> Option.iter (walk ~spine:false) a) args;
        (* A fully applied call returning a function is (or behaves
           like) a partial application: a fresh closure per call. *)
        (match Types.get_desc e.exp_type with
        | Types.Tarrow _ -> note_alloc e.exp_loc "partial application" (Some 4)
        | _ -> ())
      | Texp_field (b, _, lbl) ->
        walk ~spine:false b;
        (* A field whose own type is Atomic.t is not a plain data read:
           projecting the cell is the prelude to an atomic access, which
           carries its own ordering. Only plain-typed fields of published
           records need pin domination. *)
        let field_is_atomic =
          match Types.get_desc lbl.Types.lbl_arg with
          | Types.Tconstr (tp, _, _) -> (
            match List.rev (List.map demangle (raw_components tp)) with
            | "t" :: "Atomic" :: _ -> true
            | _ -> false)
          | _ -> false
        in
        Option.iter
          (fun comps ->
            if
              (not field_is_atomic)
              && matches_qualified ~config:hot.Hotpath.published_types comps
            then
              note_event
                (Pub_read
                   { pr_loc = e.exp_loc; pr_type = comps; pr_field = lbl.Types.lbl_name }))
          (field_type_comps ~file_module lbl)
      | Texp_setfield (b, _, _, v) ->
        if in_shared then note_store e.exp_loc;
        walk ~spine:false b;
        walk ~spine:false v
      | Texp_tuple es ->
        if not (is_static_const e) then
          note_alloc e.exp_loc "tuple" (Some (List.length es + 1));
        List.iter (walk ~spine:false) es
      | Texp_construct (_, cd, args) ->
        if args <> [] && not (is_static_const e) then
          note_alloc e.exp_loc
            (Printf.sprintf "constructor %s" cd.Types.cstr_name)
            (Some (List.length args + 1));
        List.iter (walk ~spine:false) args
      | Texp_record { fields; extended_expression; _ } ->
        note_alloc e.exp_loc "record" (Some (Array.length fields + 1));
        Option.iter (walk ~spine:false) extended_expression;
        Array.iter
          (fun (_, rld) ->
            match rld with
            | Overridden (_, e') -> walk ~spine:false e'
            | Kept _ -> ())
          fields
      | Texp_array es ->
        note_alloc e.exp_loc "array" (Some (List.length es + 1));
        List.iter (walk ~spine:false) es
      | Texp_let (_, vbs, body) ->
        List.iter (fun vb -> walk ~spine:false vb.vb_expr) vbs;
        walk ~spine body
      | Texp_sequence (a, b) ->
        walk ~spine:false a;
        walk ~spine b
      | Texp_ifthenelse (c, t, e_opt) ->
        walk ~spine:false c;
        walk ~spine t;
        Option.iter (walk ~spine) e_opt
      | Texp_match (s, cases, _) ->
        walk ~spine:false s;
        List.iter
          (fun c ->
            Option.iter (walk ~spine:false) c.c_guard;
            walk ~spine c.c_rhs)
          cases
      | Texp_try (s, cases) ->
        walk ~spine:false s;
        List.iter
          (fun c ->
            Option.iter (walk ~spine:false) c.c_guard;
            walk ~spine c.c_rhs)
          cases
      | _ ->
        (* Generic: every child is off the spine. *)
        let child =
          {
            Tast_iterator.default_iterator with
            expr = (fun _ c -> walk ~spine:false c);
          }
        in
        Tast_iterator.default_iterator.expr child e)
  in
  walk ~spine:true expr;
  d.d_events <- List.rev !events;
  d.d_allocs <- List.rev !allocs;
  if on.r1 then
    Hashtbl.iter
      (fun key set_loc ->
        if Hashtbl.mem gets key && not (Hashtbl.mem rmws key) then
          add acc ~file ~context Rule.LC001 set_loc
            (Printf.sprintf
               "Atomic.get and Atomic.set on %s in one definition without an atomic RMW \
                (fetch_and_add/compare_and_set/incr) — lost update under concurrency"
               key))
      sets;
  (if in_shared then
     match !first_store with
     | Some loc ->
       add acc ~file ~context Rule.LC003 loc
         (Printf.sprintf
            "%d non-atomic store(s) to field-reachable mutable state in this definition"
            !store_count)
     | None -> ())

let check_type_decl acc ~file ~hot ~on ~context (td : type_declaration) =
  if on.r3 && hot.Hotpath.shared_scope file then
    match td.typ_kind with
    | Ttype_record labels ->
      let muts =
        List.filter_map
          (fun l ->
            if l.ld_mutable = Asttypes.Mutable then Some l.ld_name.Location.txt else None)
          labels
      in
      if muts <> [] then
        add acc ~file ~context Rule.LC003 td.typ_loc
          (Printf.sprintf
             "record type declares %d mutable field(s) (%s) in a multi-domain library"
             (List.length muts) (String.concat ", " muts))
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Structure walk with module-qualified contexts                       *)
(* ------------------------------------------------------------------ *)

let rec walk_items acc ~file ~hot ~on ~mods items =
  let prefix = match mods with [] -> "" | ms -> String.concat "." ms ^ "." in
  let file_module = module_of_path file in
  List.iter
    (fun si ->
      match si.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name, stamp =
              match Tcompat.pat_ident vb.vb_pat with
              | Some (id, name) -> (name, Some (Ident.unique_name id))
              | None -> ("_", None)
            in
            let d =
              {
                d_file = file;
                d_context = prefix ^ name;
                d_qual = (file_module :: mods) @ [ name ];
                d_loc = vb.vb_loc;
                d_stamp = stamp;
                d_is_fun = Tcompat.lambda_bodies vb.vb_expr <> None;
                d_events = [];
                d_allocs = [];
              }
            in
            check_binding acc ~hot ~on ~d vb.vb_expr;
            acc.defs <- d :: acc.defs)
          vbs
      | Tstr_eval (e, _) ->
        let d =
          {
            d_file = file;
            d_context = prefix ^ "_";
            d_qual = (file_module :: mods) @ [ "_" ];
            d_loc = e.exp_loc;
            d_stamp = None;
            d_is_fun = false;
            d_events = [];
            d_allocs = [];
          }
        in
        check_binding acc ~hot ~on ~d e;
        acc.defs <- d :: acc.defs
      | Tstr_type (_, tds) ->
        List.iter
          (fun td ->
            check_type_decl acc ~file ~hot ~on ~context:(prefix ^ Ident.name td.typ_id) td)
          tds
      | Tstr_module mb -> walk_module_binding acc ~file ~hot ~on ~mods mb
      | Tstr_recmodule mbs -> List.iter (walk_module_binding acc ~file ~hot ~on ~mods) mbs
      | Tstr_include { incl_mod = me; _ } -> walk_module_expr acc ~file ~hot ~on ~mods me
      | _ -> ())
    items

and walk_module_binding acc ~file ~hot ~on ~mods mb =
  let name = match mb.mb_name.Location.txt with Some s -> s | None -> "_" in
  (* [module M = Path]: remember the alias so references through M
     normalise to the target. *)
  (match (mb.mb_id, mb.mb_expr.mod_desc) with
  | Some id, Tmod_ident (p, _) ->
    Hashtbl.replace acc.aliases (Ident.unique_name id)
      (normalize ~aliases:acc.aliases p)
  | _ -> ());
  walk_module_expr acc ~file ~hot ~on ~mods:(mods @ [ name ]) mb.mb_expr

and walk_module_expr acc ~file ~hot ~on ~mods me =
  match me.mod_desc with
  | Tmod_structure str -> walk_items acc ~file ~hot ~on ~mods str.str_items
  | Tmod_functor (_, body) -> walk_module_expr acc ~file ~hot ~on ~mods body
  | Tmod_constraint (me', _, _, _) -> walk_module_expr acc ~file ~hot ~on ~mods me'
  | _ -> ()

let run ~hot ~rules ~file (structure : structure) =
  let acc = { findings = []; defs = []; aliases = Hashtbl.create 8 } in
  walk_items acc ~file ~hot ~on:(enabled_of rules) ~mods:[] structure.str_items;
  (List.sort Finding.compare acc.findings, List.rev acc.defs)
