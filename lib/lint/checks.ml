(* The rule implementations: one Ast_iterator pass per top-level
   definition, so every finding carries the enclosing definition name as
   its [context]. Granularity choices worth knowing:

   - LC001 matches an Atomic.get and Atomic.set on the same *textual*
     target within one top-level definition. Structural, not semantic —
     aliasing an atomic through another name evades it, which is
     acceptable for a lint whose job is catching the common slip.
   - LC003 emits one aggregated finding per definition (first store's
     location, store count in the message) plus one per record type that
     declares mutable fields. Stores to plain local identifiers are
     treated as domain-private: in this codebase every structure that
     crosses a domain boundary is carried behind a record field, so the
     heuristic "flag stores that reach through a field" keeps the signal
     (journal rings, seqlock buffers, metric shards) without drowning it
     in local scratch. Documented in DESIGN.md §7.
   - LC004 exempts lambdas on the *spine* of a manifest function (its
     own parameters and tail positions): returning a closure is the
     function's contract; allocating one mid-body is the bug. *)

open Parsetree

type enabled = { r1 : bool; r2 : bool; r3 : bool; r4 : bool; r5 : bool }

let enabled_of rules =
  {
    r1 = List.mem Rule.LC001 rules;
    r2 = List.mem Rule.LC002 rules;
    r3 = List.mem Rule.LC003 rules;
    r4 = List.mem Rule.LC004 rules;
    r5 = List.mem Rule.LC005 rules;
  }

type acc = { mutable findings : Finding.t list }

let pos_of (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let add acc ~file ~context rule (loc : Location.t) message =
  let line, col = pos_of loc in
  acc.findings <- { Finding.rule; file; line; col; context; message } :: acc.findings

let flatten_lid lid = try Longident.flatten lid with _ -> []

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( match flatten_lid txt with [] -> None | p -> Some p)
  | _ -> None

let dots = String.concat "."

(* A stable, source-like text for the target of an atomic operation, so
   [Atomic.get c] and [Atomic.set c v] can be matched up by what they
   operate on. Unrecognised subterms (literals, complex expressions)
   collapse to "_", which errs towards matching — conservative for a
   race lint. *)
let rec target_text e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( match flatten_lid txt with [] -> "_" | p -> dots p)
  | Pexp_field (b, { txt; _ }) -> (
    target_text b ^ "." ^ match flatten_lid txt with [] -> "_" | p -> dots p)
  | Pexp_apply (f, args) ->
    "("
    ^ target_text f
    ^ " "
    ^ String.concat " " (List.map (fun (_, a) -> target_text a) args)
    ^ ")"
  | _ -> "_"

let rec pat_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | Ppat_alias (_, { txt; _ }) -> txt
  | Ppat_constraint (p', _) -> pat_name p'
  | _ -> "_"

let mutator_fns = [ "set"; "unsafe_set"; "blit"; "unsafe_blit"; "fill"; "unsafe_fill" ]

let is_mutator_path = function
  | [ ("Array" | "Bytes"); fn ] -> List.mem fn mutator_fns
  | _ -> false

(* Does a store target reach through a record field (t.buf, sh.store,
   st.hist_buckets.(h))? Plain local identifiers do not. *)
let rec reaches_field e =
  match e.pexp_desc with
  | Pexp_field _ -> true
  | Pexp_apply (f, (_, a) :: _) -> (
    match ident_path f with
    | Some [ ("Array" | "Bytes"); ("get" | "unsafe_get") ] -> reaches_field a
    | _ -> false)
  | _ -> false

let blocking_roots = [ "Mutex"; "Condition"; "Semaphore" ]
let obj_banned = [ "magic"; "repr"; "obj" ]
let alloc_roots = [ "List"; "ListLabels"; "Printf"; "Format" ]
let atomic_rmw = [ "incr"; "decr"; "fetch_and_add"; "compare_and_set"; "exchange" ]

(* ------------------------------------------------------------------ *)
(* LC004: walk a manifest hot function, tracking spine position.       *)
(* ------------------------------------------------------------------ *)

let rec walk_hot acc ~file ~context ~spine e =
  (match ident_path e with
  | Some (root :: _ as p) when List.mem root alloc_roots ->
    add acc ~file ~context Rule.LC004 e.pexp_loc
      (Printf.sprintf "%s on a manifest hot path (allocates or formats per call)" (dots p))
  | _ -> ());
  match Compat.lambda_bodies e with
  | Some bodies ->
    if not spine then
      add acc ~file ~context Rule.LC004 e.pexp_loc
        "closure allocated on a manifest hot path (capture happens per call)";
    List.iter (walk_hot acc ~file ~context ~spine:true) bodies
  | None -> (
    let walk ~spine e = walk_hot acc ~file ~context ~spine e in
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk ~spine:false vb.pvb_expr) vbs;
      walk ~spine body
    | Pexp_sequence (a, b) ->
      walk ~spine:false a;
      walk ~spine b
    | Pexp_ifthenelse (c, t, e_opt) ->
      walk ~spine:false c;
      walk ~spine t;
      Option.iter (walk ~spine) e_opt
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      walk ~spine:false s;
      List.iter
        (fun c ->
          Option.iter (walk ~spine:false) c.pc_guard;
          walk ~spine c.pc_rhs)
        cases
    | _ ->
      (* Generic: every child is off the spine. *)
      let child =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ c -> walk_hot acc ~file ~context ~spine:false c);
        }
      in
      Ast_iterator.default_iterator.expr child e)

(* ------------------------------------------------------------------ *)
(* One top-level definition.                                           *)
(* ------------------------------------------------------------------ *)

let check_binding acc ~file ~hot ~on ~context expr =
  let in_hot = on.r2 && hot.Hotpath.hot_module file in
  let in_shared = on.r3 && hot.Hotpath.shared_scope file in
  let gets : (string, Location.t) Hashtbl.t = Hashtbl.create 8 in
  let sets : (string, Location.t) Hashtbl.t = Hashtbl.create 8 in
  let rmws : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let store_count = ref 0 in
  let first_store = ref None in
  let note_store loc =
    incr store_count;
    if !first_store = None then first_store := Some loc
  in
  let expr_iter it e =
    (match e.pexp_desc with
    | Pexp_ident _ -> (
      match ident_path e with
      | Some (root :: _ as p) when in_hot && List.mem root blocking_roots ->
        add acc ~file ~context Rule.LC002 e.pexp_loc
          (Printf.sprintf "blocking primitive %s in a hot-path module" (dots p))
      | Some [ "Unix"; (("sleep" | "sleepf") as fn) ] when in_hot ->
        add acc ~file ~context Rule.LC002 e.pexp_loc
          (Printf.sprintf "blocking primitive Unix.%s in a hot-path module" fn)
      | Some [ "Obj"; fn ] when on.r5 && List.mem fn obj_banned ->
        add acc ~file ~context Rule.LC005 e.pexp_loc
          (Printf.sprintf "Obj.%s defeats the type system and the memory model" fn)
      | _ -> ())
    | Pexp_setfield (_, _, _) when in_shared -> note_store e.pexp_loc
    | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some [ "Atomic"; op ] when on.r1 -> (
        match args with
        | (_, a) :: _ ->
          let key = target_text a in
          if op = "get" then (
            if not (Hashtbl.mem gets key) then Hashtbl.add gets key e.pexp_loc)
          else if op = "set" then (
            if not (Hashtbl.mem sets key) then Hashtbl.add sets key e.pexp_loc)
          else if List.mem op atomic_rmw then Hashtbl.replace rmws key ()
        | [] -> ())
      | Some ([ ("Array" | "Bytes"); _ ] as p) when in_shared && is_mutator_path p -> (
        match args with
        | (_, a) :: _ when reaches_field a -> note_store e.pexp_loc
        | _ -> ())
      | Some [ ":=" ] when in_shared -> (
        match args with
        | (_, lhs) :: _ when reaches_field lhs -> note_store e.pexp_loc
        | _ -> ())
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter } in
  it.expr it expr;
  if on.r1 then
    Hashtbl.iter
      (fun key set_loc ->
        if Hashtbl.mem gets key && not (Hashtbl.mem rmws key) then
          add acc ~file ~context Rule.LC001 set_loc
            (Printf.sprintf
               "Atomic.get and Atomic.set on %s in one definition without an atomic RMW \
                (fetch_and_add/compare_and_set/incr) — lost update under concurrency"
               key))
      sets;
  if in_shared then (
    match !first_store with
    | Some loc ->
      add acc ~file ~context Rule.LC003 loc
        (Printf.sprintf
           "%d non-atomic store(s) to field-reachable mutable state in this definition"
           !store_count)
    | None -> ());
  if on.r4 && List.mem context (hot.Hotpath.hot_functions file) then
    walk_hot acc ~file ~context ~spine:true expr

let check_type_decl acc ~file ~hot ~on ~context (td : type_declaration) =
  if on.r3 && hot.Hotpath.shared_scope file then
    match td.ptype_kind with
    | Ptype_record labels ->
      let muts =
        List.filter_map
          (fun l -> if l.pld_mutable = Asttypes.Mutable then Some l.pld_name.txt else None)
          labels
      in
      if muts <> [] then
        add acc ~file ~context Rule.LC003 td.ptype_loc
          (Printf.sprintf
             "record type declares %d mutable field(s) (%s) in a multi-domain library"
             (List.length muts) (String.concat ", " muts))
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Structure walk with module-qualified contexts.                      *)
(* ------------------------------------------------------------------ *)

let rec walk_items acc ~file ~hot ~on ~prefix items =
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let context = prefix ^ pat_name vb.pvb_pat in
            check_binding acc ~file ~hot ~on ~context vb.pvb_expr)
          vbs
      | Pstr_eval (e, _) -> check_binding acc ~file ~hot ~on ~context:(prefix ^ "_") e
      | Pstr_type (_, tds) ->
        List.iter
          (fun td ->
            check_type_decl acc ~file ~hot ~on ~context:(prefix ^ td.ptype_name.txt) td)
          tds
      | Pstr_module mb -> walk_module_binding acc ~file ~hot ~on ~prefix mb
      | Pstr_recmodule mbs ->
        List.iter (walk_module_binding acc ~file ~hot ~on ~prefix) mbs
      | Pstr_include { pincl_mod = me; _ } -> walk_module_expr acc ~file ~hot ~on ~prefix me
      | _ -> ())
    items

and walk_module_binding acc ~file ~hot ~on ~prefix mb =
  let name = match mb.pmb_name.txt with Some s -> s | None -> "_" in
  walk_module_expr acc ~file ~hot ~on ~prefix:(prefix ^ name ^ ".") mb.pmb_expr

and walk_module_expr acc ~file ~hot ~on ~prefix me =
  match me.pmod_desc with
  | Pmod_structure items -> walk_items acc ~file ~hot ~on ~prefix items
  | Pmod_functor (_, body) -> walk_module_expr acc ~file ~hot ~on ~prefix body
  | Pmod_constraint (me', _) -> walk_module_expr acc ~file ~hot ~on ~prefix me'
  | _ -> ()

let run ~hot ~rules ~file structure =
  let acc = { findings = [] } in
  walk_items acc ~file ~hot ~on:(enabled_of rules) ~prefix:"" structure;
  List.sort Finding.compare acc.findings
