(* Version-specific view of the Parsetree, OCaml >= 5.2 flavour.

   OCaml 5.2 replaced [Pexp_fun]/[Pexp_function] with a single
   [Pexp_function of params * constraint * body]. Everything else
   lc_lint consumes (idents, applications, setfield, let/match/if,
   record type declarations) is stable across 5.1–5.3, so this is the
   only seam; a dune rule copies the matching implementation to
   compat.ml based on %{ocaml_version}. *)

open Parsetree

(* If [e] is a lambda, the expressions its body can evaluate to (one
   per match case for [function]); [None] otherwise. *)
let lambda_bodies (e : expression) : expression list option =
  match e.pexp_desc with
  | Pexp_function (_, _, Pfunction_body body) -> Some [ body ]
  | Pexp_function (_, _, Pfunction_cases (cases, _, _)) ->
    Some (List.map (fun c -> c.pc_rhs) cases)
  | _ -> None
