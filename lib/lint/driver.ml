(* Discovery, parsing, baseline application, self-check. The driver is
   filesystem-facing; Checks is pure AST; Report is pure data. Tests
   exercise the pure layers through [lint_source] so fixtures don't
   need to live where the scoping rules expect real code to live. *)

type source = { path : string  (* repo-relative, '/'-separated *); abs : string }

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

(* Deterministic recursive listing, skipping build and VCS trees. *)
let discover ~root ~subdir ~suffix =
  let skip name = name = "_build" || name = ".git" || has_prefix ~prefix:"." name in
  let out = ref [] in
  let rec go rel abs =
    match Sys.is_directory abs with
    | true ->
      let entries = Sys.readdir abs in
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          if not (skip name) then
            go (if rel = "" then name else rel ^ "/" ^ name) (Filename.concat abs name))
        entries
    | false -> if has_suffix ~suffix rel then out := { path = rel; abs } :: !out
    | exception Sys_error _ -> ()
  in
  let start_abs = if subdir = "" then root else Filename.concat root subdir in
  if Sys.file_exists start_abs then go subdir start_abs;
  List.rev !out

let read_file abs =
  let ic = open_in_bin abs in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse [content] as an implementation, attributing locations to
   [path]. Lexer/parser errors land in many exception constructors
   across compiler versions; rather than matching them all we format
   via [Location.report_exception] when possible and fall back to
   [Printexc]. *)
let parse_impl ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
    let line, col =
      let p = lexbuf.Lexing.lex_curr_p in
      (p.pos_lnum, p.pos_cnum - p.pos_bol)
    in
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok (e : Location.error)) ->
        Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    Error { Report.pe_file = path; pe_line = line; pe_col = col; pe_message = msg }

let parse_intf ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  match Parse.interface lexbuf with
  | (_ : Parsetree.signature) -> Ok ()
  | exception exn ->
    let line, col =
      let p = lexbuf.Lexing.lex_curr_p in
      (p.pos_lnum, p.pos_cnum - p.pos_bol)
    in
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok (e : Location.error)) ->
        Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    Error { Report.pe_file = path; pe_line = line; pe_col = col; pe_message = msg }

(* ------------------------------------------------------------------ *)
(* Baseline application                                                *)
(* ------------------------------------------------------------------ *)

(* Annotate findings against the baseline and account for every entry:
   entries that matched nothing are "unused" (stale debt — surfaced as
   warnings so the allowlist shrinks as code improves), expired entries
   never suppress. Entries for rules outside this run ([rules] is a
   subset under --rules) are exempt from unused accounting: they had no
   chance to match. *)
let apply_baseline ?baseline ~rules ~today findings =
  match (baseline : Baseline.t option) with
  | None -> (List.map (fun f -> { Report.finding = f; suppressed = None }) findings, None)
  | Some b ->
    let used : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let live = List.filter (fun e -> not (Baseline.is_expired ~today e)) b.Baseline.entries in
    let annotated =
      List.map
        (fun f ->
          match List.find_opt (fun e -> Baseline.matches e f) live with
          | Some e ->
            Hashtbl.replace used e.Baseline.line_no ();
            {
              Report.finding = f;
              suppressed =
                Some
                  {
                    Report.justification = e.Baseline.justification;
                    expires = Option.map Baseline.date_to_string e.Baseline.expires;
                    entry_line = e.Baseline.line_no;
                  };
            }
          | None -> { Report.finding = f; suppressed = None })
        findings
    in
    let unused =
      List.filter_map
        (fun e ->
          if
            Baseline.is_expired ~today e
            || Hashtbl.mem used e.Baseline.line_no
            || not (List.mem e.Baseline.rule rules)
          then None
          else Some (Baseline.entry_to_string e, e.Baseline.line_no))
        b.Baseline.entries
    in
    let expired =
      List.filter_map
        (fun e ->
          if Baseline.is_expired ~today e then Some (Baseline.entry_to_string e, e.Baseline.line_no)
          else None)
        b.Baseline.entries
    in
    ( annotated,
      Some
        {
          Report.baseline_path = b.Baseline.path;
          entries = List.length b.Baseline.entries;
          used = Hashtbl.length used;
          unused;
          expired;
        } )

let today_from_clock () =
  let tm = Unix.localtime (Unix.time ()) in
  { Baseline.y = tm.Unix.tm_year + 1900; m = tm.Unix.tm_mon + 1; d = tm.Unix.tm_mday }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Lint one in-memory source under a logical path (tests plant fixtures
   at paths like "lib/parallel/fake.ml" without touching lib/). *)
let lint_source ?(hot = Hotpath.default) ?(rules = Rule.all) ~path content =
  match parse_impl ~path content with
  | Ok structure -> Ok (Checks.run ~hot ~rules ~file:path structure)
  | Error pe -> Error pe

let run ?(hot = Hotpath.default) ?(rules = Rule.all) ?baseline ?today ~root () =
  let today = match today with Some t -> t | None -> today_from_clock () in
  let sources = discover ~root ~subdir:"lib" ~suffix:".ml" in
  let findings, parse_errors =
    List.fold_left
      (fun (fs, pes) src ->
        match lint_source ~hot ~rules ~path:src.path (read_file src.abs) with
        | Ok found -> (found :: fs, pes)
        | Error pe -> (fs, pe :: pes))
      ([], []) sources
  in
  let findings = List.sort Finding.compare (List.concat (List.rev findings)) in
  let results, baseline_summary = apply_baseline ?baseline ~rules ~today findings in
  {
    Report.root;
    files_scanned = List.length sources;
    rules;
    results;
    parse_errors = List.rev parse_errors;
    baseline = baseline_summary;
  }

(* Self-check: every .ml and .mli in the repo must parse. This guards
   the linter's own blind spots — a file the parser rejects is a file
   no rule ever saw. *)
let self_check ~root =
  let mls = discover ~root ~subdir:"" ~suffix:".ml" in
  let mlis = discover ~root ~subdir:"" ~suffix:".mli" in
  let errors =
    List.filter_map
      (fun src ->
        match parse_impl ~path:src.path (read_file src.abs) with
        | Ok _ -> None
        | Error pe -> Some pe)
      mls
    @ List.filter_map
        (fun src ->
          match parse_intf ~path:src.path (read_file src.abs) with
          | Ok () -> None
          | Error pe -> Some pe)
        mlis
  in
  (List.length mls + List.length mlis, errors)
