(* Discovery, .cmt loading, baseline application, self-check. The
   driver is filesystem-facing; Checks and Callgraph are pure analysis;
   Report is pure data.

   The analyzer consumes what the compiler produced, not what a parser
   guesses: `dune build @lib/check` emits a .cmt per compiled module
   under _build/default/lib, and [run] loads each one and hands the
   typed structure to Checks. A .cmt that is missing or does not load
   is a parse error — exit 2 territory, with the file named — because a
   module the typechecker has not vouched for is a module no rule ever
   saw.

   Tests go through [lint_source], which typechecks an in-memory
   fixture against the stdlib in-process (same front end, no dune), so
   fixtures don't need to live where the scoping rules expect real code
   to live. *)

type source = { path : string  (* repo-relative, '/'-separated *); abs : string }

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

(* Deterministic recursive listing. [skip_hidden] prunes build/VCS/dot
   trees — off when walking _build itself, where .objs dirs are the
   point. *)
let discover ?(skip_hidden = true) ~root ~subdir ~suffix () =
  let skip name =
    skip_hidden && (name = "_build" || name = ".git" || has_prefix ~prefix:"." name)
  in
  let out = ref [] in
  let rec go rel abs =
    match Sys.is_directory abs with
    | true ->
      let entries = Sys.readdir abs in
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          if not (skip name) then
            go (if rel = "" then name else rel ^ "/" ^ name) (Filename.concat abs name))
        entries
    | false -> if has_suffix ~suffix rel then out := { path = rel; abs } :: !out
    | exception Sys_error _ -> ()
  in
  let start_abs = if subdir = "" then root else Filename.concat root subdir in
  if Sys.file_exists start_abs then go subdir start_abs;
  List.rev !out

let read_file abs =
  let ic = open_in_bin abs in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let report_of_exn exn =
  match Location.error_of_exn exn with
  | Some (`Ok (e : Location.error)) ->
    let l = e.Location.main.Location.loc in
    ( Format.asprintf "%a" Location.print_report e,
      l.Location.loc_start.pos_lnum,
      l.Location.loc_start.pos_cnum - l.Location.loc_start.pos_bol )
  | _ -> (Printexc.to_string exn, 1, 0)

(* Parse [content] as an implementation, attributing locations to
   [path]. *)
let parse_impl ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
    let msg, line, col = report_of_exn exn in
    let line, col =
      if (line, col) = (1, 0) then
        let p = lexbuf.Lexing.lex_curr_p in
        (p.pos_lnum, p.pos_cnum - p.pos_bol)
      else (line, col)
    in
    Error { Report.pe_file = path; pe_line = line; pe_col = col; pe_message = msg }

let parse_intf ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  match Parse.interface lexbuf with
  | (_ : Parsetree.signature) -> Ok ()
  | exception exn ->
    let msg, line, col = report_of_exn exn in
    Error { Report.pe_file = path; pe_line = line; pe_col = col; pe_message = msg }

(* ------------------------------------------------------------------ *)
(* In-process typechecking (fixtures and tests)                        *)
(* ------------------------------------------------------------------ *)

let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let init_typecheck =
  lazy
    (let unix_dir = Filename.concat Config.standard_library "unix" in
     if Sys.file_exists unix_dir then
       Clflags.include_dirs := unix_dir :: !Clflags.include_dirs;
     Compmisc.init_path ())

(* Typecheck one in-memory implementation against the stdlib (plus the
   unix library when installed). Warnings are swallowed: fixtures plant
   suspicious code on purpose. *)
let typecheck ~path content =
  Lazy.force init_typecheck;
  match parse_impl ~path content with
  | Error pe -> Error pe
  | Ok ast -> (
    let saved = !Location.formatter_for_warnings in
    Location.formatter_for_warnings := null_formatter;
    Fun.protect
      ~finally:(fun () -> Location.formatter_for_warnings := saved)
      (fun () ->
        match Tcompat.type_structure (Compmisc.initial_env ()) ast with
        | str -> Ok str
        | exception exn ->
          let msg, line, col = report_of_exn exn in
          Error { Report.pe_file = path; pe_line = line; pe_col = col; pe_message = msg }))

(* ------------------------------------------------------------------ *)
(* .cmt loading                                                        *)
(* ------------------------------------------------------------------ *)

type typed_file = { tf_path : string; tf_str : Typedtree.structure }

let discover_cmts ~root =
  discover ~skip_hidden:false ~root ~subdir:"_build/default/lib" ~suffix:".cmt" ()

(* Build the @lib/check alias so .cmt files exist and are current. A
   failed build is not fatal here: stale or partial .cmt sets surface
   through load errors and the self-check coverage pass. *)
let build_cmts ~root =
  Sys.command
    (Printf.sprintf "cd %s && dune build @lib/check >/dev/null 2>&1" (Filename.quote root))

(* Load one .cmt. [Ok None]: a unit that carries no implementation we
   lint (interfaces, packs, dune-generated alias modules). *)
let load_cmt (src : source) =
  match Cmt_format.read_cmt src.abs with
  | infos -> (
    match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation str, Some sf
      when has_suffix ~suffix:".ml" sf && has_prefix ~prefix:"lib/" sf ->
      Ok (Some { tf_path = sf; tf_str = str })
    | _ -> Ok None)
  | exception exn ->
    Error
      {
        Report.pe_file = src.path;
        pe_line = 1;
        pe_col = 0;
        pe_message =
          Printf.sprintf "cannot load .cmt: %s"
            (match exn with
            | Cmt_format.Error (Cmt_format.Not_a_typedtree s) -> "not a typedtree: " ^ s
            | Failure s -> s
            | exn -> Printexc.to_string exn);
      }

(* All typed implementations under lib/, deduplicated by source path
   and sorted for determinism. *)
let load_typed_files ~root ~build =
  if build then ignore (build_cmts ~root : int);
  let cmts = discover_cmts ~root in
  let seen = Hashtbl.create 64 in
  let files, errors =
    List.fold_left
      (fun (fs, errs) src ->
        match load_cmt src with
        | Ok (Some tf) ->
          if Hashtbl.mem seen tf.tf_path then (fs, errs)
          else (
            Hashtbl.add seen tf.tf_path ();
            (tf :: fs, errs))
        | Ok None -> (fs, errs)
        | Error pe -> (fs, pe :: errs))
      ([], []) cmts
  in
  let errors =
    if cmts = [] then
      [
        {
          Report.pe_file = "_build/default/lib";
          pe_line = 1;
          pe_col = 0;
          pe_message =
            "no .cmt files found — run `dune build @lib/check` (is dune on PATH?)";
        };
      ]
    else errors
  in
  (List.sort (fun a b -> String.compare a.tf_path b.tf_path) files, List.rev errors)

(* ------------------------------------------------------------------ *)
(* Baseline application                                                *)
(* ------------------------------------------------------------------ *)

(* Annotate findings against the baseline and account for every entry:
   entries that matched nothing are "unused" (stale debt — surfaced as
   warnings so the allowlist shrinks as code improves), expired entries
   never suppress, and entries with neither owner= nor protocol= are
   "untagged" (prose-only claims — warned so the ledger converges on
   machine-checked entries). Entries for rules outside this run
   ([rules] is a subset under --rules) are exempt from unused and
   untagged accounting: they had no chance to match. *)
let apply_baseline ?baseline ~rules ~today findings =
  match (baseline : Baseline.t option) with
  | None -> (List.map (fun f -> { Report.finding = f; suppressed = None }) findings, None)
  | Some b ->
    let used : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let live = List.filter (fun e -> not (Baseline.is_expired ~today e)) b.Baseline.entries in
    let annotated =
      List.map
        (fun f ->
          match List.find_opt (fun e -> Baseline.matches e f) live with
          | Some e ->
            Hashtbl.replace used e.Baseline.line_no ();
            {
              Report.finding = f;
              suppressed =
                Some
                  {
                    Report.justification = e.Baseline.justification;
                    expires = Option.map Baseline.date_to_string e.Baseline.expires;
                    entry_line = e.Baseline.line_no;
                  };
            }
          | None -> { Report.finding = f; suppressed = None })
        findings
    in
    let in_scope e = List.mem e.Baseline.rule rules in
    let unused =
      List.filter_map
        (fun e ->
          if
            Baseline.is_expired ~today e
            || Hashtbl.mem used e.Baseline.line_no
            || not (in_scope e)
          then None
          else Some (Baseline.entry_to_string e, e.Baseline.line_no))
        b.Baseline.entries
    in
    let expired =
      List.filter_map
        (fun e ->
          if Baseline.is_expired ~today e then Some (Baseline.entry_to_string e, e.Baseline.line_no)
          else None)
        b.Baseline.entries
    in
    let untagged =
      List.filter_map
        (fun e ->
          if in_scope e && not (Baseline.tagged e) then
            Some (Baseline.entry_to_string e, e.Baseline.line_no)
          else None)
        b.Baseline.entries
    in
    ( annotated,
      Some
        {
          Report.baseline_path = b.Baseline.path;
          entries = List.length b.Baseline.entries;
          used = Hashtbl.length used;
          unused;
          expired;
          untagged;
        } )

let today_from_clock () =
  let tm = Unix.localtime (Unix.time ()) in
  { Baseline.y = tm.Unix.tm_year + 1900; m = tm.Unix.tm_mon + 1; d = tm.Unix.tm_mday }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let owner_claims (baseline : Baseline.t option) =
  match baseline with
  | None -> []
  | Some b -> List.filter (fun e -> e.Baseline.owner <> []) b.Baseline.entries

(* Lint one in-memory source under a logical path (tests plant fixtures
   at paths like "lib/parallel/fake.ml" without touching lib/). The
   whole pipeline runs, call-graph rules included, scoped to the one
   file; [claims] supplies owner= entries for LC006. *)
let lint_source ?(hot = Hotpath.default) ?(rules = Rule.all) ?(claims = []) ~path content =
  match typecheck ~path content with
  | Ok str ->
    let findings, defs = Checks.run ~hot ~rules ~file:path str in
    let inter = Callgraph.run ~hot ~rules ~claims defs in
    Ok (List.sort Finding.compare (findings @ inter))
  | Error pe -> Error pe

let run ?(hot = Hotpath.default) ?(rules = Rule.all) ?baseline ?today ?(build = true)
    ~root () =
  let today = match today with Some t -> t | None -> today_from_clock () in
  let typed, cmt_errors = load_typed_files ~root ~build in
  let findings, defs =
    List.fold_left
      (fun (fs, ds) tf ->
        let f, d = Checks.run ~hot ~rules ~file:tf.tf_path tf.tf_str in
        (f :: fs, d :: ds))
      ([], []) typed
  in
  let defs = List.concat (List.rev defs) in
  let inter = Callgraph.run ~hot ~rules ~claims:(owner_claims baseline) defs in
  let findings = List.sort Finding.compare (List.concat (List.rev findings) @ inter) in
  let results, baseline_summary = apply_baseline ?baseline ~rules ~today findings in
  {
    Report.root;
    files_scanned = List.length typed;
    rules;
    results;
    parse_errors = cmt_errors;
    baseline = baseline_summary;
  }

(* ------------------------------------------------------------------ *)
(* Self-check                                                          *)
(* ------------------------------------------------------------------ *)

type self_check_result = {
  sc_parsed : int;  (* .ml/.mli files parsed *)
  sc_cmts : int;  (* .cmt files that loaded *)
  sc_errors : Report.parse_error list;
}

(* Version-variant sources (tcompat_51.ml, tcompat_52.ml) are compiled
   through dune copy rules under a different module name; the variant
   files themselves have no .cmt of their own. *)
let version_variant path =
  let b = Filename.basename path in
  has_suffix ~suffix:"_51.ml" b || has_suffix ~suffix:"_52.ml" b
  || has_suffix ~suffix:"_53.ml" b

(* Guard the linter's own blind spots, three ways: every .ml/.mli in
   the repo must parse (a file the parser rejects is a file no rule
   ever saw), every .cmt under lib/ must load (the typed pipeline reads
   these), and every lib/ source must be covered by a loaded .cmt (a
   module dune does not compile is a module the typed rules never
   analysed). *)
let self_check ?(build = true) ~root () =
  let mls = discover ~root ~subdir:"" ~suffix:".ml" () in
  let mlis = discover ~root ~subdir:"" ~suffix:".mli" () in
  let parse_errors =
    List.filter_map
      (fun src ->
        match parse_impl ~path:src.path (read_file src.abs) with
        | Ok _ -> None
        | Error pe -> Some pe)
      mls
    @ List.filter_map
        (fun src ->
          match parse_intf ~path:src.path (read_file src.abs) with
          | Ok () -> None
          | Error pe -> Some pe)
        mlis
  in
  let typed, cmt_errors = load_typed_files ~root ~build in
  let covered = Hashtbl.create 64 in
  List.iter (fun tf -> Hashtbl.replace covered tf.tf_path ()) typed;
  let coverage_errors =
    List.filter_map
      (fun src ->
        if
          has_prefix ~prefix:"lib/" src.path
          && (not (version_variant src.path))
          && not (Hashtbl.mem covered src.path)
        then
          Some
            {
              Report.pe_file = src.path;
              pe_line = 1;
              pe_col = 0;
              pe_message = "no loaded .cmt covers this module (dune build @lib/check)";
            }
        else None)
      mls
  in
  {
    sc_parsed = List.length mls + List.length mlis;
    sc_cmts = List.length typed;
    sc_errors = parse_errors @ cmt_errors @ coverage_errors;
  }
