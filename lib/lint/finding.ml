(* One diagnostic: a rule, a source span, the enclosing top-level
   definition ([context] — the stable key baselines suppress on, since
   names survive edits that shift line numbers), and an explanation. *)

type t = {
  rule : Rule.t;
  file : string;  (* repo-relative, '/'-separated *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, like compiler diagnostics *)
  context : string;  (* enclosing top-level definition or type *)
  message : string;
}

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Stdlib.compare (a.line, a.col) (b.line, b.col) with
    | 0 -> String.compare (Rule.id a.rule) (Rule.id b.rule)
    | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col (Rule.id f.rule) f.context
    f.message
