(* One diagnostic: a rule, a source span, the enclosing top-level
   definition ([context] — the stable key baselines suppress on, since
   names survive edits that shift line numbers), and an explanation.
   LC008 findings additionally carry [words], the estimated words
   allocated per call at the flagged site, so reports can aggregate the
   hot-path allocation debt per manifest root. *)

type t = {
  rule : Rule.t;
  file : string;  (* repo-relative, '/'-separated *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, like compiler diagnostics *)
  context : string;  (* enclosing top-level definition or type *)
  message : string;
  words : int option;  (* LC008: estimated words allocated per call *)
}

let make ~rule ~file ~line ~col ~context ~message =
  { rule; file; line; col; context; message; words = None }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Stdlib.compare (a.line, a.col) (b.line, b.col) with
    | 0 -> (
      match String.compare (Rule.id a.rule) (Rule.id b.rule) with
      | 0 -> String.compare a.message b.message
      | c -> c)
    | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col (Rule.id f.rule) f.context
    f.message
