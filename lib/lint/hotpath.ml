(* What counts as "hot" for the scoped rules, as data.

   - [hot_module] (LC002): modules whose code runs on the probe, query,
     or publish path of the serving engine. Blocking there is a bug by
     construction. All of lib/parallel, lib/dict, lib/cellprobe,
     lib/dynamic (the epoch read path and the builder it feeds) and
     lib/workload (op streams consumed mid-run), plus the per-probe
     modules of lib/obs. lib/obs modules that run on the monitor/export
     side (span registry, HTTP server, exporters, JSON) are warm, not
     hot: they may block.
   - [shared_scope] (LC003, LC007): libraries whose values are reachable
     from more than one domain at once — the multicore engine, the
     observability layer it publishes into, the epoch-published dynamic
     dictionary (readers and builder share it by design), the op streams
     the engine deals across domains and the controller state scraped
     over HTTP.
   - [harness] (LC006 caller scan): single-domain driver code — the
     experiment registry, offline analysis, the perf suite and the
     lower-bound simulations. These build private instances and may call
     builder entry points freely; a "second writer" there is a
     sequential harness, not a race, so the ownership scan skips them.
     Everything else under lib/ participates: a stray writer in the
     dictionary or engine layers is exactly what LC006 exists to catch.
   - [hot_functions] (LC004 direct audit, LC008 roots): the per-module
     manifest of functions that must stay allocation-free (or carry a
     documented suppression). LC008 closes this manifest over the call
     graph, so helpers no longer need to be listed by hand — only the
     roots do. Factory functions that *build* hot closures
     (Engine.make_probe, make_obs_probe) are deliberately absent:
     closure construction there is per-run setup, and the closures'
     per-probe callees (Metrics.incr, Heavy.observe, Window.publish,
     Journal.record, Table.peek) are the manifest entries that audit
     the actual loop.
   - [published_types] (LC007): record types whose values are published
     across domains by the epoch/seqlock protocols. A plain field read
     of such a record must be dominated by a pin ([pin_functions]) —
     locally, or on every shared-scope caller path.
   - [pin_functions] (LC007): qualified names of the functions that
     establish a pin (epoch announcement or seqlock-validated copy). A
     read inside one of these, or inside a function that calls one
     before the read, or reachable only through them, is safe. *)

type t = {
  hot_module : string -> bool;
  shared_scope : string -> bool;
  harness : string -> bool;
  hot_functions : string -> string list;
  published_types : string list;  (* qualified "Module.type" names *)
  pin_functions : string list;  (* qualified "Module.fn" names *)
}

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let obs_hot =
  [
    "lib/obs/metrics.ml";
    "lib/obs/window.ml";
    "lib/obs/heavy.ml";
    "lib/obs/journal.ml";
    "lib/obs/clock.ml";
  ]

let default_manifest =
  [
    ("lib/obs/metrics.ml", [ "bucket_of"; "incr"; "set_gauge"; "observe" ]);
    (* Epoch read path: pin/mem/unpin run per query on every reader
       domain. The reader's probe closure factory (Epoch.reader) is
       deliberately absent — closure construction there is per-reader
       setup, same policy as Engine.make_probe. *)
    (* acquire/release are the parked-pin variants of pin/unpin;
       reader_lag/reader_staleness are the epoch-lifecycle gauges the
       monitor scrapes per window cut while readers probe — none may
       allocate. mem_phased is the instrumented variant of mem that
       also attributes pin time — it runs per query whenever phase
       accounting is on, so it belongs in the audit even though its
       clock reads carry a documented boxed-Int64 suppression. *)
    ( "lib/dynamic/epoch.ml",
      [
        "pin"; "unpin"; "tombstoned"; "mem"; "acquire"; "release"; "reader_lag";
        "reader_staleness"; "mem_phased";
      ] );
    (* Phase accounting flush and the per-window GC sample: each runs
       once per worker batch end / window publish on a worker domain —
       between query batches, not per query, but still inside the
       serving loop, so they are audited like the publish path. *)
    ("lib/parallel/engine.ml", [ "flush_phases"; "sample_gc" ]);
    (* The replication controller's sense→decide→act step runs on the
       monitor domain once per window cut, inside the serving loop's
       heartbeat — audited like the publish path. The policy step is
       the pure hysteresis core of that path. *)
    ("lib/control/controller.ml", [ "windowed_evidence"; "observe" ]);
    ("lib/control/policy.ml", [ "step" ]);
    ("lib/obs/heavy.ml", [ "observe"; "min_count"; "copy_into" ]);
    ("lib/obs/window.ml", [ "publish" ]);
    ("lib/obs/journal.ml", [ "record" ]);
    ("lib/cellprobe/table.ml", [ "peek" ]);
    ("lib/core/query.ml", [ "mem_probe" ]);
    ("lib/dict/fks.ml", [ "mem_probe" ]);
    ("lib/dict/dm_dict.ml", [ "mem_probe" ]);
    ("lib/dict/cuckoo.ml", [ "mem_probe" ]);
    ("lib/dict/sorted_array.ml", [ "mem_probe" ]);
  ]

let default =
  {
    hot_module =
      (fun p ->
        has_prefix ~prefix:"lib/parallel/" p
        || has_prefix ~prefix:"lib/dict/" p
        || has_prefix ~prefix:"lib/cellprobe/" p
        || has_prefix ~prefix:"lib/dynamic/" p
        || has_prefix ~prefix:"lib/workload/" p
        || List.mem p obs_hot);
    shared_scope =
      (fun p ->
        has_prefix ~prefix:"lib/parallel/" p
        || has_prefix ~prefix:"lib/obs/" p
        || has_prefix ~prefix:"lib/dynamic/" p
        || has_prefix ~prefix:"lib/workload/" p
        (* Controller state is written by the monitor domain and read
           racily by the HTTP scrape domain (/control.json, gauges). *)
        || has_prefix ~prefix:"lib/control/" p);
    harness =
      (fun p ->
        has_prefix ~prefix:"lib/experiments/" p
        || has_prefix ~prefix:"lib/analysis/" p
        || has_prefix ~prefix:"lib/perf/" p
        || has_prefix ~prefix:"lib/lowerbound/" p);
    hot_functions =
      (fun p -> match List.assoc_opt p default_manifest with Some fns -> fns | None -> []);
    (* Epoch snapshots and their levels are published by one Atomic.set
       and reclaimed against announced epochs; Window publishers are the
       worker-side seqlock slots that stable_read copies out. *)
    published_types = [ "Epoch.snapshot"; "Epoch.elevel"; "Window.publisher" ];
    pin_functions = [ "Epoch.pin"; "Epoch.acquire"; "Window.stable_read" ];
  }
