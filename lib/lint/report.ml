(* The lint report: findings annotated with their suppression status,
   parse errors, baseline accounting, and the schema-versioned JSON
   encoding ("lowcon-lint" v2) that `lowcon validate` checks. v2 over
   v1: findings may carry "words" (LC008's estimated words allocated
   per call) and the baseline summary carries "untagged" (prose-only
   entries that declare neither owner= nor protocol=).

   Exit-code contract (shared with the CLI and documented in
   `lowcon --help`): 0 = clean or fully suppressed, 1 = active
   findings, 2 = usage or parse error. Parse errors dominate findings:
   a tree the linter cannot read is not a tree it can vouch for. *)

module Json = Lc_obs.Json

let schema_name = "lowcon-lint"
let schema_version = 2

type suppression = {
  justification : string;
  expires : string option;  (* YYYY-MM-DD *)
  entry_line : int;  (* line in the baseline file *)
}

type annotated = { finding : Finding.t; suppressed : suppression option }

type parse_error = { pe_file : string; pe_line : int; pe_col : int; pe_message : string }

type baseline_summary = {
  baseline_path : string;
  entries : int;
  used : int;
  unused : (string * int) list;  (* entry text, baseline line *)
  expired : (string * int) list;
  untagged : (string * int) list;  (* prose-only entries: no owner=/protocol= *)
}

type t = {
  root : string;
  files_scanned : int;
  rules : Rule.t list;
  results : annotated list;
  parse_errors : parse_error list;
  baseline : baseline_summary option;
}

let active r = List.filter (fun a -> a.suppressed = None) r.results
let suppressed r = List.filter (fun a -> a.suppressed <> None) r.results

let exit_code r =
  if r.parse_errors <> [] then 2 else if active r <> [] then 1 else 0

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

let annotated_to_json a =
  let f = a.finding in
  let base =
    [
      ("rule", Json.String (Rule.id f.Finding.rule));
      ("file", Json.String f.Finding.file);
      ("line", Json.Int f.Finding.line);
      ("col", Json.Int f.Finding.col);
      ("context", Json.String f.Finding.context);
      ("message", Json.String f.Finding.message);
    ]
    @ (match f.Finding.words with None -> [] | Some w -> [ ("words", Json.Int w) ])
  in
  let supp =
    match a.suppressed with
    | None -> [ ("suppressed", Json.Bool false) ]
    | Some s ->
      [
        ("suppressed", Json.Bool true);
        ( "suppression",
          Json.Obj
            ([
               ("justification", Json.String s.justification);
               ("entry_line", Json.Int s.entry_line);
             ]
            @
            match s.expires with
            | None -> []
            | Some d -> [ ("expires", Json.String d) ]) );
      ]
  in
  Json.Obj (base @ supp)

let to_json r =
  let rule_to_json rule =
    Json.Obj
      [
        ("id", Json.String (Rule.id rule));
        ("title", Json.String (Rule.title rule));
        ("intent", Json.String (Rule.intent rule));
      ]
  in
  let pe_to_json pe =
    Json.Obj
      [
        ("file", Json.String pe.pe_file);
        ("line", Json.Int pe.pe_line);
        ("col", Json.Int pe.pe_col);
        ("message", Json.String pe.pe_message);
      ]
  in
  let unused_to_json (text, line) =
    Json.Obj [ ("entry", Json.String text); ("line", Json.Int line) ]
  in
  Json.Obj
    ([
       ("schema", Json.String schema_name);
       ("version", Json.Int schema_version);
       ("root", Json.String r.root);
       ("files_scanned", Json.Int r.files_scanned);
       ("rules", Json.List (List.map rule_to_json r.rules));
       ("findings", Json.List (List.map annotated_to_json r.results));
       ("parse_errors", Json.List (List.map pe_to_json r.parse_errors));
       ( "summary",
         Json.Obj
           [
             ("active", Json.Int (List.length (active r)));
             ("suppressed", Json.Int (List.length (suppressed r)));
             ("parse_errors", Json.Int (List.length r.parse_errors));
             ("exit_code", Json.Int (exit_code r));
           ] );
     ]
    @
    match r.baseline with
    | None -> []
    | Some b ->
      [
        ( "baseline",
          Json.Obj
            [
              ("path", Json.String b.baseline_path);
              ("entries", Json.Int b.entries);
              ("used", Json.Int b.used);
              ("unused", Json.List (List.map unused_to_json b.unused));
              ("expired", Json.List (List.map unused_to_json b.expired));
              ("untagged", Json.List (List.map unused_to_json b.untagged));
            ] );
      ])

(* ------------------------------------------------------------------ *)
(* JSON decoding (validate round-trips through this)                   *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Option.bind

let str_m k j = Option.bind (Json.member k j) Json.string_value
let int_m k j = Option.bind (Json.member k j) Json.int_value
let bool_m k j = Option.bind (Json.member k j) Json.bool_value

let annotated_of_json j =
  let* rule_s = str_m "rule" j in
  let* rule = Rule.of_id rule_s in
  let* file = str_m "file" j in
  let* line = int_m "line" j in
  let* col = int_m "col" j in
  let* context = str_m "context" j in
  let* message = str_m "message" j in
  let* supp_flag = bool_m "suppressed" j in
  let* suppressed =
    if not supp_flag then Some None
    else
      let* s = Json.member "suppression" j in
      let* justification = str_m "justification" s in
      let* entry_line = int_m "entry_line" s in
      Some (Some { justification; expires = str_m "expires" s; entry_line })
  in
  let f = Finding.make ~rule ~file ~line ~col ~context ~message in
  Some { finding = { f with Finding.words = int_m "words" j }; suppressed }

let pe_of_json j =
  let* pe_file = str_m "file" j in
  let* pe_line = int_m "line" j in
  let* pe_col = int_m "col" j in
  let* pe_message = str_m "message" j in
  Some { pe_file; pe_line; pe_col; pe_message }

let entry_line_of_json j =
  let* text = str_m "entry" j in
  let* line = int_m "line" j in
  Some (text, line)

let baseline_of_json j =
  let* baseline_path = str_m "path" j in
  let* entries = int_m "entries" j in
  let* used = int_m "used" j in
  let* unused_j = Json.member "unused" j in
  let* expired_j = Json.member "expired" j in
  let all_some xs = if List.exists Option.is_none xs then None else Some (List.map Option.get xs) in
  let* untagged_j = Json.member "untagged" j in
  let* unused = all_some (List.map entry_line_of_json (Json.to_list unused_j)) in
  let* expired = all_some (List.map entry_line_of_json (Json.to_list expired_j)) in
  let* untagged = all_some (List.map entry_line_of_json (Json.to_list untagged_j)) in
  Some { baseline_path; entries; used; unused; expired; untagged }

let of_json j =
  let fail msg = Error msg in
  match str_m "schema" j with
  | Some s when s <> schema_name -> fail (Printf.sprintf "schema is %S, want %S" s schema_name)
  | None -> fail "missing \"schema\" member"
  | Some _ -> (
    match int_m "version" j with
    | Some v when v <> schema_version ->
      fail (Printf.sprintf "version %d unsupported (reader knows %d)" v schema_version)
    | None -> fail "missing \"version\" member"
    | Some _ -> (
      let req name = function
        | Some v -> Ok v
        | None -> fail (Printf.sprintf "missing or ill-typed %S" name)
      in
      let ( >>= ) r f = Result.bind r f in
      req "root" (str_m "root" j) >>= fun root ->
      req "files_scanned" (int_m "files_scanned" j) >>= fun files_scanned ->
      req "rules" (Json.member "rules" j) >>= fun rules_j ->
      let rules =
        List.filter_map (fun rj -> Option.bind (str_m "id" rj) Rule.of_id)
          (Json.to_list rules_j)
      in
      if List.length rules <> List.length (Json.to_list rules_j) then
        fail "rules list contains an unknown rule id"
      else
        req "findings" (Json.member "findings" j) >>= fun findings_j ->
        let results = List.map annotated_of_json (Json.to_list findings_j) in
        if List.exists Option.is_none results then fail "malformed finding entry"
        else
          let results = List.map Option.get results in
          req "parse_errors" (Json.member "parse_errors" j) >>= fun pes_j ->
          let pes = List.map pe_of_json (Json.to_list pes_j) in
          if List.exists Option.is_none pes then fail "malformed parse_errors entry"
          else
            let parse_errors = List.map Option.get pes in
            req "summary" (Json.member "summary" j) >>= fun summary ->
            req "summary.active" (int_m "active" summary) >>= fun s_active ->
            req "summary.exit_code" (int_m "exit_code" summary) >>= fun s_exit ->
            let baseline =
              match Json.member "baseline" j with
              | None -> Ok None
              | Some bj -> (
                match baseline_of_json bj with
                | Some b -> Ok (Some b)
                | None -> fail "malformed baseline summary")
            in
            baseline >>= fun baseline ->
            let r = { root; files_scanned; rules; results; parse_errors; baseline } in
            if List.length (active r) <> s_active then
              fail
                (Printf.sprintf "summary.active is %d but findings list %d unsuppressed"
                   s_active
                   (List.length (active r)))
            else if exit_code r <> s_exit then
              fail
                (Printf.sprintf "summary.exit_code is %d but findings imply %d" s_exit
                   (exit_code r))
            else Ok r))

(* ------------------------------------------------------------------ *)
(* Renderings                                                          *)
(* ------------------------------------------------------------------ *)

let render_text ?(show_suppressed = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun pe ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: parse error: %s\n" pe.pe_file pe.pe_line pe.pe_col
           pe.pe_message))
    r.parse_errors;
  List.iter
    (fun a -> Buffer.add_string buf (Finding.to_string a.finding ^ "\n"))
    (active r);
  if show_suppressed then
    List.iter
      (fun a ->
        match a.suppressed with
        | Some s ->
          Buffer.add_string buf
            (Printf.sprintf "%s  [suppressed: %s]\n" (Finding.to_string a.finding)
               s.justification)
        | None -> ())
      r.results;
  (match r.baseline with
  | Some b ->
    List.iter
      (fun (text, line) ->
        Buffer.add_string buf
          (Printf.sprintf "%s:%d: warning: unused baseline entry: %s\n" b.baseline_path line
             text))
      b.unused;
    List.iter
      (fun (text, line) ->
        Buffer.add_string buf
          (Printf.sprintf "%s:%d: note: expired baseline entry (finding resurfaces): %s\n"
             b.baseline_path line text))
      b.expired;
    List.iter
      (fun (text, line) ->
        Buffer.add_string buf
          (Printf.sprintf
             "%s:%d: warning: prose-only baseline entry (add owner= or protocol=): %s\n"
             b.baseline_path line text))
      b.untagged
  | None -> ());
  let n_active = List.length (active r) in
  Buffer.add_string buf
    (Printf.sprintf "%d file(s) scanned, %d active finding(s), %d suppressed, %d parse error(s)\n"
       r.files_scanned n_active
       (List.length (suppressed r))
       (List.length r.parse_errors));
  Buffer.contents buf

(* GitHub job-summary flavour: a table of active findings. *)
let render_markdown r =
  let buf = Buffer.create 1024 in
  let n_active = List.length (active r) in
  Buffer.add_string buf
    (Printf.sprintf "## lc_lint: %d active finding(s), %d suppressed, %d file(s) scanned\n\n"
       n_active
       (List.length (suppressed r))
       r.files_scanned);
  if r.parse_errors <> [] then begin
    Buffer.add_string buf "### Parse errors\n\n";
    List.iter
      (fun pe ->
        Buffer.add_string buf
          (Printf.sprintf "- `%s:%d:%d` %s\n" pe.pe_file pe.pe_line pe.pe_col pe.pe_message))
      r.parse_errors;
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf "### Active findings by rule\n\n";
  Buffer.add_string buf "| Rule | Title | Active | Suppressed |\n|------|-------|-------:|-----------:|\n";
  List.iter
    (fun rule ->
      if List.mem rule r.rules then begin
        let of_list l = List.length (List.filter (fun a -> a.finding.Finding.rule = rule) l) in
        Buffer.add_string buf
          (Printf.sprintf "| %s | %s | %d | %d |\n" (Rule.id rule) (Rule.title rule)
             (of_list (active r)) (of_list (suppressed r)))
      end)
    Rule.all;
  Buffer.add_char buf '\n';
  if n_active > 0 then begin
    Buffer.add_string buf "| Rule | Location | Context | Message |\n";
    Buffer.add_string buf "|------|----------|---------|--------|\n";
    List.iter
      (fun a ->
        let f = a.finding in
        Buffer.add_string buf
          (Printf.sprintf "| %s | `%s:%d:%d` | `%s` | %s |\n" (Rule.id f.Finding.rule)
             f.Finding.file f.Finding.line f.Finding.col f.Finding.context f.Finding.message))
      (active r)
  end
  else if r.parse_errors = [] then Buffer.add_string buf "No unsuppressed findings. :white_check_mark:\n";
  (match r.baseline with
  | Some b when b.unused <> [] ->
    Buffer.add_string buf "\n### Unused baseline entries\n\n";
    List.iter
      (fun (text, line) ->
        Buffer.add_string buf (Printf.sprintf "- line %d: `%s`\n" line text))
      b.unused
  | _ -> ());
  Buffer.contents buf
