(* Rule identities for lc_lint. IDs are stable: a rule, once shipped,
   keeps its ID forever; a retired rule leaves a hole in the numbering
   rather than renumbering its successors, so baseline entries and CI
   history never change meaning. *)

type t = LC001 | LC002 | LC003 | LC004 | LC005

let all = [ LC001; LC002; LC003; LC004; LC005 ]

let id = function
  | LC001 -> "LC001"
  | LC002 -> "LC002"
  | LC003 -> "LC003"
  | LC004 -> "LC004"
  | LC005 -> "LC005"

let title = function
  | LC001 -> "non-atomic read-modify-write"
  | LC002 -> "blocking primitive in a hot-path module"
  | LC003 -> "shared mutable state outside Atomic"
  | LC004 -> "allocation-prone construct on a manifest hot path"
  | LC005 -> "unsafe Obj coercion"

(* One-line statement of what the rule protects, used by the JSON
   report and the DESIGN.md rule table. *)
let intent = function
  | LC001 ->
    "an Atomic.get and Atomic.set on the same atomic in one definition lose updates under \
     concurrency; use fetch_and_add/compare_and_set/incr, or prove a single writer"
  | LC002 ->
    "Mutex/Condition/Semaphore and Unix.sleep* must not appear in modules on the probe/publish \
     path; blocking there serialises exactly the contention the engine exists to avoid"
  | LC003 ->
    "plain mutable state (mutable fields, array/bytes stores, field-held refs) reachable from \
     multi-domain code is a data race unless it is Atomic or carries a documented \
     single-writer/seqlock argument"
  | LC004 ->
    "closures, List combinators and Printf/Format inside manifest hot functions allocate or \
     format on the per-probe path; hot loops must be allocation-free"
  | LC005 ->
    "Obj.magic/Obj.repr defeat the type system and the memory model; never acceptable in this \
     codebase"

let of_id s =
  match String.uppercase_ascii (String.trim s) with
  | "LC001" -> Some LC001
  | "LC002" -> Some LC002
  | "LC003" -> Some LC003
  | "LC004" -> Some LC004
  | "LC005" -> Some LC005
  | _ -> None

(* "LC001,LC004" -> [LC001; LC004]; duplicates collapse, order is the
   canonical rule order. *)
let parse_list s =
  let parts =
    List.filter (fun p -> String.trim p <> "") (String.split_on_char ',' s)
  in
  if parts = [] then Error "empty rule list"
  else
    let rec go acc = function
      | [] -> Ok (List.filter (fun r -> List.mem r acc) all)
      | p :: rest -> (
        match of_id p with
        | Some r -> go (r :: acc) rest
        | None -> Error (Printf.sprintf "unknown rule %S (want LC001..LC005)" (String.trim p)))
    in
    go [] parts
