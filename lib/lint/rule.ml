(* Rule identities for lc_lint. IDs are stable: a rule, once shipped,
   keeps its ID forever; a retired rule leaves a hole in the numbering
   rather than renumbering its successors, so baseline entries and CI
   history never change meaning.

   LC001–LC005 are the intraprocedural rules (now evaluated on the
   Typedtree, so targets are resolved paths, not source text); LC006–
   LC008 are the interprocedural rules introduced by the ownership-
   verified rewrite — they consume the whole-repo call graph. *)

type t = LC001 | LC002 | LC003 | LC004 | LC005 | LC006 | LC007 | LC008

let all = [ LC001; LC002; LC003; LC004; LC005; LC006; LC007; LC008 ]

let id = function
  | LC001 -> "LC001"
  | LC002 -> "LC002"
  | LC003 -> "LC003"
  | LC004 -> "LC004"
  | LC005 -> "LC005"
  | LC006 -> "LC006"
  | LC007 -> "LC007"
  | LC008 -> "LC008"

let title = function
  | LC001 -> "non-atomic read-modify-write"
  | LC002 -> "blocking primitive in a hot-path module"
  | LC003 -> "shared mutable state outside Atomic"
  | LC004 -> "allocation-prone construct on a manifest hot path"
  | LC005 -> "unsafe Obj coercion"
  | LC006 -> "single-writer claim refuted by the call graph"
  | LC007 -> "published-state read not dominated by a pin"
  | LC008 -> "allocation site reachable from a hot-path root"

(* One-line statement of what the rule protects, used by the JSON
   report, the SARIF rule metadata and the DESIGN.md rule table. *)
let intent = function
  | LC001 ->
    "an Atomic.get and Atomic.set on the same atomic in one definition lose updates under \
     concurrency; use fetch_and_add/compare_and_set/incr, or prove a single writer"
  | LC002 ->
    "Mutex/Condition/Semaphore and Unix.sleep* must not appear in modules on the probe/publish \
     path; blocking there serialises exactly the contention the engine exists to avoid"
  | LC003 ->
    "plain mutable state (mutable fields, array/bytes stores, field-held refs) reachable from \
     multi-domain code is a data race unless it is Atomic or carries a documented \
     single-writer/seqlock argument"
  | LC004 ->
    "closures, List combinators and Printf/Format inside manifest hot functions allocate or \
     format on the per-probe path; hot loops must be allocation-free"
  | LC005 ->
    "Obj.magic/Obj.repr defeat the type system and the memory model; never acceptable in this \
     codebase"
  | LC006 ->
    "a baseline entry tagged owner=Module.fn claims its store has a single writer; the call \
     graph must show every non-harness path to that store passing through the declared \
     owner(s), or the claim is prose, not fact"
  | LC007 ->
    "a plain read of an epoch-published or seqlock-published record must happen under a pin \
     (Epoch.pin/acquire, Window.stable_read): an unpinned snapshot read races reclamation"
  | LC008 ->
    "every allocation site (closure, tuple, boxed literal, record, combinator) transitively \
     reachable from a manifest hot root is per-query cost; the words-per-call estimates turn \
     the zero-alloc debt into an itemised table"

let of_id s =
  match String.uppercase_ascii (String.trim s) with
  | "LC001" -> Some LC001
  | "LC002" -> Some LC002
  | "LC003" -> Some LC003
  | "LC004" -> Some LC004
  | "LC005" -> Some LC005
  | "LC006" -> Some LC006
  | "LC007" -> Some LC007
  | "LC008" -> Some LC008
  | _ -> None

(* "LC001,LC004" -> [LC001; LC004]; duplicates collapse, order is the
   canonical rule order. *)
let parse_list s =
  let parts =
    List.filter (fun p -> String.trim p <> "") (String.split_on_char ',' s)
  in
  if parts = [] then Error "empty rule list"
  else
    let rec go acc = function
      | [] -> Ok (List.filter (fun r -> List.mem r acc) all)
      | p :: rest -> (
        match of_id p with
        | Some r -> go (r :: acc) rest
        | None -> Error (Printf.sprintf "unknown rule %S (want LC001..LC008)" (String.trim p)))
    in
    go [] parts
