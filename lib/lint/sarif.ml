(* SARIF 2.1.0 export of a lint report, for GitHub code scanning.

   One run, one driver ("lowcon-lint"), one rule descriptor per LC
   rule, one result per finding. Suppressed findings are exported with
   a [suppressions] entry of kind "external" (the baseline file is
   external to the source), which code-scanning UIs render as resolved
   rather than dropping silently — the allowlist stays visible. Parse
   errors become tool-execution notifications on the invocation, and
   flip [executionSuccessful] to false.

   [validate] is the structural checker behind `lowcon validate`: it
   enforces the subset of the SARIF schema this producer relies on
   (version string, run/tool/driver shape, every result's ruleId
   declared by the driver, 1-based regions, known suppression kinds),
   so CI catches a malformed export before the upload step does. *)

module Json = Lc_obs.Json

let version = "2.1.0"
let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"

let rule_descriptor rule =
  Json.Obj
    [
      ("id", Json.String (Rule.id rule));
      ("name", Json.String (Rule.id rule));
      ("shortDescription", Json.Obj [ ("text", Json.String (Rule.title rule)) ]);
      ("fullDescription", Json.Obj [ ("text", Json.String (Rule.intent rule)) ]);
      ("defaultConfiguration", Json.Obj [ ("level", Json.String "error") ]);
    ]

let location (file : string) ~line ~col =
  Json.Obj
    [
      ( "physicalLocation",
        Json.Obj
          [
            ("artifactLocation", Json.Obj [ ("uri", Json.String file) ]);
            ( "region",
              Json.Obj
                [
                  ("startLine", Json.Int (max 1 line));
                  (* SARIF columns are 1-based; findings carry
                     compiler-style 0-based columns. *)
                  ("startColumn", Json.Int (col + 1));
                ] );
          ] );
    ]

let result_of (rules : Rule.t list) (a : Report.annotated) =
  let f = a.Report.finding in
  let rule_index =
    let rec idx i = function
      | [] -> None
      | r :: _ when r = f.Finding.rule -> Some i
      | _ :: tl -> idx (i + 1) tl
    in
    idx 0 rules
  in
  Json.Obj
    ([
       ("ruleId", Json.String (Rule.id f.Finding.rule));
     ]
    @ (match rule_index with None -> [] | Some i -> [ ("ruleIndex", Json.Int i) ])
    @ [
        ("level", Json.String "error");
        ("message", Json.Obj [ ("text", Json.String f.Finding.message) ]);
        ( "locations",
          Json.List [ location f.Finding.file ~line:f.Finding.line ~col:f.Finding.col ]
        );
        ( "properties",
          Json.Obj
            ([ ("context", Json.String f.Finding.context) ]
            @
            match f.Finding.words with
            | None -> []
            | Some w -> [ ("wordsPerCall", Json.Int w) ]) );
      ]
    @
    match a.Report.suppressed with
    | None -> []
    | Some s ->
      [
        ( "suppressions",
          Json.List
            [
              Json.Obj
                [
                  ("kind", Json.String "external");
                  ("justification", Json.String s.Report.justification);
                ];
            ] );
      ])

let notification_of (pe : Report.parse_error) =
  Json.Obj
    [
      ("level", Json.String "error");
      ("message", Json.Obj [ ("text", Json.String pe.Report.pe_message) ]);
      ( "locations",
        Json.List [ location pe.Report.pe_file ~line:pe.Report.pe_line ~col:pe.Report.pe_col ]
      );
    ]

let of_report (r : Report.t) =
  let rules = r.Report.rules in
  Json.Obj
    [
      ("$schema", Json.String schema_uri);
      ("version", Json.String version);
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String Report.schema_name);
                            ( "version",
                              Json.String (string_of_int Report.schema_version) );
                            ("rules", Json.List (List.map rule_descriptor rules));
                          ] );
                    ] );
                ( "invocations",
                  let notifications =
                    if r.Report.parse_errors = [] then []
                    else
                      [
                        ( "toolExecutionNotifications",
                          Json.List (List.map notification_of r.Report.parse_errors) );
                      ]
                  in
                  Json.List
                    [
                      Json.Obj
                        ([
                           ( "executionSuccessful",
                             Json.Bool (r.Report.parse_errors = []) );
                           ("exitCode", Json.Int (Report.exit_code r));
                         ]
                        @ notifications);
                    ] );
                ("results", Json.List (List.map (result_of rules) r.Report.results));
              ];
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Structural validation                                               *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let str_m k j =
  match Option.bind (Json.member k j) Json.string_value with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or ill-typed %S" k)

let list_m k j =
  match Json.member k j with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "missing or ill-typed %S (want array)" k)

let obj_m k j =
  match Json.member k j with
  | Some (Json.Obj _ as o) -> Ok o
  | _ -> Error (Printf.sprintf "missing or ill-typed %S (want object)" k)

let levels = [ "none"; "note"; "warning"; "error" ]
let suppression_kinds = [ "inSource"; "external" ]

let validate_location j =
  let* pl = obj_m "physicalLocation" j in
  let* al = obj_m "artifactLocation" pl in
  let* _uri = str_m "uri" al in
  match Json.member "region" pl with
  | None -> Ok ()
  | Some region -> (
    match Option.bind (Json.member "startLine" region) Json.int_value with
    | Some l when l >= 1 -> (
      match Option.bind (Json.member "startColumn" region) Json.int_value with
      | Some c when c < 1 -> Error "region.startColumn must be 1-based"
      | _ -> Ok ())
    | Some _ -> Error "region.startLine must be 1-based"
    | None -> Error "region without startLine")

let validate_result ~rule_ids j =
  let* rule_id = str_m "ruleId" j in
  if not (List.mem rule_id rule_ids) then
    Error (Printf.sprintf "result ruleId %S not declared by the driver" rule_id)
  else
    let* msg = obj_m "message" j in
    let* _text = str_m "text" msg in
    let* () =
      match Option.bind (Json.member "level" j) Json.string_value with
      | Some l when not (List.mem l levels) ->
        Error (Printf.sprintf "unknown result level %S" l)
      | _ -> Ok ()
    in
    let* locs = list_m "locations" j in
    let* () =
      List.fold_left
        (fun acc l -> Result.bind acc (fun () -> validate_location l))
        (Ok ()) locs
    in
    match Json.member "suppressions" j with
    | None -> Ok ()
    | Some (Json.List sups) ->
      List.fold_left
        (fun acc s ->
          Result.bind acc (fun () ->
              let* kind = str_m "kind" s in
              if List.mem kind suppression_kinds then Ok ()
              else Error (Printf.sprintf "unknown suppression kind %S" kind)))
        (Ok ()) sups
    | Some _ -> Error "suppressions must be an array"

let validate_run j =
  let* tool = obj_m "tool" j in
  let* driver = obj_m "driver" tool in
  let* _name = str_m "name" driver in
  let* rules = list_m "rules" driver in
  let* rule_ids =
    List.fold_left
      (fun acc r ->
        let* ids = acc in
        let* id = str_m "id" r in
        Ok (id :: ids))
      (Ok []) rules
  in
  let* results = list_m "results" j in
  List.fold_left
    (fun acc r -> Result.bind acc (fun () -> validate_result ~rule_ids r))
    (Ok ()) results

let validate j =
  let* v = str_m "version" j in
  if v <> version then Error (Printf.sprintf "version is %S, want %S" v version)
  else
    let* runs = list_m "runs" j in
    if runs = [] then Error "runs is empty"
    else
      List.fold_left
        (fun acc r -> Result.bind acc (fun () -> validate_run r))
        (Ok ()) runs
