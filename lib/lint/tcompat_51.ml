(* Version-specific view of the Typedtree, OCaml < 5.2 flavour.

   OCaml 5.2 reshaped [Texp_function] (a params list + function_body
   instead of one case list per arrow) and widened [Tpat_var]/
   [Tpat_alias] with a [Uid.t]. Everything else lc_lint consumes
   (idents, applications, setfield, field access, let/match/if, record
   type declarations) is stable across 5.1–5.3, so these are the only
   seams; a dune rule copies the matching implementation to tcompat.ml
   based on %{ocaml_version}. *)

open Typedtree

(* If [e] is a lambda, the expressions its body can evaluate to (one
   per match case for [function]); [None] otherwise. In 5.1 a curried
   [fun a b -> e] is nested [Texp_function] nodes, which the spine walk
   in Checks handles by recursing through the returned bodies. *)
let lambda_bodies (e : expression) : expression list option =
  match e.exp_desc with
  | Texp_function { cases; _ } -> Some (List.map (fun c -> c.c_rhs) cases)
  | _ -> None

(* The bound ident of a simple binding pattern ([let f = ...],
   [let f : t = ...], [let f as g = ...]); [None] for destructuring
   patterns, which never name a top-level definition in this codebase. *)
let rec pat_ident (p : pattern) : (Ident.t * string) option =
  match p.pat_desc with
  | Tpat_var (id, name) -> Some (id, name.txt)
  | Tpat_alias (p', id, name) -> (
    match pat_ident p' with Some r -> Some r | None -> Some (id, name.txt))
  | _ -> None

(* Typecheck one parsed implementation in [env], returning only the
   typed structure. *)
let type_structure env ast =
  let str, _sig, _names, _shape, _env = Typemod.type_structure env ast in
  str
