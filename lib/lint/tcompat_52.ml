(* Version-specific view of the Typedtree, OCaml >= 5.2 flavour.

   OCaml 5.2 reshaped [Texp_function] into a [function_param list] plus
   a [function_body] (mirroring the 5.2 Parsetree change) and widened
   [Tpat_var]/[Tpat_alias] with a [Uid.t]. Everything else lc_lint
   consumes is stable across 5.1–5.3; a dune rule copies the matching
   implementation to tcompat.ml based on %{ocaml_version}. *)

open Typedtree

(* If [e] is a lambda, the expressions its body can evaluate to (one
   per match case for [function]); [None] otherwise. In 5.2+ the whole
   curried prefix is one [Texp_function] node, so the bodies returned
   here are already past the spine of parameters. Parameters with
   default expressions evaluate those per call; they are returned as
   additional bodies so allocation checks still see them. *)
let lambda_bodies (e : expression) : expression list option =
  match e.exp_desc with
  | Texp_function { params; body; _ } ->
    let defaults =
      List.filter_map
        (fun p ->
          match p.fp_kind with
          | Tparam_optional_default (_, d) -> Some d
          | Tparam_pat _ -> None)
        params
    in
    let bodies =
      match body with
      | Tfunction_body b -> [ b ]
      | Tfunction_cases { cases; _ } -> List.map (fun c -> c.c_rhs) cases
    in
    Some (defaults @ bodies)
  | _ -> None

(* The bound ident of a simple binding pattern ([let f = ...],
   [let f : t = ...], [let f as g = ...]); [None] for destructuring
   patterns, which never name a top-level definition in this codebase. *)
let rec pat_ident (p : pattern) : (Ident.t * string) option =
  match p.pat_desc with
  | Tpat_var (id, name, _uid) -> Some (id, name.txt)
  | Tpat_alias (p', id, name, _uid) -> (
    match pat_ident p' with Some r -> Some r | None -> Some (id, name.txt))
  | _ -> None

(* Typecheck one parsed implementation in [env], returning only the
   typed structure. *)
let type_structure env ast =
  let str, _sig, _names, _shape, _env = Typemod.type_structure env ast in
  str
