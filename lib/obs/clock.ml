let now_ns = Monotonic_clock.now
