(** Monotonic nanosecond clock for telemetry timestamps.

    [Unix.gettimeofday] has microsecond resolution and can step; probe
    latencies are nanoseconds. This wraps the [CLOCK_MONOTONIC] stub
    shipped with bechamel (already in the container) — [@@noalloc], so
    reading the clock keeps the recording path allocation-free. *)

val now_ns : unit -> int64
