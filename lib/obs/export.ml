(* Prometheus metric names allow [a-zA-Z0-9_:]; map anything else to '_'
   so dotted names like "engine.probes" expose as "engine_probes". *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* The exposition format requires backslash and line feed escaped in
   HELP text ("\\" and "\n"); a raw newline would end the comment line
   mid-help and leave the remainder as an unparseable series line. *)
let escape_help help =
  let buf = Buffer.create (String.length help) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    help;
  Buffer.contents buf

let prometheus (s : Metrics.Snapshot.t) =
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (name, help, v) ->
      let name = sanitize name in
      header name help "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    s.counters;
  List.iter
    (fun (name, help, v) ->
      let name = sanitize name in
      header name help "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %.17g\n" name v))
    s.gauges;
  List.iter
    (fun (h : Metrics.Snapshot.hist) ->
      let name = sanitize h.name in
      header name h.help "histogram";
      let cum = ref 0 in
      Array.iter
        (fun (upper, count) ->
          cum := !cum + count;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name upper !cum))
        h.buckets;
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name h.sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.count))
    s.hists;
  Buffer.contents buf

let json_snapshot (s : Metrics.Snapshot.t) =
  let counters = List.map (fun (n, _, v) -> (n, Json.Int v)) s.counters in
  let gauges = List.map (fun (n, _, v) -> (n, Json.Float v)) s.gauges in
  let hists =
    List.map
      (fun (h : Metrics.Snapshot.hist) ->
        ( h.name,
          Json.Obj
            [
              ("count", Json.Int h.count);
              ("sum", Json.Int h.sum);
              ("max", Json.Int h.max_value);
              ( "buckets",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun (upper, count) -> Json.List [ Json.Int upper; Json.Int count ])
                        h.buckets)) );
            ] ))
      s.hists
  in
  Json.to_string
    (Json.Obj
       [
         ("counters", Json.Obj counters);
         ("gauges", Json.Obj gauges);
         ("histograms", Json.Obj hists);
       ])

(* Write-then-rename within the target's directory: a concurrent reader
   (a scraper tailing `lowcon profile`/`monitor` artifacts) sees either
   the old document or the new one, never a truncated mix. The temp file
   must live in the same directory for Sys.rename to stay a same-
   filesystem atomic replace. *)
let write_file ~path doc =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
