(* Prometheus metric names allow [a-zA-Z0-9_:]; map anything else to '_'
   so dotted names like "engine.probes" expose as "engine_probes". *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prometheus (s : Metrics.Snapshot.t) =
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (name, help, v) ->
      let name = sanitize name in
      header name help "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    s.counters;
  List.iter
    (fun (name, help, v) ->
      let name = sanitize name in
      header name help "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %.17g\n" name v))
    s.gauges;
  List.iter
    (fun (h : Metrics.Snapshot.hist) ->
      let name = sanitize h.name in
      header name h.help "histogram";
      let cum = ref 0 in
      Array.iter
        (fun (upper, count) ->
          cum := !cum + count;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name upper !cum))
        h.buckets;
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name h.sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.count))
    s.hists;
  Buffer.contents buf

let json_snapshot (s : Metrics.Snapshot.t) =
  let counters = List.map (fun (n, _, v) -> (n, Json.Int v)) s.counters in
  let gauges = List.map (fun (n, _, v) -> (n, Json.Float v)) s.gauges in
  let hists =
    List.map
      (fun (h : Metrics.Snapshot.hist) ->
        ( h.name,
          Json.Obj
            [
              ("count", Json.Int h.count);
              ("sum", Json.Int h.sum);
              ("max", Json.Int h.max_value);
              ( "buckets",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun (upper, count) -> Json.List [ Json.Int upper; Json.Int count ])
                        h.buckets)) );
            ] ))
      s.hists
  in
  Json.to_string
    (Json.Obj
       [
         ("counters", Json.Obj counters);
         ("gauges", Json.Obj gauges);
         ("histograms", Json.Obj hists);
       ])

let write_file ~path doc =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
