(** Exporters for merged metric snapshots.

    Two formats, both built from a {!Metrics.Snapshot.t}:

    - {!prometheus}: the text exposition format ([# HELP] / [# TYPE]
      comments, [_bucket{le="..."}] / [_sum] / [_count] series for
      histograms with cumulative buckets), scrapeable as-is;
    - {!json_snapshot}: the same data as one JSON document, for the
      [lowcon profile] artifacts and programmatic consumption.

    The Chrome trace export lives with its data in
    {!Span.to_chrome_json}. *)

val prometheus : Metrics.Snapshot.t -> string

val json_snapshot : Metrics.Snapshot.t -> string
(** Parses back with {!Json.parse}; shape:
    [{"counters": {name: value, ...},
      "gauges": {name: value, ...},
      "histograms": {name: {"count": _, "sum": _, "max": _,
                            "buckets": [[upper, count], ...]}, ...}}]. *)

val write_file : path:string -> string -> unit
(** Write a document atomically enough for our purposes (single
    [open_out]/[output_string]/[close_out]). *)
