(** Exporters for merged metric snapshots.

    Two formats, both built from a {!Metrics.Snapshot.t}:

    - {!prometheus}: the text exposition format ([# HELP] / [# TYPE]
      comments, [_bucket{le="..."}] / [_sum] / [_count] series for
      histograms with cumulative buckets), scrapeable as-is;
    - {!json_snapshot}: the same data as one JSON document, for the
      [lowcon profile] artifacts and programmatic consumption.

    The Chrome trace export lives with its data in
    {!Span.to_chrome_json}. *)

val prometheus : Metrics.Snapshot.t -> string
(** Help text is escaped per the exposition format ([\\] and [\n]), so a
    multi-line help string still produces a single [# HELP] line. *)

val escape_help : string -> string
(** The [# HELP] escaping by itself: backslash to [\\], line feed to
    [\n]. *)

val json_snapshot : Metrics.Snapshot.t -> string
(** Parses back with {!Json.parse}; shape:
    [{"counters": {name: value, ...},
      "gauges": {name: value, ...},
      "histograms": {name: {"count": _, "sum": _, "max": _,
                            "buckets": [[upper, count], ...]}, ...}}]. *)

val write_file : path:string -> string -> unit
(** Atomic replace: the document is written to a fresh temp file in
    [path]'s directory and renamed over [path], so a concurrent reader
    observes either the previous complete document or the new one. *)
