type t = {
  k : int;
  items : int array;
  counts : int array;
  errs : int array;
  mutable size : int;
  mutable total : int;
}

let create ~k =
  if k < 1 then invalid_arg "Heavy.create: k must be >= 1";
  { k; items = Array.make k (-1); counts = Array.make k 0; errs = Array.make k 0; size = 0; total = 0 }

let capacity t = t.k
let total t = t.total

let reset t =
  Array.fill t.items 0 t.k (-1);
  Array.fill t.counts 0 t.k 0;
  Array.fill t.errs 0 t.k 0;
  t.size <- 0;
  t.total <- 0

(* One linear scan finds the tracked slot for [x] (if any) and the
   current minimum slot (for eviction) at the same time. k is small (a
   top-k sketch, not a table), so the scan is a handful of compares —
   cheap enough for the engine's probe path, and allocation-free. *)
let observe t x =
  t.total <- t.total + 1;
  let found = ref (-1) in
  let min_slot = ref 0 in
  for i = 0 to t.size - 1 do
    if t.items.(i) = x then found := i;
    if t.counts.(i) < t.counts.(!min_slot) then min_slot := i
  done;
  if !found >= 0 then t.counts.(!found) <- t.counts.(!found) + 1
  else if t.size < t.k then begin
    let i = t.size in
    t.items.(i) <- x;
    t.counts.(i) <- 1;
    t.errs.(i) <- 0;
    t.size <- t.size + 1
  end
  else begin
    let i = !min_slot in
    t.errs.(i) <- t.counts.(i);
    t.items.(i) <- x;
    t.counts.(i) <- t.counts.(i) + 1
  end

(* The count every untracked item is bounded by: the minimum tracked
   count once the sketch is full, 0 before that. *)
let min_count t =
  if t.size < t.k then 0
  else begin
    let m = ref t.counts.(0) in
    for i = 1 to t.size - 1 do
      if t.counts.(i) < !m then m := t.counts.(i)
    done;
    !m
  end

let copy_into src dst =
  if src.k <> dst.k then invalid_arg "Heavy.copy_into: sketches must share k";
  Array.blit src.items 0 dst.items 0 src.k;
  Array.blit src.counts 0 dst.counts 0 src.k;
  Array.blit src.errs 0 dst.errs 0 src.k;
  dst.size <- src.size;
  dst.total <- src.total

type entry = { item : int; count : int; err : int }

let entries t =
  let out = ref [] in
  for i = t.size - 1 downto 0 do
    out := { item = t.items.(i); count = t.counts.(i); err = t.errs.(i) } :: !out
  done;
  List.sort (fun a b -> compare b.count a.count) !out

type merged = { top : entry list; total_observed : int; error_bound : int }

(* Merging sketches over disjoint streams (one per worker domain): for
   each item in the union, sum the counts where tracked; for each sketch
   that does NOT track the item, its true count there is at most that
   sketch's min tracked count, so adding min_count keeps [count] an upper
   bound on the true frequency and charging it to [err] keeps
   [count - err <= true <= count]. *)
let merge sketches ~k =
  if k < 1 then invalid_arg "Heavy.merge: k must be >= 1";
  let mins = List.map min_count sketches in
  let tbl : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      for i = 0 to s.size - 1 do
        let x = s.items.(i) in
        match Hashtbl.find_opt tbl x with
        | Some (c, e) ->
          c := !c + s.counts.(i);
          e := !e + s.errs.(i)
        | None -> Hashtbl.add tbl x (ref s.counts.(i), ref s.errs.(i))
      done)
    sketches;
  (* Charge each sketch's min to the items it does not track. *)
  List.iter2
    (fun s m ->
      if m > 0 then
        Hashtbl.iter
          (fun x (c, e) ->
            let tracked = ref false in
            for i = 0 to s.size - 1 do
              if s.items.(i) = x then tracked := true
            done;
            if not !tracked then begin
              c := !c + m;
              e := !e + m
            end)
          tbl)
    sketches mins;
  let all = Hashtbl.fold (fun x (c, e) acc -> { item = x; count = !c; err = !e } :: acc) tbl [] in
  let sorted = List.sort (fun a b -> compare b.count a.count) all in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  {
    top = take k sorted;
    total_observed = List.fold_left (fun acc s -> acc + s.total) 0 sketches;
    error_bound = List.fold_left ( + ) 0 mins;
  }

let max_estimate m = match m.top with [] -> 0 | e :: _ -> e.count

(* The entry with the largest guaranteed count. [count - err] never
   exceeds the item's true frequency, so on a near-uniform stream (where
   every estimate is dominated by eviction noise and [max_estimate] is
   vacuously large) this collapses towards 0 instead of total/k — which
   is what makes it usable as an alert signal with no false positives. *)
let max_guaranteed m =
  List.fold_left
    (fun best e ->
      match best with
      | Some b when b.count - b.err >= e.count - e.err -> best
      | _ -> Some e)
    None m.top
