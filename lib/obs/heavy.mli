(** Space-Saving (Misra–Gries) top-k heavy-hitter sketch over cell
    indices.

    The serving engine's exact per-cell tally is an [O(s)] array — fine
    at quiescence, but a live monitor wants hot-cell tracking in [O(k)]
    memory it can publish every few hundred queries. Space-Saving tracks
    at most [k] items; when an untracked item arrives with the sketch
    full it {e takes over} the minimum slot, inheriting its count as the
    slot's error. The classical guarantees, per sketch over its own
    stream of [N] observations:

    - every tracked item's estimate over-counts: [count - err <= true <= count];
    - any untracked item's true count is at most the minimum tracked
      count, which is at most [N / k];
    - any item with true count above [N / k] is tracked.

    A sketch is single-owner mutable state (one per worker domain, like
    a {!Metrics.shard}); {!observe} is allocation-free and [O(k)].
    Cross-domain publication goes through {!copy_into} under the
    {!Window} seqlock; the monitor combines the published copies with
    {!merge}. *)

type t

val create : k:int -> t
(** A sketch tracking at most [k] items. Raises for [k < 1]. *)

val capacity : t -> int

val total : t -> int
(** Observations so far ([N]). *)

val observe : t -> int -> unit
(** Record one occurrence of an item (for the engine: a probed cell
    index). [O(k)] scan, no allocation. *)

val reset : t -> unit

val min_count : t -> int
(** The eviction floor: 0 until the sketch is full, then the minimum
    tracked count — an upper bound on every untracked item's true count,
    itself at most [total / k]. *)

val copy_into : t -> t -> unit
(** [copy_into src dst] blits [src]'s state into [dst] (same [k]
    required). No allocation; used by the seqlock publisher. *)

type entry = { item : int; count : int; err : int }
(** [count] over-estimates the item's true frequency by at most [err]:
    [count - err <= true <= count]. *)

val entries : t -> entry list
(** Tracked items, descending by [count]. *)

(** The result of merging per-domain sketches (disjoint streams). *)
type merged = {
  top : entry list;  (** Top-k of the union, descending by [count]. *)
  total_observed : int;  (** Sum of the sketches' totals. *)
  error_bound : int;
      (** Sum of the sketches' eviction floors: every [entry.err] is at
          most this, and so is the over-estimate of {!max_estimate}
          against the true hottest item's count. At most
          [total_observed / k]. *)
}

val merge : t list -> k:int -> merged
(** Merge by summing counts where tracked and charging each sketch's
    {!min_count} (as both count and error) where not, preserving
    [count - err <= true <= count] per entry. The true hottest item's
    count never exceeds [max_estimate]. *)

val max_estimate : merged -> int
(** The top entry's count, 0 when empty. An upper bound on the true
    hottest item's count, tight to within [error_bound]. *)

val max_guaranteed : merged -> entry option
(** The entry whose {e lower} bound [count - err] is largest — a sound
    under-estimate of the true hottest count. On a stream with a real
    heavy hitter the two bounds pinch together ([err] stays small for an
    item observed from the start); on a near-uniform stream
    [max_estimate] degrades to [~ total / k] while this collapses
    towards 0, so alerts driven by it cannot fire spuriously. The true
    hottest count lies in [[count - err, max_estimate]], an interval of
    width at most [error_bound]. *)
