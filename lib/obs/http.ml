type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain; charset=utf-8"; body }
let json ?(status = 200) body = { status; content_type = "application/json"; body }

type route = string * (unit -> response)

type t = {
  sock : Unix.file_descr;
  stop_w : Unix.file_descr;
  server : unit Domain.t;
  port : int;
  stopped : bool Atomic.t;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (reason status) content_type (String.length body)
  in
  let out = head ^ body in
  let len = String.length out in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd out !pos (len - !pos)
  done

(* Read until the end of the request head (CRLFCRLF) or a size cap; the
   routes are all GETs, so any body is ignored. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 16 * 1024 then Buffer.contents buf
    else begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec has_terminator i =
          i + 3 < String.length s
          && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n')
             || has_terminator (i + 1))
        in
        if has_terminator 0 then s else go ()
      end
    end
  in
  go ()

let handle routes fd =
  let head = read_head fd in
  let request_line = match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  let response =
    match String.split_on_char ' ' request_line with
    | [ meth; target; _version ] ->
      if meth <> "GET" && meth <> "HEAD" then text ~status:405 "method not allowed\n"
      else begin
        (* Strip any query string; routes match on the path alone. *)
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        match List.assoc_opt path routes with
        | None -> text ~status:404 (Printf.sprintf "no route %s\n" path)
        | Some f -> (
          try f ()
          with e -> text ~status:500 (Printf.sprintf "handler error: %s\n" (Printexc.to_string e)))
      end
    | _ -> text ~status:400 "malformed request line\n"
  in
  write_response fd response

let serve_loop sock stop_r routes =
  let running = ref true in
  while !running do
    match Unix.select [ sock; stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      if List.mem stop_r readable then running := false
      else if List.mem sock readable then begin
        match Unix.accept sock with
        | exception Unix.Unix_error (_, _, _) -> ()
        | fd, _addr ->
          (* One connection at a time: handlers are quick (format a
             snapshot) and serialising them means the Window scratch
             buffers see no extra route-level concurrency. *)
          (try handle routes fd with _ -> ());
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      end
  done;
  (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
  try Unix.close stop_r with Unix.Unix_error (_, _, _) -> ()

let start ?(host = "127.0.0.1") ~port routes =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen sock 16;
      let actual_port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let stop_r, stop_w = Unix.pipe () in
      let server = Domain.spawn (fun () -> serve_loop sock stop_r routes) in
      { sock; stop_w; server; port = actual_port; stopped = Atomic.make false }
    with e ->
      (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
      raise e
  in
  t

let port t = t.port

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1 : int)
     with Unix.Unix_error (_, _, _) -> ());
    Domain.join t.server;
    try Unix.close t.stop_w with Unix.Unix_error (_, _, _) -> ()
  end
