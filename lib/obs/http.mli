(** A dependency-free HTTP/1.1 scrape endpoint (Unix module only).

    Just enough HTTP for a metrics scraper and a browser: the server
    runs an accept loop on its own domain, answers [GET]/[HEAD] requests
    by exact path match against the supplied routes, and closes each
    connection after one response ([Connection: close], explicit
    [Content-Length]). Handlers run serially on the server domain, so a
    route that reads shared monitoring state only needs that state to be
    safe against {e one} concurrent reader — which {!Window}'s
    internally-locked readers are.

    Not implemented (deliberately): keep-alive, chunked encoding,
    request bodies, TLS. This is a monitoring side-channel, not a
    public-facing server; bind it to localhost (the default). *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** [text/plain] response, status defaults to 200. *)

val json : ?status:int -> string -> response
(** [application/json] response, status defaults to 200. *)

type route = string * (unit -> response)
(** Exact path (e.g. ["/metrics"]; query strings are stripped before
    matching) and its handler. A handler that raises is answered as a
    500 carrying the exception text. *)

type t

val start : ?host:string -> port:int -> route list -> t
(** Bind [host] (default ["127.0.0.1"]) at [port] (0 picks an ephemeral
    port — read it back with {!port}), spawn the server domain, and
    return immediately. Unknown paths answer 404; non-GET/HEAD methods
    405. Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The bound port — the actual one when [start] was given port 0. *)

val stop : t -> unit
(** Wake the server domain, join it, and close the listening socket.
    Idempotent. *)
