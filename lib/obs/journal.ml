type kind =
  | Window_cut of {
      index : int;
      queries : int;
      qps : float;
      p50_ns : float;
      p99_ns : float;
      hotspot_ratio : float;
      alert : bool;
    }
  | Alert_raised of { index : int; ratio : float; factor : float }
  | Alert_cleared of { index : int; ratio : float; factor : float }
  | Sketch_snapshot of { top : (int * int * int) list }
  | Stage of { name : string; mark : [ `Begin | `End ] }
  | Publish of { queries : int }
  | Epoch_publish of {
      epoch : int;
      batch : int;
      levels : int;
      fresh_cells : int;
      dur_ns : int;
    }
  | Level_merge of {
      level : int;
      keys : int;
      replicas : int;
      cells : int;
      dur_ns : int;
    }
  | Reclaim of { epoch : int; freed : int; lag : int; pending : int }
  | Control_decision of {
      id : int;
      window : int;
      ratio : float;
      cell : int;
      count : int;
      err : int;
      score : int;
      action : [ `Raise | `Lower ];
      old_boost : int;
      new_boost : int;
      cooldown : int;
    }
  | Control_applied of {
      id : int;
      epoch : int;
      boost : int;
      levels : int;
      cells : int;
      dur_ns : int;
    }

type event = { t_ns : int64; writer : int; seq : int; kind : kind }

(* One single-writer ring per recording domain. [record] does two plain
   stores (slot, then head); there is no CAS, no lock, and no loop, so a
   worker's recording cost is bounded and contention-free — the journal
   must not become the hot cell it exists to explain. Readers ([events],
   [dump]) run concurrently with writers: a racy read of [slots] is
   memory-safe in OCaml (each slot holds an immutable [event] record or
   [None]) and at worst misses or double-sees the entry being replaced,
   which a postmortem dump tolerates by construction. *)
type ring = { slots : event option array; mutable head : int }

type t = { capacity : int; rings : ring array }

let create ~writers ~capacity =
  if writers < 1 then invalid_arg "Journal.create: writers must be >= 1";
  if capacity < 1 then invalid_arg "Journal.create: capacity must be >= 1";
  {
    capacity;
    rings = Array.init writers (fun _ -> { slots = Array.make capacity None; head = 0 });
  }

let writers t = Array.length t.rings
let capacity t = t.capacity

let record t ~writer kind =
  let r = t.rings.(writer) in
  let h = r.head in
  r.slots.(h mod t.capacity) <- Some { t_ns = Clock.now_ns (); writer; seq = h; kind };
  r.head <- h + 1

let total_recorded t = Array.fold_left (fun acc r -> acc + r.head) 0 t.rings

(* Oldest-first per ring, then merged by timestamp across rings. Ties
   (same nanosecond) keep writer order, which is already deterministic
   enough for a postmortem timeline. *)
let events t =
  let out = ref [] in
  Array.iter
    (fun r ->
      let h = r.head in
      let first = max 0 (h - Array.length r.slots) in
      for i = h - 1 downto first do
        match r.slots.(i mod Array.length r.slots) with
        | Some e -> out := e :: !out
        | None -> ()
      done)
    t.rings;
  List.stable_sort (fun a b -> Int64.compare a.t_ns b.t_ns) !out

let dropped t =
  Array.fold_left (fun acc r -> acc + max 0 (r.head - Array.length r.slots)) 0 t.rings
