(** The flight recorder's storage: per-domain lock-free ring journals of
    recent engine events.

    PR 3's live observatory answers "what is happening now"; when the
    hotspot alert fires, the question becomes "what {e led up to} this"
    — and by then the evidence (recent windows, sketch states, stage
    boundaries) is gone unless someone kept it. Each recording domain
    (orchestrator, workers, monitor) owns one fixed-capacity ring;
    {!record} is two plain stores with no lock, CAS, or allocation
    beyond the event itself, so journalling adds nothing observable to
    the serving hot path (workers record once per publish period, not
    per query). Old events are overwritten, newest win — exactly the
    recency a postmortem wants.

    Reading ({!events}) may race with writers; this is deliberate and
    safe: slots hold immutable records, so a concurrent reader sees each
    slot's previous or current event, never a torn one. A dump taken at
    alert time is therefore best-effort-fresh rather than a consistent
    cut, which is the right trade for a flight recorder. *)

(** What the engine records. Cell tallies in {!Sketch_snapshot} are
    [(cell, count, err)] triples from the merged Space-Saving top-k. *)
type kind =
  | Window_cut of {
      index : int;
      queries : int;
      qps : float;
      p50_ns : float;
      p99_ns : float;
      hotspot_ratio : float;
      alert : bool;
    }  (** The monitor cut a window ({!Window.tick}). *)
  | Alert_raised of { index : int; ratio : float; factor : float }
      (** The hotspot alert transitioned quiet -> firing at window [index]. *)
  | Alert_cleared of { index : int; ratio : float; factor : float }
      (** The alert transitioned firing -> quiet. *)
  | Sketch_snapshot of { top : (int * int * int) list }
      (** Merged top-k hot cells at a window cut. *)
  | Stage of { name : string; mark : [ `Begin | `End ] }
      (** A build or serve stage boundary (sample-batches, serve, merge,
          build). *)
  | Publish of { queries : int }
      (** A worker published its shard and sketch; [queries] is its
          cumulative query count at publication. *)
  | Epoch_publish of {
      epoch : int;
      batch : int;
      levels : int;
      fresh_cells : int;
      dur_ns : int;
    }
      (** The builder published epoch [epoch]: [batch] updates made
          visible, [levels] levels in the snapshot of which the fresh
          ones total [fresh_cells] cells, in [dur_ns] wall ns. *)
  | Level_merge of {
      level : int;
      keys : int;
      replicas : int;
      cells : int;
      dur_ns : int;
    }
      (** One Bentley–Saxe level build on the builder domain: [keys]
          keys into level [level] across [replicas] replicas, writing
          exactly [cells] cells in [dur_ns] wall ns. *)
  | Reclaim of { epoch : int; freed : int; lag : int; pending : int }
      (** [try_reclaim] at published epoch [epoch] freed [freed] levels
          (max lag [lag] epochs), leaving [pending] still retired. *)
  | Control_decision of {
      id : int;
      window : int;
      ratio : float;
      cell : int;
      count : int;
      err : int;
      score : int;
      action : [ `Raise | `Lower ];
      old_boost : int;
      new_boost : int;
      cooldown : int;
    }
      (** The replication controller decided to actuate at window
          [window]: hysteresis score [score] tripped on windowed
          contention ratio [ratio], whose evidence is sketched cell
          [cell] with tally bracket [count ± err]; the effective
          small-level boost moves [old_boost] -> [new_boost] and the
          controller enters a [cooldown]-window hold. [id] is the
          controller's monotone decision number, echoed by the matching
          {!Control_applied}. *)
  | Control_applied of {
      id : int;
      epoch : int;
      boost : int;
      levels : int;
      cells : int;
      dur_ns : int;
    }
      (** The builder applied controller decision [id]: re-replicated
          [levels] levels ([cells] cells written) to effective boost
          [boost] in [dur_ns] wall ns, published as epoch [epoch]. *)

type event = { t_ns : int64;  (** {!Clock.now_ns} at record time. *)
               writer : int;  (** Ring index of the recording domain. *)
               seq : int;  (** The writer's monotone event number. *)
               kind : kind }

type t

val create : writers:int -> capacity:int -> t
(** [create ~writers ~capacity]: one ring of [capacity] slots per
    writer. For a monitored serve: writer 0 is the orchestrator, [1..m]
    the workers, [m+1] the monitor domain, and — for dynamic
    (read-write) runs given one more ring — [m+2] the builder domain's
    update-path events. An adaptive run given yet one more ring records
    the replication controller's decisions on [m+3]. *)

val writers : t -> int
val capacity : t -> int

val record : t -> writer:int -> kind -> unit
(** Append to the writer's own ring, overwriting the oldest entry when
    full. Call from the owning domain only; lock-free, wait-free. *)

val events : t -> event list
(** All retained events, merged across rings in timestamp order. Safe
    to call while writers are recording (see the racy-read note above);
    for a consistent view call it at quiescence. *)

val total_recorded : t -> int
(** Events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring overwrite ([total_recorded] minus retained). *)
