type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips doubles but litters simple values; try the
   shortest of a few fixed precisions that re-reads exactly. Negative
   zero needs its own spelling: %.12g prints "-0", which the parser
   reads back as [Int 0], dropping the sign bit. *)
let float_repr f =
  if f = 0.0 && 1.0 /. f < 0.0 then "-0.0"
  else begin
    let s12 = Printf.sprintf "%.12g" f in
    if float_of_string s12 = f then s12 else Printf.sprintf "%.17g" f
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

type encode_error = { path : string; value : float }

exception Strict_fail of encode_error

(* The strict writer refuses to silently degrade: a NaN or infinity
   anywhere in the document is reported with its path instead of being
   written as null. Artifact writers (BENCH_*.json, postmortems) use
   this so a bad calibration or a 0/0 ratio fails loudly at encode time
   rather than producing a document whose reader sees a null where the
   schema promises a number. *)
let to_string_strict j =
  let buf = Buffer.create 256 in
  let rec go path = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else raise (Strict_fail { path; value = f })
    | String s -> escape buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go (Printf.sprintf "%s[%d]" path i) x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          go (path ^ "." ^ k) v)
        kvs;
      Buffer.add_char buf '}'
  in
  match go "$" j with
  | () -> Ok (Buffer.contents buf)
  | exception Strict_fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw bytes.                       *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit value =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Encode the code point as UTF-8; surrogate pairs are passed
             through as two 3-byte sequences, which is enough for
             telemetry payloads (metric names are ASCII). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape \\%C" c));
        advance ();
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with
  | Parse_error (off, msg) -> Error (Printf.sprintf "at offset %d: %s" off msg)
  | Failure msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function List xs -> xs | _ -> []
let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None

(* Numbers that happen to be integer-valued print without a decimal
   point and parse back as [Int]; a reader expecting a float must accept
   both spellings. *)
let float_value = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let bool_value = function Bool b -> Some b | _ -> None
