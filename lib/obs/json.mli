(** A minimal JSON value type with a printer and a strict parser.

    The container ships no JSON library and the tentpole needs both
    directions — the exporters build documents ({!Export},
    {!Span.to_chrome_json}) and the test suite must check that what was
    emitted actually parses. This is deliberately small: UTF-8 pass-through
    strings, 63-bit integers kept exact (a number parses to [Int] unless it
    carries a fraction or exponent), no streaming. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line serialisation. Strings are escaped per RFC 8259;
    non-finite floats (which JSON cannot represent) serialise as [null].
    Negative zero is written as ["-0.0"] so its sign survives a
    round-trip; other integer-valued floats may re-read as [Int] (numeric
    value preserved exactly). *)

type encode_error = { path : string; value : float }
(** Where ([$.a.b[3]]-style path) and what (the offending NaN or
    infinity) a strict encode failed on. *)

val to_string_strict : t -> (string, encode_error) result
(** Like {!to_string}, but a NaN or infinite float anywhere in the
    document is a typed error instead of a silent [null] — what the
    artifact writers use, so a schema-versioned document never carries a
    null where a number is promised. *)

val parse : string -> (t, string) result
(** Strict parse of a complete document; trailing garbage, unterminated
    strings, and malformed numbers are errors carrying the byte offset. *)

val member : string -> t -> t option
(** [member k j] looks up key [k] when [j] is an [Obj]. *)

val to_list : t -> t list
(** The elements of a [List], or [[]] for any other value. *)

val string_value : t -> string option
val int_value : t -> int option

val float_value : t -> float option
(** [Float f] or [Int i] (as a float) — the two spellings a JSON number
    that is semantically a float can parse back as. *)

val bool_value : t -> bool option
