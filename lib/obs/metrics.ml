type kind = Counter | Gauge | Histogram

type def = { name : string; help : string; kind : kind; id : int }

(* Log-bucketed histograms over non-negative ints: value 0 -> bucket 0,
   otherwise bucket = position of the highest set bit + 1, so bucket b
   covers [2^(b-1), 2^b - 1] with upper bound 2^b - 1. 63 buckets cover
   the whole int range. *)
let nbuckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let bucket_upper b = if b = 0 then 0 else (1 lsl b) - 1

(* The flat storage behind a shard. Kept as its own record so that a
   shard can be copied field-by-field into a same-shaped [frozen] buffer
   with plain [Array.blit]s — no allocation, which is what the seqlock
   publication in {!Window} relies on. *)
type store = {
  mutable counters : int array;
  mutable gauges : float array;
  mutable hist_buckets : int array array;  (* per histogram id, length nbuckets *)
  mutable hist_count : int array;
  mutable hist_sum : int array;
  mutable hist_max : int array;
}

type shard = { domain : int; store : store }

type frozen = store

type t = {
  mutable counter_defs : def list;  (* newest first *)
  mutable gauge_defs : def list;
  mutable hist_defs : def list;
  mutable shards : shard list;
  lock : Mutex.t;
}

type counter = int
type gauge = int
type histogram = int

let create () =
  { counter_defs = []; gauge_defs = []; hist_defs = []; shards = []; lock = Mutex.create () }

let extend_int a n = Array.append a (Array.make (n - Array.length a) 0)
let extend_float a n = Array.append a (Array.make (n - Array.length a) 0.0)

(* Registering a metric after shards exist grows every shard's storage.
   Only sound while the shard-owning domains are quiescent (between
   runs) — which is when registration happens: instrumented subsystems
   register on the orchestrating domain before spawning workers. *)
let grow_shards t =
  let nc = List.length t.counter_defs in
  let ng = List.length t.gauge_defs in
  let nh = List.length t.hist_defs in
  List.iter
    (fun { store = sh; _ } ->
      if Array.length sh.counters < nc then sh.counters <- extend_int sh.counters nc;
      if Array.length sh.gauges < ng then sh.gauges <- extend_float sh.gauges ng;
      if Array.length sh.hist_count < nh then begin
        sh.hist_buckets <-
          Array.append sh.hist_buckets
            (Array.init (nh - Array.length sh.hist_buckets) (fun _ -> Array.make nbuckets 0));
        sh.hist_count <- extend_int sh.hist_count nh;
        sh.hist_sum <- extend_int sh.hist_sum nh;
        sh.hist_max <- extend_int sh.hist_max nh
      end)
    t.shards

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t kind ~help name get set =
  with_lock t @@ fun () ->
  let all = t.counter_defs @ t.gauge_defs @ t.hist_defs in
  match List.find_opt (fun d -> d.name = name) all with
  | Some d when d.kind = kind -> d.id
  | Some d ->
    invalid_arg
      (Printf.sprintf "Metrics: %S already registered as a different kind (%s)" name
         (match d.kind with Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"))
  | None ->
    let id = List.length (get ()) in
    set { name; help; kind; id };
    grow_shards t;
    id

let counter t ?(help = "") name =
  register t Counter ~help name
    (fun () -> t.counter_defs)
    (fun d -> t.counter_defs <- d :: t.counter_defs)

let gauge t ?(help = "") name =
  register t Gauge ~help name
    (fun () -> t.gauge_defs)
    (fun d -> t.gauge_defs <- d :: t.gauge_defs)

let histogram t ?(help = "") name =
  register t Histogram ~help name
    (fun () -> t.hist_defs)
    (fun d -> t.hist_defs <- d :: t.hist_defs)

let make_store ~nc ~ng ~nh =
  {
    counters = Array.make nc 0;
    gauges = Array.make ng 0.0;
    hist_buckets = Array.init nh (fun _ -> Array.make nbuckets 0);
    hist_count = Array.make nh 0;
    hist_sum = Array.make nh 0;
    hist_max = Array.make nh 0;
  }

let shard t ~domain =
  with_lock t @@ fun () ->
  match List.find_opt (fun sh -> sh.domain = domain) t.shards with
  | Some sh -> sh
  | None ->
    let sh =
      {
        domain;
        store =
          make_store
            ~nc:(List.length t.counter_defs)
            ~ng:(List.length t.gauge_defs)
            ~nh:(List.length t.hist_defs);
      }
    in
    t.shards <- sh :: t.shards;
    sh

let incr sh c by = sh.store.counters.(c) <- sh.store.counters.(c) + by
let set_gauge sh g v = sh.store.gauges.(g) <- v

let observe sh h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  let st = sh.store in
  st.hist_buckets.(h).(b) <- st.hist_buckets.(h).(b) + 1;
  st.hist_count.(h) <- st.hist_count.(h) + 1;
  st.hist_sum.(h) <- st.hist_sum.(h) + v;
  if v > st.hist_max.(h) then st.hist_max.(h) <- v

(* ------------------------------------------------------------------ *)
(* Frozen copies — the publication side of mid-run observation.        *)
(* ------------------------------------------------------------------ *)

let frozen t =
  with_lock t @@ fun () ->
  make_store
    ~nc:(List.length t.counter_defs)
    ~ng:(List.length t.gauge_defs)
    ~nh:(List.length t.hist_defs)

let blit_int src dst = Array.blit src 0 dst 0 (min (Array.length src) (Array.length dst))
let blit_float src dst = Array.blit src 0 dst 0 (min (Array.length src) (Array.length dst))

(* Copy the overlap of [src] into [dst]. Arrays can disagree in length
   when a metric was registered after one side was sized; the overlap is
   always a prefix because ids are allocated in registration order. *)
let store_copy ~src ~dst =
  blit_int src.counters dst.counters;
  blit_float src.gauges dst.gauges;
  let nh = min (Array.length src.hist_buckets) (Array.length dst.hist_buckets) in
  for i = 0 to nh - 1 do
    Array.blit src.hist_buckets.(i) 0 dst.hist_buckets.(i) 0 nbuckets
  done;
  blit_int src.hist_count dst.hist_count;
  blit_int src.hist_sum dst.hist_sum;
  blit_int src.hist_max dst.hist_max

let freeze_into sh fz = store_copy ~src:sh.store ~dst:fz
let frozen_copy ~src ~dst = store_copy ~src ~dst

module Snapshot = struct
  type hist = {
    name : string;
    help : string;
    buckets : (int * int) array;
    count : int;
    sum : int;
    max_value : int;
  }

  type t = {
    counters : (string * string * int) list;
    gauges : (string * string * float) list;
    hists : hist list;
  }

  let counter_value t name =
    List.find_map (fun (n, _, v) -> if n = name then Some v else None) t.counters

  let gauge_value t name =
    List.find_map (fun (n, _, v) -> if n = name then Some v else None) t.gauges

  let find_hist t name = List.find_opt (fun (h : hist) -> h.name = name) t.hists

  let quantile h q =
    if h.count = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. float_of_int h.count in
      let acc = ref 0 in
      let result = ref (float_of_int h.max_value) in
      (try
         Array.iter
           (fun (upper, c) ->
             let prev = !acc in
             acc := !acc + c;
             if float_of_int !acc >= target then begin
               (* Interpolate inside [lower, upper]. *)
               let lower = if upper = 0 then 0.0 else float_of_int ((upper + 1) / 2) in
               let upper_f = float_of_int upper in
               let frac =
                 if c = 0 then 1.0
                 else (target -. float_of_int prev) /. float_of_int c
               in
               result := lower +. (frac *. (upper_f -. lower));
               raise Exit
             end)
           h.buckets
       with Exit -> ());
      Float.min !result (float_of_int h.max_value)
    end

  let mean h = if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count
end

let merge_stores t stores =
  let merged_counters =
    List.rev_map
      (fun d ->
        let v =
          List.fold_left
            (fun acc st -> acc + if d.id < Array.length st.counters then st.counters.(d.id) else 0)
            0 stores
        in
        (d.name, d.help, v))
      t.counter_defs
  in
  let merged_gauges =
    List.rev_map
      (fun d ->
        let v =
          List.fold_left
            (fun acc st ->
              acc +. if d.id < Array.length st.gauges then st.gauges.(d.id) else 0.0)
            0.0 stores
        in
        (d.name, d.help, v))
      t.gauge_defs
  in
  let merged_hists =
    List.rev_map
      (fun d ->
        let buckets = Array.make nbuckets 0 in
        let count = ref 0 and sum = ref 0 and max_value = ref 0 in
        List.iter
          (fun st ->
            if d.id < Array.length st.hist_buckets then begin
              Array.iteri (fun b c -> buckets.(b) <- buckets.(b) + c) st.hist_buckets.(d.id);
              count := !count + st.hist_count.(d.id);
              sum := !sum + st.hist_sum.(d.id);
              if st.hist_max.(d.id) > !max_value then max_value := st.hist_max.(d.id)
            end)
          stores;
        let nonempty = ref [] in
        for b = nbuckets - 1 downto 0 do
          if buckets.(b) > 0 then nonempty := (bucket_upper b, buckets.(b)) :: !nonempty
        done;
        {
          Snapshot.name = d.name;
          help = d.help;
          buckets = Array.of_list !nonempty;
          count = !count;
          sum = !sum;
          max_value = !max_value;
        })
      t.hist_defs
  in
  { Snapshot.counters = merged_counters; gauges = merged_gauges; hists = merged_hists }

let snapshot t =
  with_lock t @@ fun () -> merge_stores t (List.map (fun sh -> sh.store) t.shards)

let snapshot_frozen t frozens = with_lock t @@ fun () -> merge_stores t frozens
