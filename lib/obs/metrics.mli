(** A metrics registry whose hot path never contends.

    The serving engine's whole point is measuring contention, so its
    telemetry must not add any: every counter increment and histogram
    observation lands in a {e per-domain shard} — plain (non-atomic)
    mutable arrays owned by one domain — and shards are only read and
    merged when {!snapshot} is called, after the domains have joined (or
    at a quiescent point the caller arranges). There are no atomics, no
    locks, and no allocation on the recording path.

    Protocol: register metrics and create shards on the orchestrating
    domain while workers are quiescent (registering after shards exist
    grows their storage in place, so it must not race with recording);
    record through a domain's own shard; merge with {!snapshot}.
    Registration and shard creation are mutex-protected; recording is
    not, which is safe precisely because a shard has one owner. *)

type t
(** The registry: metric definitions plus every shard created from it. *)

type counter
type gauge
type histogram

type shard
(** One domain's private storage for every registered metric. *)

val create : unit -> t

val counter : t -> ?help:string -> string -> counter
(** Register (or look up — re-registering a name returns the existing
    metric) a monotone counter. Raises [Invalid_argument] if the name is
    already registered as a different metric kind. *)

val gauge : t -> ?help:string -> string -> gauge
(** Register a gauge. Shard gauge values are {e summed} at snapshot
    time, so treat a gauge as a quantity that partitions across domains
    (queue depth, in-flight queries); set it from one shard only if you
    want a plain scalar. *)

val histogram : t -> ?help:string -> string -> histogram
(** Register a log-bucketed histogram over non-negative integers
    (bucket [b] holds values in [[2^(b-1), 2^b - 1]]; bucket 0 holds
    value 0). Intended unit: nanoseconds. *)

val shard : t -> domain:int -> shard
(** [shard t ~domain] creates (or returns, if [domain] was seen before)
    the shard for domain index [domain] — the caller's worker index, not
    [Domain.self]. *)

val incr : shard -> counter -> int -> unit
(** [incr sh c by] adds [by] to the shard-local counter. No atomics. *)

val set_gauge : shard -> gauge -> float -> unit

val observe : shard -> histogram -> int -> unit
(** [observe sh h v] records value [v] (clamped below at 0) into the
    shard-local histogram. *)

(** Merged, immutable view of every shard. *)
module Snapshot : sig
  type hist = {
    name : string;
    help : string;
    buckets : (int * int) array;
        (** [(upper, count)] per non-empty bucket, ascending [upper];
            bucket upper bounds are [0, 1, 3, 7, ..., 2^b - 1]. *)
    count : int;  (** Total observations. *)
    sum : int;  (** Sum of observed values. *)
    max_value : int;  (** Largest observed value, exact. *)
  }

  type nonrec t = {
    counters : (string * string * int) list;  (** name, help, merged value *)
    gauges : (string * string * float) list;
    hists : hist list;
  }

  val counter_value : t -> string -> int option
  val gauge_value : t -> string -> float option
  val find_hist : t -> string -> hist option

  val quantile : hist -> float -> float
  (** [quantile h q] estimates the [q]-quantile (0 <= q <= 1) from the
      log buckets by linear interpolation inside the bucket where the
      cumulative count crosses [q * count]; an upper bound off by at most
      2x (one bucket width). 0 when the histogram is empty. *)

  val mean : hist -> float
  (** [sum / count], exact. 0 when empty. *)
end

val snapshot : t -> Snapshot.t
(** Merge all shards. Sound when the shard-owning domains are quiescent
    (joined, or between batches); counters merge by sum, gauges by sum,
    histograms bucket-wise. *)

(** {2 Frozen shard copies}

    {!snapshot} requires quiescence because it reads every shard's live
    storage. For observation {e while workers are hot}, a worker instead
    periodically copies its own shard into a pre-allocated {!frozen}
    buffer ({!freeze_into} — plain [Array.blit]s, no allocation) under a
    seqlock epoch managed by {!Window}, and the monitor merges the
    published buffers with {!snapshot_frozen}. *)

type frozen
(** A same-shaped, single-owner copy of one shard's storage. *)

val frozen : t -> frozen
(** A zeroed buffer sized to the metrics registered {e so far}; metrics
    registered later are absent from copies made through it (they merge
    as 0 until a fresh buffer is made). *)

val freeze_into : shard -> frozen -> unit
(** [freeze_into sh fz] copies the shard's current values into [fz].
    Call from the shard-owning domain only; does not allocate. *)

val frozen_copy : src:frozen -> dst:frozen -> unit
(** Buffer-to-buffer copy, for a reader taking a stable private copy of
    a published buffer. Does not allocate. *)

val snapshot_frozen : t -> frozen list -> Snapshot.t
(** Merge frozen buffers exactly like {!snapshot} merges shards. Safe at
    any time: the buffers are owned by the caller, not by recording
    domains. *)
