type t = { metrics : Metrics.t; spans : Span.t }

let create () = { metrics = Metrics.create (); spans = Span.create () }
let snapshot t = Metrics.snapshot t.metrics
let timeline t ~tid = Span.timeline t.spans ~tid
let shard t ~domain = Metrics.shard t.metrics ~domain
