(** The observability handle a subsystem threads through its hot path.

    An {!t} bundles one {!Metrics} registry with one {!Span} collector
    so that instrumented code ([Lc_parallel.Engine.serve ?obs],
    [Lc_core.Dictionary.build ?obs], the [lowcon profile] subcommand)
    takes a single optional argument. The contract everywhere it
    appears: {e absent means free} — the instrumented code must do no
    telemetry work at all when no handle is supplied. *)

type t = { metrics : Metrics.t; spans : Span.t }

val create : unit -> t

val snapshot : t -> Metrics.Snapshot.t
(** Merge the metric shards (see {!Metrics.snapshot} for the quiescence
    requirement). *)

val timeline : t -> tid:int -> Span.timeline
val shard : t -> domain:int -> Metrics.shard
