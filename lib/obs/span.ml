type phase = Begin | End | Instant

type event = { name : string; phase : phase; ts_us : float; tid : int }

type timeline = {
  tid : int;
  mutable buf : event array;
  mutable len : int;
  mutable stack : string list;  (* open span names, innermost first *)
  epoch : int64;  (* collector epoch, monotonic ns *)
}

type t = { mutable timelines : timeline list; epoch : int64; lock : Mutex.t }

let create () = { timelines = []; epoch = Clock.now_ns (); lock = Mutex.create () }

let timeline t ~tid =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  match List.find_opt (fun tl -> tl.tid = tid) t.timelines with
  | Some tl -> tl
  | None ->
    let tl = { tid; buf = Array.make 64 { name = ""; phase = Instant; ts_us = 0.0; tid }; len = 0; stack = []; epoch = t.epoch } in
    t.timelines <- tl :: t.timelines;
    tl

let push tl e =
  if tl.len = Array.length tl.buf then begin
    let bigger = Array.make (2 * tl.len) e in
    Array.blit tl.buf 0 bigger 0 tl.len;
    tl.buf <- bigger
  end;
  tl.buf.(tl.len) <- e;
  tl.len <- tl.len + 1

let now_us (tl : timeline) = Int64.to_float (Int64.sub (Clock.now_ns ()) tl.epoch) /. 1e3

let begin_span tl name =
  tl.stack <- name :: tl.stack;
  push tl { name; phase = Begin; ts_us = now_us tl; tid = tl.tid }

let end_span tl =
  match tl.stack with
  | [] -> invalid_arg "Span.end_span: no open span on this timeline"
  | name :: rest ->
    tl.stack <- rest;
    push tl { name; phase = End; ts_us = now_us tl; tid = tl.tid }

let instant tl name = push tl { name; phase = Instant; ts_us = now_us tl; tid = tl.tid }

let with_span tl name f =
  begin_span tl name;
  Fun.protect ~finally:(fun () -> end_span tl) f

let events t =
  Mutex.lock t.lock;
  let tls = t.timelines in
  Mutex.unlock t.lock;
  let all =
    List.concat_map (fun tl -> Array.to_list (Array.sub tl.buf 0 tl.len)) tls
  in
  List.stable_sort (fun a b -> compare a.ts_us b.ts_us) all

let per_timeline t =
  Mutex.lock t.lock;
  let tls = t.timelines in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare a.tid b.tid) tls

let check_balanced t =
  let check tl =
    let depth = ref 0 in
    let err = ref None in
    for i = 0 to tl.len - 1 do
      if !err = None then
        match tl.buf.(i).phase with
        | Begin -> incr depth
        | End ->
          decr depth;
          if !depth < 0 then
            err := Some (Printf.sprintf "tid %d: End without Begin at event %d" tl.tid i)
        | Instant -> ()
    done;
    (match (!err, !depth) with
    | None, d when d > 0 -> Error (Printf.sprintf "tid %d: %d span(s) left open" tl.tid d)
    | None, _ -> Ok ()
    | Some e, _ -> Error e)
  in
  List.fold_left
    (fun acc tl -> match acc with Error _ -> acc | Ok () -> check tl)
    (Ok ()) (per_timeline t)

let to_chrome_json t =
  let event_json e =
    let base =
      [
        ("name", Json.String e.name);
        ("ph", Json.String (match e.phase with Begin -> "B" | End -> "E" | Instant -> "i"));
        ("ts", Json.Float e.ts_us);
        ("pid", Json.Int 1);
        ("tid", Json.Int e.tid);
        ("cat", Json.String "lowcon");
      ]
    in
    Json.Obj (match e.phase with Instant -> base @ [ ("s", Json.String "t") ] | _ -> base)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map event_json (events t)));
         ("displayTimeUnit", Json.String "ms");
       ])

(* Flamegraph-style aggregation: walk each timeline with a span stack,
   accumulating per-path call counts, total time, and self time (total
   minus the time spent in child spans). *)
let summary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "span summary (total = wall time inside span, self = total minus children)\n";
  List.iter
    (fun tl ->
      (* path -> (order, depth, count, total_us, self_us) *)
      let agg : (string, int * int * int ref * float ref * float ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let order = ref 0 in
      (* stack of (path, begin_ts, child_time accumulator) *)
      let stack = ref [] in
      for i = 0 to tl.len - 1 do
        let e = tl.buf.(i) in
        match e.phase with
        | Begin ->
          let path =
            match !stack with
            | [] -> e.name
            | (parent, _, _) :: _ -> parent ^ ";" ^ e.name
          in
          stack := (path, e.ts_us, ref 0.0) :: !stack
        | End -> (
          match !stack with
          | [] -> ()
          | (path, t0, children) :: rest ->
            stack := rest;
            let total = e.ts_us -. t0 in
            (match rest with
            | (_, _, parent_children) :: _ ->
              parent_children := !parent_children +. total
            | [] -> ());
            let _, _, count, total_acc, self_acc =
              match Hashtbl.find_opt agg path with
              | Some entry -> entry
              | None ->
                let depth = List.length rest in
                let entry = (!order, depth, ref 0, ref 0.0, ref 0.0) in
                incr order;
                Hashtbl.add agg path entry;
                entry
            in
            incr count;
            total_acc := !total_acc +. total;
            self_acc := !self_acc +. (total -. !children))
        | Instant -> ()
      done;
      if Hashtbl.length agg > 0 then begin
        Buffer.add_string buf (Printf.sprintf "timeline tid %d:\n" tl.tid);
        let rows =
          Hashtbl.fold (fun path (o, d, c, tot, self) acc -> (o, d, path, !c, !tot, !self) :: acc)
            agg []
        in
        (* Sort parents before children: by path, which shares prefixes. *)
        let rows = List.sort (fun (_, _, p1, _, _, _) (_, _, p2, _, _, _) -> compare p1 p2) rows in
        List.iter
          (fun (_, depth, path, count, total, self) ->
            let leaf =
              match String.rindex_opt path ';' with
              | Some i -> String.sub path (i + 1) (String.length path - i - 1)
              | None -> path
            in
            Buffer.add_string buf
              (Printf.sprintf "  %s%-*s %6d call%s %10.3f ms total %10.3f ms self\n"
                 (String.make (2 * depth) ' ')
                 (max 1 (28 - (2 * depth)))
                 leaf count
                 (if count = 1 then " " else "s")
                 (total /. 1e3) (self /. 1e3)))
          rows
      end)
    (per_timeline t);
  Buffer.contents buf
