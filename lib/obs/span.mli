(** Begin/end event tracing with per-domain timelines.

    Each worker domain owns a {!timeline} — a growable, unsynchronised
    event buffer plus a span stack — and records begin/end/instant
    events against the collector's common epoch. The collector merges
    timelines only after the domains are quiescent, exactly like
    {!Metrics} shards, and exports two views:

    - {!to_chrome_json}: Chrome trace-event JSON ([traceEvents] with
      ["ph": "B" | "E" | "i"]), loadable in Perfetto / [chrome://tracing];
    - {!summary}: a plain-text flamegraph-style table aggregating total
      and self time per span path ([serve;batch;query]).

    Timestamps come from the monotonic ns clock ({!Clock.now_ns})
    relative to the collector's creation, exported in microseconds (the
    trace-event unit). *)

type t
(** The collector. *)

type timeline
(** One domain's private event buffer. [tid] 0 is conventionally the
    orchestrating domain; workers use [w + 1]. *)

type phase = Begin | End | Instant

type event = { name : string; phase : phase; ts_us : float; tid : int }

val create : unit -> t

val timeline : t -> tid:int -> timeline
(** Create (or return, if [tid] was seen before) the timeline for
    [tid]. Mutex-protected; call once per domain, outside hot loops. *)

val begin_span : timeline -> string -> unit
(** Open a span. Spans nest: close them in LIFO order. *)

val end_span : timeline -> unit
(** Close the innermost open span. Raises [Invalid_argument] if no span
    is open on this timeline. *)

val instant : timeline -> string -> unit
(** A zero-duration marker event. *)

val with_span : timeline -> string -> (unit -> 'a) -> 'a
(** [with_span tl name f] = begin, run [f], end (on exceptions too). *)

val events : t -> event list
(** Every recorded event, merged across timelines in timestamp order.
    Call only when the recording domains are quiescent. *)

val check_balanced : t -> (unit, string) result
(** Per timeline: every [End] has a matching [Begin] and no span is left
    open — the invariant the exported trace relies on. *)

val to_chrome_json : t -> string
(** The Chrome trace-event document. Open spans are invalid; call
    {!check_balanced} first if the producer is untrusted. *)

val summary : t -> string
(** Flamegraph-style text: one line per distinct span path per timeline,
    with call count, total (wall) and self (total minus children) time,
    children indented under parents in call order. *)
