type publisher = {
  epoch : int Atomic.t;
  metrics_slot : Metrics.frozen;
  sketch_slot : Heavy.t;
}

let publish pub shard sketch =
  (* Odd epoch = publication in progress. The two blits below are plain
     stores; the atomic bumps around them order the publication against
     readers (see [stable_read]). *)
  Atomic.incr pub.epoch;
  Metrics.freeze_into shard pub.metrics_slot;
  Heavy.copy_into sketch pub.sketch_slot;
  Atomic.incr pub.epoch

type config = {
  ring_capacity : int;
  queries_counter : string;
  probes_counter : string;
  latency_histogram : string;
  space : int;
  max_probes : int;
  top_k : int;
  alert_factor : float;
}

(* Names of the builder-domain update metrics the windowed view diffs —
   the update-path counterpart of the counter/histogram names in
   [config]. Supplied by the engine when the run can mutate. *)
type update_config = {
  inserts_counter : string;
  deletes_counter : string;
  publications_counter : string;
  cells_counter : string;
  rebuild_histogram : string;
  epoch_gauge : string;
  retired_gauge : string;
  reader_lag_gauge : string;
}

(* Names of the per-domain GC allocation counters the windowed view
   diffs (workers flush their own [Gc.counters] deltas into their metric
   shards at publish points, so the sums here carry per-domain words
   without any cross-domain [Gc.quick_stat] staleness). Collection
   *counts* have no per-domain reading — [quick_stat] aggregates across
   domains — so those are sampled globally at each cut. *)
type gc_config = {
  minor_words_counter : string;
  promoted_words_counter : string;
  major_words_counter : string;
}

type gentry = {
  g_minor_words : int;  (* windowed allocation words, summed over domains *)
  g_promoted_words : int;
  g_major_words : int;
  g_minor_collections : int;  (* windowed delta of the global quick_stat count *)
  g_major_collections : int;
  alloc_per_query : float;  (* minor words per query over the window *)
  g_heap_words : int;  (* major heap size at the cut *)
  cum_minor_words : int;
  cum_major_collections : int;
}

type uentry = {
  u_inserts : int;
  u_deletes : int;
  ups : float;
  u_pubs : int;
  pubs_per_s : float;
  u_cells : int;
  write_amp : float;
  rebuild_p50_ns : float;
  rebuild_p99_ns : float;
  u_epoch : int;
  u_retired : int;
  u_reader_lag : int;
  cum_updates : int;
  cum_cells : int;
}

type entry = {
  index : int;
  t_start_s : float;
  t_end_s : float;
  queries : int;
  probes : int;
  qps : float;
  probes_per_s : float;
  p50_ns : float;
  p99_ns : float;
  top_cells : Heavy.entry list;
  max_cell : int;
  max_share : float;
  hotspot_ratio : float;
  alert : bool;
  cum_queries : int;
  cum_probes : int;
  updates : uentry option;
  gc : gentry option;
}

type t = {
  metrics : Metrics.t;
  config : config;
  updates_cfg : update_config option;
  gc_cfg : gc_config option;
  publishers : publisher array;
  (* Reader-side private buffers: [stable_read] copies a publisher's
     slots here under the seqlock retry loop, so merging never touches a
     buffer a writer could be mid-blit on. *)
  scratch_metrics : Metrics.frozen array;
  scratch_sketches : Heavy.t array;
  (* Everything below is shared between the ticking monitor domain and
     HTTP scrape readers; [lock] covers it. The lock is never taken on a
     worker's publish path. *)
  lock : Mutex.t;
  ring : entry option array;
  mutable next_index : int;
  mutable prev_queries : int;
  mutable prev_probes : int;
  mutable prev_latency : Metrics.Snapshot.hist option;
  mutable prev_inserts : int;
  mutable prev_deletes : int;
  mutable prev_pubs : int;
  mutable prev_cells : int;
  mutable prev_rebuild : Metrics.Snapshot.hist option;
  mutable prev_gc_minor : int;
  mutable prev_gc_promoted : int;
  mutable prev_gc_major : int;
  mutable prev_minor_colls : int;
  mutable prev_major_colls : int;
  mutable prev_t : float;
  mutable firing_run : int;
  mutable fired_total : int;
  t0_ns : int64;
}

let create ?updates ?gc metrics config ~publishers:np =
  if np < 1 then invalid_arg "Window.create: need at least one publisher";
  if config.ring_capacity < 1 then invalid_arg "Window.create: ring_capacity must be >= 1";
  (* Baseline the global collection counts at construction so the first
     window reports collections *during* the run, not since process
     start. *)
  let s0 = if gc = None then None else Some (Gc.quick_stat ()) in
  let mk_pub () =
    {
      epoch = Atomic.make 0;
      metrics_slot = Metrics.frozen metrics;
      sketch_slot = Heavy.create ~k:config.top_k;
    }
  in
  {
    metrics;
    config;
    updates_cfg = updates;
    gc_cfg = gc;
    publishers = Array.init np (fun _ -> mk_pub ());
    scratch_metrics = Array.init np (fun _ -> Metrics.frozen metrics);
    scratch_sketches = Array.init np (fun _ -> Heavy.create ~k:config.top_k);
    lock = Mutex.create ();
    ring = Array.make config.ring_capacity None;
    next_index = 0;
    prev_queries = 0;
    prev_probes = 0;
    prev_latency = None;
    prev_inserts = 0;
    prev_deletes = 0;
    prev_pubs = 0;
    prev_cells = 0;
    prev_rebuild = None;
    prev_gc_minor = 0;
    prev_gc_promoted = 0;
    prev_gc_major = 0;
    prev_minor_colls = (match s0 with None -> 0 | Some s -> s.Gc.minor_collections);
    prev_major_colls = (match s0 with None -> 0 | Some s -> s.Gc.major_collections);
    prev_t = 0.0;
    firing_run = 0;
    fired_total = 0;
    t0_ns = Clock.now_ns ();
  }

let publisher t i = t.publishers.(i)
let config t = t.config

let now_s t = Int64.to_float (Int64.sub (Clock.now_ns ()) t.t0_ns) /. 1e9

(* Seqlock read of one publisher into the reader's scratch buffers:
   retry while the pre-copy epoch is odd (publication in progress) or
   differs from the post-copy epoch (a publication landed mid-copy). *)
let stable_read t i =
  let pub = t.publishers.(i) in
  let rec go () =
    let e1 = Atomic.get pub.epoch in
    if e1 land 1 = 1 then begin
      Domain.cpu_relax ();
      go ()
    end
    else begin
      Metrics.frozen_copy ~src:pub.metrics_slot ~dst:t.scratch_metrics.(i);
      Heavy.copy_into pub.sketch_slot t.scratch_sketches.(i);
      if Atomic.get pub.epoch <> e1 then begin
        Domain.cpu_relax ();
        go ()
      end
    end
  in
  go ()

let read_all t =
  for i = 0 to Array.length t.publishers - 1 do
    stable_read t i
  done

(* Callers of [live_*] and [tick] race on the scratch buffers, so the
   whole read-merge sequence runs under [lock]. *)
let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let live_snapshot t =
  with_lock t @@ fun () ->
  read_all t;
  Metrics.snapshot_frozen t.metrics (Array.to_list t.scratch_metrics)

let live_cells t =
  with_lock t @@ fun () ->
  read_all t;
  Heavy.merge (Array.to_list t.scratch_sketches) ~k:t.config.top_k

(* Windowed histogram: subtract the previous cumulative bucket counts
   from the current ones. [max_value] of the delta is not recoverable
   from cumulative maxima, so the cumulative max stands in — an upper
   bound, consistent with the quantile estimator's own 2x bucket
   granularity. *)
let hist_delta (cur : Metrics.Snapshot.hist) (prev : Metrics.Snapshot.hist option) :
    Metrics.Snapshot.hist =
  match prev with
  | None -> cur
  | Some p ->
    let prev_count upper =
      let found = ref 0 in
      Array.iter (fun (u, c) -> if u = upper then found := c) p.buckets;
      !found
    in
    let buckets =
      Array.of_list
        (List.filter
           (fun (_, c) -> c > 0)
           (Array.to_list (Array.map (fun (u, c) -> (u, c - prev_count u)) cur.buckets)))
    in
    {
      cur with
      buckets;
      count = cur.count - p.count;
      sum = cur.sum - p.sum;
    }

let push t e =
  t.ring.(t.next_index mod t.config.ring_capacity) <- Some e;
  t.next_index <- t.next_index + 1

let tick t =
  with_lock t (fun () ->
      read_all t;
      let snap = Metrics.snapshot_frozen t.metrics (Array.to_list t.scratch_metrics) in
      let cells = Heavy.merge (Array.to_list t.scratch_sketches) ~k:t.config.top_k in
      let now = now_s t in
      let cum_queries =
        Option.value ~default:0 (Metrics.Snapshot.counter_value snap t.config.queries_counter)
      in
      let cum_probes =
        Option.value ~default:0 (Metrics.Snapshot.counter_value snap t.config.probes_counter)
      in
      let dq = cum_queries - t.prev_queries in
      let dp = cum_probes - t.prev_probes in
      let dt = now -. t.prev_t in
      let lat_cum = Metrics.Snapshot.find_hist snap t.config.latency_histogram in
      let p50, p99 =
        match lat_cum with
        | None -> (0.0, 0.0)
        | Some cur ->
          let d = hist_delta cur t.prev_latency in
          if d.count <= 0 then (0.0, 0.0)
          else (Metrics.Snapshot.quantile d 0.5, Metrics.Snapshot.quantile d 0.99)
      in
      (* The alert signal is the sketch's *guaranteed* hottest tally
         (count - err): a sound lower bound on the true hottest count, so
         a firing alert is never an artifact of sketch noise. The upper
         bound (max_estimate) would read ~ total/k on a perfectly flat
         structure — a huge spurious ratio on exactly the structure that
         must stay quiet. *)
      let guar_entry = Heavy.max_guaranteed cells in
      let max_cell = match guar_entry with None -> -1 | Some e -> e.Heavy.item in
      let guar =
        match guar_entry with None -> 0 | Some e -> e.Heavy.count - e.Heavy.err
      in
      let max_share =
        if cum_probes = 0 then 0.0 else float_of_int guar /. float_of_int cum_probes
      in
      let flat =
        float_of_int cum_queries *. float_of_int t.config.max_probes
        /. float_of_int t.config.space
      in
      let hotspot_ratio = if flat > 0.0 then float_of_int guar /. flat else 0.0 in
      let alert = cum_queries > 0 && hotspot_ratio > t.config.alert_factor in
      if alert then begin
        t.firing_run <- t.firing_run + 1;
        t.fired_total <- t.fired_total + 1
      end
      else t.firing_run <- 0;
      (* The windowed update view. [None] both when the recorder has no
         update config and when the run never exercised the update path
         (a static workload leaves the builder counters at zero) — the
         absence /updates.json reports for read-only serves. *)
      let rebuild_cum, updates =
        match t.updates_cfg with
        | None -> (None, None)
        | Some uc ->
          let c name =
            Option.value ~default:0 (Metrics.Snapshot.counter_value snap name)
          in
          let cum_ins = c uc.inserts_counter in
          let cum_del = c uc.deletes_counter in
          let cum_pubs = c uc.publications_counter in
          let cum_cells = c uc.cells_counter in
          let reb_cum = Metrics.Snapshot.find_hist snap uc.rebuild_histogram in
          if cum_ins + cum_del + cum_pubs = 0 then (reb_cum, None)
          else begin
            let di = cum_ins - t.prev_inserts in
            let dd = cum_del - t.prev_deletes in
            let dpub = cum_pubs - t.prev_pubs in
            let dcells = cum_cells - t.prev_cells in
            let rp50, rp99 =
              match reb_cum with
              | None -> (0.0, 0.0)
              | Some cur ->
                let d = hist_delta cur t.prev_rebuild in
                if d.count <= 0 then (0.0, 0.0)
                else (Metrics.Snapshot.quantile d 0.5, Metrics.Snapshot.quantile d 0.99)
            in
            let g name =
              match Metrics.Snapshot.gauge_value snap name with
              | None -> 0
              | Some v -> int_of_float v
            in
            ( reb_cum,
              Some
                {
                  u_inserts = di;
                  u_deletes = dd;
                  ups = (if dt > 0.0 then float_of_int (di + dd) /. dt else 0.0);
                  u_pubs = dpub;
                  pubs_per_s = (if dt > 0.0 then float_of_int dpub /. dt else 0.0);
                  u_cells = dcells;
                  write_amp =
                    (if di > 0 then float_of_int dcells /. float_of_int di else 0.0);
                  rebuild_p50_ns = rp50;
                  rebuild_p99_ns = rp99;
                  u_epoch = g uc.epoch_gauge;
                  u_retired = g uc.retired_gauge;
                  u_reader_lag = g uc.reader_lag_gauge;
                  cum_updates = cum_ins + cum_del;
                  cum_cells;
                } )
          end
      in
      (match t.updates_cfg with
      | None -> ()
      | Some uc ->
        let c name =
          Option.value ~default:0 (Metrics.Snapshot.counter_value snap name)
        in
        t.prev_inserts <- c uc.inserts_counter;
        t.prev_deletes <- c uc.deletes_counter;
        t.prev_pubs <- c uc.publications_counter;
        t.prev_cells <- c uc.cells_counter;
        t.prev_rebuild <- rebuild_cum);
      (* The windowed GC view: per-domain allocation words come from the
         shard counters the workers flush (precise per domain); the
         collection counts are the global [quick_stat] reading sampled
         at the cut, diffed against the previous cut. *)
      let gc =
        match t.gc_cfg with
        | None -> None
        | Some gcfg ->
          let c name =
            Option.value ~default:0 (Metrics.Snapshot.counter_value snap name)
          in
          let cum_minor = c gcfg.minor_words_counter in
          let cum_promoted = c gcfg.promoted_words_counter in
          let cum_major = c gcfg.major_words_counter in
          let st = Gc.quick_stat () in
          let g =
            {
              g_minor_words = cum_minor - t.prev_gc_minor;
              g_promoted_words = cum_promoted - t.prev_gc_promoted;
              g_major_words = cum_major - t.prev_gc_major;
              g_minor_collections = st.Gc.minor_collections - t.prev_minor_colls;
              g_major_collections = st.Gc.major_collections - t.prev_major_colls;
              alloc_per_query =
                (if dq > 0 then float_of_int (cum_minor - t.prev_gc_minor) /. float_of_int dq
                 else 0.0);
              g_heap_words = st.Gc.heap_words;
              cum_minor_words = cum_minor;
              cum_major_collections = st.Gc.major_collections;
            }
          in
          t.prev_gc_minor <- cum_minor;
          t.prev_gc_promoted <- cum_promoted;
          t.prev_gc_major <- cum_major;
          t.prev_minor_colls <- st.Gc.minor_collections;
          t.prev_major_colls <- st.Gc.major_collections;
          Some g
      in
      let e =
        {
          index = t.next_index;
          t_start_s = t.prev_t;
          t_end_s = now;
          queries = dq;
          probes = dp;
          qps = (if dt > 0.0 then float_of_int dq /. dt else 0.0);
          probes_per_s = (if dt > 0.0 then float_of_int dp /. dt else 0.0);
          p50_ns = p50;
          p99_ns = p99;
          top_cells = cells.Heavy.top;
          max_cell;
          max_share;
          hotspot_ratio;
          alert;
          cum_queries;
          cum_probes;
          updates;
          gc;
        }
      in
      push t e;
      t.prev_queries <- cum_queries;
      t.prev_probes <- cum_probes;
      t.prev_latency <- lat_cum;
      t.prev_t <- now;
      e)

let entries t =
  with_lock t @@ fun () ->
  let cap = t.config.ring_capacity in
  let first = max 0 (t.next_index - cap) in
  let out = ref [] in
  for i = t.next_index - 1 downto first do
    match t.ring.(i mod cap) with Some e -> out := e :: !out | None -> ()
  done;
  !out

let last t =
  with_lock t @@ fun () ->
  if t.next_index = 0 then None else t.ring.((t.next_index - 1) mod t.config.ring_capacity)

let total_windows t = with_lock t @@ fun () -> t.next_index

let alert_active t = with_lock t @@ fun () -> t.firing_run > 0
let alert_firing_run t = with_lock t @@ fun () -> t.firing_run
let alert_fired_total t = with_lock t @@ fun () -> t.fired_total

(* The per-window gauges the scrape endpoint appends after the counter
   and histogram series of the merged snapshot. Kept here so the same
   text is used by /metrics, the dashboard, and the tests. *)
let prometheus_gauges t =
  let e = last t in
  let ratio, alert, qps, p99 =
    match e with
    | None -> (0.0, false, 0.0, 0.0)
    | Some e -> (e.hotspot_ratio, e.alert, e.qps, e.p99_ns)
  in
  let b = Buffer.create 256 in
  let gauge name help v =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
    Buffer.add_string b (Printf.sprintf "%s %.17g\n" name v)
  in
  gauge "engine_hotspot_ratio"
    "Guaranteed sketched hottest-cell tally (count - err) over the flat bound queries*t/s"
    ratio;
  gauge "engine_hotspot_alert"
    "1 while engine_hotspot_ratio exceeds the configured alert factor" (if alert then 1.0 else 0.0);
  gauge "engine_window_qps" "Queries per second over the last completed window" qps;
  gauge "engine_window_p99_latency_ns" "Windowed p99 query latency (ns)" p99;
  (* Update-path gauges, present only when the run exercised the update
     path (mirrors the /updates.json absent-when-static semantics). *)
  (match e with
  | Some { updates = Some u; _ } ->
    gauge "engine_window_ups" "Updates per second over the last completed window" u.ups;
    gauge "engine_window_pubs_per_s" "Epoch publications per second over the last window"
      u.pubs_per_s;
    gauge "engine_window_write_amp"
      "Cells written per key inserted over the last completed window" u.write_amp;
    gauge "engine_window_rebuild_p99_ns" "Windowed p99 level-rebuild duration (ns)"
      u.rebuild_p99_ns;
    gauge "engine_epoch" "Currently published epoch" (float_of_int u.u_epoch);
    gauge "engine_retired_pending" "Retired levels awaiting reclamation"
      (float_of_int u.u_retired);
    gauge "engine_reader_lag" "Published epoch minus the slowest pinned reader's epoch"
      (float_of_int u.u_reader_lag)
  | _ -> ());
  (* GC gauges, present only when the window keeps a GC view. *)
  (match e with
  | Some { gc = Some g; _ } ->
    gauge "engine_window_alloc_per_query"
      "Minor-heap words allocated per query over the last completed window"
      g.alloc_per_query;
    gauge "engine_window_minor_words"
      "Minor-heap words allocated over the last completed window (all domains)"
      (float_of_int g.g_minor_words);
    gauge "engine_window_promoted_words"
      "Words promoted to the major heap over the last completed window"
      (float_of_int g.g_promoted_words);
    gauge "engine_window_minor_collections"
      "Minor collections during the last completed window (process-wide)"
      (float_of_int g.g_minor_collections);
    gauge "engine_window_major_collections"
      "Major collection slices during the last completed window (process-wide)"
      (float_of_int g.g_major_collections);
    gauge "engine_gc_heap_words" "Major heap size in words at the last window cut"
      (float_of_int g.g_heap_words)
  | _ -> ());
  Buffer.contents b
