(** Mid-run observation: seqlock-published shard views and a ring of
    windowed snapshots.

    {!Metrics.snapshot} is sound only at quiescence; this module is what
    lets a monitor domain watch a serving run {e while the workers are
    hot} without adding the contention it measures. Each worker owns a
    {!publisher}: every few hundred queries it copies its metric shard
    and its {!Heavy} sketch into the publisher's buffers with
    {!publish}, bumping an epoch counter to odd before and back to even
    after (a seqlock). A reader ({!tick}, {!live_snapshot},
    {!live_cells}) copies the buffers out, retrying while the epoch is
    odd or changed across the copy, then merges the stable copies. The
    worker's publish path takes no lock and allocates nothing; readers
    pay all the synchronisation.

    {!tick} additionally cuts a {e window}: it diffs the merged
    cumulative counters and latency histogram against the previous tick,
    derives per-window rates (qps, probes/s) and windowed p50/p99, reads
    the hot-cell sketch, computes [engine_hotspot_ratio] — the sketch's
    guaranteed hottest tally over the flat bound [queries * t / s], the
    quantity Theorem 3 keeps [O(1)] and naive FKS lets grow to
    [Theta(sqrt n)] — and updates the alert state. Entries land in a fixed-capacity ring
    (oldest evicted first).

    Reader-side entry points ([tick], [live_*], [entries], [last],
    [alert_*]) are mutually thread-safe (one internal mutex), so a
    monitor domain can tick on an interval while an HTTP domain scrapes. *)

type publisher
(** One worker's publication slot: epoch + frozen metric buffer + sketch
    buffer. *)

val publish : publisher -> Metrics.shard -> Heavy.t -> unit
(** Publish the worker's current cumulative state. Call from the owning
    domain only; lock-free and allocation-free. *)

type config = {
  ring_capacity : int;  (** Windows retained; older ones are evicted. *)
  queries_counter : string;  (** Counter diffed into [queries]/[qps]. *)
  probes_counter : string;  (** Counter diffed into [probes]/[probes_per_s]. *)
  latency_histogram : string;  (** Histogram diffed into windowed p50/p99. *)
  space : int;  (** The structure's cell count [s], for the flat bound. *)
  max_probes : int;  (** The structure's probe budget [t]. *)
  top_k : int;  (** Sketch capacity ({!Heavy.create}). *)
  alert_factor : float;
      (** Fire when [hotspot_ratio] exceeds this multiple of the flat
          bound — the Θ(√n)-regression detector's threshold. *)
}

type update_config = {
  inserts_counter : string;  (** Counter diffed into [u_inserts]. *)
  deletes_counter : string;  (** Counter diffed into [u_deletes]. *)
  publications_counter : string;  (** Counter diffed into [u_pubs]. *)
  cells_counter : string;
      (** Cells-written counter diffed into [u_cells] / [write_amp]. *)
  rebuild_histogram : string;
      (** Per-level-build duration histogram diffed into windowed
          rebuild p50/p99. *)
  epoch_gauge : string;  (** Published-epoch gauge read into [u_epoch]. *)
  retired_gauge : string;  (** Retired-pending gauge ([u_retired]). *)
  reader_lag_gauge : string;  (** Reader-lag gauge ([u_reader_lag]). *)
}
(** Names of the builder-domain update metrics the windowed view diffs —
    the update-path counterpart of the counter/histogram names in
    {!config}. The engine supplies this for runs that can mutate; like
    those, the metrics must be registered before {!create}. *)

type gc_config = {
  minor_words_counter : string;
      (** Counter of per-domain minor-heap allocation words (workers
          flush their own [Gc.counters] deltas into their shards). *)
  promoted_words_counter : string;
  major_words_counter : string;
}
(** Names of the per-domain GC allocation counters the windowed view
    diffs. Allocation {e words} come from shard counters because
    [Gc.counters] reads the calling domain's own state (precise,
    per-domain); collection {e counts} have no per-domain reading —
    [Gc.quick_stat] aggregates across domains — so {!tick} samples those
    globally at each cut. Like {!update_config}, the named metrics must
    be registered before {!create}. *)

type gentry = {
  g_minor_words : int;
      (** Minor-heap words allocated in this window, summed over
          domains. *)
  g_promoted_words : int;  (** Words promoted to the major heap. *)
  g_major_words : int;  (** Words allocated directly on the major heap. *)
  g_minor_collections : int;
      (** Minor collections during the window, process-wide
          ([Gc.quick_stat] delta). *)
  g_major_collections : int;  (** Major collection slices, process-wide. *)
  alloc_per_query : float;
      (** [g_minor_words / queries] — the allocation-per-query gauge; 0
          when the window saw no queries. *)
  g_heap_words : int;  (** Major heap size in words at the cut. *)
  cum_minor_words : int;  (** Cumulative allocation words at window end. *)
  cum_major_collections : int;
}
(** The windowed GC view — what the allocator and collector did during
    one window, cut by the same {!tick} that cuts the read-side
    fields. *)

type uentry = {
  u_inserts : int;  (** Inserts applied in this window. *)
  u_deletes : int;  (** Deletes applied in this window. *)
  ups : float;  (** Updates (inserts + deletes) per second. *)
  u_pubs : int;  (** Epoch publications in this window. *)
  pubs_per_s : float;
  u_cells : int;  (** Cells written by level builds in this window. *)
  write_amp : float;
      (** [u_cells / u_inserts] — windowed write amplification; [0] when
          the window saw no inserts. *)
  rebuild_p50_ns : float;
      (** Windowed level-rebuild duration quantiles from histogram
          deltas; 0 when the window saw no rebuilds. *)
  rebuild_p99_ns : float;
  u_epoch : int;  (** Published epoch at window end (gauge read). *)
  u_retired : int;  (** Retired-but-unfreed levels at window end. *)
  u_reader_lag : int;
      (** Published epoch minus the slowest pinned reader's announced
          epoch at window end (0 when all readers are quiescent). *)
  cum_updates : int;  (** Cumulative inserts + deletes at window end. *)
  cum_cells : int;  (** Cumulative cells written at window end. *)
}
(** The windowed update view — what the update path did during one
    window, cut by the same {!tick} that cuts the read-side fields. *)

type entry = {
  index : int;  (** 0-based window sequence number. *)
  t_start_s : float;  (** Window bounds, seconds since {!create}. *)
  t_end_s : float;
  queries : int;  (** Queries completed in this window. *)
  probes : int;
  qps : float;
  probes_per_s : float;
  p50_ns : float;  (** Windowed latency quantiles from histogram deltas; 0 when the window saw no queries. *)
  p99_ns : float;
  top_cells : Heavy.entry list;  (** Cumulative top-k at window end. *)
  max_cell : int;
      (** The cell with the largest {e guaranteed} sketched tally
          ({!Heavy.max_guaranteed}); -1 when nothing observed. *)
  max_share : float;  (** Its guaranteed share of all probes so far. *)
  hotspot_ratio : float;
      (** Guaranteed sketched hottest tally ([count - err]) / flat bound
          [cum_queries * t / s]. A sound lower bound on the exact
          {!Lc_parallel.Engine.hotspot_ratio}, within
          [error_bound / flat] of it (see {!Heavy.max_guaranteed}) — so
          an alert is never sketch noise, and a genuine hot cell (whose
          bounds pinch) is not missed. *)
  alert : bool;  (** [hotspot_ratio > alert_factor] this window. *)
  cum_queries : int;  (** Cumulative totals at window end. *)
  cum_probes : int;
  updates : uentry option;
      (** The update-path view — [None] when the recorder has no
          {!update_config} {e or} the run never exercised the update
          path (static workloads leave the builder counters at zero). *)
  gc : gentry option;
      (** The GC view — [None] when the recorder has no {!gc_config};
          present on every window otherwise (a window with zero
          allocation is itself a finding). *)
}

type t
(** The recorder: publishers, ring, delta state, alert state. *)

val create :
  ?updates:update_config -> ?gc:gc_config -> Metrics.t -> config -> publishers:int -> t
(** [create metrics config ~publishers] sizes one publisher per
    recording domain. Create it {e after} registering the metrics named
    in [config] — and in [?updates] / [?gc], when given — (buffers are
    sized to the registry's current definitions). With [?gc], the global
    collection counts are baselined here so the first window reports
    collections during the run, not since process start. *)

val publisher : t -> int -> publisher
val config : t -> config

val tick : t -> entry
(** Read every publisher, merge, diff against the previous tick, append
    a window to the ring and return it. Call from the monitor domain (or
    any non-worker domain) on whatever cadence defines a window. *)

val live_snapshot : t -> Metrics.Snapshot.t
(** Merged cumulative snapshot of the published views, at any moment —
    the mid-run counterpart of {!Metrics.snapshot}. Counters are
    monotone across successive calls (each publisher's slot is a
    cumulative copy). *)

val live_cells : t -> Heavy.merged
(** Merged hot-cell sketch of the published views. *)

val entries : t -> entry list
(** Ring contents, oldest first (at most [ring_capacity]). *)

val last : t -> entry option
val total_windows : t -> int

val alert_active : t -> bool
(** True while the latest window exceeded the alert factor. *)

val alert_firing_run : t -> int
(** Consecutive windows (ending at the latest) in the alert state. *)

val alert_fired_total : t -> int
(** Windows that fired over the recorder's lifetime. *)

val prometheus_gauges : t -> string
(** [# HELP]/[# TYPE]/value lines for [engine_hotspot_ratio],
    [engine_hotspot_alert], [engine_window_qps] and
    [engine_window_p99_latency_ns] from the latest window — appended by
    the [/metrics] route after the merged snapshot's series. When the
    latest window carries an update view, also [engine_window_ups],
    [engine_window_pubs_per_s], [engine_window_write_amp],
    [engine_window_rebuild_p99_ns], [engine_epoch],
    [engine_retired_pending] and [engine_reader_lag]. When it carries a
    GC view, also [engine_window_alloc_per_query],
    [engine_window_minor_words], [engine_window_promoted_words],
    [engine_window_minor_collections], [engine_window_major_collections]
    and [engine_gc_heap_words]. *)
