module Rng = Lc_prim.Rng
module Table = Lc_cellprobe.Table
module Qdist = Lc_cellprobe.Qdist
module Instance = Lc_dict.Instance

type cost = Free | Spinlock of { hold : int }

type result = {
  name : string;
  domains : int;
  queries : int;
  seconds : float;
  throughput : float;
  total_probes : int;
  counts : int array;
  hottest_cell : int;
  hottest_count : int;
  hottest_share : float;
  flat_bound : float;
}

(* The probing discipline shared by every worker: count each visit on a
   per-cell atomic, optionally serialising visits to the same cell
   through a per-cell test-and-set spinlock. Cell contents are only ever
   read ([Table.peek]); the table's own mutable counters are untouched,
   which is what makes the query path reentrant. *)
let make_probe ~cost ~counters table : Lc_dict.Dict_intf.probe =
  match cost with
  | Free ->
    fun ~step:_ j ->
      Atomic.incr counters.(j);
      Table.peek table j
  | Spinlock { hold } ->
    if hold < 0 then invalid_arg "Engine: Spinlock hold must be >= 0";
    let locks = Array.init (Array.length counters) (fun _ -> Atomic.make false) in
    fun ~step:_ j ->
      let l = locks.(j) in
      while not (Atomic.compare_and_set l false true) do
        Domain.cpu_relax ()
      done;
      let v = Table.peek table j in
      for _ = 1 to hold do
        Domain.cpu_relax ()
      done;
      Atomic.set l false;
      Atomic.incr counters.(j);
      v

let serve ?(cost = Free) ~domains ~queries_per_domain ~seed inst qdist =
  if domains < 1 then invalid_arg "Engine.serve: domains must be >= 1";
  if queries_per_domain < 1 then invalid_arg "Engine.serve: queries_per_domain must be >= 1";
  let (module D : Lc_dict.Dict_intf.S) = Instance.core inst in
  let counters = Array.init D.space (fun _ -> Atomic.make 0) in
  let probe = make_probe ~cost ~counters D.table in
  (* Pre-sample each domain's query batch outside the timed section so
     throughput measures probing, not distribution sampling. *)
  let batches =
    Array.init domains (fun w ->
        let rng = Rng.create (seed + (7919 * (w + 1))) in
        Array.init queries_per_domain (fun _ -> Qdist.sample qdist rng))
  in
  let worker w () =
    let rng = Rng.create (seed lxor (104729 * (w + 1))) in
    Array.iter (fun x -> ignore (D.mem ~probe rng x : bool)) batches.(w)
  in
  let t0 = Unix.gettimeofday () in
  let spawned = Array.init domains (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join spawned;
  let seconds = Unix.gettimeofday () -. t0 in
  let counts = Array.map Atomic.get counters in
  let total_probes = Array.fold_left ( + ) 0 counts in
  let hottest_cell = ref 0 in
  Array.iteri (fun j c -> if c > counts.(!hottest_cell) then hottest_cell := j) counts;
  let hottest_count = counts.(!hottest_cell) in
  let queries = domains * queries_per_domain in
  {
    name = D.name;
    domains;
    queries;
    seconds;
    throughput =
      (if seconds > 0.0 then float_of_int queries /. seconds else Float.infinity);
    total_probes;
    counts;
    hottest_cell = !hottest_cell;
    hottest_count;
    hottest_share =
      (if total_probes = 0 then 0.0
       else float_of_int hottest_count /. float_of_int total_probes);
    flat_bound = float_of_int queries *. float_of_int D.max_probes /. float_of_int D.space;
  }

let hotspot_ratio r = float_of_int r.hottest_count /. r.flat_bound

let answer_all ?(domains = 2) ~seed inst ~queries =
  if domains < 1 then invalid_arg "Engine.answer_all: domains must be >= 1";
  let (module D : Lc_dict.Dict_intf.S) = Instance.core inst in
  let probe : Lc_dict.Dict_intf.probe = fun ~step:_ j -> Table.peek D.table j in
  let n = Array.length queries in
  let out = Array.make n false in
  (* Round-robin index partition: workers write disjoint slots of [out],
     so the only shared mutable state is the (read-only) table cells. *)
  let worker w () =
    let rng = Rng.create (seed + (7919 * w)) in
    let i = ref w in
    while !i < n do
      out.(!i) <- D.mem ~probe rng queries.(!i);
      i := !i + domains
    done
  in
  let spawned = Array.init domains (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join spawned;
  out

let count_histogram r =
  let max_count = Array.fold_left max 0 r.counts in
  let bucket_of c =
    (* 0 -> bucket 0; otherwise 1 + floor(log2 c). *)
    if c = 0 then 0
    else begin
      let b = ref 0 in
      let v = ref c in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      !b
    end
  in
  let nbuckets = bucket_of max_count + 1 in
  let cells = Array.make nbuckets 0 in
  Array.iter (fun c -> cells.(bucket_of c) <- cells.(bucket_of c) + 1) r.counts;
  let upper b = if b = 0 then 0 else (1 lsl b) - 1 in
  List.filter
    (fun (_, n) -> n > 0)
    (List.init nbuckets (fun b -> (upper b, cells.(b))))

let top_cells r ~k =
  let indexed = Array.mapi (fun j c -> (j, c)) r.counts in
  Array.sort (fun (_, a) (_, b) -> compare b a) indexed;
  Array.to_list (Array.sub indexed 0 (min k (Array.length indexed)))
