module Rng = Lc_prim.Rng
module Table = Lc_cellprobe.Table
module Qdist = Lc_cellprobe.Qdist
module Instance = Lc_dict.Instance
module Metrics = Lc_obs.Metrics
module Span = Lc_obs.Span
module Window = Lc_obs.Window
module Heavy = Lc_obs.Heavy
module Http = Lc_obs.Http
module Journal = Lc_obs.Journal
module Epoch = Lc_dynamic.Epoch
module Opstream = Lc_workload.Opstream
module Coheat = Lc_analysis.Coheat

type cost = Free | Spinlock of { hold : int }

type result = {
  name : string;
  domains : int;
  queries : int;
  seconds : float;
  throughput : float;
  total_probes : int;
  counts : int array;
  hottest_cell : int;
  hottest_count : int;
  hottest_share : float;
  flat_bound : float;
}

let make_locks ~cost ~space =
  match cost with
  | Free -> [||]
  | Spinlock { hold } ->
    if hold < 0 then invalid_arg "Engine: Spinlock hold must be >= 0";
    Array.init space (fun _ -> Atomic.make false)

(* The probing discipline shared by every worker: count each visit on a
   per-cell atomic, optionally serialising visits to the same cell
   through a per-cell test-and-set spinlock. Cell contents are only ever
   read ([Table.peek]); the table's own mutable counters are untouched,
   which is what makes the query path reentrant. This is the
   telemetry-free discipline — the exact PR 1 hot path, used whenever
   [serve] is called without [?obs]. *)
let make_probe ~cost ~counters ~locks table : Lc_dict.Dict_intf.probe =
  match cost with
  | Free ->
    fun ~step:_ j ->
      Atomic.incr counters.(j);
      Table.peek table j
  | Spinlock { hold } ->
    fun ~step:_ j ->
      let l = locks.(j) in
      while not (Atomic.compare_and_set l false true) do
        Domain.cpu_relax ()
      done;
      let v = Table.peek table j in
      for _ = 1 to hold do
        Domain.cpu_relax ()
      done;
      Atomic.set l false;
      Atomic.incr counters.(j);
      v

(* Per-domain telemetry wired into one worker's probe closure. All
   metric updates land in the worker's own shard (plain stores, no
   atomics, no allocation), so the telemetry itself cannot become the
   contended line it is trying to measure. *)
type worker_obs = {
  shard : Metrics.shard;
  timeline : Span.timeline;
  queries_c : Metrics.counter;
  probes_c : Metrics.counter;
  latency_h : Metrics.histogram;
  probe_latency_h : Metrics.histogram;
  spin_wait_h : Metrics.histogram;
}

(* Sampled per-probe latency: timing every probe with two gettimeofday
   calls would dominate a ~nanosecond table read, so measure 1 probe in
   [probe_sample_mask + 1]. *)
let probe_sample_mask = 63
let probe_sample_period = probe_sample_mask + 1

(* [sketch], when supplied (monitored runs), receives every probed cell
   index — the worker-private Space-Saving sketch behind the live
   hot-cell view. *)
let make_obs_probe ?sketch ~cost ~counters ~locks table (w : worker_obs) :
    Lc_dict.Dict_intf.probe =
  let record_cell =
    match sketch with None -> fun _ -> () | Some s -> fun j -> Heavy.observe s j
  in
  let probe_tick = ref 0 in
  let sampled_peek j =
    let tick = !probe_tick in
    probe_tick := tick + 1;
    if tick land probe_sample_mask = 0 then begin
      let t0 = Lc_obs.Clock.now_ns () in
      let v = Table.peek table j in
      Metrics.observe w.shard w.probe_latency_h
        (Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) t0));
      v
    end
    else Table.peek table j
  in
  match cost with
  | Free ->
    fun ~step:_ j ->
      Metrics.incr w.shard w.probes_c 1;
      record_cell j;
      Atomic.incr counters.(j);
      sampled_peek j
  | Spinlock { hold } ->
    fun ~step:_ j ->
      Metrics.incr w.shard w.probes_c 1;
      record_cell j;
      let l = locks.(j) in
      (* Fast path: uncontended acquisition records zero wait without
         touching the clock. *)
      if Atomic.compare_and_set l false true then Metrics.observe w.shard w.spin_wait_h 0
      else begin
        let t0 = Lc_obs.Clock.now_ns () in
        while not (Atomic.compare_and_set l false true) do
          Domain.cpu_relax ()
        done;
        Metrics.observe w.shard w.spin_wait_h
          (Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) t0))
      end;
      let v = sampled_peek j in
      for _ = 1 to hold do
        Domain.cpu_relax ()
      done;
      Atomic.set l false;
      Atomic.incr counters.(j);
      v

(* ------------------------------------------------------------------ *)
(* Phase accounting                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-domain wall-time attribution for instrumented serves: every
   worker's batch time is split into disjoint monotonic-clock windows —
   probe work (inside the dictionary's [mem]), tally work (per-query
   telemetry recording), seqlock window publishes, epoch pin/unpin
   (dynamic runs) — plus the residual [other] (loop overhead, the phase
   bookkeeping itself, GC pauses landing between windows) defined as
   wall minus the attributed phases, so the five phases sum to the
   worker's batch wall time *exactly, by construction*. [idle] is
   filled in by the orchestrator after the join: serve wall time minus
   the worker's own batch wall (spawn/join skew and scheduler time).

   The record is plain (no atomics): each worker owns exactly one
   element of the run's array, written only by that domain and read by
   the orchestrator strictly after the join — same single-writer
   discipline as the metric shards. *)
type phase_stats = {
  ph_domain : int;
  mutable ph_probe_ns : int;
  mutable ph_tally_ns : int;
  mutable ph_publish_ns : int;
  mutable ph_pin_ns : int;
  mutable ph_other_ns : int;
  mutable ph_wall_ns : int;
  mutable ph_idle_ns : int;
}

let fresh_phases domains =
  Array.init domains (fun w ->
      {
        ph_domain = w;
        ph_probe_ns = 0;
        ph_tally_ns = 0;
        ph_publish_ns = 0;
        ph_pin_ns = 0;
        ph_other_ns = 0;
        ph_wall_ns = 0;
        ph_idle_ns = 0;
      })

type phase_metric_ids = {
  p_probe_c : Metrics.counter;
  p_tally_c : Metrics.counter;
  p_publish_c : Metrics.counter;
  p_pin_c : Metrics.counter;
  p_other_c : Metrics.counter;
  p_wall_c : Metrics.counter;
  p_idle_c : Metrics.counter;
}

(* One shared name list so registration, the /scaling.json body and the
   scaling artifact cannot drift apart. *)
let phase_counter_names =
  [
    ("probe", "engine_phase_probe_ns_total");
    ("tally", "engine_phase_tally_ns_total");
    ("publish", "engine_phase_publish_ns_total");
    ("pin", "engine_phase_pin_ns_total");
    ("other", "engine_phase_other_ns_total");
    ("wall", "engine_phase_wall_ns_total");
    ("idle", "engine_phase_idle_ns_total");
  ]

let register_phase_metrics (o : Lc_obs.Obs.t) =
  let c phase help = Metrics.counter o.metrics ~help (List.assoc phase phase_counter_names) in
  {
    p_probe_c = c "probe" "Worker ns inside the dictionary's mem (probe work)";
    p_tally_c = c "tally" "Worker ns recording per-query telemetry";
    p_publish_c = c "publish" "Worker ns in seqlock window publishes";
    p_pin_c = c "pin" "Reader ns in epoch pin/unpin announcements";
    p_other_c = c "other" "Worker batch ns not attributed to a phase (residual)";
    p_wall_c = c "wall" "Worker batch wall ns (sum of the five phases)";
    p_idle_c = c "idle" "Serve wall ns minus worker batch wall, summed over workers";
  }

(* Flush a worker's phase totals into its own shard, once, at batch end
   (before the final seqlock publish, so the monitor's last window sees
   them). Counters start at zero and each worker flushes exactly once,
   so the registry totals are the sums over domains. *)
let flush_phases shard (p : phase_metric_ids) (ph : phase_stats) =
  Metrics.incr shard p.p_probe_c ph.ph_probe_ns;
  Metrics.incr shard p.p_tally_c ph.ph_tally_ns;
  Metrics.incr shard p.p_publish_c ph.ph_publish_ns;
  Metrics.incr shard p.p_pin_c ph.ph_pin_ns;
  Metrics.incr shard p.p_other_c ph.ph_other_ns;
  Metrics.incr shard p.p_wall_c ph.ph_wall_ns

(* Close a worker's phase record at batch end: [wall] is the enclosing
   monotonic window, [pin] (dynamic readers) was accumulated inside the
   probe windows by [Epoch.mem_phased] and is carved out of probe here,
   and [other] is the exact residual. *)
let close_phases (ph : phase_stats) ~wall_ns ~pin_ns =
  ph.ph_pin_ns <- pin_ns;
  ph.ph_probe_ns <- ph.ph_probe_ns - pin_ns;
  ph.ph_wall_ns <- wall_ns;
  ph.ph_other_ns <-
    wall_ns - ph.ph_probe_ns - ph.ph_tally_ns - ph.ph_publish_ns - ph.ph_pin_ns

(* ------------------------------------------------------------------ *)
(* GC telemetry                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-domain allocation accounting. [Gc.counters] reads the calling
   domain's own state (precise, no cross-domain staleness), so each
   worker samples its own cursor at batch start, at every publish point
   and at batch end, flushing the word deltas into its own metric shard.
   [Gc.counters] allocates a tuple of boxed floats — that is why it runs
   only at those boundaries, never per query. *)
type gc_cursor = {
  mutable gcur_minor : float;
  mutable gcur_promoted : float;
  mutable gcur_major : float;
}

let fresh_gc_cursors n =
  Array.init n (fun _ -> { gcur_minor = 0.0; gcur_promoted = 0.0; gcur_major = 0.0 })

type gc_metric_ids = {
  g_minor_c : Metrics.counter;
  g_promoted_c : Metrics.counter;
  g_major_c : Metrics.counter;
}

(* The metric names the windowed GC view diffs — shared with the Window
   config like [update_metric_names]. *)
let gc_metric_names : Window.gc_config =
  {
    Window.minor_words_counter = "engine_gc_minor_words_total";
    promoted_words_counter = "engine_gc_promoted_words_total";
    major_words_counter = "engine_gc_major_words_total";
  }

let register_gc_metrics (o : Lc_obs.Obs.t) =
  let n = gc_metric_names in
  {
    g_minor_c =
      Metrics.counter o.metrics ~help:"Minor-heap words allocated by engine domains"
        n.Window.minor_words_counter;
    g_promoted_c =
      Metrics.counter o.metrics ~help:"Words promoted to the major heap by engine domains"
        n.Window.promoted_words_counter;
    g_major_c =
      Metrics.counter o.metrics ~help:"Words allocated directly on the major heap"
        n.Window.major_words_counter;
  }

(* Set the cursor without flushing: the baseline at batch start, so the
   deltas cover only this worker's batch. *)
let gc_baseline (cur : gc_cursor) =
  let minor, promoted, major = Gc.counters () in
  cur.gcur_minor <- minor;
  cur.gcur_promoted <- promoted;
  cur.gcur_major <- major

let sample_gc shard (g : gc_metric_ids) (cur : gc_cursor) =
  let minor, promoted, major = Gc.counters () in
  Metrics.incr shard g.g_minor_c (int_of_float (minor -. cur.gcur_minor));
  Metrics.incr shard g.g_promoted_c (int_of_float (promoted -. cur.gcur_promoted));
  Metrics.incr shard g.g_major_c (int_of_float (major -. cur.gcur_major));
  cur.gcur_minor <- minor;
  cur.gcur_promoted <- promoted;
  cur.gcur_major <- major

(* Engine metric ids on an observability handle. Registration is
   idempotent per name, so both [Monitor.create] (which must size the
   seqlock buffers after the metrics exist) and [serve] itself can call
   this in either order. *)
type metric_ids = {
  m_queries : Metrics.counter;
  m_probes : Metrics.counter;
  m_latency : Metrics.histogram;
  m_probe_latency : Metrics.histogram;
  m_spin_wait : Metrics.histogram;
  m_domains : Metrics.gauge;
}

let register_metrics (o : Lc_obs.Obs.t) =
  {
    m_queries =
      Metrics.counter o.metrics ~help:"Queries served by the engine" "engine_queries_total";
    m_probes =
      Metrics.counter o.metrics ~help:"Cell probes issued by the engine" "engine_probes_total";
    m_latency =
      Metrics.histogram o.metrics ~help:"Per-query serve latency (ns)" "engine_query_latency_ns";
    m_probe_latency =
      Metrics.histogram o.metrics
        ~help:
          (Printf.sprintf "Sampled per-probe read latency (ns), 1 in %d probes"
             (probe_sample_mask + 1))
        "engine_probe_latency_ns";
    m_spin_wait =
      Metrics.histogram o.metrics
        ~help:"Per-acquisition spinlock wait (ns); 0 = uncontended"
        "engine_spinlock_wait_ns";
    m_domains = Metrics.gauge o.metrics ~help:"Worker domains in the last serve" "engine_domains";
  }

(* Update-path metric ids (builder-domain shard only). Registered next
   to [register_metrics] so the Window's frozen buffers include them;
   idempotent per name like everything in the registry. *)
type update_metric_ids = {
  u_inserts_c : Metrics.counter;
  u_deletes_c : Metrics.counter;
  u_pubs_c : Metrics.counter;
  u_reclaimed_c : Metrics.counter;
  u_cells_c : Metrics.counter;
  u_rebuild_h : Metrics.histogram;
  u_publish_h : Metrics.histogram;
  u_batch_h : Metrics.histogram;
  u_epoch_g : Metrics.gauge;
  u_retired_g : Metrics.gauge;
  u_lag_g : Metrics.gauge;
}

(* The metric names the windowed update view diffs — one shared value so
   the registration below, the Window config and the /updates.json body
   can never drift apart. *)
let update_metric_names : Window.update_config =
  {
    Window.inserts_counter = "engine_inserts_total";
    deletes_counter = "engine_deletes_total";
    publications_counter = "engine_publications_total";
    cells_counter = "engine_cells_written_total";
    rebuild_histogram = "engine_rebuild_ns";
    epoch_gauge = "engine_epoch";
    retired_gauge = "engine_retired_pending";
    reader_lag_gauge = "engine_reader_lag";
  }

let register_update_metrics (o : Lc_obs.Obs.t) =
  let n = update_metric_names in
  {
    u_inserts_c =
      Metrics.counter o.metrics ~help:"Inserts applied by the builder domain"
        n.Window.inserts_counter;
    u_deletes_c =
      Metrics.counter o.metrics ~help:"Deletes applied by the builder domain"
        n.Window.deletes_counter;
    u_pubs_c =
      Metrics.counter o.metrics ~help:"Epoch snapshots published" n.Window.publications_counter;
    u_reclaimed_c =
      Metrics.counter o.metrics ~help:"Retired levels reclaimed" "engine_reclaimed_total";
    u_cells_c =
      Metrics.counter o.metrics ~help:"Cells written by level rebuilds (exact)"
        n.Window.cells_counter;
    u_rebuild_h =
      Metrics.histogram o.metrics ~help:"Per-level-build duration (ns)"
        n.Window.rebuild_histogram;
    u_publish_h =
      Metrics.histogram o.metrics ~help:"Per-publication latency (ns)" "engine_publish_ns";
    u_batch_h =
      Metrics.histogram o.metrics ~help:"Updates made visible per publication"
        "engine_publish_batch";
    u_epoch_g = Metrics.gauge o.metrics ~help:"Currently published epoch" n.Window.epoch_gauge;
    u_retired_g =
      Metrics.gauge o.metrics ~help:"Retired levels awaiting reclamation"
        n.Window.retired_gauge;
    u_lag_g =
      Metrics.gauge o.metrics
        ~help:"Published epoch minus the slowest pinned reader's epoch"
        n.Window.reader_lag_gauge;
  }

(* Shared by [count_histogram] (exact, post-run) and the live
   /cells.json route (exact mid-run, from the per-cell atomics). *)
let histogram_of_counts counts =
  let max_count = Array.fold_left max 0 counts in
  let bucket_of c =
    (* 0 -> bucket 0; otherwise 1 + floor(log2 c). *)
    if c = 0 then 0
    else begin
      let b = ref 0 in
      let v = ref c in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      !b
    end
  in
  let nbuckets = bucket_of max_count + 1 in
  let cells = Array.make nbuckets 0 in
  Array.iter (fun c -> cells.(bucket_of c) <- cells.(bucket_of c) + 1) counts;
  let upper b = if b = 0 then 0 else (1 lsl b) - 1 in
  List.filter (fun (_, n) -> n > 0) (List.init nbuckets (fun b -> (upper b, cells.(b))))

(* ------------------------------------------------------------------ *)
(* Live monitoring                                                      *)
(* ------------------------------------------------------------------ *)

module Monitor = struct
  type t = {
    obs : Lc_obs.Obs.t;
    window : Window.t;
    sketches : Heavy.t array;
    orch_sketch : Heavy.t;
    builder_sketch : Heavy.t;
    domains : int;
    interval_s : float;
    publish_period : int;
    on_window : (Window.entry -> unit) option;
    journal : Journal.t option;
    on_alert : (Window.entry -> unit) option;
    (* Alert edge detector for the journal / on_alert hook; owned by the
       monitor domain (ticks are serialised). *)
    mutable alert_was_firing : bool;
    mutable live_counts : int Atomic.t array option;
    (* The replication controller, when this run is adaptive: attached
       before serving starts, driven by [tick] (the monitor domain is
       the controller domain), scraped by /control.json. *)
    mutable controller : Lc_control.Controller.t option;
  }

  let create_for ?(ring = 512) ?(interval_s = 0.25) ?(publish_period = 256) ?(top_k = 16)
      ?(alert_factor = 8.0) ?on_window ?journal ?on_alert ?obs ~domains ~space ~max_probes () =
    if domains < 1 then invalid_arg "Monitor.create: domains must be >= 1";
    if interval_s <= 0.0 then invalid_arg "Monitor.create: interval_s must be > 0";
    if publish_period < 1 then invalid_arg "Monitor.create: publish_period must be >= 1";
    if space < 1 then invalid_arg "Monitor.create: space must be >= 1";
    if max_probes < 1 then invalid_arg "Monitor.create: max_probes must be >= 1";
    (match journal with
    | Some j when Journal.writers j < domains + 2 ->
      invalid_arg
        (Printf.sprintf
           "Monitor.create: journal has %d writer rings, need domains + 2 = %d \
            (orchestrator, workers, monitor; dynamic runs want one more for the \
            builder)"
           (Journal.writers j) (domains + 2))
    | _ -> ());
    let obs = match obs with Some o -> o | None -> Lc_obs.Obs.create () in
    (* Register before sizing the seqlock buffers: Window.frozen copies
       only metrics that exist at creation time. The update metrics are
       registered unconditionally — a static run simply never touches
       them, which is exactly the absent-when-static signal the windowed
       update view keys on. *)
    let _ids = register_metrics obs in
    let _uids = register_update_metrics obs in
    let _pids = register_phase_metrics obs in
    let _gids = register_gc_metrics obs in
    let config =
      {
        Window.ring_capacity = ring;
        queries_counter = "engine_queries_total";
        probes_counter = "engine_probes_total";
        latency_histogram = "engine_query_latency_ns";
        space;
        max_probes;
        top_k;
        alert_factor;
      }
    in
    {
      obs;
      (* Publisher layout: 0 = orchestrator, 1..domains = workers,
         domains + 1 = the builder domain of a dynamic run (left zeroed
         by static serves). *)
      window =
        Window.create ~updates:update_metric_names ~gc:gc_metric_names obs.metrics config
          ~publishers:(domains + 2);
      sketches = Array.init domains (fun _ -> Heavy.create ~k:top_k);
      orch_sketch = Heavy.create ~k:top_k;
      builder_sketch = Heavy.create ~k:top_k;
      domains;
      interval_s;
      publish_period;
      on_window;
      journal;
      on_alert;
      alert_was_firing = false;
      live_counts = None;
      controller = None;
    }

  let create ?ring ?interval_s ?publish_period ?top_k ?alert_factor ?on_window ?journal
      ?on_alert ?obs ~domains inst =
    let (module D : Lc_dict.Dict_intf.S) = Instance.core inst in
    create_for ?ring ?interval_s ?publish_period ?top_k ?alert_factor ?on_window ?journal
      ?on_alert ?obs ~domains ~space:D.space ~max_probes:D.max_probes ()

  let obs t = t.obs
  let window t = t.window
  let interval_s t = t.interval_s
  let journal t = t.journal
  let controller t = t.controller

  (* Attach the replication controller before serving starts. The
     monitor domain becomes the controller domain: every [tick] feeds
     the cut window into [Controller.observe], whose decisions journal
     on ring [domains + 3] (when the journal was sized for it) and fire
     the actuator the serving path installed. *)
  let attach_controller t ctl = t.controller <- Some ctl

  (* The controller's journal ring index for a monitored run over
     [domains] workers — next to the builder's [domains + 2]. *)
  let controller_writer ~domains = domains + 3

  (* One monitor heartbeat: cut a window, journal it (plus the alert
     edge and a sketch snapshot), fire the hooks. Runs on the monitor
     domain during the serve and once more on the orchestrator after the
     workers join — never concurrently, so the edge detector needs no
     synchronisation. Hook exceptions are swallowed: a broken dashboard
     or dump must not take the serve down. *)
  let tick t =
    let e = Window.tick t.window in
    (match t.journal with
    | None -> ()
    | Some j ->
      let w = t.domains + 1 in
      Journal.record j ~writer:w
        (Journal.Window_cut
           {
             index = e.Window.index;
             queries = e.Window.queries;
             qps = e.Window.qps;
             p50_ns = e.Window.p50_ns;
             p99_ns = e.Window.p99_ns;
             hotspot_ratio = e.Window.hotspot_ratio;
             alert = e.Window.alert;
           });
      Journal.record j ~writer:w
        (Journal.Sketch_snapshot
           {
             top =
               List.map
                 (fun (c : Heavy.entry) -> (c.item, c.count, c.err))
                 e.Window.top_cells;
           });
      let factor = (Window.config t.window).Window.alert_factor in
      if e.Window.alert && not t.alert_was_firing then
        Journal.record j ~writer:w
          (Journal.Alert_raised
             { index = e.Window.index; ratio = e.Window.hotspot_ratio; factor })
      else if (not e.Window.alert) && t.alert_was_firing then
        Journal.record j ~writer:w
          (Journal.Alert_cleared
             { index = e.Window.index; ratio = e.Window.hotspot_ratio; factor }));
    (if e.Window.alert && not t.alert_was_firing then
       match t.on_alert with None -> () | Some f -> ( try f e with _ -> ()));
    t.alert_was_firing <- e.Window.alert;
    (* Sense → decide → act: the controller sees exactly the entry (and
       merged top-k) this tick journaled, so a journaled decision's
       evidence reconciles field-for-field with the window's own sketch
       snapshot. Runs before [on_window] so the dashboard hook reads
       post-decision controller state. *)
    (match t.controller with
    | None -> ()
    | Some ctl ->
      ignore
        (Lc_control.Controller.observe ctl ~window:e.Window.index
           ~queries:e.Window.queries e.Window.top_cells
          : Lc_control.Controller.decision option));
    (match t.on_window with None -> () | Some f -> ( try f e with _ -> ()));
    e

  (* engine_control_* gauges: appended exposition lines like
     [Window.prometheus_gauges] — the controller's scalars are
     monitor-domain-owned and racy-read tolerant, so the scrape domain
     reads them directly instead of round-tripping through a metric
     shard that would need its own publisher. *)
  let control_gauges t =
    match t.controller with
    | None -> ""
    | Some ctl ->
      let module C = Lc_control.Controller in
      let b = Buffer.create 512 in
      let gauge name help v =
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n%s %s\n" name help name name v)
      in
      gauge "engine_control_applied_boost"
        "Replication boost the builder last applied"
        (string_of_int (C.applied_boost ctl));
      gauge "engine_control_target_boost" "Replication boost the controller wants"
        (string_of_int (C.target_boost ctl));
      gauge "engine_control_score" "Hysteresis contention score"
        (string_of_int (C.score ctl));
      gauge "engine_control_cooldown_windows" "Cooldown windows remaining"
        (string_of_int (C.cooldown ctl));
      gauge "engine_control_decisions_total" "Actuation decisions so far"
        (string_of_int (C.decisions_total ctl));
      gauge "engine_control_windowed_ratio"
        "Windowed contention ratio at the last controller observation"
        (Printf.sprintf "%.6f" (C.last_ratio ctl));
      Buffer.contents b

  let metrics_body t =
    Lc_obs.Export.prometheus (Window.live_snapshot t.window)
    ^ Window.prometheus_gauges t.window
    ^ control_gauges t

  (* The co-heat JSON object shared by /cells.json and /scaling.json:
     per-cell tallies bucketed into cache-line groups (see
     {!Lc_analysis.Coheat}), or [Null] when the run keeps no live
     per-cell counters (dynamic workloads, or before a serve starts). *)
  let coheat_json counts_opt =
    let module J = Lc_obs.Json in
    match counts_opt with
    | None -> J.Null
    | Some counts ->
      let ch = Coheat.of_counts counts in
      J.Obj
        [
          ("line_cells", J.Int ch.Coheat.line_cells);
          ("lines", J.Int ch.Coheat.lines);
          ("total_probes", J.Int ch.Coheat.total);
          ("ratio", J.Float ch.Coheat.ratio);
          ("uniform_bound", J.Float (Coheat.uniform_bound ch));
          ("hottest_line", J.Int ch.Coheat.hottest_line);
          ("hottest_line_heat", J.Int ch.Coheat.hottest_line_heat);
          ("hottest_line_share", J.Float ch.Coheat.hottest_line_share);
        ]

  let live_count_values t =
    match t.live_counts with
    | None -> None
    | Some counters -> Some (Array.map Atomic.get counters)

  let cells_body t =
    let cells = Window.live_cells t.window in
    let exact_counts = live_count_values t in
    let exact_hist =
      match exact_counts with
      | None -> []
      | Some counts -> histogram_of_counts counts
    in
    Lc_obs.Json.to_string
      (Lc_obs.Json.Obj
         [
           ("total_observed", Lc_obs.Json.Int cells.Heavy.total_observed);
           ("error_bound", Lc_obs.Json.Int cells.Heavy.error_bound);
           ("coheat", coheat_json exact_counts);
           ( "top",
             Lc_obs.Json.List
               (List.map
                  (fun (e : Heavy.entry) ->
                    Lc_obs.Json.Obj
                      [
                        ("cell", Lc_obs.Json.Int e.item);
                        ("count", Lc_obs.Json.Int e.count);
                        ("err", Lc_obs.Json.Int e.err);
                      ])
                  cells.Heavy.top) );
           ( "count_histogram",
             Lc_obs.Json.List
               (List.map
                  (fun (upper, n) ->
                    Lc_obs.Json.List [ Lc_obs.Json.Int upper; Lc_obs.Json.Int n ])
                  exact_hist) );
         ])

  let windows_body t =
    Lc_obs.Json.to_string
      (Lc_obs.Json.Obj
         [
           ( "windows",
             Lc_obs.Json.List
               (List.map
                  (fun (e : Window.entry) ->
                    Lc_obs.Json.Obj
                      [
                        ("index", Lc_obs.Json.Int e.index);
                        ("t_start_s", Lc_obs.Json.Float e.t_start_s);
                        ("t_end_s", Lc_obs.Json.Float e.t_end_s);
                        ("queries", Lc_obs.Json.Int e.queries);
                        ("probes", Lc_obs.Json.Int e.probes);
                        ("qps", Lc_obs.Json.Float e.qps);
                        ("probes_per_s", Lc_obs.Json.Float e.probes_per_s);
                        ("p50_ns", Lc_obs.Json.Float e.p50_ns);
                        ("p99_ns", Lc_obs.Json.Float e.p99_ns);
                        ("max_cell", Lc_obs.Json.Int e.max_cell);
                        ("max_share", Lc_obs.Json.Float e.max_share);
                        ("hotspot_ratio", Lc_obs.Json.Float e.hotspot_ratio);
                        ("alert", Lc_obs.Json.Bool e.alert);
                        ("cum_queries", Lc_obs.Json.Int e.cum_queries);
                      ])
                  (Window.entries t.window)) );
           ("alert_active", Lc_obs.Json.Bool (Window.alert_active t.window));
           ("alert_fired_total", Lc_obs.Json.Int (Window.alert_fired_total t.window));
         ])

  (* /updates.json: the update-path counterpart of /windows.json,
     schema-versioned ("lowcon-updates" v1) so `lowcon validate` can
     check a saved scrape. [cumulative] is null and [windows] empty for
     a run that never exercised the update path (static workloads). *)
  let updates_schema_name = "lowcon-updates"
  let updates_schema_version = 1

  let updates_body t =
    let module J = Lc_obs.Json in
    let snap = Window.live_snapshot t.window in
    let n = update_metric_names in
    let c name = Option.value ~default:0 (Metrics.Snapshot.counter_value snap name) in
    let g name =
      match Metrics.Snapshot.gauge_value snap name with
      | None -> 0
      | Some v -> int_of_float v
    in
    let inserts = c n.Window.inserts_counter in
    let deletes = c n.Window.deletes_counter in
    let pubs = c n.Window.publications_counter in
    let cells = c n.Window.cells_counter in
    let active = inserts + deletes + pubs > 0 in
    let cumulative =
      if not active then J.Null
      else
        J.Obj
          [
            ("inserts", J.Int inserts);
            ("deletes", J.Int deletes);
            ("publications", J.Int pubs);
            ("reclaimed", J.Int (c "engine_reclaimed_total"));
            ("cells_written", J.Int cells);
            ( "write_amp",
              J.Float
                (if inserts > 0 then float_of_int cells /. float_of_int inserts else 0.0) );
            ("epoch", J.Int (g n.Window.epoch_gauge));
            ("retired_pending", J.Int (g n.Window.retired_gauge));
            ("reader_lag", J.Int (g n.Window.reader_lag_gauge));
          ]
    in
    let uwindows =
      List.filter_map
        (fun (e : Window.entry) ->
          match e.Window.updates with
          | None -> None
          | Some u ->
            Some
              (J.Obj
                 [
                   ("index", J.Int e.Window.index);
                   ("t_start_s", J.Float e.Window.t_start_s);
                   ("t_end_s", J.Float e.Window.t_end_s);
                   ("inserts", J.Int u.Window.u_inserts);
                   ("deletes", J.Int u.Window.u_deletes);
                   ("ups", J.Float u.Window.ups);
                   ("publications", J.Int u.Window.u_pubs);
                   ("pubs_per_s", J.Float u.Window.pubs_per_s);
                   ("cells_written", J.Int u.Window.u_cells);
                   ("write_amp", J.Float u.Window.write_amp);
                   ("rebuild_p50_ns", J.Float u.Window.rebuild_p50_ns);
                   ("rebuild_p99_ns", J.Float u.Window.rebuild_p99_ns);
                   ("epoch", J.Int u.Window.u_epoch);
                   ("retired_pending", J.Int u.Window.u_retired);
                   ("reader_lag", J.Int u.Window.u_reader_lag);
                 ]))
        (Window.entries t.window)
    in
    J.to_string
      (J.Obj
         [
           ("schema", J.String updates_schema_name);
           ("version", J.Int updates_schema_version);
           ("updates_seen", J.Bool active);
           ("cumulative", cumulative);
           ("windows", J.List uwindows);
         ])

  (* /scaling.json: the scaling observatory's live view — cumulative
     per-phase time attribution, GC/allocation counters, the windowed GC
     entries and the cache-line co-heat diagnostic, schema-versioned
     ("lowcon-scaling-live" v1) so `lowcon validate` can check a saved
     scrape. Distinct from the offline "lowcon-scaling" artifact the
     `lowcon scale` sweep writes: this is one run's telemetry, that is a
     fitted domain sweep. *)
  let scaling_schema_name = "lowcon-scaling-live"
  let scaling_schema_version = 1

  let scaling_body t =
    let module J = Lc_obs.Json in
    let snap = Window.live_snapshot t.window in
    let c name = Option.value ~default:0 (Metrics.Snapshot.counter_value snap name) in
    let phases =
      J.Obj
        (List.map (fun (phase, counter) -> (phase ^ "_ns", J.Int (c counter)))
           phase_counter_names)
    in
    let gn = gc_metric_names in
    let gwindows =
      List.filter_map
        (fun (e : Window.entry) ->
          match e.Window.gc with
          | None -> None
          | Some g ->
            Some
              (J.Obj
                 [
                   ("index", J.Int e.Window.index);
                   ("t_start_s", J.Float e.Window.t_start_s);
                   ("t_end_s", J.Float e.Window.t_end_s);
                   ("queries", J.Int e.Window.queries);
                   ("minor_words", J.Int g.Window.g_minor_words);
                   ("promoted_words", J.Int g.Window.g_promoted_words);
                   ("major_words", J.Int g.Window.g_major_words);
                   ("minor_collections", J.Int g.Window.g_minor_collections);
                   ("major_collections", J.Int g.Window.g_major_collections);
                   ("alloc_per_query", J.Float g.Window.alloc_per_query);
                   ("heap_words", J.Int g.Window.g_heap_words);
                 ]))
        (Window.entries t.window)
    in
    let gc =
      J.Obj
        [
          ("minor_words", J.Int (c gn.Window.minor_words_counter));
          ("promoted_words", J.Int (c gn.Window.promoted_words_counter));
          ("major_words", J.Int (c gn.Window.major_words_counter));
          ("windows", J.List gwindows);
        ]
    in
    J.to_string
      (J.Obj
         [
           ("schema", J.String scaling_schema_name);
           ("version", J.Int scaling_schema_version);
           ("domains", J.Int t.domains);
           ("phases", phases);
           ("gc", gc);
           ("coheat", coheat_json (live_count_values t));
         ])

  (* /control.json: the controller's sense→decide→act state, schema-
     versioned ("lowcon-control" v1) so `lowcon validate` can check a
     saved scrape. [attached] is false (and everything else absent) for
     a run without a controller; otherwise the decision list carries
     exactly the records the controller journaled, so a scrape, the
     flight recorder and a postmortem replay reconcile one to one. *)
  let control_schema_name = "lowcon-control"
  let control_schema_version = 1

  let control_body t =
    let module J = Lc_obs.Json in
    let module C = Lc_control.Controller in
    let header =
      [
        ("schema", J.String control_schema_name);
        ("version", J.Int control_schema_version);
      ]
    in
    match t.controller with
    | None -> J.to_string (J.Obj (header @ [ ("attached", J.Bool false) ]))
    | Some ctl ->
      let pc = C.policy_config ctl in
      let decision (d : C.decision) =
        J.Obj
          [
            ("id", J.Int d.C.d_id);
            ("window", J.Int d.C.d_window);
            ("ratio", J.Float d.C.d_ratio);
            ("cell", J.Int d.C.d_cell);
            ("count", J.Int d.C.d_count);
            ("err", J.Int d.C.d_err);
            ("score", J.Int d.C.d_score);
            ("action", J.String (match d.C.d_action with `Raise -> "raise" | `Lower -> "lower"));
            ("old_boost", J.Int d.C.d_old_boost);
            ("new_boost", J.Int d.C.d_new_boost);
            ("cooldown", J.Int d.C.d_cooldown);
          ]
      in
      J.to_string
        (J.Obj
           (header
           @ [
               ("attached", J.Bool true);
               ( "boost",
                 J.Obj
                   [
                     ("base", J.Int (C.base_boost ctl));
                     ("target", J.Int (C.target_boost ctl));
                     ("applied", J.Int (C.applied_boost ctl));
                   ] );
               ( "policy",
                 J.Obj
                   [
                     ("high_ratio", J.Float pc.Lc_control.Policy.high_ratio);
                     ("low_ratio", J.Float pc.Lc_control.Policy.low_ratio);
                     ("hot_contrib", J.Int pc.Lc_control.Policy.hot_contrib);
                     ("cool_contrib", J.Int pc.Lc_control.Policy.cool_contrib);
                     ("high_threshold", J.Int pc.Lc_control.Policy.high_threshold);
                     ("low_threshold", J.Int pc.Lc_control.Policy.low_threshold);
                     ("cooldown_windows", J.Int pc.Lc_control.Policy.cooldown_windows);
                     ("min_boost", J.Int pc.Lc_control.Policy.min_boost);
                     ("max_boost", J.Int pc.Lc_control.Policy.max_boost);
                     ("step", J.Int pc.Lc_control.Policy.step);
                   ] );
               ( "state",
                 J.Obj
                   [
                     ("score", J.Int (C.score ctl));
                     ("cooldown", J.Int (C.cooldown ctl));
                     ("windows_seen", J.Int (C.windows_seen ctl));
                     ("last_ratio", J.Float (C.last_ratio ctl));
                   ] );
               ("decisions_total", J.Int (C.decisions_total ctl));
               ("decisions", J.List (List.map decision (C.decisions ctl)));
             ]))

  let control_json = control_body

  let routes t : Http.route list =
    [
      ("/metrics", fun () -> Http.text (metrics_body t));
      ( "/snapshot.json",
        fun () -> Http.json (Lc_obs.Export.json_snapshot (Window.live_snapshot t.window)) );
      ("/cells.json", fun () -> Http.json (cells_body t));
      ("/windows.json", fun () -> Http.json (windows_body t));
      ("/updates.json", fun () -> Http.json (updates_body t));
      ("/scaling.json", fun () -> Http.json (scaling_body t));
      ("/control.json", fun () -> Http.json (control_body t));
      ("/healthz", fun () -> Http.text "ok\n");
    ]
end

(* ------------------------------------------------------------------ *)
(* Serving                                                              *)
(* ------------------------------------------------------------------ *)

(* Sleep [total] seconds in short slices so a stop flag set at worker
   join wakes the monitor domain promptly. *)
let interruptible_sleep total stop =
  let slice = 0.02 in
  let remaining = ref total in
  while !remaining > 0.0 && not (Atomic.get stop) do
    let d = Float.min slice !remaining in
    Unix.sleepf d;
    remaining := !remaining -. d
  done

let serve_internal ?(cost = Free) ?obs ?monitor ~domains ~queries_per_domain ~seed inst qdist =
  if domains < 1 then invalid_arg "Engine.serve: domains must be >= 1";
  if queries_per_domain < 1 then
    invalid_arg "Engine.serve: queries_per_domain must be >= 1";
  (match monitor with
  | Some (m : Monitor.t) when m.Monitor.domains <> domains ->
    invalid_arg
      (Printf.sprintf "Engine.serve_windowed: monitor was created for %d domains, serve got %d"
         m.Monitor.domains domains)
  | _ -> ());
  (* A monitor carries its own observability handle. *)
  let obs = match monitor with Some m -> Some m.Monitor.obs | None -> obs in
  let (module D : Lc_dict.Dict_intf.S) = Instance.core inst in
  let counters = Array.init D.space (fun _ -> Atomic.make 0) in
  (match monitor with Some m -> m.Monitor.live_counts <- Some counters | None -> ());
  let locks = make_locks ~cost ~space:D.space in
  (* Everything per-domain (metric shards, timelines, probe closures) is
     created on the orchestrating domain before any worker spawns, so
     the workers themselves never touch the registry mutexes. *)
  let setup =
    match obs with
    | None -> None
    | Some (o : Lc_obs.Obs.t) ->
      let ids = register_metrics o in
      let main_shard = Lc_obs.Obs.shard o ~domain:0 in
      Metrics.set_gauge main_shard ids.m_domains (float_of_int domains);
      let main_tl = Lc_obs.Obs.timeline o ~tid:0 in
      let workers =
        Array.init domains (fun w ->
            {
              shard = Lc_obs.Obs.shard o ~domain:(w + 1);
              timeline = Lc_obs.Obs.timeline o ~tid:(w + 1);
              queries_c = ids.m_queries;
              probes_c = ids.m_probes;
              latency_h = ids.m_latency;
              probe_latency_h = ids.m_probe_latency;
              spin_wait_h = ids.m_spin_wait;
            })
      in
      let pids = register_phase_metrics o in
      let gids = register_gc_metrics o in
      (* Publish the orchestrator's shard (the domains gauge) once now;
         it is republished after the join with the idle-phase total. *)
      (match monitor with
      | Some m ->
        Window.publish (Window.publisher m.Monitor.window 0) main_shard m.Monitor.orch_sketch
      | None -> ());
      Some (main_tl, workers, (main_shard, pids, gids))
  in
  (* Per-worker phase records and GC cursors, allocated by the
     orchestrator before any domain spawns (plain single-writer stores,
     like the metric shards); untouched on the obs-off path. *)
  let phases = fresh_phases domains in
  let gcursors = fresh_gc_cursors domains in
  let journal = Option.bind monitor (fun (m : Monitor.t) -> m.Monitor.journal) in
  let main_span name f =
    let body () =
      match setup with
      | None -> f ()
      | Some (main_tl, _, _) -> Span.with_span main_tl name f
    in
    match journal with
    | None -> body ()
    | Some j ->
      (* Orchestrator stage boundaries (ring 0) give a postmortem its
         coarse timeline even when the alert fires before any window. *)
      Journal.record j ~writer:0 (Journal.Stage { name; mark = `Begin });
      Fun.protect
        ~finally:(fun () -> Journal.record j ~writer:0 (Journal.Stage { name; mark = `End }))
        body
  in
  (* Pre-sample each domain's query batch outside the timed section so
     throughput measures probing, not distribution sampling. *)
  let batches =
    main_span "sample-batches" @@ fun () ->
    Array.init domains (fun w ->
        let rng = Rng.create (seed + (7919 * (w + 1))) in
        Array.init queries_per_domain (fun _ -> Qdist.sample qdist rng))
  in
  let worker w () =
    let rng = Rng.create (seed lxor (104729 * (w + 1))) in
    match (setup, monitor) with
    | None, _ ->
      let probe = make_probe ~cost ~counters ~locks D.table in
      Array.iter (fun x -> ignore (D.mem ~probe rng x : bool)) batches.(w)
    | Some (_, workers, (_, pids, gids)), None ->
      let wo = workers.(w) in
      let ph = phases.(w) in
      let gcur = gcursors.(w) in
      let probe = make_obs_probe ~cost ~counters ~locks D.table wo in
      Span.with_span wo.timeline "serve-batch" (fun () ->
          let w0 = Lc_obs.Clock.now_ns () in
          gc_baseline gcur;
          Array.iter
            (fun x ->
              let t0 = Lc_obs.Clock.now_ns () in
              ignore (D.mem ~probe rng x : bool);
              let t1 = Lc_obs.Clock.now_ns () in
              Metrics.observe wo.shard wo.latency_h (Int64.to_int (Int64.sub t1 t0));
              Metrics.incr wo.shard wo.queries_c 1;
              let t2 = Lc_obs.Clock.now_ns () in
              (* The phase stores below land after [t2]: the accounting
                 overhead charges itself to the [other] residual, never
                 to the phases it measures. *)
              ph.ph_probe_ns <- ph.ph_probe_ns + Int64.to_int (Int64.sub t1 t0);
              ph.ph_tally_ns <- ph.ph_tally_ns + Int64.to_int (Int64.sub t2 t1))
            batches.(w);
          sample_gc wo.shard gids gcur;
          close_phases ph
            ~wall_ns:(Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) w0))
            ~pin_ns:0;
          flush_phases wo.shard pids ph)
    | Some (_, workers, (_, pids, gids)), Some m ->
      let wo = workers.(w) in
      let ph = phases.(w) in
      let gcur = gcursors.(w) in
      let sketch = m.Monitor.sketches.(w) in
      let pub = Window.publisher m.Monitor.window (w + 1) in
      let period = m.Monitor.publish_period in
      let probe = make_obs_probe ~sketch ~cost ~counters ~locks D.table wo in
      (* Journal a worker's publications on its own ring (w + 1): one
         event per publish_period queries, so the recorder costs the hot
         path nothing measurable. *)
      let journal_publish =
        match m.Monitor.journal with
        | None -> fun _ -> ()
        | Some j -> fun q -> Journal.record j ~writer:(w + 1) (Journal.Publish { queries = q })
      in
      Span.with_span wo.timeline "serve-batch" (fun () ->
          let w0 = Lc_obs.Clock.now_ns () in
          gc_baseline gcur;
          let since_publish = ref 0 in
          let served = ref 0 in
          Array.iter
            (fun x ->
              let t0 = Lc_obs.Clock.now_ns () in
              ignore (D.mem ~probe rng x : bool);
              let t1 = Lc_obs.Clock.now_ns () in
              Metrics.observe wo.shard wo.latency_h (Int64.to_int (Int64.sub t1 t0));
              Metrics.incr wo.shard wo.queries_c 1;
              let t2 = Lc_obs.Clock.now_ns () in
              ph.ph_probe_ns <- ph.ph_probe_ns + Int64.to_int (Int64.sub t1 t0);
              ph.ph_tally_ns <- ph.ph_tally_ns + Int64.to_int (Int64.sub t2 t1);
              incr served;
              incr since_publish;
              if !since_publish >= period then begin
                since_publish := 0;
                let pb0 = Lc_obs.Clock.now_ns () in
                sample_gc wo.shard gids gcur;
                Window.publish pub wo.shard sketch;
                journal_publish !served;
                ph.ph_publish_ns <-
                  ph.ph_publish_ns
                  + Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) pb0)
              end)
            batches.(w);
          sample_gc wo.shard gids gcur;
          close_phases ph
            ~wall_ns:(Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) w0))
            ~pin_ns:0;
          flush_phases wo.shard pids ph;
          (* Final publication: the monitor's last tick must see the
             complete batch (and the flushed phase totals) so windowed
             totals reconcile exactly. Deliberately after the wall cut —
             it cannot be charged to a phase it publishes. *)
          Window.publish pub wo.shard sketch;
          journal_publish !served)
  in
  (* The monitor domain ticks windows on its interval while workers are
     hot; it is stopped (and joined) outside the timed section so the
     throughput columns stay comparable with unmonitored runs. *)
  let monitor_stop = Atomic.make false in
  let monitor_domain =
    match monitor with
    | None -> None
    | Some m ->
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get monitor_stop) do
               interruptible_sleep m.Monitor.interval_s monitor_stop;
               if not (Atomic.get monitor_stop) then ignore (Monitor.tick m : Window.entry)
             done))
  in
  let t0 = Unix.gettimeofday () in
  let serve_t0_ns = Lc_obs.Clock.now_ns () in
  let seconds =
    main_span "serve" @@ fun () ->
    let spawned = Array.init domains (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join spawned;
    Unix.gettimeofday () -. t0
  in
  let serve_wall_ns = Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) serve_t0_ns) in
  (* Idle/join accounting, filled in by the orchestrator now that the
     workers' phase records are quiescent: what the serve section spent
     spawning, joining and waiting around each worker's own batch. *)
  (match setup with
  | None -> ()
  | Some (_, _, (main_shard, pids, _)) ->
    Array.iter
      (fun ph ->
        ph.ph_idle_ns <- max 0 (serve_wall_ns - ph.ph_wall_ns);
        Metrics.incr main_shard pids.p_idle_c ph.ph_idle_ns)
      phases;
    (* Republish the orchestrator's shard so the final tick's merged
       snapshot carries the idle totals. *)
    match monitor with
    | Some m ->
      Window.publish (Window.publisher m.Monitor.window 0) main_shard m.Monitor.orch_sketch
    | None -> ());
  (match monitor_domain with
  | None -> ()
  | Some d ->
    Atomic.set monitor_stop true;
    Domain.join d;
    (* One final, authoritative window over whatever the interval ticks
       had not yet consumed. *)
    ignore (Monitor.tick (Option.get monitor) : Window.entry));
  main_span "merge" @@ fun () ->
  let counts = Array.map Atomic.get counters in
  let total_probes = Array.fold_left ( + ) 0 counts in
  let hottest_cell = ref 0 in
  Array.iteri (fun j c -> if c > counts.(!hottest_cell) then hottest_cell := j) counts;
  let hottest_count = counts.(!hottest_cell) in
  let queries = domains * queries_per_domain in
  ( {
      name = D.name;
      domains;
      queries;
      seconds;
      throughput =
        (if seconds > 0.0 then float_of_int queries /. seconds else Float.infinity);
      total_probes;
      counts;
      hottest_cell = !hottest_cell;
      hottest_count;
      hottest_share =
        (if total_probes = 0 then 0.0
         else float_of_int hottest_count /. float_of_int total_probes);
      flat_bound = float_of_int queries *. float_of_int D.max_probes /. float_of_int D.space;
    },
    match setup with None -> None | Some _ -> Some phases )

(* ------------------------------------------------------------------ *)
(* The unified entry point                                              *)
(* ------------------------------------------------------------------ *)

module Config = struct
  type nonrec t = {
    domains : int;
    seed : int;
    cost : cost;
    obs : Lc_obs.Obs.t option;
    monitor : Monitor.t option;
  }

  let make ?(cost = Free) ?obs ?monitor ~domains ~seed () =
    { domains; seed; cost; obs; monitor }
end

type workload =
  | Static of {
      inst : Instance.t;
      qdist : Qdist.t;
      queries_per_domain : int;
    }
  | Dynamic of {
      epoch : Epoch.t;
      ops : Opstream.op array;
      publish_every : int;
    }

type update_stats = {
  inserts : int;
  deletes : int;
  query_hits : int;
  publications : int;
  reclaimed : int;
  retired_pending : int;
  keys_rebuilt : int;
  purges : int;
  final_live : int;
  final_epoch : int;
  cells_written : int;
  rebuilds : int;
  rebuild_ns : int;
  publish_ns : int;
  write_amp : float;
  builder_ns : int;
  reclaim_lag_max : int;
}

type outcome = {
  result : result;
  windows : Window.entry list;
  cells : Heavy.merged option;
  alert_windows : int;
  updates : update_stats option;
  phases : phase_stats array option;
}

let monitored_outcome ?updates ?phases result = function
  | None -> { result; windows = []; cells = None; alert_windows = 0; updates; phases }
  | Some (m : Monitor.t) ->
    {
      result;
      windows = Window.entries m.Monitor.window;
      cells = Some (Window.live_cells m.Monitor.window);
      alert_windows = Window.alert_fired_total m.Monitor.window;
      updates;
      phases;
    }

(* The dynamic serving mode: [domains] reader domains drain pre-split
   query batches through epoch-pinned lock-free probes while one builder
   domain applies the update subsequence in stream order, publishing a
   fresh snapshot every [publish_every] updates and reclaiming retired
   levels as readers leave. The spinlock cost model is a per-cell lock
   array sized at build time — meaningless when the cell set changes per
   publication — so dynamic serving accepts only [Free]. *)
let serve_dynamic (cfg : Config.t) ~epoch ~ops ~publish_every =
  let { Config.domains; seed; cost; obs; monitor } = cfg in
  if domains < 1 then invalid_arg "Engine.run: domains must be >= 1";
  if publish_every < 1 then invalid_arg "Engine.run: publish_every must be >= 1";
  (match cost with
  | Free -> ()
  | Spinlock _ ->
    invalid_arg "Engine.run: the Spinlock cost model applies to static serving only");
  (match monitor with
  | Some (m : Monitor.t) when m.Monitor.domains <> domains ->
    invalid_arg
      (Printf.sprintf "Engine.run: monitor was created for %d domains, run got %d"
         m.Monitor.domains domains)
  | _ -> ());
  let obs = match monitor with Some m -> Some m.Monitor.obs | None -> obs in
  (* Adaptive runs: wire the controller's act step to the epoch's boost
     request channel before anything spawns. The monitor domain decides
     (Monitor.tick -> Controller.observe -> request_boost, one
     Atomic.set); the builder domain applies at its next publication. *)
  let controller = Option.bind monitor (fun m -> m.Monitor.controller) in
  (match controller with
  | None -> ()
  | Some ctl ->
    Lc_control.Controller.set_actuator ctl (fun ~id ~boost ->
        Epoch.request_boost epoch ~id ~boost);
    Lc_control.Controller.set_applied_reader ctl (fun () -> Epoch.applied_boost epoch));
  let updates, query_batches = Opstream.split ops ~domains in
  let total_queries = Array.fold_left (fun acc b -> acc + Array.length b) 0 query_batches in
  (* Readers are registered on the orchestrator so worker domains never
     race the slot allocator; each gets a private rng. *)
  let readers =
    Array.init domains (fun w -> Epoch.reader epoch (Rng.create (seed lxor (104729 * (w + 1)))))
  in
  let hits = Array.make domains 0 in
  (* Per-domain observability plumbing, as in the static path: shard
     0 = orchestrator, 1..domains = readers, domains + 1 = builder. *)
  let setup =
    match obs with
    | None -> None
    | Some (o : Lc_obs.Obs.t) ->
      let ids = register_metrics o in
      let main_shard = Lc_obs.Obs.shard o ~domain:0 in
      Metrics.set_gauge main_shard ids.m_domains (float_of_int domains);
      let main_tl = Lc_obs.Obs.timeline o ~tid:0 in
      let workers =
        Array.init domains (fun w ->
            {
              shard = Lc_obs.Obs.shard o ~domain:(w + 1);
              timeline = Lc_obs.Obs.timeline o ~tid:(w + 1);
              queries_c = ids.m_queries;
              probes_c = ids.m_probes;
              latency_h = ids.m_latency;
              probe_latency_h = ids.m_probe_latency;
              spin_wait_h = ids.m_spin_wait;
            })
      in
      let builder_shard = Lc_obs.Obs.shard o ~domain:(domains + 1) in
      let builder_tl = Lc_obs.Obs.timeline o ~tid:(domains + 1) in
      let uids = register_update_metrics o in
      let pids = register_phase_metrics o in
      let gids = register_gc_metrics o in
      (match monitor with
      | Some m ->
        Window.publish (Window.publisher m.Monitor.window 0) main_shard m.Monitor.orch_sketch
      | None -> ());
      Some (main_tl, workers, (main_shard, pids, gids), (builder_shard, builder_tl, uids))
  in
  (* Reader phase records and GC cursors (slot [domains] is the
     builder's GC cursor), orchestrator-allocated before any spawn. *)
  let phases = fresh_phases domains in
  let gcursors = fresh_gc_cursors (domains + 1) in
  let journal = Option.bind monitor (fun (m : Monitor.t) -> m.Monitor.journal) in
  let main_span name f =
    let body () =
      match setup with
      | None -> f ()
      | Some (main_tl, _, _, _) -> Span.with_span main_tl name f
    in
    match journal with
    | None -> body ()
    | Some j ->
      Journal.record j ~writer:0 (Journal.Stage { name; mark = `Begin });
      Fun.protect
        ~finally:(fun () -> Journal.record j ~writer:0 (Journal.Stage { name; mark = `End }))
        body
  in
  (* Builder-side totals, written by the builder domain and read by the
     orchestrator strictly after the join. [b_ns] is the builder's wall
     time over the whole update stream — the denominator-free numerator
     of ns/update, measured whether or not telemetry is attached. *)
  let b_inserts = ref 0 and b_deletes = ref 0 in
  let b_ns = ref 0 in
  (* Run-scoped baselines: a preloaded epoch arrives with build work
     already on its lifetime totals (Dynamic counters never reset),
     while the engine_* metrics only ever see this run — subtracting
     the baseline keeps [update_stats] reconciling exactly with the
     counters and the windowed sums. *)
  let cells0 = Lc_dynamic.Dynamic.cells_written (Epoch.inner epoch) in
  let rebuilds0 = Lc_dynamic.Dynamic.rebuilds (Epoch.inner epoch) in
  let rebuild_ns0 = Lc_dynamic.Dynamic.rebuild_ns (Epoch.inner epoch) in
  let publish_ns0 = Epoch.publish_ns_total epoch in
  (* Builder journal ring (writer domains + 2) — recorded only when the
     journal was sized for it, so PR 6-era journals (domains + 2 rings)
     keep working with the builder simply silent. *)
  let bjournal =
    match journal with
    | Some j when Journal.writers j >= domains + 3 -> Some j
    | _ -> None
  in
  let bwriter = domains + 2 in
  (* One-way flag, like monitor_stop: the orchestrator sets it (once,
     after joining the readers); an adaptive run's builder polls it to
     end its keep-alive loop. *)
  let readers_done = Atomic.make false in
  let builder () =
    let t_start = Lc_obs.Clock.now_ns () in
    (match setup with
    | None ->
      let apply_updates () =
        let applied = ref 0 in
        Array.iter
          (fun op ->
            (match op with
            | Opstream.Insert x ->
              Epoch.insert epoch x;
              incr b_inserts
            | Opstream.Delete x ->
              Epoch.delete epoch x;
              incr b_deletes
            | Opstream.Query _ -> assert false (* split put queries elsewhere *));
            incr applied;
            if !applied mod publish_every = 0 then begin
              Epoch.publish epoch;
              ignore (Epoch.try_reclaim epoch : int)
            end)
          updates;
        (* Final publication: readers finish against the complete table. *)
        Epoch.publish epoch;
        ignore (Epoch.try_reclaim epoch : int)
      in
      apply_updates ()
    | Some (_, _, (_, _, gids), (bshard, btl, uids)) ->
      let bgcur = gcursors.(domains) in
      gc_baseline bgcur;
      (* Every level build lands in the builder's own shard (plain
         stores) the moment it happens — the windowed view and the
         flight recorder see rebuild cost mid-run, not at join. *)
      Lc_dynamic.Dynamic.set_build_hook (Epoch.inner epoch) (fun bi ->
          Metrics.incr bshard uids.u_cells_c bi.Lc_dynamic.Dynamic.bi_cells;
          Metrics.observe bshard uids.u_rebuild_h bi.Lc_dynamic.Dynamic.bi_ns;
          match bjournal with
          | None -> ()
          | Some j ->
            Journal.record j ~writer:bwriter
              (Journal.Level_merge
                 {
                   level = bi.Lc_dynamic.Dynamic.bi_index;
                   keys = bi.Lc_dynamic.Dynamic.bi_keys;
                   replicas = bi.Lc_dynamic.Dynamic.bi_replicas;
                   cells = bi.Lc_dynamic.Dynamic.bi_cells;
                   dur_ns = bi.Lc_dynamic.Dynamic.bi_ns;
                 }));
      let bpub =
        match monitor with
        | None -> None
        | Some m ->
          Some (Window.publisher m.Monitor.window (domains + 1), m.Monitor.builder_sketch)
      in
      let publish_now () =
        (* Act: a pending controller request re-replicates the affected
           levels right here on the builder domain (through the
           accounted build path — the Level_merge events and rebuild
           counters above fire for each), and the publish just below
           makes them visible. Readers are never blocked: they keep
           serving the previous snapshot until the one Atomic.set. *)
        let applied = Epoch.apply_boost_request epoch in
        let pi = Epoch.publish_stats epoch in
        (match (applied, bjournal) with
        | Some ba, Some j ->
          Journal.record j ~writer:bwriter
            (Journal.Control_applied
               {
                 id = ba.Epoch.ba_id;
                 epoch = pi.Epoch.pi_epoch;
                 boost = ba.Epoch.ba_boost;
                 levels = ba.Epoch.ba_levels;
                 cells = ba.Epoch.ba_cells;
                 dur_ns = ba.Epoch.ba_ns;
               })
        | _ -> ());
        Metrics.incr bshard uids.u_pubs_c 1;
        Metrics.observe bshard uids.u_publish_h pi.Epoch.pi_dur_ns;
        Metrics.observe bshard uids.u_batch_h pi.Epoch.pi_batch;
        (match bjournal with
        | None -> ()
        | Some j ->
          Journal.record j ~writer:bwriter
            (Journal.Epoch_publish
               {
                 epoch = pi.Epoch.pi_epoch;
                 batch = pi.Epoch.pi_batch;
                 levels = pi.Epoch.pi_levels;
                 fresh_cells = pi.Epoch.pi_fresh_cells;
                 dur_ns = pi.Epoch.pi_dur_ns;
               }));
        let freed = Epoch.try_reclaim epoch in
        if freed > 0 then begin
          Metrics.incr bshard uids.u_reclaimed_c freed;
          match bjournal with
          | None -> ()
          | Some j ->
            Journal.record j ~writer:bwriter
              (Journal.Reclaim
                 {
                   epoch = pi.Epoch.pi_epoch;
                   freed;
                   lag = Epoch.reclaim_lag_max epoch;
                   pending = Epoch.retired_pending epoch;
                 })
        end;
        Metrics.set_gauge bshard uids.u_epoch_g (float_of_int pi.Epoch.pi_epoch);
        Metrics.set_gauge bshard uids.u_retired_g
          (float_of_int (Epoch.retired_pending epoch));
        Metrics.set_gauge bshard uids.u_lag_g (float_of_int (Epoch.reader_lag epoch));
        (* Builder allocation (level rebuilds dominate it) flushes at
           every publication so the windowed GC view sees write-side
           churn mid-run. *)
        sample_gc bshard gids bgcur;
        match bpub with
        | None -> ()
        | Some (pub, sketch) -> Window.publish pub bshard sketch
      in
      Span.with_span btl "apply-updates" (fun () ->
          let applied = ref 0 in
          Array.iter
            (fun op ->
              (match op with
              | Opstream.Insert x ->
                Epoch.insert epoch x;
                incr b_inserts;
                Metrics.incr bshard uids.u_inserts_c 1
              | Opstream.Delete x ->
                Epoch.delete epoch x;
                incr b_deletes;
                Metrics.incr bshard uids.u_deletes_c 1
              | Opstream.Query _ -> assert false (* split put queries elsewhere *));
              incr applied;
              if !applied mod publish_every = 0 then publish_now ())
            updates;
          (* Final publication: readers finish against the complete
             table, and the monitor's last tick sees the complete
             builder shard. *)
          publish_now ());
      (* Adaptive runs: the update stream may drain long before the
         readers do, and without a builder no one could apply the
         controller's requests — so keep the builder alive until the
         orchestrator joins the readers, publishing whenever a boost
         request lands and dozing (never spinning) otherwise. The final
         check drains a request that raced the readers_done flag, so
         the post-run /control.json shows applied = target. *)
      (match controller with
      | None -> ()
      | Some _ ->
        Span.with_span btl "boost-keepalive" (fun () ->
            while not (Atomic.get readers_done) do
              if Epoch.boost_pending epoch then publish_now () else Unix.sleepf 0.001
            done;
            if Epoch.boost_pending epoch then publish_now ()));
      Lc_dynamic.Dynamic.clear_build_hook (Epoch.inner epoch));
    b_ns := Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) t_start)
  in
  let worker w () =
    let r = readers.(w) in
    let batch = query_batches.(w) in
    match (setup, monitor) with
    | None, _ ->
      let h = ref 0 in
      Array.iter (fun x -> if Epoch.mem epoch r x then incr h) batch;
      hits.(w) <- !h
    | Some (_, workers, (_, pids, gids), _), None ->
      let wo = workers.(w) in
      let ph = phases.(w) in
      let gcur = gcursors.(w) in
      Span.with_span wo.timeline "serve-batch" (fun () ->
          let w0 = Lc_obs.Clock.now_ns () in
          gc_baseline gcur;
          let h = ref 0 in
          Array.iter
            (fun x ->
              let p0 = Epoch.reader_probes r in
              let t0 = Lc_obs.Clock.now_ns () in
              if Epoch.mem_phased epoch r x then incr h;
              let t1 = Lc_obs.Clock.now_ns () in
              Metrics.observe wo.shard wo.latency_h (Int64.to_int (Int64.sub t1 t0));
              Metrics.incr wo.shard wo.queries_c 1;
              Metrics.incr wo.shard wo.probes_c (Epoch.reader_probes r - p0);
              let t2 = Lc_obs.Clock.now_ns () in
              ph.ph_probe_ns <- ph.ph_probe_ns + Int64.to_int (Int64.sub t1 t0);
              ph.ph_tally_ns <- ph.ph_tally_ns + Int64.to_int (Int64.sub t2 t1))
            batch;
          hits.(w) <- !h;
          sample_gc wo.shard gids gcur;
          (* [mem_phased] accumulated pin/unpin ns inside the probe
             windows; [close_phases] carves them out so probe means
             probe. *)
          close_phases ph
            ~wall_ns:(Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) w0))
            ~pin_ns:(Epoch.reader_pin_ns r);
          flush_phases wo.shard pids ph)
    | Some (_, workers, (_, pids, gids), _), Some m ->
      let wo = workers.(w) in
      let ph = phases.(w) in
      let gcur = gcursors.(w) in
      let sketch = m.Monitor.sketches.(w) in
      let pub = Window.publisher m.Monitor.window (w + 1) in
      let period = m.Monitor.publish_period in
      (* The observe hook feeds every probed cell (snapshot-global id)
         into the worker-private sketch, like the static obs probe. *)
      Epoch.set_observe r (fun cell -> Heavy.observe sketch cell);
      let journal_publish =
        match m.Monitor.journal with
        | None -> fun _ -> ()
        | Some j -> fun q -> Journal.record j ~writer:(w + 1) (Journal.Publish { queries = q })
      in
      Span.with_span wo.timeline "serve-batch" (fun () ->
          let w0 = Lc_obs.Clock.now_ns () in
          gc_baseline gcur;
          let h = ref 0 in
          let since_publish = ref 0 in
          let served = ref 0 in
          Array.iter
            (fun x ->
              let p0 = Epoch.reader_probes r in
              let t0 = Lc_obs.Clock.now_ns () in
              if Epoch.mem_phased epoch r x then incr h;
              let t1 = Lc_obs.Clock.now_ns () in
              Metrics.observe wo.shard wo.latency_h (Int64.to_int (Int64.sub t1 t0));
              Metrics.incr wo.shard wo.queries_c 1;
              Metrics.incr wo.shard wo.probes_c (Epoch.reader_probes r - p0);
              let t2 = Lc_obs.Clock.now_ns () in
              ph.ph_probe_ns <- ph.ph_probe_ns + Int64.to_int (Int64.sub t1 t0);
              ph.ph_tally_ns <- ph.ph_tally_ns + Int64.to_int (Int64.sub t2 t1);
              incr served;
              incr since_publish;
              if !since_publish >= period then begin
                since_publish := 0;
                let pb0 = Lc_obs.Clock.now_ns () in
                sample_gc wo.shard gids gcur;
                Window.publish pub wo.shard sketch;
                journal_publish !served;
                ph.ph_publish_ns <-
                  ph.ph_publish_ns
                  + Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) pb0)
              end)
            batch;
          hits.(w) <- !h;
          sample_gc wo.shard gids gcur;
          close_phases ph
            ~wall_ns:(Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) w0))
            ~pin_ns:(Epoch.reader_pin_ns r);
          flush_phases wo.shard pids ph;
          Window.publish pub wo.shard sketch;
          journal_publish !served);
      Epoch.clear_observe r
  in
  let monitor_stop = Atomic.make false in
  let monitor_domain =
    match monitor with
    | None -> None
    | Some m ->
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get monitor_stop) do
               interruptible_sleep m.Monitor.interval_s monitor_stop;
               if not (Atomic.get monitor_stop) then ignore (Monitor.tick m : Window.entry)
             done))
  in
  let t0 = Unix.gettimeofday () in
  let serve_t0_ns = Lc_obs.Clock.now_ns () in
  let seconds =
    main_span "serve" @@ fun () ->
    let builder_d = Domain.spawn builder in
    let spawned = Array.init domains (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join spawned;
    (* Readers gone: release an adaptive builder from its keep-alive
       loop (a no-op flag for non-adaptive runs, whose builder exited
       when the update stream drained). *)
    Atomic.set readers_done true;
    Domain.join builder_d;
    Unix.gettimeofday () -. t0
  in
  let serve_wall_ns = Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) serve_t0_ns) in
  (match setup with
  | None -> ()
  | Some (_, _, (main_shard, pids, _), _) ->
    Array.iter
      (fun ph ->
        ph.ph_idle_ns <- max 0 (serve_wall_ns - ph.ph_wall_ns);
        Metrics.incr main_shard pids.p_idle_c ph.ph_idle_ns)
      phases;
    match monitor with
    | Some m ->
      Window.publish (Window.publisher m.Monitor.window 0) main_shard m.Monitor.orch_sketch
    | None -> ());
  (match monitor_domain with
  | None -> ()
  | Some d ->
    Atomic.set monitor_stop true;
    Domain.join d;
    ignore (Monitor.tick (Option.get monitor) : Window.entry));
  main_span "merge" @@ fun () ->
  (* Every reader is quiescent now, so the remainder of the retired list
     reclaims here (the orchestrator has taken over the builder role). *)
  ignore (Epoch.try_reclaim epoch : int);
  let snap = Epoch.current epoch in
  let counts = Epoch.snapshot_counts snap in
  let total_probes = Array.fold_left (fun acc r -> acc + Epoch.reader_probes r) 0 readers in
  let hottest_cell = ref 0 in
  Array.iteri (fun j c -> if c > counts.(!hottest_cell) then hottest_cell := j) counts;
  let hottest_count = if Array.length counts = 0 then 0 else counts.(!hottest_cell) in
  let space = Epoch.space snap in
  let result =
    {
      name = "lc-dyn";
      domains;
      queries = total_queries;
      seconds;
      throughput =
        (if seconds > 0.0 then float_of_int total_queries /. seconds else Float.infinity);
      total_probes;
      counts;
      hottest_cell = !hottest_cell;
      hottest_count;
      hottest_share =
        (if total_probes = 0 then 0.0
         else float_of_int hottest_count /. float_of_int total_probes);
      flat_bound =
        (if space = 0 then 0.0
         else
           float_of_int total_queries
           *. float_of_int (Epoch.max_probes snap)
           /. float_of_int space);
    }
  in
  let inner = Epoch.inner epoch in
  let updates_stats =
    {
      inserts = !b_inserts;
      deletes = !b_deletes;
      query_hits = Array.fold_left ( + ) 0 hits;
      publications = Epoch.publications epoch;
      reclaimed = Epoch.reclaimed epoch;
      retired_pending = Epoch.retired_pending epoch;
      keys_rebuilt = Lc_dynamic.Dynamic.keys_rebuilt inner;
      purges = Lc_dynamic.Dynamic.purges inner;
      final_live = Epoch.live snap;
      final_epoch = Epoch.epoch snap;
      cells_written = Lc_dynamic.Dynamic.cells_written inner - cells0;
      rebuilds = Lc_dynamic.Dynamic.rebuilds inner - rebuilds0;
      rebuild_ns = Lc_dynamic.Dynamic.rebuild_ns inner - rebuild_ns0;
      publish_ns = Epoch.publish_ns_total epoch - publish_ns0;
      write_amp =
        (if !b_inserts > 0 then
           float_of_int (Lc_dynamic.Dynamic.cells_written inner - cells0)
           /. float_of_int !b_inserts
         else 0.0);
      builder_ns = !b_ns;
      reclaim_lag_max = Epoch.reclaim_lag_max epoch;
    }
  in
  monitored_outcome ~updates:updates_stats
    ?phases:(match setup with None -> None | Some _ -> Some phases)
    result monitor

let run (cfg : Config.t) workload =
  match workload with
  | Static { inst; qdist; queries_per_domain } ->
    let result, phases =
      serve_internal ~cost:cfg.Config.cost ?obs:cfg.Config.obs ?monitor:cfg.Config.monitor
        ~domains:cfg.Config.domains ~queries_per_domain ~seed:cfg.Config.seed inst qdist
    in
    monitored_outcome ?phases result cfg.Config.monitor
  | Dynamic { epoch; ops; publish_every } -> serve_dynamic cfg ~epoch ~ops ~publish_every

let hotspot_ratio r = float_of_int r.hottest_count /. r.flat_bound

let answer_all ?(domains = 2) ~seed inst ~queries =
  if domains < 1 then invalid_arg "Engine.answer_all: domains must be >= 1";
  let (module D : Lc_dict.Dict_intf.S) = Instance.core inst in
  let probe : Lc_dict.Dict_intf.probe = fun ~step:_ j -> Table.peek D.table j in
  let n = Array.length queries in
  let out = Array.make n false in
  (* Round-robin index partition: workers write disjoint slots of [out],
     so the only shared mutable state is the (read-only) table cells. *)
  let worker w () =
    let rng = Rng.create (seed + (7919 * w)) in
    let i = ref w in
    while !i < n do
      out.(!i) <- D.mem ~probe rng queries.(!i);
      i := !i + domains
    done
  in
  let spawned = Array.init domains (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join spawned;
  out

let count_histogram r = histogram_of_counts r.counts

let top_cells r ~k =
  let indexed = Array.mapi (fun j c -> (j, c)) r.counts in
  Array.sort (fun (_, a) (_, b) -> compare b a) indexed;
  Array.to_list (Array.sub indexed 0 (min k (Array.length indexed)))
