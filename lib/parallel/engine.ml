module Rng = Lc_prim.Rng
module Table = Lc_cellprobe.Table
module Qdist = Lc_cellprobe.Qdist
module Instance = Lc_dict.Instance
module Metrics = Lc_obs.Metrics
module Span = Lc_obs.Span

type cost = Free | Spinlock of { hold : int }

type result = {
  name : string;
  domains : int;
  queries : int;
  seconds : float;
  throughput : float;
  total_probes : int;
  counts : int array;
  hottest_cell : int;
  hottest_count : int;
  hottest_share : float;
  flat_bound : float;
}

let make_locks ~cost ~space =
  match cost with
  | Free -> [||]
  | Spinlock { hold } ->
    if hold < 0 then invalid_arg "Engine: Spinlock hold must be >= 0";
    Array.init space (fun _ -> Atomic.make false)

(* The probing discipline shared by every worker: count each visit on a
   per-cell atomic, optionally serialising visits to the same cell
   through a per-cell test-and-set spinlock. Cell contents are only ever
   read ([Table.peek]); the table's own mutable counters are untouched,
   which is what makes the query path reentrant. This is the
   telemetry-free discipline — the exact PR 1 hot path, used whenever
   [serve] is called without [?obs]. *)
let make_probe ~cost ~counters ~locks table : Lc_dict.Dict_intf.probe =
  match cost with
  | Free ->
    fun ~step:_ j ->
      Atomic.incr counters.(j);
      Table.peek table j
  | Spinlock { hold } ->
    fun ~step:_ j ->
      let l = locks.(j) in
      while not (Atomic.compare_and_set l false true) do
        Domain.cpu_relax ()
      done;
      let v = Table.peek table j in
      for _ = 1 to hold do
        Domain.cpu_relax ()
      done;
      Atomic.set l false;
      Atomic.incr counters.(j);
      v

(* Per-domain telemetry wired into one worker's probe closure. All
   metric updates land in the worker's own shard (plain stores, no
   atomics, no allocation), so the telemetry itself cannot become the
   contended line it is trying to measure. *)
type worker_obs = {
  shard : Metrics.shard;
  timeline : Span.timeline;
  queries_c : Metrics.counter;
  probes_c : Metrics.counter;
  latency_h : Metrics.histogram;
  probe_latency_h : Metrics.histogram;
  spin_wait_h : Metrics.histogram;
}

(* Sampled per-probe latency: timing every probe with two gettimeofday
   calls would dominate a ~nanosecond table read, so measure 1 probe in
   [probe_sample_mask + 1]. *)
let probe_sample_mask = 63

let make_obs_probe ~cost ~counters ~locks table (w : worker_obs) :
    Lc_dict.Dict_intf.probe =
  let probe_tick = ref 0 in
  let sampled_peek j =
    let tick = !probe_tick in
    probe_tick := tick + 1;
    if tick land probe_sample_mask = 0 then begin
      let t0 = Lc_obs.Clock.now_ns () in
      let v = Table.peek table j in
      Metrics.observe w.shard w.probe_latency_h
        (Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) t0));
      v
    end
    else Table.peek table j
  in
  match cost with
  | Free ->
    fun ~step:_ j ->
      Metrics.incr w.shard w.probes_c 1;
      Atomic.incr counters.(j);
      sampled_peek j
  | Spinlock { hold } ->
    fun ~step:_ j ->
      Metrics.incr w.shard w.probes_c 1;
      let l = locks.(j) in
      (* Fast path: uncontended acquisition records zero wait without
         touching the clock. *)
      if Atomic.compare_and_set l false true then Metrics.observe w.shard w.spin_wait_h 0
      else begin
        let t0 = Lc_obs.Clock.now_ns () in
        while not (Atomic.compare_and_set l false true) do
          Domain.cpu_relax ()
        done;
        Metrics.observe w.shard w.spin_wait_h
          (Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) t0))
      end;
      let v = sampled_peek j in
      for _ = 1 to hold do
        Domain.cpu_relax ()
      done;
      Atomic.set l false;
      Atomic.incr counters.(j);
      v

let serve ?(cost = Free) ?obs ~domains ~queries_per_domain ~seed inst qdist =
  if domains < 1 then invalid_arg "Engine.serve: domains must be >= 1";
  if queries_per_domain < 1 then
    invalid_arg "Engine.serve: queries_per_domain must be >= 1";
  let (module D : Lc_dict.Dict_intf.S) = Instance.core inst in
  let counters = Array.init D.space (fun _ -> Atomic.make 0) in
  let locks = make_locks ~cost ~space:D.space in
  (* Everything per-domain (metric shards, timelines, probe closures) is
     created on the orchestrating domain before any worker spawns, so
     the workers themselves never touch the registry mutexes. *)
  let setup =
    match obs with
    | None -> None
    | Some (o : Lc_obs.Obs.t) ->
      let queries_c =
        Metrics.counter o.metrics ~help:"Queries served by the engine" "engine_queries_total"
      in
      let probes_c =
        Metrics.counter o.metrics ~help:"Cell probes issued by the engine" "engine_probes_total"
      in
      let latency_h =
        Metrics.histogram o.metrics ~help:"Per-query serve latency (ns)"
          "engine_query_latency_ns"
      in
      let probe_latency_h =
        Metrics.histogram o.metrics
          ~help:(Printf.sprintf "Sampled per-probe read latency (ns), 1 in %d probes"
                   (probe_sample_mask + 1))
          "engine_probe_latency_ns"
      in
      let spin_wait_h =
        Metrics.histogram o.metrics
          ~help:"Per-acquisition spinlock wait (ns); 0 = uncontended"
          "engine_spinlock_wait_ns"
      in
      let domains_g =
        Metrics.gauge o.metrics ~help:"Worker domains in the last serve" "engine_domains"
      in
      let main_shard = Lc_obs.Obs.shard o ~domain:0 in
      Metrics.set_gauge main_shard domains_g (float_of_int domains);
      let main_tl = Lc_obs.Obs.timeline o ~tid:0 in
      let workers =
        Array.init domains (fun w ->
            {
              shard = Lc_obs.Obs.shard o ~domain:(w + 1);
              timeline = Lc_obs.Obs.timeline o ~tid:(w + 1);
              queries_c;
              probes_c;
              latency_h;
              probe_latency_h;
              spin_wait_h;
            })
      in
      Some (main_tl, workers)
  in
  let main_span name f =
    match setup with
    | None -> f ()
    | Some (main_tl, _) -> Span.with_span main_tl name f
  in
  (* Pre-sample each domain's query batch outside the timed section so
     throughput measures probing, not distribution sampling. *)
  let batches =
    main_span "sample-batches" @@ fun () ->
    Array.init domains (fun w ->
        let rng = Rng.create (seed + (7919 * (w + 1))) in
        Array.init queries_per_domain (fun _ -> Qdist.sample qdist rng))
  in
  let worker w () =
    let rng = Rng.create (seed lxor (104729 * (w + 1))) in
    match setup with
    | None ->
      let probe = make_probe ~cost ~counters ~locks D.table in
      Array.iter (fun x -> ignore (D.mem ~probe rng x : bool)) batches.(w)
    | Some (_, workers) ->
      let wo = workers.(w) in
      let probe = make_obs_probe ~cost ~counters ~locks D.table wo in
      Span.with_span wo.timeline "serve-batch" (fun () ->
          Array.iter
            (fun x ->
              let t0 = Lc_obs.Clock.now_ns () in
              ignore (D.mem ~probe rng x : bool);
              Metrics.observe wo.shard wo.latency_h
                (Int64.to_int (Int64.sub (Lc_obs.Clock.now_ns ()) t0));
              Metrics.incr wo.shard wo.queries_c 1)
            batches.(w))
  in
  let t0 = Unix.gettimeofday () in
  let seconds =
    main_span "serve" @@ fun () ->
    let spawned = Array.init domains (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join spawned;
    Unix.gettimeofday () -. t0
  in
  main_span "merge" @@ fun () ->
  let counts = Array.map Atomic.get counters in
  let total_probes = Array.fold_left ( + ) 0 counts in
  let hottest_cell = ref 0 in
  Array.iteri (fun j c -> if c > counts.(!hottest_cell) then hottest_cell := j) counts;
  let hottest_count = counts.(!hottest_cell) in
  let queries = domains * queries_per_domain in
  {
    name = D.name;
    domains;
    queries;
    seconds;
    throughput =
      (if seconds > 0.0 then float_of_int queries /. seconds else Float.infinity);
    total_probes;
    counts;
    hottest_cell = !hottest_cell;
    hottest_count;
    hottest_share =
      (if total_probes = 0 then 0.0
       else float_of_int hottest_count /. float_of_int total_probes);
    flat_bound = float_of_int queries *. float_of_int D.max_probes /. float_of_int D.space;
  }

let hotspot_ratio r = float_of_int r.hottest_count /. r.flat_bound

let answer_all ?(domains = 2) ~seed inst ~queries =
  if domains < 1 then invalid_arg "Engine.answer_all: domains must be >= 1";
  let (module D : Lc_dict.Dict_intf.S) = Instance.core inst in
  let probe : Lc_dict.Dict_intf.probe = fun ~step:_ j -> Table.peek D.table j in
  let n = Array.length queries in
  let out = Array.make n false in
  (* Round-robin index partition: workers write disjoint slots of [out],
     so the only shared mutable state is the (read-only) table cells. *)
  let worker w () =
    let rng = Rng.create (seed + (7919 * w)) in
    let i = ref w in
    while !i < n do
      out.(!i) <- D.mem ~probe rng queries.(!i);
      i := !i + domains
    done
  in
  let spawned = Array.init domains (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join spawned;
  out

let count_histogram r =
  let max_count = Array.fold_left max 0 r.counts in
  let bucket_of c =
    (* 0 -> bucket 0; otherwise 1 + floor(log2 c). *)
    if c = 0 then 0
    else begin
      let b = ref 0 in
      let v = ref c in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      !b
    end
  in
  let nbuckets = bucket_of max_count + 1 in
  let cells = Array.make nbuckets 0 in
  Array.iter (fun c -> cells.(bucket_of c) <- cells.(bucket_of c) + 1) r.counts;
  let upper b = if b = 0 then 0 else (1 lsl b) - 1 in
  List.filter
    (fun (_, n) -> n > 0)
    (List.init nbuckets (fun b -> (upper b, cells.(b))))

let top_cells r ~k =
  let indexed = Array.mapi (fun j c -> (j, c)) r.counts in
  Array.sort (fun (_, a) (_, b) -> compare b a) indexed;
  Array.to_list (Array.sub indexed 0 (min k (Array.length indexed)))
